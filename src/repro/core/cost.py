"""Implementation-cost model (Section V-B).

The paper reports, for the fabricated PSA:

* single T-gate on-resistance ~34 ohm;
* T-gates add ~5 % of total chip area;
* PSA wires reduce top-layer routing capacity by only 6.25 % (versus
  100 % for the single-coil design of He et al.);
* dynamic power negligible, overhead dominated by T-gate leakage.

This module derives those figures from the layout model: 1296 T-gate
cells (3.2 um x 4 um custom layout), a placement/control-routing
overhead factor for the keep-out and gate-signal wiring, and 36 lattice
tracks of 1 um wire (plus spacing) per routing layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chip.floorplan import DIE_SIZE
from ..em.devices import tgate_resistance
from ..netlist.cells import get_cell
from ..units import UM
from .grid import N_SWITCHES, N_WIRES, WIRE_WIDTH

#: Placement overhead multiplier on the raw T-gate cell area
#: (keep-out, control-signal routing, decoder fanout).
PLACEMENT_OVERHEAD = 3.0

#: Keep-out spacing each lattice wire adds beyond its 1 um width [m].
WIRE_KEEPOUT = 0.736 * UM

#: T-gate leakage at nominal corner [A] per cell.
TGATE_LEAKAGE_A = 3.2e-9

#: Representative total dynamic supply current of the chip [A]
#: (matches the power model's ~1 mA average at 33 MHz).
CHIP_DYNAMIC_CURRENT_A = 1.0e-3


@dataclass(frozen=True)
class ImplementationCost:
    """Derived Section V-B figures.

    Attributes
    ----------
    tgate_resistance_ohm:
        Nominal single T-gate on-resistance.
    area_overhead_fraction:
        T-gate area (with placement overhead) over die area.
    routing_capacity_fraction:
        Fraction of one top layer's routing capacity used by the
        lattice wires.
    single_coil_routing_fraction:
        The same figure for the whole-layer single coil baseline.
    power_overhead_fraction:
        PSA leakage over the chip's dynamic supply current.
    """

    tgate_resistance_ohm: float
    area_overhead_fraction: float
    routing_capacity_fraction: float
    single_coil_routing_fraction: float
    power_overhead_fraction: float


def implementation_cost(
    vdd: float = 1.2, temperature_c: float = 25.0
) -> ImplementationCost:
    """Compute the Section V-B cost figures from the layout model."""
    tgate_cell = get_cell("TGATE_PSA")
    tgate_area = N_SWITCHES * tgate_cell.area_um2 * UM * UM * PLACEMENT_OVERHEAD
    die_area = DIE_SIZE * DIE_SIZE

    blocked_per_wire = WIRE_WIDTH + WIRE_KEEPOUT
    routing_fraction = N_WIRES * blocked_per_wire / DIE_SIZE

    leakage = N_SWITCHES * TGATE_LEAKAGE_A

    return ImplementationCost(
        tgate_resistance_ohm=tgate_resistance(vdd, temperature_c),
        area_overhead_fraction=tgate_area / die_area,
        routing_capacity_fraction=routing_fraction,
        single_coil_routing_fraction=1.0,
        power_overhead_fraction=leakage / CHIP_DYNAMIC_CURRENT_A,
    )
