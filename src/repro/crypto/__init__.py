"""AES-128 substrate: cipher, key schedule, and the LUT-core cycle model.

The paper's main circuit is an AES-128-LUT core (Morioka/Satoh S-box
architecture) clocked at 33 MHz.  This package implements AES-128 from
scratch — S-box derived from GF(2^8) inversion plus the affine map, key
schedule, block encryption/decryption with a full round-state history —
and a cycle-accurate activity model that converts that history into
per-module toggle counts (the input of the EM simulation).
"""

from .sbox import SBOX, INV_SBOX, sbox_bytes, inv_sbox_bytes
from .key_schedule import expand_key
from .cipher import decrypt_block, encrypt_block, encrypt_block_with_history
from .lut_core import AesLutCore, CoreActivity, BLOCK_CYCLES

__all__ = [
    "SBOX",
    "INV_SBOX",
    "sbox_bytes",
    "inv_sbox_bytes",
    "expand_key",
    "encrypt_block",
    "decrypt_block",
    "encrypt_block_with_history",
    "AesLutCore",
    "CoreActivity",
    "BLOCK_CYCLES",
]
