"""``repro.report`` — one rendering surface for every result object.

:class:`ReportBase` is the contract: ``to_dict``/``to_json`` (the
byte-stable JSON form), ``to_table``/``format`` (the CLI text),
severity rollups, and the timestamped :meth:`ReportBase.write_bundle`
artifact writer.  :class:`~repro.sweep.report.SweepReport`,
:class:`~repro.runtime.fleet.FleetReport`,
:class:`~repro.runtime.pipeline.MonitorReport` and the serve
service's :class:`~repro.serve.metrics.MetricsSnapshot` all render
through it — there is exactly one formatter stack to audit.
"""

from .base import SEVERITY_ORDER, ReportBase, Severity

__all__ = ["ReportBase", "Severity", "SEVERITY_ORDER"]
