"""T3 — CDMA channel key leaker.

"T3 is a Code Division Multiple Access (CDMA) channel Trojan designed
to leak the key" — an always-on Trojan (external enable added for the
experiments) and the smallest of the four (329 cells), which is what
defeats the low-SNR prior methods.

The payload spreads key bits over a pseudo-noise (PN) code: an
m-sequence LFSR advances at the chip rate, each key bit covers one full
PN period, and the transmitted chip is ``key_bit XOR pn``.  Switching
happens while the chip line is high, producing the pseudo-random binary
envelope of Figure 5c.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import WorkloadError
from .base import CycleContext, ExternallyEnabledTrojan, block_pattern

#: PN sequence length (6-bit m-sequence).
PN_PERIOD = 63


def _msequence(taps: Tuple[int, ...] = (0, 1), width: int = 6) -> List[int]:
    """Generate one period of a maximal-length LFSR sequence.

    Right-shifting Fibonacci LFSR over GF(2) implementing
    x^6 + x^5 + 1 (feedback from bits 0 and 1 in this orientation),
    which is maximal for width 6: period 63.
    """
    state = 1
    sequence = []
    for _ in range((1 << width) - 1):
        sequence.append(state & 1)
        feedback = 0
        for tap in taps:
            feedback ^= (state >> tap) & 1
        state = (state >> 1) | (feedback << (width - 1))
    return sequence


#: One period of the spreading code.
PN_SEQUENCE: List[int] = _msequence()


class T3CdmaLeaker(ExternallyEnabledTrojan):
    """T3: CDMA key leaker (always-on, externally enabled).

    Parameters
    ----------
    enabled:
        External enable signal (the experiments' trigger).
    key:
        The key whose bits are being leaked.
    chip_cycles:
        Clock cycles per PN chip (chip rate = f_clock / chip_cycles).
    payload_fraction:
        Fraction of payload cells toggling during a high chip.
    """

    name = "T3"

    def __init__(
        self,
        enabled: bool = False,
        key: bytes = b"\x00" * 16,
        chip_cycles: int = 22,
        payload_fraction: float = 1.0,
    ):
        super().__init__(enabled)
        if len(key) != 16:
            raise WorkloadError(f"key must be 16 bytes, got {len(key)}")
        if chip_cycles < 1:
            raise WorkloadError("chip_cycles must be >= 1")
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        self.key_bits = [
            (byte >> bit) & 1 for byte in key for bit in range(8)
        ]
        self.chip_cycles = chip_cycles
        self.payload_fraction = payload_fraction

    def chip_value(self, cycle: int) -> int:
        """The transmitted chip (key_bit XOR pn) for a clock cycle."""
        chip_index = cycle // self.chip_cycles
        pn = PN_SEQUENCE[chip_index % PN_PERIOD]
        key_bit = self.key_bits[
            (chip_index // PN_PERIOD) % len(self.key_bits)
        ]
        return key_bit ^ pn

    def payload_toggles(self, ctx: CycleContext) -> float:
        if not self.chip_value(ctx.cycle):
            return 0.0
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * burst

    def trigger_toggles(self, ctx: CycleContext) -> float:
        # The PN LFSR itself keeps stepping at the chip rate.
        return 1.0 if ctx.cycle % self.chip_cycles == 0 else 0.5
