"""Batched localization stack + the localization sweep family.

Covers the three tentpole contracts of the localization rework:

* a :class:`~repro.em.coupling.CouplingStack` render is bit-identical
  to rendering each programmed coil on its own;
* the batched :class:`~repro.core.analysis.scanner.AdaptiveScanner`
  and the batched quadrant refinement reproduce the sequential
  per-(coil, record) loops bit-for-bit;
* the ``localize`` grid family evaluates {Trojan × implant position ×
  workload} cells into the shared ``SweepReport``.
"""

import json

import numpy as np
import pytest

from repro.chip.floorplan import (
    DEFAULT_TROJAN_SENSOR,
    default_floorplan,
    floorplan_with_trojans_at,
    sensor_rect,
)
from repro.core.analysis.localizer import QUADRANTS, Localizer
from repro.core.analysis.scanner import AdaptiveScanner
from repro.core.coil import synthesize_rect_coil
from repro.core.sensors import quadrant_coil
from repro.em.coupling import CouplingStack
from repro.errors import AnalysisError, ConfigError, MeasurementError
from repro.sweep import (
    EXPECTED_QUADRANTS,
    LOCALIZE_GRIDS,
    LocalizationSweep,
    LocalizeCell,
    LocalizeGrid,
    SweepReport,
    build_localize_grid,
)
from repro.sweep.report import LocalizeCellResult


# -- stacked coil rendering ----------------------------------------------------


def test_measure_coils_batch_bit_identical_to_single(psa, records):
    coils = [
        synthesize_rect_coil("stack_a", 0, 0, 18, 1),
        synthesize_rect_coil("stack_b", 12, 12, 10, 1),
        quadrant_coil(10, "ne"),
    ]
    recs = [records["baseline"][0], records["T4"][0]]
    batch = psa.measure_coils_batch(coils, recs, trace_indices=[11, 3011])
    assert batch.samples.shape[:2] == (3, 2)
    assert batch.labels == ("stack_a", "stack_b", "psa_sensor_10_ne")
    for k, coil in enumerate(coils):
        for j, (record, index) in enumerate(zip(recs, (11, 3011))):
            single = psa.measure_coil(coil, record, trace_index=index)
            assert np.array_equal(batch.samples[k, j], single.samples)


def test_measure_coils_batch_validates(psa, records):
    coil = synthesize_rect_coil("stack_dup", 0, 0, 10, 1)
    with pytest.raises(MeasurementError):
        psa.measure_coils_batch([], [records["baseline"][0]])
    with pytest.raises(MeasurementError):
        psa.measure_coils_batch([coil, coil], [records["baseline"][0]])


def test_stacked_render_identical_on_process_backend(psa, records):
    from repro.engine import MeasurementEngine
    from repro.core.array import ProgrammableSensorArray

    coils = [
        synthesize_rect_coil("stack_pb_a", 0, 0, 12, 1),
        synthesize_rect_coil("stack_pb_b", 8, 8, 12, 1),
    ]
    recs = [records["T1"][0], records["T1"][1]]
    serial = psa.measure_coils_batch(coils, recs)
    process_psa = ProgrammableSensorArray(
        psa.chip,
        engine=MeasurementEngine(
            psa.config, backend="process", workers=2
        ),
    )
    process = process_psa.measure_coils_batch(coils, recs)
    assert np.array_equal(serial.samples, process.samples)


def test_coupling_stack_validates():
    with pytest.raises(ConfigError):
        CouplingStack([])


def test_coupling_stack_rejects_duplicate_receivers(psa):
    coil = synthesize_rect_coil("stack_same", 4, 4, 8, 1)
    part = psa._coupling_for(coil)
    with pytest.raises(ConfigError):
        CouplingStack([part, part])


# -- batched scanner / refinement equivalence ---------------------------------


def test_batched_scan_bit_identical_to_sequential(psa, records):
    base, active = records["baseline"], records["T4"]
    sequential = AdaptiveScanner(psa, batched=False).scan(base, active)
    batched = AdaptiveScanner(psa).scan(base, active)
    assert batched.position == sequential.position
    assert batched.path == sequential.path
    assert batched.levels == sequential.levels


def test_batched_refine_bit_identical_to_sequential(psa, records):
    base, active = records["baseline"], records["T1"]
    sequential = Localizer(psa, batched=False)._refine(10, base, active)
    batched = Localizer(psa)._refine(10, base, active)
    assert batched == sequential
    assert set(batched) == set(QUADRANTS)


# -- implant-position floorplans ----------------------------------------------


def test_default_floorplan_is_position_10():
    default = default_floorplan()
    relocated = floorplan_with_trojans_at(DEFAULT_TROJAN_SENSOR)
    for trojan in ("T1", "T2", "T3", "T4"):
        assert default.placements[trojan] == relocated.placements[trojan]


def test_relocated_cluster_stays_inside_host():
    for position in (0, 5, 6, 9, 15):
        floorplan = floorplan_with_trojans_at(position)
        host = sensor_rect(position)
        for trojan in ("T1", "T2", "T3", "T4"):
            x, y = floorplan.placements[trojan][0].center
            assert host.contains(x, y), (position, trojan)


# -- grid family ---------------------------------------------------------------


def test_localize_cell_defaults_and_labels():
    cell = LocalizeCell(trojan="T2")
    assert cell.reference == "T2_ref"
    assert cell.position == DEFAULT_TROJAN_SENSOR
    assert cell.label == "T2@s10|T2_ref@0"
    assert cell.expected_quadrant == EXPECTED_QUADRANTS["T2"]


def test_localize_cell_validation():
    with pytest.raises(AnalysisError):
        LocalizeCell(trojan="T9")
    with pytest.raises(AnalysisError):
        LocalizeCell(trojan="T1", position=16)
    with pytest.raises(AnalysisError):
        LocalizeCell(trojan="T1", n_records=0)
    with pytest.raises(AnalysisError):
        LocalizeCell(trojan="T1", n_repeats=0)


def test_localize_grid_product_covers_axes():
    grid = LocalizeGrid.product(
        "family",
        trojans=("T1", "T4"),
        positions=(6, 10, 15),
        references=(("auto", 0), ("auto", 5000)),
    )
    assert grid.n_cells == 12
    assert grid.positions == (6, 10, 15)
    labels = [cell.label for cell in grid.cells]
    assert len(set(labels)) == 12


def test_localize_grid_rejects_duplicates_and_empty():
    with pytest.raises(AnalysisError):
        LocalizeGrid(name="empty", cells=())
    cell = LocalizeCell(trojan="T1")
    with pytest.raises(AnalysisError):
        LocalizeGrid(name="dup", cells=(cell, cell))


def test_named_presets_build():
    for name in LOCALIZE_GRIDS:
        grid = build_localize_grid(name)
        assert grid.n_cells >= 2
    with pytest.raises(AnalysisError):
        build_localize_grid("bogus")
    # The headline preset covers >= 3 positions x >= 2 Trojan types.
    grid = build_localize_grid("localize")
    assert len(grid.positions) >= 3
    assert len({cell.trojan for cell in grid.cells}) >= 2


# -- orchestrator ---------------------------------------------------------------


@pytest.fixture(scope="module")
def localize_report(campaign):
    grid = LocalizeGrid(
        name="test",
        cells=(
            LocalizeCell(trojan="T4", n_records=2, scan=True),
            LocalizeCell(trojan="T1", position=15, n_records=2),
        ),
        keep_details=True,
    )
    sweep = LocalizationSweep(campaign.chip.config, campaign=campaign)
    return sweep.run(grid)


def test_sweep_localizes_every_cell(localize_report):
    assert isinstance(localize_report, SweepReport)
    assert localize_report.all_detected
    for cell in localize_report.cells:
        assert isinstance(cell, LocalizeCellResult)
        assert cell.hit_rate == 1.0
        assert cell.success
        assert cell.mean_error_um < 150.0
        assert cell.mean_margin_db > 0.0
        for outcome in cell.outcomes:
            assert outcome.sensor_index == cell.host_sensor
            assert outcome.quadrant == cell.expected_quadrant


def test_sweep_counts_measurement_windows(localize_report):
    scanned, fixed = localize_report.cells
    # Fixed flow: 16-sensor score map + 4 quadrant coils.
    assert fixed.outcomes[0].windows == 20
    assert fixed.outcomes[0].scan_windows is None
    # Scan-enabled flow adds the quadtree windows on top.
    assert scanned.outcomes[0].scan_windows > 0
    assert scanned.outcomes[0].windows == 20 + scanned.outcomes[0].scan_windows
    assert scanned.outcomes[0].scan_error_um < 300.0


def test_sweep_keeps_details(localize_report):
    for cell in localize_report.cells:
        assert cell.details is not None
        assert len(cell.details) == cell.n_repeats
        assert cell.details[0].sensor_index == cell.host_sensor


def test_report_round_trips_json(localize_report):
    payload = json.loads(localize_report.to_json())
    assert payload["grid"] == "test"
    assert payload["all_detected"] is True
    # No detection cells -> no latency was measured, never a vacuous
    # "budget met".
    assert payload["all_within_budget"] is None
    for cell in payload["cells"]:
        assert cell["kind"] == "localize"
        assert cell["hit_rate"] == 1.0
        assert cell["mean_error_um"] > 0.0


def test_sweep_rejects_mismatched_campaign(chip):
    from repro.chip.testchip import TestChip
    from repro.core.array import ProgrammableSensorArray
    from repro.workloads.campaign import MeasurementCampaign

    relocated = TestChip(
        bytes(range(16)),
        chip.config,
        floorplan=floorplan_with_trojans_at(6),
    )
    campaign = MeasurementCampaign(
        relocated, ProgrammableSensorArray(relocated, points_per_side=8)
    )
    with pytest.raises(AnalysisError):
        LocalizationSweep(chip.config, campaign=campaign)


def test_sweep_inherits_campaign_key(campaign):
    sweep = LocalizationSweep(campaign.chip.config, campaign=campaign)
    assert sweep.key == campaign.chip.key


def test_report_formats_localize_table(localize_report):
    text = localize_report.format()
    assert "Localization sweep" in text
    assert "hit-rate" in text
    assert "T1@s15|baseline@0" in text


def test_report_cell_lookup(localize_report):
    cell = localize_report.cell("T4@s10|baseline@0")
    assert cell.trojan == "T4"
    with pytest.raises(AnalysisError):
        localize_report.cell("nope")
