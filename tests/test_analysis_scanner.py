"""Adaptive scan localization (coarse stage)."""

import numpy as np
import pytest

from repro.core.analysis.scanner import AdaptiveScanner, ScanWindow
from repro.core.grid import N_WIRES, PITCH
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def scanner(psa):
    return AdaptiveScanner(psa)


def test_children_shrink_and_stay_on_lattice(scanner):
    for col0, row0, size in [(0, 0, 35), (10, 5, 18), (20, 20, 10)]:
        children = scanner._children(col0, row0, size)
        assert 4 <= len(children) <= 5
        for c_col, c_row, c_size in children:
            assert c_size < size
            assert 0 <= c_col and c_col + c_size < N_WIRES
            assert 0 <= c_row and c_row + c_size < N_WIRES


def test_window_center():
    window = ScanWindow(col0=10, row0=20, size=6, score=0.0)
    assert window.center[0] == pytest.approx(13 * PITCH)
    assert window.center[1] == pytest.approx(23 * PITCH)


def test_scan_converges_near_trojan(scanner, chip, records):
    """Coarse localization: within ~a window size of the true site."""
    result = scanner.scan(records["baseline"], records["T1"])
    true = chip.floorplan.placements["T1"][0].center
    error = np.hypot(
        result.position[0] - true[0], result.position[1] - true[1]
    )
    assert error < 300e-6  # coarse stage: ~window-size accuracy
    # The descent shrinks monotonically and every level was scored.
    sizes = [window.size for window in result.path]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    assert result.final_window.size <= scanner.min_size + 1
    assert result.n_measurement_windows == sum(
        len(level) for level in result.levels
    )


def test_scan_scores_increase_toward_trojan(scanner, records):
    """The winning window at each level outscores its siblings."""
    result = scanner.scan(records["baseline"], records["T4"])
    for level, winner in zip(result.levels, result.path):
        assert winner.score == max(w.score for w in level)


def test_scan_validates_inputs(scanner, records):
    with pytest.raises(AnalysisError):
        scanner.scan([], records["T1"])
    with pytest.raises(AnalysisError):
        scanner.scan(records["baseline"], records["T1"], start=(0, 0, 4))


def test_min_size_validation(psa):
    with pytest.raises(AnalysisError):
        AdaptiveScanner(psa, min_size=1)
