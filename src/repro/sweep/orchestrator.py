"""The detection-sweep orchestrator.

Evaluates every cell of a :class:`~repro.sweep.grid.SweepGrid` at
engine throughput:

1. **Render** — the cell's baseline+active monitoring stream goes
   through :meth:`MeasurementCampaign.collect_stream`, one vectorized
   engine pass per distinct stream span of the cell.  The engine's
   coupling-geometry cache and configured execution backend
   (serial/process/shared) are reused as-is, and two sweep-wide memos
   exploit the engine's determinism contract: a record cache re-uses
   chip activity across cells that share workload indices, and a
   span-level feature cache re-uses whole featurized spans (a baseline
   span shared by every Trojan of a grid renders exactly once).  With
   an :class:`~repro.store.ArtifactStore` attached, both memos persist
   on disk keyed by content, so repeated sweeps across processes
   warm-start bit-identically.
2. **Featurize** — (optional) auto-ranged RASC ADC quantization, then
   one batched display-spectrum + feature pass over every capture of
   the cell, using the cell's detector's spectral reduction (the
   sideband level in dBuV for ``welford``, the reference-free sideband
   excess for ``spectral``/``persistence``).  Feature-cache keys carry
   the reduction's ``feature_kind``, so methods sharing a reduction
   share cached spans; the historical ``welford`` kind keeps its
   pre-registry key shape, so existing on-disk stores stay warm.
3. **Detect** — the cell's registered detector
   (:func:`repro.detectors.make_detector`) folds the whole feature
   matrix, one stream per sensor.  The ``welford`` plugin delegates to
   :class:`~repro.core.analysis.welford.DetectorBank` unchanged, so
   the registry route is bit-identical to the pre-registry direct
   construction.
4. **Score** — ROC-AUC, detection rate at the cell's operating
   threshold, effect size / required measurements, and MTTD (with
   pre-trigger alarms classified as false alarms).
"""

from __future__ import annotations

from typing import Dict, MutableMapping, Optional, Tuple

import numpy as np

from ..core.analysis.mttd import MttdModel, mttd_from_alarm
from ..detectors import Detector, make_detector
from ..dsp.stats import detection_power, detection_rate, roc_auc
from ..instruments.adc import AdcSpec, quantize_batch
from ..instruments.rasc import AUTO_RANGE_HEADROOM, RASC_ADC
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..store import (
    ArrayCodec,
    ArtifactStore,
    RecordCodec,
    adc_fingerprint,
    analyzer_fingerprint,
    campaign_fingerprint,
    chip_fingerprint,
)
from ..workloads.campaign import MeasurementCampaign, StreamSegment
from .grid import SweepCell, SweepGrid
from .report import SensorOutcome, SweepCellResult, SweepReport


class DetectionSweep:
    """Grid evaluator bound to one campaign (chip + PSA + engine).

    Parameters
    ----------
    campaign:
        The measurement campaign to render streams through; its PSA's
        engine (and therefore the configured backend/worker pool) does
        all the rendering.
    analyzer:
        Spectrum analyzer model (paper display settings by default).
    mttd_model:
        Per-trace timing used for MTTD accounting.
    adc:
        Converter used by cells with ``quantize=True`` (the RASC
        monitor's converter by default, shared with
        :mod:`repro.instruments.rasc`).
    store:
        Optional :class:`~repro.store.ArtifactStore`.  When given, the
        sweep-wide record and span-feature memos become persistent
        store views keyed by the campaign's full content fingerprint:
        a repeated sweep over the same chip/workload/engine setup
        replays its artifacts from disk, bit-identical to a cold run.
        None keeps the plain in-memory memos (the cold path).
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        analyzer: Optional[SpectrumAnalyzer] = None,
        mttd_model: Optional[MttdModel] = None,
        adc: AdcSpec = RASC_ADC,
        store: Optional[ArtifactStore] = None,
    ):
        self.campaign = campaign
        self.config = campaign.chip.config
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.mttd_model = mttd_model or MttdModel()
        self.adc = adc
        self.store = store
        self._record_cache: MutableMapping[Tuple[str, int], object]
        self._feature_cache: MutableMapping[tuple, np.ndarray]
        self._reducers: Dict[str, Detector] = {}
        if store is None:
            self._record_cache = {}
            self._feature_cache = {}
        else:
            # Records depend on the chip alone (key/config/floorplan),
            # so their context deliberately omits the PSA: every
            # consumer of the same chip shares one record namespace.
            self._record_cache = store.mapping(
                "record",
                {"chip": chip_fingerprint(campaign.chip)},
                RecordCodec(self.config),
            )
            self._feature_cache = store.mapping(
                "span-features",
                {
                    "campaign": campaign_fingerprint(campaign),
                    "analyzer": analyzer_fingerprint(self.analyzer),
                    "adc": adc_fingerprint(adc),
                    "headroom": AUTO_RANGE_HEADROOM,
                },
                ArrayCodec(readonly=True),
            )

    def run(self, grid: SweepGrid) -> SweepReport:
        """Evaluate every cell of a grid.

        All spans missing from the feature cache render first as one
        fused engine pass across cells (grouped per sensor subset), so
        a whole grid pays one dispatch instead of one per span; each
        span then featurizes exactly as it would standalone.
        """
        self._prefetch(grid.cells)
        cells = tuple(
            self._evaluate(cell, grid.keep_features) for cell in grid.cells
        )
        return SweepReport(
            grid=grid.name,
            trace_period_s=self.mttd_model.trace_period(self.config),
            cells=cells,
        )

    def close(self) -> None:
        """Release the campaign engine's backend resources."""
        self.campaign.close()

    def _prefetch(self, cells) -> None:
        """Render every uncached span of a grid in one fused pass."""
        from ..engine import RenderPlan

        plan = RenderPlan()
        tickets = {}
        pending = {}
        for cell in cells:
            for segment in cell.segments:
                key = self._span_key(segment, cell)
                if key in pending:
                    continue
                if self._feature_cache.get(key) is not None:
                    continue
                # One render per physical span: cells that differ only
                # in feature kind (or ADC use) share the ticket and
                # featurize its batch separately.
                render_key = (
                    segment.scenario,
                    segment.n_traces,
                    segment.index_offset,
                    cell.sensors,
                )
                if render_key not in tickets:
                    tickets[render_key] = self.campaign.enqueue_stream(
                        plan,
                        [segment],
                        sensors=list(cell.sensors),
                        record_cache=self._record_cache,
                    )
                pending[key] = (render_key, cell.quantize, cell.detector_name)
        if not pending:
            return
        plan.execute()
        for key, (render_key, quantize, detector_name) in pending.items():
            features = self._featurize(
                tickets[render_key].result(),
                quantize,
                self._reducer(detector_name),
            )
            self._feature_cache[key] = features

    # -- per-cell evaluation ---------------------------------------------------

    def cell_features(self, cell: SweepCell) -> np.ndarray:
        """Render + featurize one cell; ``(n_sensors, n_traces)`` [dB].

        Span blocks come from the sweep-wide feature cache; the stream
        is their concatenation in capture order.  Every feature is
        bit-identical to rendering + featurizing the trace alone (the
        engine's determinism contract plus row-wise featurization).
        """
        blocks = [
            self._segment_features(segment, cell)
            for segment in cell.segments
        ]
        return np.concatenate(blocks, axis=1)

    def _reducer(self, detector_name: str) -> Detector:
        """A method's spectral reduction, shared sweep-wide.

        The reduction half of the protocol is stateless, so one
        instance per method serves every cell and span.
        """
        reducer = self._reducers.get(detector_name)
        if reducer is None:
            reducer = make_detector(detector_name, 1)
            self._reducers[detector_name] = reducer
        return reducer

    def _span_key(self, segment: StreamSegment, cell: SweepCell) -> tuple:
        """Feature-cache key of one span under one cell's reduction.

        The historical ``welford`` reduction keeps the pre-registry
        5-tuple key, so existing persistent stores stay warm; any
        other ``feature_kind`` appends itself to the key.
        """
        key = (
            segment.scenario,
            segment.n_traces,
            segment.index_offset,
            cell.sensors,
            cell.quantize,
        )
        kind = self._reducer(cell.detector_name).feature_kind
        if kind != "sideband-db":
            key = key + (kind,)
        return key

    def _segment_features(
        self, segment: StreamSegment, cell: SweepCell
    ) -> np.ndarray:
        """One span's feature block, rendered on first use only.

        Cache key = the exact span identity plus the feature kind;
        spans that merely overlap (same scenario, different
        offset/length) render separately.
        """
        key = self._span_key(segment, cell)
        features = self._feature_cache.get(key)
        if features is None:
            batch = self.campaign.collect_stream(
                [segment],
                sensors=list(cell.sensors),
                record_cache=self._record_cache,
            )
            features = self._featurize(
                batch, cell.quantize, self._reducer(cell.detector_name)
            )
            self._feature_cache[key] = features
        return features

    def _featurize(
        self, batch, quantize: bool, reducer: Detector
    ) -> np.ndarray:
        """One rendered span to its read-only feature block [dB]."""
        samples = batch.samples
        if quantize:
            samples = quantize_batch(
                samples, self.adc, headroom=AUTO_RANGE_HEADROOM
            )
        n_sensors, n_traces, n_samples = samples.shape
        grid_freqs, display = self.analyzer.display_matrix(
            samples.reshape(-1, n_samples), batch.fs
        )
        features = reducer.features(
            grid_freqs, display, self.config
        ).reshape(n_sensors, n_traces)
        features.flags.writeable = False  # shared across cells
        return features

    def _evaluate(self, cell: SweepCell, keep_features: bool) -> SweepCellResult:
        features = self.cell_features(cell)
        detector = make_detector(
            cell.detector_name, len(cell.sensors), cell.detector
        )
        timeline = detector.process(features)
        first_alarms = timeline.first_alarms()
        alarm_index = timeline.first_alarm()
        mttd = mttd_from_alarm(
            alarm_index, cell.trigger_index, self.config, self.mttd_model
        )
        outcomes = []
        for position, sensor in enumerate(cell.sensors):
            inactive = features[position, : cell.n_baseline]
            active = features[position, cell.n_baseline :]
            power = detection_power(active, inactive)
            outcomes.append(
                SensorOutcome(
                    sensor=sensor,
                    roc_auc=roc_auc(active, inactive),
                    detection_rate=detection_rate(
                        active, inactive, cell.z_threshold
                    ),
                    effect_size=power.effect_size,
                    n_required=power.n_required,
                    first_alarm=first_alarms[position],
                )
            )
        return SweepCellResult(
            label=cell.label,
            trojan=cell.trojan,
            reference=cell.reference,
            sensors=cell.sensors,
            n_baseline=cell.n_baseline,
            n_active=cell.n_active,
            outcomes=tuple(outcomes),
            alarm_index=alarm_index,
            mttd=mttd,
            detector=cell.detector_name,
            features_db=features if keep_features else None,
        )
