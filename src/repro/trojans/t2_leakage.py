"""T2 — key-wire inverter-chain leakage amplifier.

"T2 is a chain of inverters connected to a key wire to amplify its
leakage current.  If T2 is implanted, attackers could recover the key
via power analysis ... T2 is triggered when the first four bytes of the
plaintext are 16'hAAAA."

The trigger value ``16'hAAAA`` is 16 bits, i.e. the first two plaintext
bytes both equal to 0xAA (the paper's "four bytes" vs "16'h" wording is
internally inconsistent; we follow the 16-bit constant and document the
choice).  While a matching block is being encrypted, the inverter chain
follows the key-schedule wires, so its switching tracks the
round-to-round Hamming distance of the round keys — block-aligned
bursts that switch on and off with the plaintext pattern (Figure 5b).
"""

from __future__ import annotations

from ..errors import WorkloadError
from .base import CycleContext, Trojan, block_pattern

#: Plaintext prefix that arms T2 (two bytes of 0xAA).
T2_TRIGGER_PREFIX = b"\xaa\xaa"


class T2KeyLeakInverters(Trojan):
    """T2: inverter chain on a key wire, plaintext-triggered.

    Parameters
    ----------
    enabled:
        Master enable.
    payload_fraction:
        Fraction of the chain toggling at full key-schedule swing.
    """

    name = "T2"

    def __init__(self, enabled: bool = True, payload_fraction: float = 0.80):
        super().__init__(enabled)
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        self.payload_fraction = payload_fraction

    @staticmethod
    def matches(plaintext: bytes) -> bool:
        """Whether a plaintext block satisfies the trigger condition."""
        return plaintext[: len(T2_TRIGGER_PREFIX)] == T2_TRIGGER_PREFIX

    def is_active(self, ctx: CycleContext) -> bool:
        return self.enabled and self.matches(ctx.plaintext)

    def payload_toggles(self, ctx: CycleContext) -> float:
        key_swing = ctx.key_hd / 128.0
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * key_swing * burst

    def trigger_toggles(self, ctx: CycleContext) -> float:
        # The 16-bit comparator re-evaluates once per block load.
        return 3.0 if ctx.phase == 0 else 1.0
