"""IO pin assignment (Figure 2)."""

import pytest

from repro.chip.pins import (
    IO_PINS,
    channel_for_sensor,
    pin_map,
    pins_by_role,
)
from repro.errors import FloorplanError


def test_32_pins_8_per_side():
    assert len(IO_PINS) == 32
    grouped = pin_map()
    assert set(grouped) == {"left", "right", "top", "bottom"}
    for side, pins in grouped.items():
        assert len(pins) == 8, side
        assert sorted(p.position for p in pins) == list(range(8))


def test_psa_outputs_on_right_side():
    """The PSA uses the 8 IO pins on the right side (Section V-A)."""
    outputs = pins_by_role("psa_out")
    assert len(outputs) == 8
    assert all(pin.side == "right" for pin in outputs)
    names = {pin.name for pin in outputs}
    assert "Sensor1+" in names and "Sensor4-" in names


def test_psa_control_on_bottom():
    controls = pins_by_role("psa_ctrl")
    assert len(controls) == 4
    assert all(pin.side == "bottom" for pin in controls)


def test_channel_sharing_per_row():
    """The 4 sensors of each row share the row's output channel."""
    for sensor in range(16):
        assert channel_for_sensor(sensor) == sensor // 4 + 1
    assert channel_for_sensor(10) == 3


def test_channel_bounds():
    with pytest.raises(FloorplanError):
        channel_for_sensor(16)


def test_trojan_enables_exist():
    enables = {pin.name for pin in pins_by_role("trojan_en")}
    assert enables == {"en_T1", "en_T2", "en_T3", "en_T4"}


def test_unknown_role():
    with pytest.raises(FloorplanError):
        pins_by_role("jtag")
