"""Calibration constants tying the simulation to the paper's absolute levels.

The *relative* behaviour of the reproduction — which receiver couples
more strongly, where the sidebands sit, who localizes, how many traces
each method needs — emerges from the physics model (geometry, dipole
pairs, noise mechanisms).  Two absolute scales cannot be derived from
the paper and are calibrated instead:

``COUPLING_SCALE``
    The point-dipole far-field model underestimates on-chip coupling:
    the sensing metals sit 1-5 um above the M1-M6 wiring, where
    near-field wire-to-wire coupling (not captured by ideal dipoles)
    dominates.  A single dimensionless factor applied to *every*
    coupling matrix restores the paper's absolute signal levels
    (PSA ~41 dB SNR per Equation (1)) without touching any relative
    comparison — all receivers are scaled alike.

``AMBIENT_VRMS_PER_M2`` (in :mod:`repro.em.noise`)
    Lab ambient pickup per unit loop area, calibrated so the external
    Langer LF1 probe lands near its measured 14.3 dB SNR.

Everything else (cell capacitances, T-gate resistance, amplifier noise,
probe geometry) uses datasheet/technology-plausible values directly.
"""

from __future__ import annotations

#: Dimensionless near-field coupling correction (see module docstring).
COUPLING_SCALE = 3.0e6

#: Dimensionless correction on the package/bond-wire loop coupling.
#: The global supply loop (die -> bondwires -> package plane) carries
#: the total chip current; its coupling to *external* probes is what
#: conventional EM side-channel setups measure.  The factor absorbs the
#: kernel's underestimated edge sharpness (~100 ps in silicon vs ~1 ns
#: modeled) and the multi-loop package geometry.
BOND_COUPLING_SCALE = 0.35

#: Fraction of a region's supply current that returns through the
#: *local* power stripe (the compensating dipole pole).  1.0 = fully
#: compensated pairs: on-die sources are quadrupole-like at distance,
#: and the diffuse package-level return is carried entirely by the
#: bond-loop term.  (Values < 1 would leave unbalanced far-field
#: moments that double-count the package return and swamp the external
#: probes.)
RETURN_FRACTION = 1.0

#: Target SNR values from the paper [dB], for calibration checks.
PAPER_SNR_DB = {
    "psa": 41.0,
    "single_coil": 30.5,
    "langer_lf1": 14.3,
    "icr_hh100": 34.0,
}

#: Acceptable calibration tolerance on absolute SNR values [dB].
SNR_TOLERANCE_DB = 6.0
