"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an ASCII table with per-column alignment."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in string_rows:
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x: Sequence[float], y: Sequence[float], x_label: str, y_label: str,
    x_scale: float = 1.0, y_format: str = "{:.2f}",
) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [
        (f"{xi * x_scale:.3f}", y_format.format(yi)) for xi, yi in zip(x, y)
    ]
    return format_table([x_label, y_label], rows)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a one-line unicode sparkline."""
    glyphs = " .:-=+*#%@"
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [
            max(values[int(i * stride): max(int((i + 1) * stride), int(i * stride) + 1)])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
