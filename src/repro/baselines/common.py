"""Shared measurement bench for receiver-based methods.

The external-probe and single-coil baselines differ from the PSA only
in their receiver geometry and noise environment; this bench renders an
:class:`~repro.chip.power.ActivityRecord` into an amplified trace for
any single receiver, reusing the same EM substrate so the comparison is
apples to apples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..calibration import COUPLING_SCALE
from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..dsp.transforms import Spectrum
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, Receiver, emf_waveforms
from ..em.noise import NoiseModel
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..rng import stream
from ..traces import Trace
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for, scenario_by_name


class ReceiverBench:
    """Measurement bench around one receiver.

    Parameters
    ----------
    chip:
        Device under test.
    receiver:
        The sensing structure.
    amplifier:
        Front-end (the external probes use the same bench amplifier as
        the PSA's channels, per the shared PCB of Section VI-A).
    """

    def __init__(
        self,
        chip: TestChip,
        receiver: Receiver,
        amplifier: MeasurementAmplifier | None = None,
    ):
        self.chip = chip
        self.receiver = receiver
        self.amplifier = amplifier or MeasurementAmplifier()
        self.analyzer = SpectrumAnalyzer()
        self.coupling = CouplingMatrix(
            chip.floorplan,
            [receiver],
            points_per_side=48,
            scale=COUPLING_SCALE,
        )
        self._noise = NoiseModel(
            resistance=receiver.r_series,
            temperature_c=chip.config.temperature_c,
            ambient_area=receiver.ambient_gain,
        )

    def measure(self, record: ActivityRecord, trace_index: int = 0) -> Trace:
        """Capture one amplified trace from the receiver."""
        config = self.chip.config
        emf = emf_waveforms(self.coupling, record)[0]
        tag = f"{record.scenario}/{self.receiver.name}/{trace_index}"
        if self.receiver.gain_jitter > 0.0:
            # Probe repositioning drift between captures.
            drift_rng = stream(config.seed, f"gain/{tag}")
            emf = emf * (
                1.0
                + self.receiver.gain_jitter * drift_rng.standard_normal()
            )
        noise = self._noise.sample(
            config.n_samples, config.fs, stream(config.seed, f"noise/{tag}")
        )
        amplified = self.amplifier.amplify(
            emf + noise,
            config.fs,
            rng=stream(config.seed, f"amp/{tag}"),
            source_impedance=self.receiver.r_series,
        )
        return Trace(
            samples=amplified,
            fs=config.fs,
            label=self.receiver.name,
            scenario=record.scenario,
            meta={"trace_index": trace_index},
        )

    # -- scenario-level collection ------------------------------------------------

    def collect(
        self, campaign: MeasurementCampaign, scenario_name: str, n_traces: int,
        index_offset: int = 0,
    ) -> List[Trace]:
        """Capture ``n_traces`` of one scenario with fresh workloads."""
        scenario = scenario_by_name(scenario_name)
        traces = []
        for index in range(n_traces):
            record = campaign.record(scenario, index_offset + index)
            traces.append(self.measure(record, trace_index=index_offset + index))
        return traces

    def spectra(self, traces: Sequence[Trace]) -> List[Spectrum]:
        """Display spectra of a trace collection."""
        return [self.analyzer.spectrum(trace) for trace in traces]

    def snr_db(self, campaign: MeasurementCampaign, n_traces: int = 3) -> float:
        """He-style SNR (Equation (1)) of this receiver."""
        from ..dsp.metrics import snr_rms_db

        signal = self.collect(campaign, "baseline", n_traces)
        noise = self.collect(campaign, "idle", n_traces)
        signal_rms = np.concatenate([t.samples for t in signal])
        noise_rms = np.concatenate([t.samples for t in noise])
        return snr_rms_db(signal_rms, noise_rms)


def euclidean_statistics(
    spectra: Sequence[Spectrum], reference: Spectrum
) -> np.ndarray:
    """Per-trace Euclidean distance to a reference spectrum.

    The statistic of He et al. (TVLSI'17): compare each captured
    spectrum against the reference by L2 distance.
    """
    ref = reference.amps
    return np.array(
        [float(np.linalg.norm(spec.amps - ref)) for spec in spectra]
    )


def reference_spectrum(spectra: Sequence[Spectrum]) -> Spectrum:
    """Mean (power-domain) spectrum of a reference collection."""
    from ..dsp.transforms import average_spectra

    return average_spectra(list(spectra))
