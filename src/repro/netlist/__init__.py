"""Gate-inventory netlist substrate.

Models the test chip's standard-cell content at the inventory level: a
65nm-style cell library with per-cell area / switching-capacitance /
leakage figures, a :class:`Netlist` container, and builders that
reproduce the exact cell budget of the paper's Table II (28,806 cells
overall; T1 1881, T2 2132, T3 329, T4 2181).

Connectivity is modeled where the paper describes it at the gate level
(trigger circuits, PSA decoder) by :mod:`repro.logic`; the inventory
level is what the EM activity model needs (how many cells of which kind
toggle where).
"""

from .cells import CELL_LIBRARY, StandardCell
from .netlist import Instance, Netlist
from .builder import (
    MAIN_MODULE_RECIPES,
    TROJAN_RECIPES,
    build_main_circuit,
    build_test_chip_netlist,
    build_trojan,
)
from .stats import TrojanGateRow, trojan_gate_table

__all__ = [
    "CELL_LIBRARY",
    "StandardCell",
    "Instance",
    "Netlist",
    "MAIN_MODULE_RECIPES",
    "TROJAN_RECIPES",
    "build_main_circuit",
    "build_test_chip_netlist",
    "build_trojan",
    "TrojanGateRow",
    "trojan_gate_table",
]
