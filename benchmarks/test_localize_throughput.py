"""Localization throughput: batched engine path vs. per-(coil, record) loops.

Runs the full localization flow for T4 twice:

* **legacy** — the pre-batching shape: the 16-sensor score map
  measures one (sensor, record) capture at a time (``psa.measure`` +
  one spectrum + one band feature each), the quadrant refinement
  renders each quadrant coil record by record (``psa.measure_coil``
  loops), and the adaptive scan scores every (window, record) capture
  through its own single-capture render
  (``AdaptiveScanner(batched=False)``);
* **batched** — ``Localizer.localize`` (one engine pass for the score
  map, one :class:`~repro.em.coupling.CouplingStack` pass for all four
  quadrant coils) plus the batched scanner (one stacked pass per
  level), each with one vectorized display/feature pass per batch.

Both paths must agree bit-for-bit on the score map, the quadrant
scores and every scan-window score (so sensor choice, refined
quadrant and descent are identical); the batched flow must be >=
1.5x faster (typically ~2.5x on an idle machine; the floor leaves
headroom for loaded CI hosts).  Results land in
``BENCH_localize.json`` at the repo root so the performance
trajectory is tracked from PR to PR.

Set ``LOCALIZE_SMOKE=1`` to skip the speedup floor (CI smoke):
equivalence is still asserted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.analysis.localizer import QUADRANTS, Localizer
from repro.core.analysis.scanner import AdaptiveScanner
from repro.core.analysis.spectral import sideband_amplitude
from repro.core.sensors import quadrant_coil
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.workloads.scenarios import reference_for, scenario_by_name

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_localize.json"

SMOKE = os.environ.get("LOCALIZE_SMOKE", "") not in ("", "0")
#: Batched-over-legacy throughput floor on the full flow (typically
#: ~2.5x idle; the floor leaves headroom for loaded hosts).
MIN_SPEEDUP = 1.5

N_RECORDS = 3
TROJAN = "T4"


def _amp(ctx, analyzer, trace) -> float:
    return sideband_amplitude(analyzer.spectrum(trace), ctx.config)


def _legacy_score_map(ctx, analyzer, base, active) -> np.ndarray:
    """The seed's per-(sensor, record) score-map loop.

    Same trace indices as ``Localizer.score_map`` (baseline offset 0,
    active offset 1000), one single-capture render per feature.
    """
    scores = np.zeros(ctx.psa.n_sensors)
    for sensor in range(ctx.psa.n_sensors):
        base_amps = [
            _amp(ctx, analyzer, ctx.psa.measure(record, sensor, idx))
            for idx, record in enumerate(base)
        ]
        active_amps = [
            _amp(ctx, analyzer, ctx.psa.measure(record, sensor, 1000 + idx))
            for idx, record in enumerate(active)
        ]
        scores[sensor] = np.mean(active_amps) - np.mean(base_amps)
    return scores


def _legacy_refine(ctx, analyzer, sensor_index, base, active):
    """The seed's per-(coil, record) quadrant refinement loop."""
    scores = {}
    for which in QUADRANTS:
        coil = quadrant_coil(sensor_index, which)
        base_amps = [
            _amp(ctx, analyzer, ctx.psa.measure_coil(coil, record, idx))
            for idx, record in enumerate(base)
        ]
        active_amps = [
            _amp(
                ctx, analyzer, ctx.psa.measure_coil(coil, record, 2000 + idx)
            )
            for idx, record in enumerate(active)
        ]
        scores[which] = float(np.mean(active_amps) - np.mean(base_amps))
    return scores


def test_localize_throughput(ctx, benchmark):
    analyzer = SpectrumAnalyzer()
    base = [
        ctx.campaign.record(reference_for(TROJAN), i) for i in range(N_RECORDS)
    ]
    active = [
        ctx.campaign.record(scenario_by_name(TROJAN), 500 + i)
        for i in range(N_RECORDS)
    ]

    # Warm every window's coupling geometry (a one-time, path-independent
    # cost) plus the shared kernel/gain caches out of both timings.
    localizer = Localizer(ctx.psa, analyzer=analyzer)
    warm = localizer.localize(base, active, refine=True)
    AdaptiveScanner(ctx.psa, analyzer=analyzer).scan(base, active)

    start = time.perf_counter()
    legacy_scores = _legacy_score_map(ctx, analyzer, base, active)
    legacy_hot = int(np.argmax(legacy_scores))
    legacy_quadrants = _legacy_refine(ctx, analyzer, legacy_hot, base, active)
    legacy_scan = AdaptiveScanner(
        ctx.psa, analyzer=analyzer, batched=False
    ).scan(base, active)
    legacy_seconds = time.perf_counter() - start

    def _batched():
        result = localizer.localize(base, active, refine=True)
        scan = AdaptiveScanner(ctx.psa, analyzer=analyzer).scan(base, active)
        return result, scan

    start = time.perf_counter()
    result, scan = benchmark.pedantic(_batched, rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - start

    # Equivalence: the batched flow is the same experiment, bit for bit.
    assert np.array_equal(result.scores, legacy_scores)
    assert result.sensor_index == legacy_hot
    assert result.quadrant_scores == legacy_quadrants
    assert scan.position == legacy_scan.position
    assert scan.path == legacy_scan.path
    assert scan.levels == legacy_scan.levels

    n_windows = (
        ctx.psa.n_sensors + len(QUADRANTS) + scan.n_measurement_windows
    )
    speedup = legacy_seconds / batched_seconds
    payload = {
        "flow": {
            "trojan": TROJAN,
            "records_per_population": N_RECORDS,
            "score_map_sensors": ctx.psa.n_sensors,
            "quadrant_coils": len(QUADRANTS),
            "scan_windows": scan.n_measurement_windows,
            "scan_levels": len(scan.levels),
            "total_windows": n_windows,
            "captures": 2 * N_RECORDS * n_windows,
        },
        "smoke": SMOKE,
        "legacy_per_coil": {"seconds": round(legacy_seconds, 3)},
        "batched_engine": {"seconds": round(batched_seconds, 3)},
        "speedup": round(speedup, 2),
        "hot_sensor": result.sensor_index,
        "refined_quadrant": result.quadrant,
        "scan_error_um": round(
            1e6
            * float(
                np.hypot(
                    scan.position[0]
                    - ctx.chip.floorplan.placements[TROJAN][0].center[0],
                    scan.position[1]
                    - ctx.chip.floorplan.placements[TROJAN][0].center[1],
                )
            ),
            1,
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    assert result.sensor_index == warm.sensor_index == 10
    assert result.quadrant == "se"
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"batched localization speedup {speedup:.2f}x below "
            f"{MIN_SPEEDUP}x"
        )
