"""Flux integration over rectangular coil turns.

Flux linkage is computed with the vector-potential line integral

    Phi = \\oint A . dl,     A = mu0 m (z_hat x r) / (4 pi r^3)

around each turn's perimeter.  Unlike surface (patch) integration this
is numerically robust: the integrand is smooth everywhere on the wire
(the nearest a source can get is the coil height), while the dipole's
Bz core under the loop is near-singular and defeats any reasonable
patch grid.  The line integral also reproduces the key physics exactly:
flux from a dipole deep inside a large loop falls off like 1/a (the
self-cancellation that penalizes whole-chip coils).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..chip.floorplan import Rect
from ..errors import ConfigError
from ..units import MU0
from .dipole import flux_through_patches

_PREFACTOR = MU0 / (4.0 * np.pi)


def rect_patches(rect: Rect, n_side: int) -> Tuple[np.ndarray, float]:
    """Discretize a rectangle into ``n_side x n_side`` equal patches.

    Retained for surface-integral cross-checks; returns
    ``(centers (P, 2), patch_area)``.
    """
    if n_side < 1:
        raise ConfigError(f"n_side must be >= 1, got {n_side}")
    xs = np.linspace(rect.x0, rect.x1, n_side + 1)
    ys = np.linspace(rect.y0, rect.y1, n_side + 1)
    cx = 0.5 * (xs[:-1] + xs[1:])
    cy = 0.5 * (ys[:-1] + ys[1:])
    gx, gy = np.meshgrid(cx, cy)
    centers = np.column_stack([gx.ravel(), gy.ravel()])
    patch_area = (rect.width / n_side) * (rect.height / n_side)
    return centers, patch_area


def rect_perimeter(
    rect: Rect, points_per_side: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Counter-clockwise perimeter discretization of a rectangle.

    Returns ``(midpoints (P, 2), dl (P, 2))`` — segment midpoints and
    the corresponding oriented segment vectors.
    """
    if points_per_side < 2:
        raise ConfigError("need at least 2 points per side")
    corners = np.array(
        [
            [rect.x0, rect.y0],
            [rect.x1, rect.y0],
            [rect.x1, rect.y1],
            [rect.x0, rect.y1],
        ]
    )
    midpoints = []
    deltas = []
    for index in range(4):
        start = corners[index]
        stop = corners[(index + 1) % 4]
        ts = np.linspace(0.0, 1.0, points_per_side + 1)
        points = start[None, :] + ts[:, None] * (stop - start)[None, :]
        midpoints.append(0.5 * (points[:-1] + points[1:]))
        deltas.append(points[1:] - points[:-1])
    return np.vstack(midpoints), np.vstack(deltas)


def loop_flux_factor(
    rect: Rect,
    loop_z: float,
    dipole_xy: np.ndarray,
    dipole_z: float,
    points_per_side: int = 64,
) -> np.ndarray:
    """Flux per unit dipole moment through one rectangular turn.

    Parameters
    ----------
    rect:
        The turn's enclosed rectangle.
    loop_z:
        Height of the turn's plane [m].
    dipole_xy:
        Dipole positions, shape ``(D, 2)``.
    dipole_z:
        Common dipole height [m].
    points_per_side:
        Line-integral resolution.

    Returns
    -------
    numpy.ndarray
        ``(D,)`` array [Wb/(A*m^2)].
    """
    dipole_xy = np.atleast_2d(np.asarray(dipole_xy, dtype=float))
    dz = loop_z - dipole_z
    if abs(dz) < 1e-12:
        raise ConfigError("dipole and loop planes coincide")
    midpoints, deltas = rect_perimeter(rect, points_per_side)
    dx = midpoints[None, :, 0] - dipole_xy[:, None, 0]
    dy = midpoints[None, :, 1] - dipole_xy[:, None, 1]
    r3 = (dx * dx + dy * dy + dz * dz) ** 1.5
    integrand = (-dy * deltas[None, :, 0] + dx * deltas[None, :, 1]) / r3
    return _PREFACTOR * integrand.sum(axis=1)


def turns_flux_factor(
    turns: Sequence[Rect],
    turns_z: float,
    dipole_xy: np.ndarray,
    dipole_z: float,
    points_per_side: int = 64,
) -> np.ndarray:
    """Flux linkage per unit dipole moment for a multi-turn coil.

    Each series turn links its own flux; the coil sums the linkages.
    Returns an array of shape ``(D,)`` [Wb/(A*m^2)].
    """
    if not turns:
        raise ConfigError("coil has no turns")
    dipole_xy = np.atleast_2d(np.asarray(dipole_xy, dtype=float))
    total = np.zeros(dipole_xy.shape[0])
    for turn in turns:
        total += loop_flux_factor(
            turn, turns_z, dipole_xy, dipole_z, points_per_side
        )
    return total


def surface_flux_factor(
    rect: Rect,
    loop_z: float,
    dipole_xy: np.ndarray,
    dipole_z: float,
    n_side: int = 64,
) -> np.ndarray:
    """Patch-integrated flux (cross-check for the line integral)."""
    patches, area = rect_patches(rect, n_side)
    return flux_through_patches(dipole_xy, dipole_z, patches, loop_z, area)
