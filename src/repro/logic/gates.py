"""Primitive gate behaviors for the event-driven simulator."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..errors import LogicSimulationError
from .signals import HIGH, LOW, UNKNOWN, Wire

#: Evaluator signature: tuple of input values -> output value.
Evaluator = Callable[[Sequence[int]], int]


def _require_known(values: Sequence[int]) -> bool:
    """True when every input has settled to 0/1."""
    return all(value != UNKNOWN for value in values)


def _eval_buf(values: Sequence[int]) -> int:
    return values[0]


def _eval_not(values: Sequence[int]) -> int:
    return HIGH if values[0] == LOW else LOW


def _eval_and(values: Sequence[int]) -> int:
    return HIGH if all(v == HIGH for v in values) else LOW


def _eval_nand(values: Sequence[int]) -> int:
    return LOW if all(v == HIGH for v in values) else HIGH


def _eval_or(values: Sequence[int]) -> int:
    return HIGH if any(v == HIGH for v in values) else LOW


def _eval_nor(values: Sequence[int]) -> int:
    return LOW if any(v == HIGH for v in values) else HIGH


def _eval_xor(values: Sequence[int]) -> int:
    ones = sum(1 for v in values if v == HIGH)
    return HIGH if ones % 2 else LOW


def _eval_xnor(values: Sequence[int]) -> int:
    return LOW if _eval_xor(values) == HIGH else HIGH


#: Supported gate types and their evaluators.
GATE_EVALUATORS: Dict[str, Evaluator] = {
    "BUF": _eval_buf,
    "NOT": _eval_not,
    "AND": _eval_and,
    "NAND": _eval_nand,
    "OR": _eval_or,
    "NOR": _eval_nor,
    "XOR": _eval_xor,
    "XNOR": _eval_xnor,
}

#: Single-input gate types (arity checked at construction).
_UNARY = {"BUF", "NOT"}


class Gate:
    """One combinational gate instance.

    Parameters
    ----------
    kind:
        A key of :data:`GATE_EVALUATORS`.
    inputs:
        Input wires (order matters only for diagnostics).
    output:
        Output wire.
    delay:
        Inertial propagation delay in simulator time units.
    """

    __slots__ = ("kind", "inputs", "output", "delay", "_evaluate")

    def __init__(
        self,
        kind: str,
        inputs: Sequence[Wire],
        output: Wire,
        delay: int = 1,
    ):
        if kind not in GATE_EVALUATORS:
            raise LogicSimulationError(f"unknown gate kind {kind!r}")
        if kind in _UNARY and len(inputs) != 1:
            raise LogicSimulationError(f"{kind} gate takes exactly one input")
        if kind not in _UNARY and len(inputs) < 2:
            raise LogicSimulationError(f"{kind} gate needs at least two inputs")
        if delay < 0:
            raise LogicSimulationError(f"negative gate delay {delay}")
        self.kind = kind
        self.inputs = list(inputs)
        self.output = output
        self.delay = delay
        self._evaluate = GATE_EVALUATORS[kind]

    def evaluate(self) -> int:
        """Current output value implied by the input wires.

        Returns UNKNOWN if any input is unresolved.
        """
        values = [wire.value for wire in self.inputs]
        if not _require_known(values):
            return UNKNOWN
        return self._evaluate(values)

    def __repr__(self) -> str:
        names = ",".join(wire.name for wire in self.inputs)
        return f"Gate({self.kind} {names} -> {self.output.name})"
