"""Supply-current model: from toggle counts to current waveforms.

Every cell toggle moves a charge ``Q = C_switch * VDD`` through the
local supply loop.  The per-cycle supply current is modeled as a
pulse-kernel train: a ~50 %-duty rectangular kernel with smoothed edges,
repeated at every clock rising edge and scaled by that cycle's toggle
count.  The 50 % duty is the physically-typical "logic evaluates during
the high phase" shape, and it is what suppresses the *even* clock
harmonics — the reason the paper sees Trojan sidebands around the 1st
and 3rd harmonics only.

The EM step needs ``dI/dt`` rather than ``I``; :func:`emf_kernel`
provides the differentiated kernel directly so the per-sensor EMF is a
single convolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SimConfig
from ..errors import ConfigError
from ..units import FF

#: Mean switched capacitance per toggle [F] (library-wide average).
MEAN_SWITCH_CAP = 3.0 * FF

#: Kernel duty cycle (fraction of the clock period the current flows).
KERNEL_DUTY = 0.5

#: Edge smoothing sigma as a fraction of the clock period.
KERNEL_EDGE_SIGMA = 0.02


def charge_per_toggle(vdd: float, switch_cap: float = MEAN_SWITCH_CAP) -> float:
    """Charge drawn from the supply per cell toggle [C]."""
    if vdd <= 0:
        raise ConfigError(f"vdd must be positive, got {vdd}")
    return switch_cap * vdd


def current_kernel(config: SimConfig) -> np.ndarray:
    """Unit-charge supply-current kernel, one clock period long.

    Integrates to 1 (so multiplying by the cycle's charge gives the
    cycle's current waveform).  Shape ``(oversample,)``.
    """
    n = config.oversample
    duty_samples = max(2, int(round(KERNEL_DUTY * n)))
    kernel = np.zeros(n)
    kernel[:duty_samples] = 1.0
    sigma = max(KERNEL_EDGE_SIGMA * n, 0.5)
    kernel = _gaussian_smooth(kernel, sigma)
    kernel /= kernel.sum() * config.dt
    return kernel


def emf_kernel(config: SimConfig) -> np.ndarray:
    """Time derivative of :func:`current_kernel` (units 1/s^2).

    Convolving the per-cycle charge impulse train with this kernel
    yields ``dI/dt`` directly.  Length is one cycle plus one sample to
    capture the trailing edge.
    """
    kernel = current_kernel(config)
    padded = np.concatenate([kernel, [kernel[0]]])
    return np.diff(padded) / config.dt


def _gaussian_smooth(values: np.ndarray, sigma: float) -> np.ndarray:
    """Circular Gaussian smoothing (keeps kernel periodic per cycle)."""
    n = values.size
    freqs = np.fft.rfftfreq(n)
    spectrum = np.fft.rfft(values)
    attenuation = np.exp(-2.0 * (np.pi * freqs * sigma) ** 2)
    return np.fft.irfft(spectrum * attenuation, n=n)


@dataclass
class ActivityRecord:
    """Per-region switching activity of one simulated trace window.

    Attributes
    ----------
    main:
        Toggle counts of clock-edge-aligned logic (main circuit),
        shape ``(n_regions, n_cycles)``.
    trojan:
        Toggle counts of falling-edge Trojan logic, same shape.  Kept
        separate because these cells switch on the opposite clock phase
        (a half-cycle offset), which the EMF synthesis honors.
    trojan_rising:
        Toggle counts of rising-edge (main-clock-synchronous) Trojan
        logic such as the T4 power virus; rendered in phase with the
        main circuit.
    config:
        The simulation configuration used.
    scenario:
        Label, e.g. ``"idle"``, ``"baseline"``, ``"T1"``.
    meta:
        Free-form extra metadata.
    factors:
        Optional low-rank decomposition of the toggle matrices: maps
        ``"main"`` / ``"trojan"`` / ``"trojan_rising"`` to lists of
        ``(name, weights, toggles)`` outer-product factors with
        ``weights`` of shape ``(n_regions,)`` and ``toggles`` of shape
        ``(n_cycles,)``, such that the dense matrix is (up to float
        rounding) the sum of ``outer(weights, toggles)`` over its
        factors.  The chip simulator builds activity exactly this way
        (one factor per module), and the measurement engine's EMF
        synthesis exploits it to skip the dense region matmul; dense
        consumers keep using ``main``/``trojan`` directly.
    """

    main: np.ndarray
    trojan: np.ndarray
    config: SimConfig
    scenario: str = ""
    meta: Optional[Dict[str, object]] = None
    trojan_rising: Optional[np.ndarray] = None
    factors: Optional[Dict[str, List[Tuple[str, np.ndarray, np.ndarray]]]] = None

    def __post_init__(self) -> None:
        if self.trojan_rising is None:
            self.trojan_rising = np.zeros_like(self.main)
        expected = (self.main.shape[0], self.config.n_cycles)
        if (
            self.main.shape != expected
            or self.trojan.shape != expected
            or self.trojan_rising.shape != expected
        ):
            raise ConfigError(
                f"activity shapes {self.main.shape}/{self.trojan.shape} do "
                f"not match (n_regions, n_cycles)={expected}"
            )

    # -- compact serialization ----------------------------------------------
    #
    # The dense toggle matrices dominate a record's footprint (tens of
    # MB per record) but are fully determined by the low-rank factors
    # when those are present.  Pickling therefore ships only the
    # factors and rebuilds the dense matrices on load, in the same
    # accumulation order the simulator used — bit-for-bit identical —
    # which makes sharding record batches across worker processes
    # cheap.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if self.factors is not None:
            state["main"] = None
            state["trojan"] = None
            state["trojan_rising"] = None
            state["_dense_shape"] = self.main.shape
        return state

    def __setstate__(self, state: dict) -> None:
        shape = state.pop("_dense_shape", None)
        self.__dict__.update(state)
        if shape is not None:

            def _dense(parts) -> np.ndarray:
                dense = np.zeros(shape)
                for _name, weights, toggles in parts:
                    dense += np.outer(weights, toggles)
                return dense

            factors = self.factors or {}
            self.main = _dense(factors.get("main", ()))
            self.trojan = _dense(factors.get("trojan", ()))
            self.trojan_rising = _dense(factors.get("trojan_rising", ()))

    @property
    def n_regions(self) -> int:
        """Number of floorplan regions."""
        return int(self.main.shape[0])

    def total_toggles(self) -> float:
        """All toggles in the window (main + Trojan)."""
        return float(
            self.main.sum() + self.trojan.sum() + self.trojan_rising.sum()
        )

    def combined(self) -> np.ndarray:
        """Main + Trojan activity (ignoring the phase offsets)."""
        return self.main + self.trojan + self.trojan_rising

    def trojan_total(self) -> np.ndarray:
        """All Trojan activity, both clock phases."""
        return self.trojan + self.trojan_rising


class PowerModel:
    """Converts activity into charge-per-cycle matrices.

    Parameters
    ----------
    config:
        Simulation configuration.
    switch_cap:
        Mean switched capacitance per toggle [F].
    """

    def __init__(self, config: SimConfig, switch_cap: float = MEAN_SWITCH_CAP):
        self.config = config
        self.switch_cap = switch_cap

    def charge_matrix(self, toggles: np.ndarray) -> np.ndarray:
        """Charge drawn per region per cycle [C], same shape as input."""
        return np.asarray(toggles, dtype=float) * charge_per_toggle(
            self.config.vdd, self.switch_cap
        )

    def mean_current(self, record: ActivityRecord) -> float:
        """Window-average supply current [A]."""
        total_charge = self.charge_matrix(record.combined()).sum()
        return float(total_charge / record.config.duration)

    def leakage_current(self, total_leakage_na: float) -> float:
        """Static leakage [A] given a netlist's summed leakage in nA."""
        return total_leakage_na * 1e-9
