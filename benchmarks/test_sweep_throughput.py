"""Sweep throughput: the grid orchestrator vs. per-trace experiment loops.

Evaluates the 4-Trojan × 4-workload ``bench4x4`` grid twice:

* **legacy** — the pre-sweep experiment style: every cell re-simulates
  its own activity records and measures, featurizes and scores one
  trace at a time (the shape of the seed's ``run_mttd`` /
  ``PsaMethod.evaluate`` loops);
* **sweep** — ``repro.sweep.DetectionSweep``: one batched engine render
  per cell, a shared record cache across cells, vectorized
  featurization and the rolling-Welford detector bank;
* **warm-start** — the same sweep backed by a content-addressed
  ``ArtifactStore``: one store-cold run populates the artifacts, then
  a fresh sweep replays them from disk.  The warm report must be
  bit-identical to the cold one, and the timing is reported as its
  own row — warm and cold numbers are never mixed.

Both render paths must agree bit-for-bit on features and alarms; the
sweep must be >= 3x faster.  Results land in ``BENCH_sweep.json`` at
the repo root so the performance trajectory is tracked from PR to PR.

Set ``SWEEP_SMOKE=1`` to run a 2-cell smoke variant (CI): equivalence
is still asserted, the speedup floor is not.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.analysis.detector import RuntimeDetector
from repro.core.analysis.spectral import sideband_feature_db
from repro.dsp.stats import detection_power, detection_rate, roc_auc
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.store import ArtifactStore
from repro.sweep import DetectionSweep, SweepGrid, benchmark_grid
from repro.workloads.scenarios import scenario_by_name

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

SMOKE = os.environ.get("SWEEP_SMOKE", "") not in ("", "0")
#: Sweep-over-legacy throughput floor on the full grid.
MIN_SPEEDUP = 3.0


def _bench_grid() -> SweepGrid:
    grid = benchmark_grid()
    if SMOKE:
        return SweepGrid(
            name="bench-smoke", cells=grid.cells[:2], keep_features=False
        )
    return grid


def _legacy_evaluate_cell(ctx, analyzer, cell):
    """The seed's per-trace experiment loop for one cell.

    Fresh records per trace (no cross-cell reuse), one single-capture
    render + one spectrum + one feature per trace, the sequential
    streaming detector, then the population statistics.
    """
    features = []
    detector = RuntimeDetector(cell.detector)
    alarm_index = None
    position = 0
    for segment in cell.segments:
        scenario = scenario_by_name(segment.scenario)
        for index in segment.indices:
            record = ctx.campaign.record(scenario, index)
            trace = ctx.psa.measure(record, cell.sensors[0], index)
            feature = sideband_feature_db(
                analyzer.spectrum(trace), ctx.config
            )
            features.append(feature)
            decision = detector.update(feature)
            if decision.alarm and alarm_index is None:
                alarm_index = position
            position += 1
    features = np.asarray(features)
    inactive = features[: cell.n_baseline]
    active = features[cell.n_baseline :]
    power = detection_power(active, inactive)
    return {
        "features": features,
        "alarm_index": alarm_index,
        "roc_auc": roc_auc(active, inactive),
        "detection_rate": detection_rate(active, inactive, cell.z_threshold),
        "n_required": power.n_required,
    }


def test_sweep_throughput(ctx, benchmark):
    grid = _bench_grid()
    analyzer = SpectrumAnalyzer()

    # Warm shared caches (kernel spectra, gain curves) out of the timing.
    warm = ctx.campaign.record(scenario_by_name("baseline"), 0)
    ctx.psa.render([warm], trace_indices=[0], sensors=[10])

    start = time.perf_counter()
    legacy = [_legacy_evaluate_cell(ctx, analyzer, cell) for cell in grid.cells]
    legacy_seconds = time.perf_counter() - start

    sweep = DetectionSweep(ctx.campaign, analyzer=analyzer)
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: sweep.run(grid), rounds=1, iterations=1
    )
    sweep_seconds = time.perf_counter() - start

    # Equivalence: the orchestrated path is the same experiment.
    feature_grid = SweepGrid(
        name="check", cells=grid.cells, keep_features=True
    )
    check = DetectionSweep(ctx.campaign, analyzer=analyzer)
    # Deterministic renders: reuse the timed run's memos for the check.
    check._record_cache = sweep._record_cache
    check._feature_cache = sweep._feature_cache
    check_report = check.run(feature_grid)
    for cell_result, legacy_result in zip(check_report.cells, legacy):
        assert np.array_equal(
            cell_result.features_db[0], legacy_result["features"]
        ), cell_result.label
        assert cell_result.alarm_index == legacy_result["alarm_index"]
        best = cell_result.best
        assert best.roc_auc == legacy_result["roc_auc"]
        assert best.detection_rate == legacy_result["detection_rate"]
        assert best.n_required == legacy_result["n_required"]

    # Warm-start: populate a fresh artifact store, then replay the
    # grid through a brand-new sweep bound to the same store.  The
    # warm report must be bit-identical to the cold one.
    with tempfile.TemporaryDirectory(prefix="bench-store-") as store_dir:
        store_cold = ArtifactStore(store_dir)
        start = time.perf_counter()
        cold_report = DetectionSweep(
            ctx.campaign, analyzer=analyzer, store=store_cold
        ).run(grid)
        store_cold_seconds = time.perf_counter() - start

        store_warm = ArtifactStore(store_dir)
        start = time.perf_counter()
        warm_report = DetectionSweep(
            ctx.campaign, analyzer=analyzer, store=store_warm
        ).run(grid)
        warm_seconds = time.perf_counter() - start
    assert warm_report.to_json() == cold_report.to_json()
    assert warm_report.to_json() == report.to_json()
    assert store_warm.hits > 0 and store_warm.misses == 0
    warm_speedup = store_cold_seconds / warm_seconds

    n_stream = grid.cells[0].n_baseline + grid.cells[0].n_active
    total_traces = grid.n_cells * n_stream
    speedup = legacy_seconds / sweep_seconds
    payload = {
        "grid": {
            "name": grid.name,
            "n_cells": grid.n_cells,
            "n_trojans": len({cell.trojan for cell in grid.cells}),
            "n_workloads": len(
                {(cell.reference, cell.baseline_offset) for cell in grid.cells}
            ),
            "traces_per_cell": n_stream,
            "total_traces": total_traces,
        },
        "smoke": SMOKE,
        "legacy_per_trace": {
            "seconds": round(legacy_seconds, 3),
            "cells_per_sec": round(grid.n_cells / legacy_seconds, 2),
        },
        "sweep_orchestrator": {
            "seconds": round(sweep_seconds, 3),
            "cells_per_sec": round(grid.n_cells / sweep_seconds, 2),
        },
        "speedup": round(speedup, 2),
        "store_warm_start": {
            "cold_seconds": round(store_cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "cells_per_sec": round(grid.n_cells / warm_seconds, 2),
            "speedup_vs_cold": round(warm_speedup, 2),
            "bit_identical": True,
        },
        "all_detected": report.all_detected,
        "all_within_budget": report.all_within_budget,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    assert report.all_detected
    assert report.all_within_budget
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"sweep speedup {speedup:.2f}x below {MIN_SPEEDUP}x"
        )
