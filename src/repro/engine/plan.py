"""Fused dispatch plans: many logical renders, one engine pass.

Every layer of the reproduction issues renders — sweep cells, fleet
chips, quadtree scan levels — and each render on its own is too small
to amortize a worker pool or a shared-memory arena.  A
:class:`RenderPlan` inverts the flow: callers *enqueue* any number of
logical renders (each tagged with its origin and tied to its own
engine), then :meth:`RenderPlan.execute` fuses them into the fewest
possible engine passes and demultiplexes the results back, with each
:class:`RenderTicket` resolving to exactly the :class:`TraceBatch`
its standalone ``engine.render`` call would have produced.

Fusion happens at two levels:

* **request fusion** — requests sharing (engine, coupling object,
  receiver subset) concatenate their capture lists into one *job*, so
  e.g. the base and active score-map renders of a localization, or
  every repeat of a sweep cell, render as one sharded pass;
* **wave fusion** — all jobs landing on the same backend session
  submit in a single pool wave (one ``run_jobs`` call on the shared
  backend, one flat ``map`` on the process backend), so a fleet tick
  that renders eight chips pays one scatter/gather instead of eight.

Bit-identity is structural, not incidental: every capture's samples
depend only on its RNG stream ``render/{scenario}/{receiver}/{index}``
(the engine's determinism contract), so concatenating requests into a
job and slicing the job's output back apart reproduces each request's
standalone render exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from .batch import TraceBatch


@dataclass
class _Request:
    """One enqueued logical render (normalized)."""

    engine: object
    coupling: object
    records: list
    trace_indices: List[int]
    receiver_indices: List[int]
    tag: Optional[str]
    batch: Optional[TraceBatch] = None


@dataclass
class _Job:
    """Requests fused into one engine pass (same engine/coupling/receivers)."""

    engine: object
    coupling: object
    receiver_indices: List[int]
    records: list = field(default_factory=list)
    trace_indices: List[int] = field(default_factory=list)
    #: ``(request, lo, hi)`` — request's capture columns inside the job.
    spans: List[Tuple[_Request, int, int]] = field(default_factory=list)

    def add(self, request: _Request) -> None:
        lo = len(self.trace_indices)
        self.records.extend(request.records)
        self.trace_indices.extend(request.trace_indices)
        self.spans.append((request, lo, len(self.trace_indices)))


class RenderTicket:
    """Handle to one enqueued render; resolves after ``execute()``.

    Attributes
    ----------
    tag:
        The caller-supplied origin tag (for demux bookkeeping).
    """

    def __init__(self, request: _Request):
        self._request = request
        self.tag = request.tag

    def result(self) -> TraceBatch:
        """The rendered batch (raises if the plan has not executed)."""
        batch = self._request.batch
        if batch is None:
            raise MeasurementError(
                "render plan not executed yet; call RenderPlan.execute()"
            )
        return batch


class RenderPlan:
    """Queue of logical renders executed as one fused engine pass.

    Parameters
    ----------
    engine:
        Default engine for :meth:`add` calls that do not name one.

    Usage::

        plan = RenderPlan()
        t1 = plan.add(coupling_a, records_a, engine=engine, tag="cell-0")
        t2 = plan.add(coupling_b, records_b, engine=engine, tag="cell-1")
        plan.execute()
        batch_a, batch_b = t1.result(), t2.result()

    A plan executes once; enqueue further work on a fresh plan.
    """

    def __init__(self, engine=None):
        self._default_engine = engine
        self._requests: List[_Request] = []
        self._executed = False

    def __len__(self) -> int:
        return len(self._requests)

    def add(
        self,
        coupling,
        records: Sequence,
        trace_indices: Optional[Sequence[int]] = None,
        receiver_indices: Optional[Sequence[int]] = None,
        engine=None,
        tag: Optional[str] = None,
    ) -> RenderTicket:
        """Enqueue one logical render; returns its ticket.

        Arguments mirror :meth:`MeasurementEngine.render` exactly
        (validation happens here, at enqueue time).
        """
        if self._executed:
            raise MeasurementError(
                "render plan already executed; build a new plan"
            )
        engine = engine or self._default_engine
        if engine is None:
            raise MeasurementError("no engine for enqueued render")
        records, trace_indices, receiver_indices = engine._normalize(
            coupling, records, trace_indices, receiver_indices
        )
        request = _Request(
            engine=engine,
            coupling=coupling,
            records=records,
            trace_indices=trace_indices,
            receiver_indices=receiver_indices,
            tag=tag,
        )
        self._requests.append(request)
        return RenderTicket(request)

    def execute(self) -> None:
        """Run every enqueued render in the fewest engine passes.

        After this returns, every ticket's :meth:`RenderTicket.result`
        resolves.  Requests fuse into jobs by (engine, coupling,
        receiver subset); jobs fuse into one pool wave per backend
        session; results demux back in enqueue order.
        """
        if self._executed:
            raise MeasurementError(
                "render plan already executed; build a new plan"
            )
        self._executed = True
        if not self._requests:
            return

        # -- request fusion --------------------------------------------------
        jobs: Dict[tuple, _Job] = {}
        for request in self._requests:
            key = (
                id(request.engine),
                id(request.coupling),
                tuple(request.receiver_indices),
            )
            job = jobs.get(key)
            if job is None:
                job = _Job(
                    engine=request.engine,
                    coupling=request.coupling,
                    receiver_indices=request.receiver_indices,
                )
                jobs[key] = job
            job.add(request)

        # -- wave fusion: group jobs by backend session ----------------------
        waves: Dict[int, List[Tuple[_Job, list, np.ndarray]]] = {}
        wave_backends: Dict[int, object] = {}
        for job in jobs.values():
            engine = job.engine
            sharded = engine._shard_payloads(
                job.coupling, job.records, job.trace_indices,
                job.receiver_indices,
            )
            if sharded is None:
                # Serial/small renders stay in-process, untouched.
                samples = engine._render_serial(
                    job.coupling, job.records, job.trace_indices,
                    job.receiver_indices,
                )
                self._demux(job, samples)
                continue
            payloads, bounds = sharded
            backend_key = id(engine.backend)
            wave_backends[backend_key] = engine.backend
            waves.setdefault(backend_key, []).append(
                (job, payloads, bounds)
            )

        from .engine import _render_shard

        for backend_key, entries in waves.items():
            backend = wave_backends[backend_key]
            run_jobs = getattr(backend, "run_jobs", None)
            if run_jobs is not None:
                # Zero-copy path: one arena, one pool wave, one shared
                # output segment per job.
                specs = [
                    (
                        payloads,
                        (
                            len(job.receiver_indices),
                            len(job.trace_indices),
                            job.engine.config.n_samples,
                        ),
                        bounds,
                        job.engine.out_dtype,
                    )
                    for job, payloads, bounds in entries
                ]
                results = run_jobs(_render_shard, specs)
                for (job, _, _), samples in zip(entries, results):
                    self._demux(job, samples)
            else:
                # Generic pool path: one flat map over every job's
                # shards, then per-job reassembly.
                flat: list = []
                counts = []
                for _, payloads, _ in entries:
                    flat.extend(payloads)
                    counts.append(len(payloads))
                shards = backend.map(_render_shard, flat)
                cursor = 0
                for (job, _, _), count in zip(entries, counts):
                    samples = np.concatenate(
                        shards[cursor : cursor + count], axis=1
                    )
                    cursor += count
                    self._demux(job, samples)

    @staticmethod
    def _demux(job: _Job, samples: np.ndarray) -> None:
        """Slice one job's output back into its requests' batches."""
        for request, lo, hi in job.spans:
            view = samples[:, lo:hi] if len(job.spans) > 1 else samples
            request.batch = request.engine._finalize(
                view,
                job.coupling,
                request.records,
                request.trace_indices,
                request.receiver_indices,
            )
