"""Principal Component Analysis, implemented from scratch.

Used by the backscattering baseline (Nguyen et al., HOST'20), which
categorizes collected spectra with PCA followed by K-means.  Implemented
with a plain SVD on the centered data matrix — no external ML
dependency.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


class PCA:
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    n_components:
        Number of components to keep.

    Attributes
    ----------
    components_:
        Array of shape ``(n_components, n_features)``; rows are the
        principal axes, ordered by decreasing explained variance.
    explained_variance_:
        Variance explained by each kept component.
    explained_variance_ratio_:
        Fraction of total variance explained by each kept component.
    mean_:
        Per-feature mean of the training data.
    """

    def __init__(self, n_components: int):
        if n_components < 1:
            raise AnalysisError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit the principal axes on ``data`` of shape (n_samples, n_features)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise AnalysisError("PCA expects a 2-D (samples x features) matrix")
        n_samples, n_features = data.shape
        if n_samples < 2:
            raise AnalysisError("PCA needs at least two samples")
        max_rank = min(n_samples, n_features)
        if self.n_components > max_rank:
            raise AnalysisError(
                f"n_components={self.n_components} exceeds the data rank "
                f"bound {max_rank}"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        # Economy SVD; rows of vt are the principal axes.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        variance = singular**2 / (n_samples - 1)
        total = float(variance.sum())
        keep = self.n_components
        self.components_ = vt[:keep]
        self.explained_variance_ = variance[:keep]
        if total > 0.0:
            self.explained_variance_ratio_ = variance[:keep] / total
        else:
            self.explained_variance_ratio_ = np.zeros(keep)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the fitted principal axes."""
        if self.components_ is None or self.mean_ is None:
            raise AnalysisError("PCA.transform called before fit")
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.mean_.size:
            raise AnalysisError(
                f"data shape {data.shape} incompatible with fitted "
                f"feature count {self.mean_.size}"
            )
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` then project it."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projections back to the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise AnalysisError("PCA.inverse_transform called before fit")
        projected = np.asarray(projected, dtype=float)
        return projected @ self.components_ + self.mean_
