"""Command-line front-end: regenerate any paper table or figure.

Usage::

    psa-em table1            # or: python -m repro.cli table1
    psa-em fig4 --traces 5
    psa-em mttd --backend process --workers 4
    psa-em sweep --grid table1
    psa-em sweep --grid smoke --no-store     # pin a cold run
    psa-em monitor --preset smoke
    psa-em monitor --fleet 4 --events fleet.jsonl
    psa-em serve --preset smoke              # streaming monitor service
    psa-em serve --selftest                  # headless CI smoke
    psa-em store stats                       # artifact-store admin
    psa-em store gc --max-mb 512
    psa-em store clear
    psa-em all

Sweep and monitor runs warm-start from the content-addressed artifact
store by default (``REPRO_STORE_DIR`` or the user cache dir); pass
``--no-store`` for a guaranteed cold run — warm and cold timings are
reported separately, never silently mixed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .config import BACKEND_NAMES, PRECISION_NAMES, SimConfig
from .engine import close_backend_sessions
from .errors import AnalysisError, ReproError, unknown_name_error
from .experiments.context import ExperimentContext
from .runtime.presets import MONITOR_PRESETS
from .store import ArtifactStore
from .sweep.grid import GRIDS
from .sweep.localize import LOCALIZE_GRIDS


def _resolve_store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    """The artifact store selected by the CLI flags (None = cold run)."""
    if args.no_store:
        return None
    return ArtifactStore(args.store_dir)


def _store_summary(store: Optional[ArtifactStore]) -> str:
    """One-line provenance of a run's store usage.

    Cold runs say so explicitly and warm runs report their hit/miss
    counts, so a pasted timing is never ambiguous about whether it
    was store-accelerated.
    """
    if store is None:
        return "store: disabled (cold run)"
    return (
        f"store: {store.hits} hits, {store.misses} misses, "
        f"{store.writes} writes ({store.root})"
    )


def _cmd_table1(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(ctx, n_traces=args.traces))


def _cmd_table2(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.table2 import format_table2, run_table2

    return format_table2(run_table2())


def _cmd_fig3(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.fig3 import format_fig3, run_fig3

    return format_fig3(run_fig3(ctx, n_traces=args.traces))


def _cmd_fig4(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.fig4 import format_fig4, run_fig4

    return format_fig4(run_fig4(ctx, n_traces=args.traces))


def _cmd_fig5(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.fig5 import format_fig5, run_fig5

    return format_fig5(run_fig5(ctx))


def _cmd_snr(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.snr import format_snr, run_snr

    return format_snr(run_snr(ctx))


def _cmd_mttd(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.mttd import format_mttd, run_mttd

    return format_mttd(run_mttd(ctx))


def _cmd_localize(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.localization import (
        format_localization,
        run_localization,
    )

    return format_localization(run_localization(ctx))


def _cmd_robustness(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.robustness import format_robustness, run_robustness

    return format_robustness(run_robustness(ctx))


def _cmd_cost(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.cost import format_cost, run_cost

    return format_cost(run_cost())


def _cmd_sweep(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from dataclasses import replace

    from .sweep import (
        DetectionSweep,
        LocalizationSweep,
        build_grid,
        build_localize_grid,
    )

    store = _resolve_store(args)
    if args.grid in LOCALIZE_GRIDS:
        if args.detector is not None:
            raise AnalysisError(
                f"--detector applies to detection grids only; "
                f"{args.grid!r} is a localization grid"
            )
        sweep = LocalizationSweep(
            ctx.config, campaign=ctx.campaign, store=store
        )
        report = sweep.run(build_localize_grid(args.grid))
    else:
        if args.grid not in GRIDS:
            raise unknown_name_error(
                "sweep grid",
                args.grid,
                sorted(GRIDS) + sorted(LOCALIZE_GRIDS),
            )
        grid = build_grid(args.grid)
        if args.detector is not None:
            _check_detector(args.detector)
            # Re-derive labels so the method shows up in them (and
            # cells differing only by method stay distinct).
            grid = replace(
                grid,
                cells=tuple(
                    replace(cell, detector_name=args.detector, label="")
                    for cell in grid.cells
                ),
            )
        report = DetectionSweep(ctx.campaign, store=store).run(grid)
    if args.sweep_json:
        Path(args.sweep_json).write_text(report.to_json() + "\n")
    return report.format() + "\n" + _store_summary(store)


def _check_detector(name: str) -> None:
    """Friendly unknown-detector error, before any rendering starts."""
    from .detectors import available

    if name not in available():
        raise unknown_name_error("detector", name, available())


def _cmd_monitor(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from dataclasses import replace

    from .runtime import EventBus, JsonlSink, build_fleet
    from .runtime.presets import build_preset

    preset = build_preset(args.preset)
    if args.detector is not None:
        _check_detector(args.detector)
        preset = replace(preset, detector_name=args.detector)
    bus = EventBus()
    sink = None
    store = _resolve_store(args)
    if args.events:
        sink = JsonlSink(args.events)
        bus.subscribe(sink)
    try:
        scheduler = build_fleet(
            preset,
            n_chips=args.fleet,
            config=ctx.config,
            bus=bus,
            queue_depth=args.queue_depth,
            store=store,
        )
        report = scheduler.run()
    finally:
        if sink is not None:
            sink.close()
    if args.monitor_json:
        Path(args.monitor_json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
    return report.format() + "\n" + _store_summary(store)


def _cmd_ablations(ctx: ExperimentContext, args: argparse.Namespace) -> str:
    from .experiments.ablations import (
        format_ablations,
        run_duty_sweep,
        run_size_sweep,
        run_turns_sweep,
    )

    return format_ablations(
        run_size_sweep(ctx), run_turns_sweep(ctx), run_duty_sweep()
    )


_COMMANDS: Dict[str, Callable[[ExperimentContext, argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "snr": _cmd_snr,
    "mttd": _cmd_mttd,
    "localize": _cmd_localize,
    "robustness": _cmd_robustness,
    "cost": _cmd_cost,
    "ablations": _cmd_ablations,
    "sweep": _cmd_sweep,
    "monitor": _cmd_monitor,
}


def build_engine_parent() -> argparse.ArgumentParser:
    """Shared ``--backend/--workers/--precision`` flags.

    One parent parser (``add_help=False``) reused by every command
    that renders through the measurement engine — ``sweep``,
    ``monitor`` and ``serve`` accept identical engine flags with
    identical help text.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="serial",
        help="measurement-engine execution backend (default serial)",
    )
    parent.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker count for the process backend (0 = auto)",
    )
    parent.add_argument(
        "--precision",
        choices=PRECISION_NAMES,
        default="float64",
        help=(
            "engine render precision: float64 (bit-exact reference) or "
            "float32 (fast path, tolerance-pinned; default float64)"
        ),
    )
    return parent


def build_store_parent() -> argparse.ArgumentParser:
    """Shared ``--store-dir/--no-store`` flags (warm-start control)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--store-dir",
        metavar="PATH",
        default=None,
        help=(
            "artifact-store root for warm-starts "
            "(default: $REPRO_STORE_DIR, else the user cache dir)"
        ),
    )
    parent.add_argument(
        "--no-store",
        action="store_true",
        help=(
            "disable the artifact store for this run (guaranteed "
            "cold start; CI smoke jobs use this to pin cold timings)"
        ),
    )
    return parent


def build_detector_parent() -> argparse.ArgumentParser:
    """Shared ``--detector`` method-override flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--detector",
        metavar="NAME",
        default=None,
        help=(
            "detection method override: the session/sweep runs under "
            "this registered detector (default: the grid's/preset's "
            "own; builtin methods: welford, spectral, persistence)"
        ),
    )
    return parent


def build_events_parent() -> argparse.ArgumentParser:
    """Shared ``--events`` JSONL audit-log flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="write the session's event log as JSONL to PATH",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="psa-em",
        description=(
            "Regenerate the tables and figures of the PSA EM-sensor "
            "Trojan-detection paper from simulation."
        ),
        parents=[
            build_engine_parent(),
            build_store_parent(),
            build_detector_parent(),
            build_events_parent(),
        ],
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=3,
        help="traces per population where applicable (default 3)",
    )
    parser.add_argument(
        "--grid",
        metavar="NAME",
        default="smoke",
        help=(
            "named grid for the sweep command: a detection grid "
            f"({', '.join(sorted(GRIDS))}) or a localization grid "
            f"({', '.join(sorted(LOCALIZE_GRIDS))}); default smoke"
        ),
    )
    parser.add_argument(
        "--sweep-json",
        metavar="PATH",
        default=None,
        help="also write the sweep report as JSON to PATH",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(MONITOR_PRESETS),
        default="paper",
        help=(
            "named session script for the monitor command "
            "(default paper)"
        ),
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=1,
        help=(
            "chips monitored concurrently by the monitor command "
            "(default 1; fleets cycle the T1..T4 catalog)"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=2,
        help=(
            "monitor backpressure bound: rendered-but-unprocessed "
            "chunks per chip (default 2)"
        ),
    )
    parser.add_argument(
        "--monitor-json",
        metavar="PATH",
        default=None,
        help="also write the monitor fleet report as JSON to PATH",
    )
    return parser


def build_store_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro store`` administrative subcommand."""
    parser = argparse.ArgumentParser(
        prog="psa-em store",
        description="Administer the content-addressed artifact store.",
    )
    parser.add_argument(
        "action",
        choices=("stats", "gc", "clear"),
        help="stats: show contents; gc: LRU-evict; clear: drop all",
    )
    parser.add_argument(
        "--store-dir",
        metavar="PATH",
        default=None,
        help=(
            "store root (default: $REPRO_STORE_DIR, else the user "
            "cache dir)"
        ),
    )
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="gc size cap in MB (default: the store's configured cap)",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro serve`` subcommand.

    Shares the engine/store/detector/events parent parsers with the
    main command set, so flags and help text are identical across
    ``sweep``, ``monitor`` and ``serve``.
    """
    parser = argparse.ArgumentParser(
        prog="psa-em serve",
        description=(
            "Run the fleet-scale streaming monitoring service: accept "
            "chip trace streams over HTTP/WebSocket, monitor each with "
            "its own escalation pipeline, expose /metrics and per-chip "
            "reports."
        ),
        parents=[
            build_engine_parent(),
            build_store_parent(),
            build_detector_parent(),
            build_events_parent(),
        ],
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 picks a free port; default 8765)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(MONITOR_PRESETS),
        default="smoke",
        help=(
            "pipeline tuning preset for onboarded chips "
            "(default smoke)"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=4,
        help="bounded chunk queue per chip session (default 4)",
    )
    parser.add_argument(
        "--high-water",
        type=int,
        default=256,
        metavar="WINDOWS",
        help=(
            "service-wide queued-window bound; past it pushed work "
            "is shed until the backlog drains (default 256)"
        ),
    )
    parser.add_argument(
        "--analysis-workers",
        type=int,
        default=4,
        help="threads in the shared analysis pool (default 4)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "boot the service, stream one recorded session through "
            "the replay endpoint, assert an alarm and sane /metrics, "
            "then exit (the CI serve-smoke job)"
        ),
    )
    return parser


def _serve_selftest(service, config: SimConfig) -> str:
    """Boot, upload one recorded stream, check the outcome.

    The headless CI path: everything in-process, no fixed port, the
    same client the tests use.
    """
    import tempfile

    from .runtime import build_chip_monitor, build_preset, record_stream
    from .serve import ServiceRunner

    preset = build_preset(service.config.preset)
    spec = preset.specs(1)[0]
    monitor = build_chip_monitor(
        spec, config=config, pipeline_config=service.tuning
    )
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        path = Path(tmp) / "stream.npz"
        record_stream(monitor.source, path)
        with ServiceRunner(service) as runner:
            client = runner.client(timeout=300)
            status, report = client.post(
                "/chips/selftest/replay", path.read_bytes()
            )
            if status != 200:
                raise AnalysisError(
                    f"selftest replay upload failed: {status} {report}"
                )
            if not report.get("detected"):
                raise AnalysisError(
                    "selftest stream produced no detection; report: "
                    f"{json.dumps(report)}"
                )
            status, metrics = client.get("/metrics")
    if status != 200 or metrics.get("alarms_total", 0) < 1:
        raise AnalysisError(f"selftest metrics are not sane: {metrics}")
    if metrics["windows_total"] != report["n_windows"]:
        raise AnalysisError(
            f"selftest lost windows: processed {metrics['windows_total']} "
            f"of {report['n_windows']}"
        )
    return (
        f"serve selftest: OK — {report['n_windows']} windows, "
        f"first alarm @ {report['first_alarm']}, "
        f"identified {report['identification']['label']}, "
        f"{metrics['windows_per_sec']:.1f} win/s"
    )


def serve_main(argv: List[str]) -> int:
    """Entry point of ``repro serve``."""
    import asyncio

    args = build_serve_parser().parse_args(argv)
    config = SimConfig().with_(
        engine_backend=args.backend,
        engine_workers=args.workers,
        engine_precision=args.precision,
    )
    try:
        if args.detector is not None:
            _check_detector(args.detector)
        from .serve import MonitorService, ServeConfig

        store = _resolve_store(args)
        service = MonitorService(
            ServeConfig(
                host=args.host,
                port=0 if args.selftest else args.port,
                preset=args.preset,
                detector=args.detector,
                queue_depth=args.queue_depth,
                high_water_windows=args.high_water,
                analysis_workers=args.analysis_workers,
                events_path=None if args.events is None else Path(args.events),
            ),
            sim_config=config,
            store=store,
        )
        if args.selftest:
            print(_serve_selftest(service, config))
            print(_store_summary(store))
            return 0

        def announce(svc) -> None:
            print(
                f"serve: listening on http://{args.host}:{svc.port} "
                f"(preset {args.preset}, queue depth "
                f"{args.queue_depth}, POST /shutdown to stop)",
                flush=True,
            )

        try:
            asyncio.run(service.serve_forever(on_ready=announce))
        except KeyboardInterrupt:
            pass
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        close_backend_sessions()
    return 0


def store_main(argv: List[str]) -> int:
    """Entry point of ``repro store {stats,gc,clear}``."""
    args = build_store_parser().parse_args(argv)
    store = ArtifactStore(args.store_dir)
    if args.action == "stats":
        print(store.stats().format())
    elif args.action == "gc":
        cap = None if args.max_mb is None else int(args.max_mb * 1e6)
        evicted, freed = store.gc(cap)
        print(
            f"gc: evicted {evicted} entries ({freed / 1e6:.1f} MB) "
            f"from {store.root}"
        )
    else:
        removed = store.clear()
        print(f"clear: removed {removed} entries from {store.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    config = SimConfig().with_(
        engine_backend=args.backend,
        engine_workers=args.workers,
        engine_precision=args.precision,
    )
    ctx = ExperimentContext.build(config)
    try:
        names = (
            sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
        )
        for name in names:
            print(f"=== {name} ===")
            print(_COMMANDS[name](ctx, args))
            print()
    except ReproError as exc:
        # Unknown grid/detector/preset names and similar user errors
        # get a one-line message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Tear down worker pools / shared arenas before returning so
        # the process exits without leaning on the atexit hook.
        ctx.close()
        close_backend_sessions()
    return 0


if __name__ == "__main__":
    sys.exit(main())
