"""Table I: comparison of EM side-channel data collection methods.

Regenerates every row of the paper's Table I from simulation:
HT detection rate, localization capability, required measurement
count, SNR, and run-time deployability — for the external probe, the
backscattering method, the on-chip single coil and the proposed PSA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.backscatter import BackscatterMethod
from ..baselines.external_probe import ExternalProbeMethod
from ..baselines.protocol import MethodReport
from ..baselines.psa_method import PsaMethod
from ..baselines.single_coil import SingleCoilMethod
from .context import ExperimentContext, default_context
from .reporting import format_table

#: Paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "external_probe": {
        "rate": "Low",
        "localization": "No",
        "measurements": ">10,000",
        "snr": "14.3 dB",
        "runtime": "No",
    },
    "backscatter": {
        "rate": "High",
        "localization": "No",
        "measurements": "100",
        "snr": "N/A",
        "runtime": "No",
    },
    "single_coil": {
        "rate": "Low",
        "localization": "No",
        "measurements": ">10,000",
        "snr": "30.5 dB",
        "runtime": "Yes",
    },
    "psa": {
        "rate": "High",
        "localization": "Yes",
        "measurements": "<10",
        "snr": "41.0 dB",
        "runtime": "Yes",
    },
}


@dataclass(frozen=True)
class Table1Result:
    """Method reports in paper column order."""

    reports: Dict[str, MethodReport]

    def measurement_ordering_holds(self) -> bool:
        """PSA needs fewest measurements; probe/coil need the most."""
        psa = self.reports["psa"].worst_n_required
        backscatter = self.reports["backscatter"].worst_n_required
        coil = self.reports["single_coil"].worst_n_required
        probe = self.reports["external_probe"].worst_n_required
        return psa < backscatter < min(coil, probe)


def run_table1(
    ctx: Optional[ExperimentContext] = None, n_traces: int = 10
) -> Table1Result:
    """Evaluate all four methods under the shared protocol."""
    ctx = ctx or default_context()
    methods = [
        ExternalProbeMethod(ctx.chip, ctx.campaign),
        BackscatterMethod(ctx.chip, ctx.campaign),
        SingleCoilMethod(ctx.chip, ctx.campaign),
        PsaMethod(ctx.chip, ctx.campaign, ctx.psa),
    ]
    reports = {}
    for method in methods:
        if isinstance(method, BackscatterMethod):
            reports[method.name] = method.evaluate(n_traces=max(3 * n_traces, 24))
        else:
            reports[method.name] = method.evaluate(n_traces=n_traces)
    return Table1Result(reports=reports)


def _measurements_label(report: MethodReport) -> str:
    worst = report.worst_n_required
    if worst >= 10_000:
        return ">10,000"
    if worst < 10:
        return "<10"
    return str(worst)


def format_table1(result: Table1Result) -> str:
    """Render Table I with measured and paper values."""
    rows = []
    for name in ["external_probe", "backscatter", "single_coil", "psa"]:
        report = result.reports[name]
        paper = PAPER_TABLE1[name]
        snr = "N/A" if report.snr_db != report.snr_db else f"{report.snr_db:.1f} dB"
        rows.append(
            (
                name,
                f"{report.rate_label()} ({report.mean_detection_rate:.0%})",
                "Yes" if report.localization else "No",
                _measurements_label(report),
                snr,
                "Yes" if report.runtime else "No",
                "| "
                + " / ".join(
                    [
                        paper["rate"],
                        paper["localization"],
                        paper["measurements"],
                        paper["snr"],
                        paper["runtime"],
                    ]
                ),
            )
        )
    header = "Table I — comparison of EM side-channel methods\n"
    return header + format_table(
        [
            "method",
            "HT detection",
            "localizes",
            "measurements",
            "SNR",
            "run-time",
            "| paper (rate/loc/meas/SNR/runtime)",
        ],
        rows,
    )
