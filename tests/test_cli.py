"""CLI parser wiring (execution is covered by the experiments tests)."""

import pytest

from repro.cli import _COMMANDS, build_parser


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in _COMMANDS:
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_all_keyword():
    args = build_parser().parse_args(["all"])
    assert args.experiment == "all"


def test_parser_traces_option():
    args = build_parser().parse_args(["fig4", "--traces", "7"])
    assert args.traces == 7


def test_parser_sweep_grid_option():
    args = build_parser().parse_args(["sweep", "--grid", "table1"])
    assert args.experiment == "sweep"
    assert args.grid == "table1"
    assert args.sweep_json is None
    assert args.detector is None
    args = build_parser().parse_args(
        ["sweep", "--grid", "mttd", "--sweep-json", "out.json"]
    )
    assert args.sweep_json == "out.json"
    # Unknown names parse fine; the command reports them with the list
    # of known grids at run time (see tests/test_cli_errors.py).
    args = build_parser().parse_args(["sweep", "--grid", "bogus"])
    assert args.grid == "bogus"


def test_parser_sweep_detector_option():
    args = build_parser().parse_args(
        ["sweep", "--grid", "detectors-smoke", "--detector", "spectral"]
    )
    assert args.detector == "spectral"


def test_parser_monitor_options():
    args = build_parser().parse_args(["monitor"])
    assert args.experiment == "monitor"
    assert args.preset == "paper"
    assert args.fleet == 1
    assert args.queue_depth == 2
    assert args.events is None
    assert args.monitor_json is None
    args = build_parser().parse_args(
        [
            "monitor",
            "--preset",
            "smoke",
            "--fleet",
            "4",
            "--queue-depth",
            "3",
            "--events",
            "events.jsonl",
            "--monitor-json",
            "fleet.json",
        ]
    )
    assert args.preset == "smoke"
    assert args.fleet == 4
    assert args.queue_depth == 3
    assert args.events == "events.jsonl"
    assert args.monitor_json == "fleet.json"
    assert args.detector is None
    args = build_parser().parse_args(["monitor", "--detector", "persistence"])
    assert args.detector == "persistence"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["monitor", "--preset", "bogus"])


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig9"])


def test_command_table_covers_paper_artifacts():
    assert {
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "snr",
        "mttd",
        "localize",
        "robustness",
        "cost",
        "ablations",
        "sweep",
        "monitor",
    } == set(_COMMANDS)
