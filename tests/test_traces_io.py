"""Trace container and archive I/O."""

import numpy as np
import pytest

from repro.errors import MeasurementError, TraceIOError
from repro.traceio import iter_traces, load_traces, save_traces, trace_count
from repro.traces import Trace


def _trace(label="t", n=256, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        samples=rng.normal(size=n),
        fs=528e6,
        label=label,
        scenario="baseline",
        meta={"trace_index": seed},
    )


def test_trace_properties():
    trace = _trace(n=528)
    assert trace.n_samples == 528
    assert trace.duration == pytest.approx(528 / 528e6)
    assert trace.time()[1] == pytest.approx(1 / 528e6)
    assert trace.rms() > 0


def test_trace_validation():
    with pytest.raises(MeasurementError):
        Trace(samples=np.array([1.0]), fs=1e6)
    with pytest.raises(MeasurementError):
        Trace(samples=np.zeros(16), fs=-1.0)


def test_with_label():
    renamed = _trace(label="a").with_label("b")
    assert renamed.label == "b"
    assert renamed.scenario == "baseline"


def test_save_load_roundtrip(tmp_path):
    traces = [_trace(label=f"s{i}", seed=i) for i in range(5)]
    path = save_traces(tmp_path / "archive.npz", traces)
    loaded = load_traces(path)
    assert len(loaded) == 5
    for original, restored in zip(traces, loaded):
        assert np.array_equal(original.samples, restored.samples)
        assert restored.label == original.label
        assert restored.scenario == original.scenario
        assert restored.meta == original.meta


def test_save_appends_npz_suffix(tmp_path):
    path = save_traces(tmp_path / "noext", [_trace()])
    assert path.suffix == ".npz"
    assert path.exists()


@pytest.mark.parametrize("batch", [1, 2, 3, 64])
def test_iter_traces_batches(tmp_path, batch):
    traces = [_trace(label=f"s{i}", seed=i) for i in range(7)]
    path = save_traces(tmp_path / "archive.npz", traces)
    chunks = list(iter_traces(path, batch=batch))
    assert all(len(chunk) <= batch for chunk in chunks)
    assert len(chunks) == -(-7 // batch)  # ceil division
    flat = [trace for chunk in chunks for trace in chunk]
    assert len(flat) == 7
    for original, restored in zip(traces, flat):
        assert np.array_equal(original.samples, restored.samples)
        assert restored.label == original.label
        assert restored.meta == original.meta


def test_load_traces_matches_iter(tmp_path):
    traces = [_trace(seed=i) for i in range(5)]
    path = save_traces(tmp_path / "a.npz", traces)
    eager = load_traces(path)
    streamed = [t for chunk in iter_traces(path, batch=2) for t in chunk]
    assert len(eager) == len(streamed)
    for a, b in zip(eager, streamed):
        assert np.array_equal(a.samples, b.samples)


def test_trace_count_header_only(tmp_path):
    path = save_traces(tmp_path / "a.npz", [_trace(seed=i) for i in range(4)])
    assert trace_count(path) == 4


def test_iter_traces_validates_batch_eagerly(tmp_path):
    path = save_traces(tmp_path / "a.npz", [_trace()])
    with pytest.raises(TraceIOError):
        iter_traces(path, batch=0)  # at call time, not first next()


def test_iter_traces_missing_archive_eagerly(tmp_path):
    with pytest.raises(TraceIOError):
        iter_traces(tmp_path / "nope.npz")


def test_empty_archive_rejected(tmp_path):
    with pytest.raises(TraceIOError):
        save_traces(tmp_path / "x.npz", [])


def test_missing_file_rejected(tmp_path):
    with pytest.raises(TraceIOError):
        load_traces(tmp_path / "nothing.npz")


def test_foreign_npz_rejected(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, data=np.ones(4))
    with pytest.raises(TraceIOError):
        load_traces(path)


def test_unserializable_meta_rejected(tmp_path):
    bad = Trace(
        samples=np.zeros(16),
        fs=1e6,
        meta={"bad": object()},
    )
    with pytest.raises(TraceIOError):
        save_traces(tmp_path / "bad.npz", [bad])


def test_real_psa_traces_roundtrip(tmp_path, psa, records):
    traces = psa.measure_all(records["T1"][0])[:4]
    path = save_traces(tmp_path / "psa.npz", traces)
    loaded = load_traces(path)
    assert loaded[0].label == "psa_sensor_0"
    assert np.array_equal(loaded[3].samples, traces[3].samples)
