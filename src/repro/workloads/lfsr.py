"""Plaintext sources.

A Galois LFSR mirrors the test chip's on-board pattern generator (the
``en_LFSR`` pin in Figure 2); :class:`PlaintextGenerator` layers the
policies the experiments need on top of it — uniform random blocks, or
streams with a controlled fraction of T2-trigger (0xAAAA-prefixed)
blocks.
"""

from __future__ import annotations

from typing import List

from ..errors import WorkloadError

#: Maximal-length taps for a 32-bit Galois LFSR (x^32+x^22+x^2+x+1).
_TAPS_32 = 0x80400003


class GaloisLfsr:
    """32-bit Galois LFSR producing a deterministic byte stream."""

    def __init__(self, seed: int = 0xACE1_2024):
        if not 0 < seed < (1 << 32):
            raise WorkloadError(f"seed must be a nonzero 32-bit value, got {seed:#x}")
        self.state = seed

    def step(self) -> int:
        """Advance one bit; returns the output bit."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= _TAPS_32
        return out

    def next_byte(self) -> int:
        """Next eight output bits as a byte."""
        value = 0
        for bit in range(8):
            value |= self.step() << bit
        return value

    def next_block(self) -> bytes:
        """Next 16 bytes (one AES block)."""
        return bytes(self.next_byte() for _ in range(16))


class PlaintextGenerator:
    """Plaintext policies over an LFSR stream.

    Parameters
    ----------
    seed:
        LFSR seed; different traces use different seeds so each capture
        sees fresh data (as the chip would over UART).
    """

    def __init__(self, seed: int = 0xACE1_2024):
        self._lfsr = GaloisLfsr(seed)

    def random_blocks(self, n_blocks: int) -> List[bytes]:
        """Uniformly pseudo-random plaintext blocks.

        Any block that happens to start with the T2 trigger prefix is
        re-drawn, so "random" streams never arm T2 by accident.
        """
        if n_blocks < 1:
            raise WorkloadError("need at least one block")
        blocks = []
        while len(blocks) < n_blocks:
            block = self._lfsr.next_block()
            if block[:2] == b"\xaa\xaa":
                continue
            blocks.append(block)
        return blocks

    def t2_trigger_blocks(
        self, n_blocks: int, match_fraction: float = 0.5
    ) -> List[bytes]:
        """Blocks with a deterministic fraction of T2-trigger prefixes.

        Matching blocks are interleaved evenly (alternating at 0.5), so
        the zero-span envelope shows the regular on/off gating of
        Figure 5b.
        """
        if not 0.0 < match_fraction <= 1.0:
            raise WorkloadError("match_fraction must be in (0, 1]")
        blocks = []
        accumulator = 0.0
        for _ in range(n_blocks):
            block = self._lfsr.next_block()
            accumulator += match_fraction
            if accumulator >= 1.0:
                accumulator -= 1.0
                block = b"\xaa\xaa" + block[2:]
            elif block[:2] == b"\xaa\xaa":
                block = b"\x00\x55" + block[2:]
            blocks.append(block)
        return blocks
