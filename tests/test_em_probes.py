"""Receiver models for the comparison methods."""

import pytest

from repro.chip.floorplan import DIE_SIZE
from repro.em.probes import (
    ONCHIP_SENSE_Z,
    icr_hh100_probe,
    langer_lf1_probe,
    single_coil_receiver,
)
from repro.errors import ConfigError


def test_single_coil_spans_the_die():
    coil = single_coil_receiver()
    turn = coil.turns[0]
    assert len(coil.turns) == 1
    assert turn.width == pytest.approx(DIE_SIZE - 20e-6)
    assert coil.z == ONCHIP_SENSE_Z
    # A ~4 mm perimeter of 1 um metal-8 wire is tens of ohms.
    assert 50.0 < coil.r_series < 150.0


def test_single_coil_has_campaign_drift_but_no_ambient():
    coil = single_coil_receiver()
    assert coil.ambient_gain < 1e-8
    assert 0.0 < coil.gain_jitter < 0.05


def test_lf1_geometry_and_exposure():
    probe = langer_lf1_probe()
    assert len(probe.turns) == 12
    assert probe.z == pytest.approx(1.5e-3)
    # Ambient pickup scales with the full multi-turn aperture.
    assert probe.ambient_gain == pytest.approx(
        12 * probe.turns[0].area
    )
    assert probe.gain_jitter > 0.0


def test_icr_is_smaller_closer_and_jitterier():
    icr = icr_hh100_probe()
    lf1 = langer_lf1_probe()
    assert icr.turns[0].area < 1e-3 * lf1.turns[0].area
    assert icr.z < lf1.z
    assert icr.gain_jitter >= lf1.gain_jitter
    # 100 um circle -> 89 um square of equal area.
    assert icr.turns[0].width == pytest.approx(89e-6)


def test_icr_positionable():
    probe = icr_hh100_probe(x_center=600e-6, y_center=400e-6)
    assert probe.turns[0].center[0] == pytest.approx(600e-6)
    assert probe.turns[0].center[1] == pytest.approx(400e-6)


def test_probe_validation():
    with pytest.raises(ConfigError):
        single_coil_receiver(inset=-1.0)
    with pytest.raises(ConfigError):
        langer_lf1_probe(height=0.0)
    with pytest.raises(ConfigError):
        icr_hh100_probe(height=-1e-3)
    with pytest.raises(ConfigError):
        langer_lf1_probe(n_turns=0)


def test_total_turn_area_property():
    probe = langer_lf1_probe()
    assert probe.total_turn_area == pytest.approx(
        12 * probe.turns[0].area
    )
