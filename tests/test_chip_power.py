"""Supply-current kernel and power model."""

import numpy as np
import pytest

from repro.chip.power import (
    ActivityRecord,
    PowerModel,
    charge_per_toggle,
    current_kernel,
    emf_kernel,
)
from repro.config import SimConfig
from repro.errors import ConfigError


def test_charge_per_toggle():
    assert charge_per_toggle(1.2, 3e-15) == pytest.approx(3.6e-15)
    with pytest.raises(ConfigError):
        charge_per_toggle(0.0)


def test_kernel_integrates_to_unit_charge():
    config = SimConfig()
    kernel = current_kernel(config)
    assert kernel.shape == (config.oversample,)
    assert kernel.sum() * config.dt == pytest.approx(1.0, rel=1e-9)


def test_kernel_has_half_duty():
    """~50 % duty: the mechanism that suppresses even harmonics."""
    config = SimConfig()
    kernel = current_kernel(config)
    high = kernel > 0.5 * kernel.max()
    duty = high.sum() / kernel.size
    assert 0.4 <= duty <= 0.6


def test_kernel_suppresses_even_harmonics():
    config = SimConfig()
    kernel = current_kernel(config)
    reps = 32
    spectrum = np.abs(np.fft.rfft(np.tile(kernel, reps)))
    odd = spectrum[reps] + spectrum[3 * reps]
    even = spectrum[2 * reps] + spectrum[4 * reps]
    assert even < 0.05 * odd


def test_emf_kernel_is_derivative():
    config = SimConfig()
    kernel = current_kernel(config)
    dkernel = emf_kernel(config)
    assert dkernel.shape == (config.oversample,)
    # Derivative of a periodic kernel sums to ~zero.
    assert abs(dkernel.sum()) * config.dt < 1e-6 * np.abs(dkernel).max()


def test_activity_record_validation():
    config = SimConfig()
    good = np.zeros((10, config.n_cycles))
    record = ActivityRecord(main=good, trojan=good.copy(), config=config)
    assert record.n_regions == 10
    with pytest.raises(ConfigError):
        ActivityRecord(
            main=np.zeros((10, 5)), trojan=np.zeros((10, 5)), config=config
        )


def test_record_totals():
    config = SimConfig()
    main = np.full((4, config.n_cycles), 2.0)
    trojan = np.full((4, config.n_cycles), 1.0)
    record = ActivityRecord(main=main, trojan=trojan, config=config)
    assert record.total_toggles() == pytest.approx(
        3.0 * 4 * config.n_cycles
    )
    assert np.allclose(record.combined(), 3.0)


def test_mean_current_plausible(chip):
    """The AES core at 33 MHz should draw on the order of a milliamp."""
    record = chip.run_trace([bytes(range(16))], active=set())
    current = PowerModel(chip.config).mean_current(record)
    assert 0.1e-3 < current < 10e-3


def test_leakage_conversion():
    model = PowerModel(SimConfig())
    assert model.leakage_current(1000.0) == pytest.approx(1e-6)
