"""External-probe statistical detection (He TVLSI'17 / Faezi DATE'21).

The conventional flow the paper compares against: a Langer LF1 probe
over the package, spectra collected on a bench analyzer, and a
Euclidean-distance statistic against a reference population.  The
probe's weak coupling and ambient exposure leave per-trace effect sizes
so small that >10,000 measurements are needed, and the small T3 stays
out of reach (Table I "Low" detection rate) — exactly what the bench
reproduces.
"""

from __future__ import annotations

from ..chip.testchip import TestChip
from ..em.probes import langer_lf1_probe
from ..errors import AnalysisError
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for
from .common import ReceiverBench, euclidean_statistics, reference_spectrum
from .protocol import (
    EVALUATED_TROJANS,
    MethodReport,
    outcome_from_populations,
)


class ExternalProbeMethod:
    """Table I column "External Probe [7], [8]".

    Parameters
    ----------
    chip:
        Device under test.
    campaign:
        Workload driver (built on demand if omitted — requires a PSA
        only for interface compatibility, not used by this method).
    """

    name = "external_probe"
    localization = False
    runtime = False

    def __init__(self, chip: TestChip, campaign: MeasurementCampaign):
        self.chip = chip
        self.campaign = campaign
        self.bench = ReceiverBench(chip, langer_lf1_probe())

    def evaluate(self, n_traces: int = 12) -> MethodReport:
        """Run the full per-Trojan evaluation.

        Parameters
        ----------
        n_traces:
            Traces per population (kept modest; the statistic's effect
            size, not the simulated count, determines the reported
            required-measurement figure).
        """
        if n_traces < 4:
            raise AnalysisError("need at least 4 traces per population")
        report = MethodReport(
            name=self.name,
            localization=self.localization,
            runtime=self.runtime,
        )
        report.snr_db = self.bench.snr_db(self.campaign)
        for trojan in EVALUATED_TROJANS:
            reference = reference_for(trojan).name
            base_traces = self.bench.collect(
                self.campaign, reference, n_traces
            )
            active_traces = self.bench.collect(
                self.campaign, trojan, n_traces, index_offset=300
            )
            base_spectra = self.bench.spectra(base_traces)
            active_spectra = self.bench.spectra(active_traces)
            # Reference built from the first half of the inactive
            # population; statistics measured on the held-out halves.
            half = n_traces // 2
            ref = reference_spectrum(base_spectra[:half])
            inactive_stats = euclidean_statistics(base_spectra[half:], ref)
            active_stats = euclidean_statistics(active_spectra, ref)
            report.outcomes[trojan] = outcome_from_populations(
                trojan, inactive_stats, active_stats
            )
        return report
