"""Netlist container: instances grouped into named modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..errors import NetlistError
from .cells import CELL_LIBRARY, StandardCell, get_cell


class Instance:
    """One placed cell instance."""

    __slots__ = ("name", "cell", "module")

    def __init__(self, name: str, cell: StandardCell, module: str):
        self.name = name
        self.cell = cell
        self.module = module

    def __repr__(self) -> str:
        return f"Instance({self.name}:{self.cell.name}@{self.module})"


@dataclass(frozen=True)
class ModuleStats:
    """Aggregated per-module figures."""

    module: str
    n_cells: int
    n_sequential: int
    area_um2: float
    switch_cap_ff: float
    leakage_na: float


class Netlist:
    """A collection of cell instances grouped by module.

    The container is inventory-oriented: it answers "how many cells of
    which kind live in which module, with what aggregate area /
    switched capacitance / leakage" — which is what the placement and
    EM-activity models consume.
    """

    def __init__(self, name: str):
        self.name = name
        self._instances: List[Instance] = []
        self._by_module: Dict[str, List[Instance]] = {}
        self._names: set[str] = set()

    # -- construction --------------------------------------------------------

    def add_instance(self, name: str, cell_name: str, module: str) -> Instance:
        """Add one instance; names must be unique."""
        if name in self._names:
            raise NetlistError(f"duplicate instance name {name!r}")
        instance = Instance(name, get_cell(cell_name), module)
        self._instances.append(instance)
        self._by_module.setdefault(module, []).append(instance)
        self._names.add(name)
        return instance

    def add_bulk(self, module: str, mix: Dict[str, int]) -> int:
        """Add ``mix[cell_name]`` instances per cell kind to ``module``.

        Returns the number of instances added.  Instance names are
        generated as ``{module}/{cell}_{index}``.
        """
        added = 0
        for cell_name in sorted(mix):
            count = mix[cell_name]
            if count < 0:
                raise NetlistError(
                    f"negative count {count} for {cell_name} in {module}"
                )
            if cell_name not in CELL_LIBRARY:
                raise NetlistError(f"unknown cell {cell_name!r}")
            start = len(self._by_module.get(module, ()))
            for index in range(count):
                self.add_instance(
                    f"{module}/{cell_name}_{start + index}", cell_name, module
                )
            added += count
        return added

    def merge(self, other: "Netlist") -> None:
        """Absorb all instances of ``other`` (names must stay unique)."""
        for instance in other:
            self.add_instance(instance.name, instance.cell.name, instance.module)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances)

    @property
    def modules(self) -> List[str]:
        """Module names in insertion order."""
        return list(self._by_module)

    def module_instances(self, module: str) -> List[Instance]:
        """Instances of one module."""
        if module not in self._by_module:
            raise NetlistError(f"netlist has no module {module!r}")
        return list(self._by_module[module])

    def cell_count(self, module: str | None = None) -> int:
        """Instance count, optionally restricted to one module."""
        if module is None:
            return len(self._instances)
        return len(self.module_instances(module))

    def cell_histogram(self, module: str | None = None) -> Dict[str, int]:
        """Counts per cell kind."""
        instances = (
            self._instances if module is None else self.module_instances(module)
        )
        histogram: Dict[str, int] = {}
        for instance in instances:
            histogram[instance.cell.name] = (
                histogram.get(instance.cell.name, 0) + 1
            )
        return histogram

    def module_stats(self, module: str) -> ModuleStats:
        """Aggregate electrical figures for one module."""
        instances = self.module_instances(module)
        return ModuleStats(
            module=module,
            n_cells=len(instances),
            n_sequential=sum(1 for i in instances if i.cell.is_sequential),
            area_um2=sum(i.cell.area_um2 for i in instances),
            switch_cap_ff=sum(i.cell.switch_cap_ff for i in instances),
            leakage_na=sum(i.cell.leakage_na for i in instances),
        )

    def total_area_um2(self) -> float:
        """Total placed area of all instances [um^2]."""
        return sum(instance.cell.area_um2 for instance in self._instances)

    def mean_switch_cap_ff(self, module: str) -> float:
        """Average switched capacitance per cell in a module [fF]."""
        instances = self.module_instances(module)
        if not instances:
            raise NetlistError(f"module {module!r} is empty")
        return sum(i.cell.switch_cap_ff for i in instances) / len(instances)
