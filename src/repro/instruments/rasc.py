"""RASC-style on-board run-time monitor.

Section II-A: the RASCv2 board replaces the oscilloscope for run-time
side-channel verification — ADCs sample the sensor output, an FPGA
processes the traces, and only processed verdicts leave the board
(which is also why the PSA does not enable remote side-channel attacks:
raw traces never cross a communication channel).

:class:`RascMonitor` is deliberately decoupled from the analysis
package: it takes a feature extractor and a streaming detector as
collaborators, adds the ADC front-end and the per-trace latency budget,
and reports a timeline suitable for MTTD evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Protocol, Sequence

from ..errors import MeasurementError
from ..traces import Trace
from .adc import AdcSpec, quantize


class StreamingDetector(Protocol):
    """Anything with a RuntimeDetector-compatible update method."""

    def update(self, feature_db: float) -> object: ...


@dataclass(frozen=True)
class RascReport:
    """Timeline of one monitoring session.

    Attributes
    ----------
    alarm_index:
        Trace index of the first alarm (None = silent).
    alarm_time_s:
        Wall-clock time of the alarm relative to session start [s].
    features_db:
        Feature per processed trace.
    trace_period_s:
        Capture + processing period per trace [s].
    """

    alarm_index: int | None
    alarm_time_s: float | None
    features_db: List[float]
    trace_period_s: float


class RascMonitor:
    """ADC + feature + detector, with latency accounting.

    Parameters
    ----------
    feature_fn:
        Maps a quantized trace to the detection feature [dB].
    detector:
        Streaming detector; its update() result must expose ``alarm``.
    adc:
        Sampling front-end.
    processing_latency_s:
        On-board processing time per trace [s].
    auto_range:
        Rescale the converter range to each trace's peak (with 25 %
        headroom) before sampling — the front-end's programmable-gain
        attenuator.  Without it, a strong Trojan like the T4 power
        virus clips the converter and its signature vanishes.
    """

    def __init__(
        self,
        feature_fn: Callable[[Trace], float],
        detector: StreamingDetector,
        adc: AdcSpec | None = None,
        processing_latency_s: float = 0.9e-3,
        auto_range: bool = True,
    ):
        if processing_latency_s < 0:
            raise MeasurementError("processing latency must be >= 0")
        self.feature_fn = feature_fn
        self.detector = detector
        # The converter must swallow the 50 dB-amplified sensor output
        # without clipping: +-10 V range at 12 bits keeps quantization
        # ~5 mV, far below the sideband features of interest.
        self.adc = adc or AdcSpec(n_bits=12, full_scale=10.0)
        self.processing_latency_s = processing_latency_s
        self.auto_range = auto_range

    def _spec_for(self, trace: Trace) -> AdcSpec:
        if not self.auto_range:
            return self.adc
        import numpy as np

        peak = float(np.max(np.abs(trace.samples)))
        if peak <= 0.0:
            return self.adc
        return AdcSpec(n_bits=self.adc.n_bits, full_scale=1.25 * peak)

    def process(self, trace: Trace) -> tuple[float, bool]:
        """Digitize and score one trace; returns (feature, alarm)."""
        digitized = Trace(
            samples=quantize(trace.samples, self._spec_for(trace)),
            fs=trace.fs,
            label=trace.label,
            scenario=trace.scenario,
            meta=trace.meta,
        )
        feature = self.feature_fn(digitized)
        decision = self.detector.update(feature)
        return feature, bool(getattr(decision, "alarm", False))

    def monitor(self, traces: Sequence[Trace]) -> RascReport:
        """Stream a trace sequence until the first alarm (or the end)."""
        if not traces:
            raise MeasurementError("no traces to monitor")
        period = traces[0].duration + self.processing_latency_s
        features: List[float] = []
        alarm_index = None
        for index, trace in enumerate(traces):
            feature, alarm = self.process(trace)
            features.append(feature)
            if alarm:
                alarm_index = index
                break
        alarm_time = None if alarm_index is None else (alarm_index + 1) * period
        return RascReport(
            alarm_index=alarm_index,
            alarm_time_s=alarm_time,
            features_db=features,
            trace_period_s=period,
        )
