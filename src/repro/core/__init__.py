"""The Programmable Sensor Array (PSA) — the paper's core contribution.

* :class:`~repro.core.grid.PsaGrid` — the 36x36 wire lattice with a
  T-gate switch at each of the 1296 crosspoints (Figure 1a/1b);
* :mod:`~repro.core.coil` — programming rectangular multi-turn coils
  onto the lattice, with electrical properties derived from the
  traversed T-gates and wire;
* :mod:`~repro.core.sensors` — the standard 16-sensor configuration of
  Section V-A (4x4, overlapping neighbours);
* :class:`~repro.core.decoder.PsaDecoder` — the gate-level PSA_sel
  4-to-16 control decoder;
* :class:`~repro.core.array.ProgrammableSensorArray` — the measurement
  facade: program shapes, render activity records into amplified
  sensor traces;
* :mod:`~repro.core.cost` — Section V-B implementation-cost model;
* :mod:`~repro.core.analysis` — the run-time cross-domain analysis
  (detection, localization, identification, MTTD).
"""

from .grid import N_WIRES, PsaGrid
from .coil import Coil, synthesize_rect_coil
from .sensors import (
    N_SENSORS,
    SENSOR_SIZE_PITCHES,
    quadrant_coil,
    sensor_grid_origin,
    standard_sensor_coil,
)
from .decoder import PsaDecoder
from .array import ProgrammableSensorArray
from .cost import ImplementationCost, implementation_cost

__all__ = [
    "N_WIRES",
    "PsaGrid",
    "Coil",
    "synthesize_rect_coil",
    "N_SENSORS",
    "SENSOR_SIZE_PITCHES",
    "quadrant_coil",
    "sensor_grid_origin",
    "standard_sensor_coil",
    "PsaDecoder",
    "ProgrammableSensorArray",
    "ImplementationCost",
    "implementation_cost",
]
