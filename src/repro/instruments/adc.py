"""Analog-to-digital conversion."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError


@dataclass(frozen=True)
class AdcSpec:
    """Converter parameters.

    Attributes
    ----------
    n_bits:
        Resolution.
    full_scale:
        Peak input voltage [V]; the input range is +-full_scale.
    """

    n_bits: int = 10
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 4 <= self.n_bits <= 24:
            raise MeasurementError(f"implausible ADC resolution {self.n_bits}")
        if self.full_scale <= 0:
            raise MeasurementError("full scale must be positive")

    @property
    def lsb(self) -> float:
        """Quantization step [V]."""
        return 2.0 * self.full_scale / (1 << self.n_bits)


def quantize(samples: np.ndarray, spec: AdcSpec) -> np.ndarray:
    """Quantize (and clip) a voltage trace through the converter."""
    samples = np.asarray(samples, dtype=float)
    clipped = np.clip(samples, -spec.full_scale, spec.full_scale - spec.lsb)
    codes = np.round(clipped / spec.lsb)
    return codes * spec.lsb


def quantize_batch(
    samples: np.ndarray,
    spec: AdcSpec,
    auto_range: bool = True,
    headroom: float = 1.25,
) -> np.ndarray:
    """Quantize a ``(..., n_samples)`` trace stack in one pass.

    With ``auto_range`` the converter range is rescaled to each trace's
    own peak (plus ``headroom``) before sampling, mirroring the RASC
    monitor's programmable-gain attenuator; all-zero traces fall back
    to ``spec.full_scale``.  Every element goes through the same
    clip/round arithmetic as :func:`quantize`, so each row is
    bit-identical to quantizing that trace alone.
    """
    samples = np.asarray(samples, dtype=float)
    if not auto_range:
        return quantize(samples, spec)
    if headroom <= 0:
        raise MeasurementError("auto-range headroom must be positive")
    # max|x| as max(max(x), -min(x)): the full-size |samples| buffer
    # np.abs would allocate is never materialized.
    peak = np.maximum(
        np.max(samples, axis=-1, keepdims=True),
        -np.min(samples, axis=-1, keepdims=True),
    )
    full_scale = np.where(peak > 0.0, headroom * peak, spec.full_scale)
    lsb = 2.0 * full_scale / (1 << spec.n_bits)
    # One working buffer end to end: clip, scale to codes, round
    # (np.rint == np.round at zero decimals), scale back.
    codes = np.clip(samples, -full_scale, full_scale - lsb)
    np.divide(codes, lsb, out=codes)
    np.rint(codes, out=codes)
    np.multiply(codes, lsb, out=codes)
    return codes
