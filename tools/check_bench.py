#!/usr/bin/env python3
"""Benchmark regression gate: current BENCH_*.json vs committed baselines.

Compares the monitored throughput metrics (``speedup``,
``windows_per_sec``, ``cells_per_sec``, ``traces_per_sec``,
``speedup_vs_cold``, ``speedup_vs_serial``, ``scaling_efficiency``)
of freshly produced benchmark reports against the committed baselines
in ``benchmarks/baselines/``.  All monitored metrics are
higher-is-better; a current value more than ``tolerance`` (default
25%) below its baseline fails the gate, as does a monitored baseline
metric missing from the current report (a silently dropped benchmark
must not pass).

Metrics present only in the *current* report (new rows) are ignored —
they become gated once a baseline commits them.  Non-monitored keys
(shapes, flags, raw seconds) are never compared.

Usage::

    python tools/check_bench.py --baseline-dir benchmarks/baselines \
        --current-dir bench-artifacts [--tolerance 0.25]

Exit status 0 = within tolerance, 1 = regression (or missing file /
metric).  Stdlib only, unit-tested by ``tests/test_check_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Monitored metric names — all higher-is-better throughput figures.
MONITORED = (
    "speedup",
    "windows_per_sec",
    "cells_per_sec",
    "traces_per_sec",
    "speedup_vs_cold",
    "speedup_vs_serial",
    "scaling_efficiency",
)

#: Default allowed relative drop below baseline.
DEFAULT_TOLERANCE = 0.25


def collect_metrics(report: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a benchmark report to ``{json.path: value}`` for the
    monitored metric names, at any nesting depth."""
    metrics: Dict[str, float] = {}
    for key, value in report.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            metrics.update(collect_metrics(value, path))
        elif key in MONITORED and isinstance(value, (int, float)):
            metrics[path] = float(value)
    return metrics


def compare_reports(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression messages for one report pair (empty = gate passes)."""
    problems: List[str] = []
    baseline_metrics = collect_metrics(baseline)
    current_metrics = collect_metrics(current)
    for path, reference in sorted(baseline_metrics.items()):
        value = current_metrics.get(path)
        if value is None:
            problems.append(f"missing metric {path} (baseline {reference})")
            continue
        floor = reference * (1.0 - tolerance)
        if value < floor:
            drop = 100.0 * (1.0 - value / reference) if reference else 0.0
            problems.append(
                f"{path}: {value:g} is {drop:.1f}% below baseline "
                f"{reference:g} (floor {floor:g})"
            )
    return problems


def _pair_files(
    baseline_dir: Path, current_dir: Path
) -> List[Tuple[str, Path, Path]]:
    pairs = []
    for baseline_path in sorted(baseline_dir.glob("BENCH_*.json")):
        pairs.append(
            (
                baseline_path.name,
                baseline_path,
                current_dir / baseline_path.name,
            )
        )
    return pairs


def run(
    baseline_dir: Path, current_dir: Path, tolerance: float
) -> Tuple[int, List[str]]:
    """Gate every baseline file; ``(exit_code, report_lines)``."""
    lines: List[str] = []
    failed = False
    pairs = _pair_files(baseline_dir, current_dir)
    if not pairs:
        return 1, [f"no BENCH_*.json baselines in {baseline_dir}"]
    for name, baseline_path, current_path in pairs:
        if not current_path.exists():
            failed = True
            lines.append(f"FAIL {name}: no current report at {current_path}")
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            current = json.loads(current_path.read_text())
        except ValueError as exc:
            failed = True
            lines.append(f"FAIL {name}: unreadable report ({exc})")
            continue
        problems = compare_reports(baseline, current, tolerance)
        if problems:
            failed = True
            lines.append(f"FAIL {name}:")
            lines.extend(f"  {problem}" for problem in problems)
        else:
            checked = len(collect_metrics(baseline))
            lines.append(f"ok   {name}: {checked} metrics within tolerance")
    return (1 if failed else 0), lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory of freshly produced BENCH_*.json reports",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drop below baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    code, lines = run(args.baseline_dir, args.current_dir, args.tolerance)
    print("\n".join(lines))
    return code


if __name__ == "__main__":
    sys.exit(main())
