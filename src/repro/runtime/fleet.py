"""Multi-chip fleet monitoring: N independent monitors, one scheduler.

A deployment watches many chips at once.  Each fleet member is a
complete monitor — its own :class:`~repro.chip.testchip.TestChip`
(distinct RNG seed, optionally a distinct Trojan implant position),
PSA, :class:`~repro.runtime.sources.LiveSource` and
:class:`~repro.runtime.pipeline.EscalationPipeline` — and the
:class:`FleetScheduler` interleaves them cooperatively:

* every scheduler tick advances each live monitor by at most one
  *render* (producer side) and one *process* (consumer side);
* rendered-but-unprocessed chunks wait in a **bounded** per-monitor
  queue (``queue_depth``); a full queue stalls that monitor's
  producer only — backpressure never blocks the other chips;
* rendering runs through each chip's configured engine execution
  backend (serial or the process worker pool), so fleet throughput
  scales with the engine, not the scheduler.

Interleaving is deterministic (round-robin in member order) and —
because monitors share no mutable state — every member's report is
bit-identical to running that monitor alone, which
``tests/test_runtime_fleet.py`` pins.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chip.floorplan import DEFAULT_TROJAN_SENSOR, floorplan_with_trojans_at
from ..chip.testchip import TestChip
from ..config import SimConfig
from ..core.analysis.detector import DetectorConfig
from ..core.analysis.localizer import Localizer
from ..core.array import ProgrammableSensorArray
from ..errors import AnalysisError
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..report import ReportBase, Severity
from ..store import ArtifactStore
from ..workloads.campaign import MeasurementCampaign
from .events import Backpressure, EventBus
from .pipeline import EscalationPipeline, MonitorReport, PipelineConfig
from .sources import (
    DEFAULT_CHUNK_WINDOWS,
    ActivationSchedule,
    LiveSource,
)

#: The AES key programmed into every fleet chip.
FLEET_KEY = bytes(range(16))


@dataclass(frozen=True)
class ChipSpec:
    """Recipe for one fleet member.

    Attributes
    ----------
    chip_id:
        Member identity (event ``chip`` tag, report row).
    trojan:
        The Trojan implanted on this chip (``"T1"``..``"T4"``).
    seed:
        Config seed of this chip's simulation (distinct seeds give
        every member independent noise and workloads).
    host_sensor:
        Sensor the Trojan cluster is implanted under.
    n_baseline, n_active:
        Span lengths of the scripted monitoring stream.
    active_offset:
        Workload epoch of the Trojan-active span.
    sensors:
        Monitored sensor subset (one detector stream each); None
        monitors the whole array — the paper's always-on deployment.
    chunk:
        Windows per rendered chunk.
    detector:
        Detector tuning of this member's pipeline.
    """

    chip_id: str
    trojan: str
    seed: int
    host_sensor: int = DEFAULT_TROJAN_SENSOR
    n_baseline: int = 8
    n_active: int = 6
    active_offset: int = 500
    sensors: Optional[Tuple[int, ...]] = None
    chunk: int = DEFAULT_CHUNK_WINDOWS
    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(warmup=6)
    )


@dataclass
class ChipMonitor:
    """One assembled fleet member (chip + source + pipeline)."""

    spec: ChipSpec
    pipeline: EscalationPipeline
    source: LiveSource
    truth_position: Tuple[float, float]
    report: Optional[MonitorReport] = None

    @property
    def chip_id(self) -> str:
        """Member identity."""
        return self.spec.chip_id


def build_chip_monitor(
    spec: ChipSpec,
    config: Optional[SimConfig] = None,
    analyzer: Optional[SpectrumAnalyzer] = None,
    pipeline_config: Optional[PipelineConfig] = None,
    bus: Optional[EventBus] = None,
    store: Optional["ArtifactStore"] = None,
) -> ChipMonitor:
    """Assemble one fleet member from its spec.

    Chips share coupling geometry through the content-keyed cache in
    :mod:`repro.em.coupling`, so members at the same implant position
    pay the flux integrals only once per process.

    Parameters
    ----------
    spec:
        The member recipe.
    config:
        Base simulation config; the member runs on
        ``config.with_(seed=spec.seed)`` (backend selection and grid
        settings are inherited).
    analyzer:
        Shared spectrum analyzer model.
    pipeline_config:
        Stage tuning (the spec's detector is folded in).
    bus:
        Event bus shared by the fleet (each member stamps its own
        ``chip`` id); None gives each member a private bus.
    store:
        Optional :class:`~repro.store.ArtifactStore` backing the
        member's record memo (each member keys its own namespace by
        its chip fingerprint — distinct seeds never collide).
    """
    base = config or SimConfig()
    member_config = base.with_(seed=spec.seed)
    floorplan = floorplan_with_trojans_at(spec.host_sensor)
    chip = TestChip(FLEET_KEY, member_config, floorplan=floorplan)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)
    analyzer = analyzer or SpectrumAnalyzer()
    schedule = ActivationSchedule.step(
        spec.trojan,
        n_baseline=spec.n_baseline,
        n_active=spec.n_active,
        active_offset=spec.active_offset,
    )
    sensors = (
        tuple(range(psa.n_sensors)) if spec.sensors is None else spec.sensors
    )
    source = LiveSource(
        campaign, schedule, sensors=sensors, chunk=spec.chunk, store=store
    )
    tuning = replace(
        pipeline_config or PipelineConfig(), detector=spec.detector
    )
    pipeline = EscalationPipeline(
        member_config,
        n_streams=len(sensors),
        pipeline=tuning,
        analyzer=analyzer,
        localizer=Localizer(psa, analyzer),
        bus=bus,
        chip=spec.chip_id,
    )
    truth = chip.floorplan.placements[spec.trojan][0].center
    return ChipMonitor(
        spec=spec,
        pipeline=pipeline,
        source=source,
        truth_position=(float(truth[0]), float(truth[1])),
    )


@dataclass(frozen=True)
class ChipResult:
    """One fleet member's session outcome.

    Attributes
    ----------
    chip_id, trojan, host_sensor:
        Member identity and ground truth.
    report:
        The member's full monitoring report.
    localization_error_um:
        Distance between the localization estimate and the true
        implant position [um] (None when localization never ran).
    """

    chip_id: str
    trojan: str
    host_sensor: int
    report: MonitorReport
    localization_error_um: Optional[float]

    @property
    def detected(self) -> bool:
        """The member alarmed at/after its scripted activation."""
        return self.report.detected

    @property
    def mttd_s(self) -> Optional[float]:
        """Activation-to-alarm latency [s]."""
        return self.report.mttd.mttd_s if self.report.mttd else None


@dataclass(frozen=True)
class FleetReport(ReportBase):
    """Aggregated outcome of one fleet run.

    Renders through the shared :class:`~repro.report.ReportBase`
    surface; JSON and table forms are byte-identical to the
    pre-``repro.report`` formatter (plus the ``backpressure_events``
    counter of the typed queue-full contract).

    Attributes
    ----------
    chips:
        Per-member results, in member order.
    queue_depth:
        Configured backpressure bound (chunks per member queue).
    max_queue_len:
        Deepest any member queue actually got.
    wall_seconds:
        Scheduler wall-clock time for the whole fleet.
    interleave:
        Chip ids in chunk-processing order (the concurrency trace).
    backpressure_events:
        Typed :class:`~repro.runtime.events.Backpressure` events the
        scheduler emitted (producers throttled at the queue bound).
    """

    chips: Tuple[ChipResult, ...]
    queue_depth: int
    max_queue_len: int
    wall_seconds: float
    interleave: Tuple[str, ...]
    backpressure_events: int = 0

    report_kind = "fleet"

    def severities(self):
        """One severity per chip, deployment semantics.

        A fleet report grades live chips, so an alarming chip is the
        finding that demands attention: a true detection is CRITICAL
        (a Trojan is active on silicon), a false alarm is a WARNING,
        and a silent chip is OK.
        """
        for chip in self.chips:
            if chip.detected:
                yield Severity.CRITICAL
            elif chip.report.mttd is not None and chip.report.mttd.false_alarm:
                yield Severity.WARNING
            else:
                yield Severity.OK

    @property
    def n_chips(self) -> int:
        """Fleet size."""
        return len(self.chips)

    @property
    def total_windows(self) -> int:
        """Windows processed across the fleet."""
        return sum(chip.report.n_windows for chip in self.chips)

    @property
    def windows_per_sec(self) -> float:
        """Fleet-wide monitoring throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.total_windows / self.wall_seconds

    @property
    def all_detected(self) -> bool:
        """Every member alarmed after its activation."""
        return all(chip.detected for chip in self.chips)

    @property
    def mean_mttd_s(self) -> Optional[float]:
        """Mean detection latency over the detecting members [s]."""
        latencies = [c.mttd_s for c in self.chips if c.mttd_s is not None]
        return float(np.mean(latencies)) if latencies else None

    @property
    def mean_traces_to_detect(self) -> Optional[float]:
        """Mean post-activation windows to the alarm."""
        counts = [
            c.report.mttd.traces_to_detect
            for c in self.chips
            if c.report.mttd and c.report.mttd.traces_to_detect is not None
        ]
        return float(np.mean(counts)) if counts else None

    @property
    def mean_localization_error_um(self) -> Optional[float]:
        """Mean localization error over the localized members [um]."""
        errors = [
            c.localization_error_um
            for c in self.chips
            if c.localization_error_um is not None
        ]
        return float(np.mean(errors)) if errors else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (per-chip rows + aggregates)."""
        return {
            "n_chips": self.n_chips,
            "queue_depth": self.queue_depth,
            "max_queue_len": self.max_queue_len,
            "backpressure_events": self.backpressure_events,
            "wall_seconds": round(self.wall_seconds, 3),
            "total_windows": self.total_windows,
            "windows_per_sec": round(self.windows_per_sec, 2),
            "all_detected": self.all_detected,
            "mean_mttd_ms": None
            if self.mean_mttd_s is None
            else round(1e3 * self.mean_mttd_s, 3),
            "mean_traces_to_detect": self.mean_traces_to_detect,
            "mean_localization_error_um": None
            if self.mean_localization_error_um is None
            else round(self.mean_localization_error_um, 1),
            "chips": [
                {
                    "chip": chip.chip_id,
                    "trojan": chip.trojan,
                    "host_sensor": chip.host_sensor,
                    "windows": chip.report.n_windows,
                    "first_alarm": chip.report.first_alarm,
                    "detected": chip.detected,
                    "mttd_ms": None
                    if chip.mttd_s is None
                    else round(1e3 * chip.mttd_s, 3),
                    "identified": None
                    if chip.report.identification is None
                    else chip.report.identification.label,
                    "localization_error_um": None
                    if chip.localization_error_um is None
                    else round(chip.localization_error_um, 1),
                }
                for chip in self.chips
            ],
        }

    def format(self) -> str:
        """Human-readable fleet summary table."""
        header = (
            f"fleet: {self.n_chips} chips | {self.total_windows} windows in "
            f"{self.wall_seconds:.2f} s ({self.windows_per_sec:.1f} win/s) | "
            f"queue depth {self.queue_depth} (max seen {self.max_queue_len})"
        )
        lines = [
            header,
            "chip     | trojan | alarm@ | MTTD [ms] | identified | loc err [um]",
            "---------|--------|--------|-----------|------------|-------------",
        ]
        for chip in self.chips:
            mttd = "-" if chip.mttd_s is None else f"{1e3 * chip.mttd_s:.2f}"
            ident = (
                "-"
                if chip.report.identification is None
                else chip.report.identification.label
            )
            error = (
                "-"
                if chip.localization_error_um is None
                else f"{chip.localization_error_um:.0f}"
            )
            alarm = (
                "-"
                if chip.report.first_alarm is None
                else str(chip.report.first_alarm)
            )
            lines.append(
                f"{chip.chip_id:<8} | {chip.trojan:<6} | {alarm:>6} | "
                f"{mttd:>9} | {ident:>10} | {error:>12}"
            )
        return "\n".join(lines)


_EXHAUSTED = object()


class _Peekable:
    """Iterator with one-item lookahead.

    The scheduler's queue-full contract needs to know whether a
    producer *has* a next chunk without consuming it — a refused
    producer must deliver the same chunk on a later tick.
    """

    def __init__(self, iterable):
        self._iterator = iter(iterable)
        self._buffer = _EXHAUSTED
        self._buffered = False

    def peek(self):
        """The next item (raises StopIteration when exhausted)."""
        if not self._buffered:
            self._buffer = next(self._iterator, _EXHAUSTED)
            self._buffered = True
        if self._buffer is _EXHAUSTED:
            raise StopIteration
        return self._buffer

    def take(self):
        """Consume and return the next item."""
        item = self.peek()
        self._buffered = False
        return item

    @property
    def exhausted(self) -> bool:
        """Whether the producer has nothing left."""
        try:
            self.peek()
        except StopIteration:
            return True
        return False


class FleetScheduler:
    """Cooperative round-robin scheduler over independent monitors.

    Parameters
    ----------
    monitors:
        Assembled fleet members.
    queue_depth:
        Backpressure bound: rendered-but-unprocessed chunks allowed
        per member.  A member whose pipeline falls behind stalls its
        own renderer once the queue is full; other members keep
        flowing.  Hitting the bound is never silent: the scheduler
        emits a typed :class:`~repro.runtime.events.Backpressure`
        event (``action="stall"``) on the member's bus — the same
        contract the serve service's shedding layer announces drops
        with, so one event vocabulary covers both deployments.
    """

    def __init__(self, monitors: Sequence[ChipMonitor], queue_depth: int = 2):
        if not monitors:
            raise AnalysisError("fleet needs at least one monitor")
        if queue_depth < 1:
            raise AnalysisError("queue_depth must be >= 1")
        ids = [monitor.chip_id for monitor in monitors]
        if len(set(ids)) != len(ids):
            duplicate = next(i for i in ids if ids.count(i) > 1)
            raise AnalysisError(f"duplicate chip id {duplicate!r} in fleet")
        self.monitors = list(monitors)
        self.queue_depth = queue_depth
        self.max_queue_len = 0
        self.backpressure_events = 0

    def close(self) -> None:
        """Release every member's backend resources (pools, arenas).

        Named backends are process-wide sessions shared by the whole
        fleet, so this is effectively one pool/arena teardown; a later
        run transparently restarts them.
        """
        for monitor in self.monitors:
            campaign = getattr(monitor.source, "campaign", None)
            if campaign is not None:
                campaign.close()

    def run(self) -> FleetReport:
        """Drive every member to completion; returns the fleet report.

        Each tick visits members in order and advances each by at most
        one rendered chunk and one processed chunk, so all members
        make progress together — a genuinely concurrent monitoring
        service, deterministically scheduled.

        Ticks are two-phase.  The **render** phase collects every
        pending member's missing chunks (up to the backpressure bound)
        and renders them as one fused engine pass — with live sources,
        the whole fleet's captures of a tick pay one dispatch instead
        of one per chip.  The **process** phase then advances each
        member by exactly one chunk, in member order.  Chunk contents,
        per-member processing order, backpressure accounting and the
        emitted reports are bit-identical to per-member rendering
        (the engine's determinism contract).
        """
        from ..engine import RenderPlan

        for monitor in self.monitors:
            monitor.pipeline.bind(monitor.source)
        # Live sources expose their chunk plan for fused rendering;
        # anything else (e.g. replayed archives) streams chunks
        # directly — both kinds can share one fleet.  Producers are
        # peekable so the queue-full contract can announce a refused
        # chunk without consuming it.
        spec_producers: List[Optional[_Peekable]] = []
        chunk_producers: List[Optional[_Peekable]] = []
        for monitor in self.monitors:
            source = monitor.source
            if hasattr(source, "chunk_specs") and hasattr(
                source, "enqueue_chunk"
            ):
                spec_producers.append(_Peekable(source.chunk_specs()))
                chunk_producers.append(None)
            else:
                spec_producers.append(None)
                chunk_producers.append(_Peekable(source.chunks()))
        queues: List[deque] = [deque() for _ in self.monitors]
        interleave: List[str] = []
        start = time.perf_counter()
        pending = set(range(len(self.monitors)))
        while pending:
            # Render phase: stage every member's queue refill on one
            # fused plan, execute once, append in member order.
            plan = RenderPlan()
            staged: List[tuple] = []
            for index in sorted(pending):
                monitor = self.monitors[index]
                queue = queues[index]
                space = self.queue_depth - len(queue)
                specs = spec_producers[index]
                chunks = chunk_producers[index]
                next_start: Optional[int] = None
                if specs is not None:
                    while space > 0 and not specs.exhausted:
                        spec = specs.take()
                        ticket = monitor.source.enqueue_chunk(plan, spec)
                        staged.append((index, spec[0], ticket))
                        space -= 1
                    if not specs.exhausted:
                        next_start = specs.peek()[0]
                elif chunks is not None:
                    while space > 0 and not chunks.exhausted:
                        queue.append(chunks.take())
                        space -= 1
                        self.max_queue_len = max(
                            self.max_queue_len, len(queue)
                        )
                    if not chunks.exhausted:
                        next_start = chunks.peek().start
                if next_start is not None and space == 0:
                    # Queue-full: the producer has a chunk ready but
                    # the bound refuses it.  Cooperative scheduling
                    # stalls (the chunk waits, nothing is lost) — and
                    # says so with a typed event instead of silently
                    # parking the producer.
                    self.backpressure_events += 1
                    monitor.pipeline.bus.emit(
                        Backpressure(
                            chip=monitor.chip_id,
                            window=next_start,
                            time_s=monitor.pipeline.time_of(next_start),
                            queue_depth=self.queue_depth,
                            queue_len=self.queue_depth,
                            action="stall",
                        )
                    )
            if len(plan):
                plan.execute()
            for index, position, ticket in staged:
                source = self.monitors[index].source
                queues[index].append(
                    source.chunk_from(ticket.result(), position)
                )
                self.max_queue_len = max(
                    self.max_queue_len, len(queues[index])
                )
            # Process phase: exactly one chunk per member per tick.
            for index in sorted(pending):
                monitor = self.monitors[index]
                queue = queues[index]
                specs = spec_producers[index]
                chunks = chunk_producers[index]
                if queue:
                    chunk = queue.popleft()
                    monitor.pipeline.process_chunk(chunk)
                    interleave.append(monitor.chip_id)
                elif (specs is None or specs.exhausted) and (
                    chunks is None or chunks.exhausted
                ):
                    monitor.report = monitor.pipeline.report(
                        trigger_index=monitor.source.trigger_index
                    )
                    pending.discard(index)
        wall = time.perf_counter() - start
        results = []
        for monitor in self.monitors:
            report = monitor.report
            error = None
            if report.localization is not None:
                error = 1e6 * float(
                    np.hypot(
                        report.localization.position[0]
                        - monitor.truth_position[0],
                        report.localization.position[1]
                        - monitor.truth_position[1],
                    )
                )
            results.append(
                ChipResult(
                    chip_id=monitor.chip_id,
                    trojan=monitor.spec.trojan,
                    host_sensor=monitor.spec.host_sensor,
                    report=report,
                    localization_error_um=error,
                )
            )
        return FleetReport(
            chips=tuple(results),
            queue_depth=self.queue_depth,
            max_queue_len=self.max_queue_len,
            wall_seconds=wall,
            interleave=tuple(interleave),
            backpressure_events=self.backpressure_events,
        )
