"""Envelope feature extraction."""

import numpy as np
import pytest

from repro.dsp.features import envelope_features
from repro.errors import AnalysisError

FS = 32e6
N = 4096


def _t():
    return np.arange(N) / FS


def test_sine_envelope_features():
    env = 1.0 + 0.8 * np.sin(2 * np.pi * 750e3 * _t())
    feats = envelope_features(env, FS)
    assert feats.dominant_freq == pytest.approx(750e3, rel=0.02)
    assert feats.ripple == pytest.approx(0.8 / np.sqrt(2), rel=0.05)
    assert feats.duty_cycle == pytest.approx(0.5, abs=0.05)
    assert feats.autocorr_peak > 0.9
    assert feats.bimodality < 0.75


def test_square_envelope_is_bimodal_and_periodic():
    env = 0.1 + 0.9 * (np.sin(2 * np.pi * 1.5e6 * _t()) > 0)
    feats = envelope_features(env.astype(float), FS)
    assert feats.bimodality > 5.0 / 9.0
    assert feats.autocorr_peak > 0.9
    assert feats.dominant_freq == pytest.approx(1.5e6, rel=0.05)


def test_constant_envelope_low_ripple():
    rng = np.random.default_rng(0)
    env = 1.0 + 0.01 * rng.normal(size=N)
    feats = envelope_features(env, FS)
    assert feats.ripple < 0.05
    assert feats.autocorr_peak < 0.3


def test_pn_envelope_aperiodic():
    """Random chips (as long as the minimum lag) give low autocorrelation.

    Note: autocorr_peak is evaluated from lag 4 upward, so chips longer
    than a few samples contribute *within-chip* correlation by design —
    the feature deliberately mixes smoothness with periodicity, which is
    what separates the Trojan envelope classes.
    """
    rng = np.random.default_rng(1)
    chips = rng.integers(0, 2, N // 4)
    env = 0.1 + 0.9 * np.repeat(chips, 4).astype(float)
    feats = envelope_features(env, FS)
    assert feats.bimodality > 5.0 / 9.0
    assert feats.autocorr_peak < 0.7


def test_feature_vector_shape_and_dict():
    env = 1.0 + 0.5 * np.sin(2 * np.pi * 1e6 * _t())
    feats = envelope_features(env, FS)
    assert feats.vector().shape == (7,)
    assert set(feats.as_dict()) >= {"ripple", "dominant_freq", "duty_cycle"}


def test_envelope_validation():
    with pytest.raises(AnalysisError):
        envelope_features(np.ones(4), FS)
    with pytest.raises(AnalysisError):
        envelope_features(np.zeros(64), FS)
