"""Backend session lifecycle: persistent pools, arenas, and caches.

Pool backends are long-lived sessions now — workers survive across
dispatches, ``close()`` is restart-transparent, the shared-memory
input arena is reused (and grown) in place, and nothing leaks into
``/dev/shm`` once results are dropped and the session is closed.
"""

import gc
import multiprocessing
import os

import numpy as np
import pytest

from repro.engine import (
    MeasurementEngine,
    ProcessBackend,
    SerialBackend,
    SharedMemoryBackend,
    close_backend_sessions,
    kernel_spectrum_stats,
    resolve_backend,
)

SPAWN_AVAILABLE = "spawn" in multiprocessing.get_all_start_methods()


def _worker_pid(payload):
    """Module-level so spawned workers can unpickle it."""
    return os.getpid()


def _shm_names():
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


# -- pool persistence --------------------------------------------------------


def test_pool_reused_across_dispatches():
    backend = ProcessBackend(max_workers=1)
    try:
        first = backend.map(_worker_pid, [None, None])
        second = backend.map(_worker_pid, [None, None])
        assert set(first) == set(second)
        assert set(first) != {os.getpid()}
    finally:
        backend.close()


def test_close_then_transparent_restart():
    backend = ProcessBackend(max_workers=1)
    try:
        before = backend.map(_worker_pid, [None, None])
        backend.close()
        after = backend.map(_worker_pid, [None, None])
        assert set(before) != set(after)
    finally:
        backend.close()


def test_single_payload_runs_inline():
    backend = ProcessBackend(max_workers=2)
    try:
        assert backend.map(_worker_pid, [None]) == [os.getpid()]
    finally:
        backend.close()


# -- session registry --------------------------------------------------------


def test_named_backends_resolve_to_shared_sessions():
    a = resolve_backend("shared", workers=2)
    b = resolve_backend("shared", workers=2)
    assert a is b
    assert resolve_backend("process", workers=2) is not a
    assert resolve_backend("shared", workers=4) is not a


def test_resolve_backend_passthrough_and_default():
    backend = SerialBackend()
    assert resolve_backend(backend) is backend
    assert isinstance(resolve_backend(None), SerialBackend)


def test_close_backend_sessions_is_restart_transparent():
    a = resolve_backend("process", workers=2)
    close_backend_sessions()
    # Sessions stay registered; the next dispatch restarts the pool.
    assert resolve_backend("process", workers=2) is a
    assert a.map(_worker_pid, [None, None])
    close_backend_sessions()


# -- start methods -----------------------------------------------------------


@pytest.mark.parametrize(
    "start_method",
    ["fork"] + (["spawn"] if SPAWN_AVAILABLE else []),
)
@pytest.mark.parametrize("backend_cls", [ProcessBackend, SharedMemoryBackend])
def test_start_methods_bit_identical(
    config, psa, campaign, backend_cls, start_method
):
    recs = campaign.records("baseline", 4)
    reference = psa.render(recs, trace_indices=[1, 2, 3, 4], sensors=[10])
    backend = backend_cls(max_workers=2, start_method=start_method)
    engine = MeasurementEngine(config, amplifier=psa.amplifier, backend=backend)
    try:
        batch = engine.render(
            psa.coupling, recs, trace_indices=[1, 2, 3, 4],
            receiver_indices=[10],
        )
        assert np.array_equal(batch.samples, reference.samples)
    finally:
        engine.close()


def test_invalid_start_method_rejected():
    with pytest.raises(Exception, match="start method"):
        ProcessBackend(max_workers=2, start_method="teleport")


# -- shared-memory arena -----------------------------------------------------


def test_arena_reused_across_dispatches(config, psa, campaign):
    backend = SharedMemoryBackend(max_workers=2)
    engine = MeasurementEngine(config, amplifier=psa.amplifier, backend=backend)
    try:
        recs = campaign.records("baseline", 4)
        reference = psa.render(recs, trace_indices=[1, 2, 3, 4], sensors=[10])
        for _ in range(3):
            batch = engine.render(
                psa.coupling, recs, trace_indices=[1, 2, 3, 4],
                receiver_indices=[10],
            )
            assert np.array_equal(batch.samples, reference.samples)
        # Same-size dispatches fit the arena allocated on first use.
        assert backend.arena_generations == 1
    finally:
        engine.close()


def test_arena_grows_in_place(config, psa, campaign):
    backend = SharedMemoryBackend(max_workers=2)
    engine = MeasurementEngine(config, amplifier=psa.amplifier, backend=backend)
    try:
        small = campaign.records("baseline", 2)
        engine.render(
            psa.coupling, small, trace_indices=[1, 2], receiver_indices=[10]
        )
        first_capacity = backend.arena_capacity
        assert backend.arena_generations == 1
        # Distinct records defeat payload dedup, forcing a bigger plan.
        big = campaign.records("T1", 12)
        engine.render(
            psa.coupling, big, trace_indices=list(range(12)),
            receiver_indices=[10],
        )
        assert backend.arena_generations == 2
        assert backend.arena_capacity > first_capacity
        # Capacities are powers of two.
        cap = backend.arena_capacity
        assert cap & (cap - 1) == 0
    finally:
        engine.close()


def test_no_leaked_segments_after_close(config, psa, campaign):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    gc.collect()
    before = _shm_names()
    backend = SharedMemoryBackend(max_workers=2)
    engine = MeasurementEngine(config, amplifier=psa.amplifier, backend=backend)
    recs = campaign.records("baseline", 4)
    batches = [
        engine.render(
            psa.coupling, recs, trace_indices=[1, 2, 3, 4],
            receiver_indices=[10],
        )
        for _ in range(2)
    ]
    assert _shm_names() - before  # the arena (at least) is live
    del batches
    gc.collect()
    engine.close()
    assert _shm_names() - before == set()


# -- dispatch-level caches ---------------------------------------------------


def test_capture_plan_cache_hits(config, psa, campaign):
    engine = MeasurementEngine(config, amplifier=psa.amplifier)
    recs = campaign.records("baseline", 2)
    engine.render(
        psa.coupling, recs, trace_indices=[1, 2], receiver_indices=[10, 2]
    )
    after_first = engine.plan_cache_stats()
    assert after_first["size"] == 2
    engine.render(
        psa.coupling, recs, trace_indices=[3, 4], receiver_indices=[10, 2]
    )
    after_second = engine.plan_cache_stats()
    assert after_second["misses"] == after_first["misses"]
    assert after_second["hits"] > after_first["hits"]
    engine.close()
    assert engine.plan_cache_stats()["size"] == 0


def test_kernel_spectrum_cache_hits(psa, campaign):
    recs = campaign.records("baseline", 1)
    psa.render(recs, trace_indices=[1], sensors=[10])
    before = kernel_spectrum_stats()
    psa.render(recs, trace_indices=[2], sensors=[10])
    after = kernel_spectrum_stats()
    assert after["misses"] == before["misses"]
    assert after["hits"] > before["hits"]


def test_resample_plan_cache_hits():
    from repro.dsp.transforms import resample_plan_stats, resample_spectra

    rng = np.random.default_rng(7)
    freqs = np.linspace(0.0, 264e6, 4225)
    amps = rng.random((3, freqs.size))
    grid, first = resample_spectra(freqs, amps)
    before = resample_plan_stats()
    grid2, second = resample_spectra(freqs, amps)
    after = resample_plan_stats()
    assert after["misses"] == before["misses"]
    assert after["hits"] == before["hits"] + 1
    assert np.array_equal(grid, grid2)
    assert np.array_equal(first, second)
