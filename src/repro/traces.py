"""The library-wide measurement trace type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .errors import MeasurementError


@dataclass(frozen=True)
class Trace:
    """One captured voltage trace.

    Attributes
    ----------
    samples:
        Voltage samples [V].
    fs:
        Sampling rate [Hz].
    label:
        Receiver identity, e.g. ``"psa_sensor_10"``.
    scenario:
        Workload scenario that produced it, e.g. ``"T1"``.
    meta:
        Free-form metadata (trace index, temperature...).
    """

    samples: np.ndarray
    fs: float
    label: str = ""
    scenario: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=float)
        if samples.ndim != 1 or samples.size < 2:
            raise MeasurementError("a trace needs a 1-D sample array (>= 2)")
        if self.fs <= 0:
            raise MeasurementError(f"invalid sampling rate {self.fs}")
        object.__setattr__(self, "samples", samples)

    @property
    def n_samples(self) -> int:
        """Sample count."""
        return int(self.samples.size)

    @property
    def duration(self) -> float:
        """Trace duration [s]."""
        return self.samples.size / self.fs

    def time(self) -> np.ndarray:
        """Time axis [s]."""
        return np.arange(self.samples.size) / self.fs

    def rms(self) -> float:
        """RMS voltage [V]."""
        return float(np.sqrt(np.mean(self.samples**2)))

    def with_label(self, label: str) -> "Trace":
        """Copy with a new label."""
        return Trace(
            samples=self.samples.copy(),
            fs=self.fs,
            label=label,
            scenario=self.scenario,
            meta=dict(self.meta),
        )
