"""Coupling matrices and EMF synthesis.

``CouplingMatrix`` maps per-region currents to flux linkage in every
receiver (PSA coils, probes, single coil); :func:`emf_waveforms` turns
an :class:`~repro.chip.power.ActivityRecord` into induced-voltage
waveforms by convolving the per-cycle charge train with the
differentiated current kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np
from scipy import signal as scipy_signal

from ..chip.floorplan import DIE_SIZE, REGION_LOOP_AREA, Floorplan, Rect
from ..chip.power import ActivityRecord, charge_per_toggle, emf_kernel
from ..config import SimConfig
from ..errors import ConfigError
from .loops import turns_flux_factor

#: Effective area of the package/bond-wire supply loop [m^2].  The
#: total chip current returns through bondwires and the package plane,
#: forming a die-scale loop — the dominant source for external probes.
BOND_LOOP_AREA = 3.0e-6

#: Height of the bond-loop's equivalent dipole below the die surface [m].
BOND_LOOP_Z = -0.4e-3


@dataclass(frozen=True)
class Receiver:
    """A flux-sensing structure (coil/probe).

    Attributes
    ----------
    name:
        Identifier, e.g. ``"psa_sensor_10"`` or ``"langer_lf1"``.
    turns:
        Enclosed rectangle of each series turn.
    z:
        Height of the sensing plane above the switching layer [m].
    r_series:
        Series resistance of the winding (wire + switches) [ohm].
    inductance:
        Series self-inductance estimate [H].
    ambient_gain:
        Effective area [m^2] multiplying the ambient field pickup
        (large for external probes, tiny for shielded on-chip coils).
    gain_jitter:
        Relative per-measurement gain drift (1-sigma).  External probes
        are repositioned between captures and their fixtures drift;
        fabricated on-chip coils have none.  This drift is the dominant
        reason conventional probe statistics need thousands of traces.
    """

    name: str
    turns: List[Rect]
    z: float
    r_series: float
    inductance: float = 0.0
    ambient_gain: float = 0.0
    gain_jitter: float = 0.0

    @property
    def total_turn_area(self) -> float:
        """Sum of the enclosed areas of all turns [m^2]."""
        return float(sum(turn.area for turn in self.turns))


class CouplingMatrix:
    """Flux-linkage matrix between floorplan regions and receivers.

    Parameters
    ----------
    floorplan:
        Provides the dipole-pair source geometry.
    receivers:
        Sensing structures.
    loop_area:
        Effective supply-loop area per region [m^2] (dipole moment per
        ampere).
    points_per_side:
        Line-integral resolution of the flux computation.
    scale:
        Dimensionless absolute-coupling calibration applied uniformly
        to the region-dipole matrix (see :mod:`repro.calibration`);
        relative comparisons between receivers are unaffected.
    bond_scale:
        Calibration of the package/bond-loop coupling (the global
        total-current term).
    return_fraction:
        Weight of the local return pole (see
        :data:`repro.calibration.RETURN_FRACTION`).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        receivers: Sequence[Receiver],
        loop_area: float = REGION_LOOP_AREA,
        points_per_side: int = 48,
        scale: float = 1.0,
        bond_scale: float | None = None,
        return_fraction: float | None = None,
    ):
        if not receivers:
            raise ConfigError("need at least one receiver")
        if scale <= 0:
            raise ConfigError(f"coupling scale must be positive, got {scale}")
        from ..calibration import BOND_COUPLING_SCALE, RETURN_FRACTION

        self.floorplan = floorplan
        self.receivers = list(receivers)
        self.loop_area = loop_area
        self.points_per_side = points_per_side
        self.scale = scale
        self.bond_scale = (
            BOND_COUPLING_SCALE if bond_scale is None else bond_scale
        )
        self.return_fraction = (
            RETURN_FRACTION if return_fraction is None else return_fraction
        )
        if not 0.0 <= self.return_fraction <= 1.0:
            raise ConfigError("return_fraction must be within [0, 1]")
        self.matrix = self._build()
        self.bond_row = self._build_bond_row()

    def _build(self) -> np.ndarray:
        """Region-dipole flux matrix, with area smearing.

        A region's current is distributed, not a point: each source
        pole is averaged over a 2x2 sample grid inside its region, and
        each return pole over the same span along its stripe.  The
        smearing removes the artificial sensitivity of thin-loop flux
        to a point dipole grazing a coil wire.
        """
        sources, returns = self.floorplan.dipole_pairs()
        quarter = self.floorplan.region_size / 4.0
        source_offsets = np.array(
            [[-quarter, -quarter], [quarter, -quarter],
             [-quarter, quarter], [quarter, quarter]]
        )
        return_offsets = np.array(
            [[0.0, -quarter], [0.0, quarter]]
        )
        rows = []
        for receiver in self.receivers:
            flux_pos = np.zeros(sources.shape[0])
            for offset in source_offsets:
                flux_pos += turns_flux_factor(
                    receiver.turns,
                    receiver.z,
                    sources + offset,
                    0.0,
                    self.points_per_side,
                )
            flux_pos /= len(source_offsets)
            flux_neg = np.zeros(returns.shape[0])
            for offset in return_offsets:
                flux_neg += turns_flux_factor(
                    receiver.turns,
                    receiver.z,
                    returns + offset,
                    0.0,
                    self.points_per_side,
                )
            flux_neg /= len(return_offsets)
            rows.append(
                (flux_pos - self.return_fraction * flux_neg)
                * self.loop_area
                * self.scale
            )
        matrix = np.asarray(rows)
        matrix.setflags(write=False)
        return matrix

    def _build_bond_row(self) -> np.ndarray:
        """Per-receiver flux linkage with the package loop [Wb/A]."""
        center = np.array([[DIE_SIZE / 2.0, DIE_SIZE / 2.0]])
        row = np.zeros(len(self.receivers))
        for index, receiver in enumerate(self.receivers):
            factor = turns_flux_factor(
                receiver.turns,
                receiver.z,
                center,
                BOND_LOOP_Z,
                self.points_per_side,
            )
            row[index] = factor[0] * BOND_LOOP_AREA * self.bond_scale
        row.setflags(write=False)
        return row

    @property
    def n_receivers(self) -> int:
        """Number of receivers."""
        return len(self.receivers)

    def row(self, name: str) -> np.ndarray:
        """Coupling row [Wb/A per region] of the named receiver."""
        for index, receiver in enumerate(self.receivers):
            if receiver.name == name:
                return self.matrix[index]
        raise ConfigError(f"no receiver named {name!r}")

    def index_of(self, name: str) -> int:
        """Index of the named receiver."""
        for index, receiver in enumerate(self.receivers):
            if receiver.name == name:
                return index
        raise ConfigError(f"no receiver named {name!r}")


def _charge_train(
    amplitudes: np.ndarray, config: SimConfig, sample_offset: int
) -> np.ndarray:
    """Spread per-cycle charges onto the fast-time grid as impulses."""
    n_receivers, n_cycles = amplitudes.shape
    train = np.zeros((n_receivers, config.n_samples))
    positions = np.arange(n_cycles) * config.oversample + sample_offset
    positions = positions[positions < config.n_samples]
    train[:, positions] = amplitudes[:, : positions.size]
    return train


def emf_waveforms(
    coupling: CouplingMatrix,
    record: ActivityRecord,
    switch_cap: float | None = None,
) -> np.ndarray:
    """Induced EMF at every receiver, shape ``(n_receivers, n_samples)``.

    The main-circuit logic (and rising-phase Trojans such as T4's
    synchronous power virus) switches at the clock rising edge;
    falling-phase Trojan payloads render half a cycle later — this
    phase structure survives into the sideband spectrum.
    """
    config = record.config
    from ..chip.power import MEAN_SWITCH_CAP

    cap = MEAN_SWITCH_CAP if switch_cap is None else switch_cap
    q_per_toggle = charge_per_toggle(config.vdd, cap)

    # (n_receivers, n_cycles) charge amplitudes: region dipoles plus the
    # global package-loop (total-current) term.
    rising = record.main + record.trojan_rising
    main_q = coupling.matrix @ (rising * q_per_toggle)
    trojan_q = coupling.matrix @ (record.trojan * q_per_toggle)
    main_q += np.outer(coupling.bond_row, rising.sum(axis=0) * q_per_toggle)
    trojan_q += np.outer(
        coupling.bond_row, record.trojan.sum(axis=0) * q_per_toggle
    )

    kernel = emf_kernel(config)
    half_cycle = config.oversample // 2
    emf = _convolve_train(_charge_train(main_q, config, 0), kernel)
    emf += _convolve_train(
        _charge_train(trojan_q, config, half_cycle), kernel
    )
    return emf


def _convolve_train(train: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolve each row with the kernel, keeping the input length."""
    full = scipy_signal.fftconvolve(train, kernel[None, :], mode="full")
    return full[:, : train.shape[1]]
