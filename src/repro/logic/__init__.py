"""Event-driven gate-level logic simulation substrate.

A compact digital simulator used for the structural pieces of the test
chip that the paper describes at the gate level: the fully combinational
PSA_sel 4-to-16 decoder that drives the T-gate control lines, and the
Trojan trigger circuits (21-bit counter comparator, plaintext matcher).

The simulator is deliberately small: four-state-free (0/1 only, with an
explicit unknown at reset), inertial-delay gates, and a binary-heap
event queue.
"""

from .signals import Wire, LOW, HIGH, UNKNOWN
from .gates import GATE_EVALUATORS, Gate
from .simulator import LogicSimulator
from .components import (
    build_and_tree,
    build_counter,
    build_decoder_4to16,
    build_equality_comparator,
)

__all__ = [
    "Wire",
    "LOW",
    "HIGH",
    "UNKNOWN",
    "Gate",
    "GATE_EVALUATORS",
    "LogicSimulator",
    "build_and_tree",
    "build_counter",
    "build_decoder_4to16",
    "build_equality_comparator",
]
