"""T1 — amplitude-modulation radio carrier Trojan.

"T1 is an amplitude modulation radio carrier Trojan capable of emitting
an electromagnetic (EM) wave at a frequency of 750 KHz ... activated
periodically when a counter reaches 21'h1FFFFF under the 33 MHz clock."

The trigger is a free-running 21-bit counter; on terminal count the
radio activates for a programmable burst.  While active, the payload's
round-synchronous switching is amplitude-modulated by the 750 kHz
carrier envelope, which is what the zero-span trace at 48 MHz recovers
as a smooth sinusoid (Figure 5a).
"""

from __future__ import annotations

import math

from ..errors import WorkloadError
from .base import CycleContext, Trojan, block_pattern

#: The 21-bit terminal count from the paper.
T1_TERMINAL = 0x1FFFFF

#: Carrier frequency [Hz].
T1_CARRIER_HZ = 750e3


class T1AmCarrier(Trojan):
    """T1: AM radio carrier, counter-triggered.

    Parameters
    ----------
    enabled:
        Master enable (the Trojan exists in the chip either way; when
        False the payload never activates but the counter still runs).
    start_count:
        Initial counter value.  The real period is 2^21 cycles
        (~63.6 ms at 33 MHz); experiments that must observe an
        activation inside a short window set this close to the
        terminal count.
    burst_cycles:
        Payload-active duration after each terminal count.
    payload_fraction:
        Fraction of payload cells switching at the burst peak.
    """

    name = "T1"

    def __init__(
        self,
        enabled: bool = True,
        start_count: int = 0,
        burst_cycles: int = 1 << 20,
        payload_fraction: float = 0.55,
    ):
        super().__init__(enabled)
        if not 0 <= start_count <= T1_TERMINAL:
            raise WorkloadError(
                f"start_count {start_count:#x} outside 0..{T1_TERMINAL:#x}"
            )
        if burst_cycles < 1:
            raise WorkloadError("burst_cycles must be >= 1")
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        self.start_count = start_count
        self.burst_cycles = burst_cycles
        self.payload_fraction = payload_fraction
        self._counter = start_count
        self._burst_remaining = 0
        self._last_cycle: int | None = None

    def reset(self) -> None:
        self._counter = self.start_count
        self._burst_remaining = 0
        self._last_cycle = None

    # -- trigger -------------------------------------------------------------

    def _advance_to(self, cycle: int) -> None:
        """Step the counter/burst state up to ``cycle`` (inclusive)."""
        if self._last_cycle is None:
            steps = 1
        else:
            steps = cycle - self._last_cycle
            if steps < 0:
                raise WorkloadError(
                    "T1 observed cycles out of order "
                    f"({self._last_cycle} -> {cycle}); call reset() between "
                    "traces that restart time"
                )
        self._last_cycle = cycle
        for _ in range(steps):
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
            if self._counter == T1_TERMINAL:
                self._counter = 0
                if self.enabled:
                    # The burst spans exactly burst_cycles cycles,
                    # starting with the terminal-count cycle itself.
                    self._burst_remaining = self.burst_cycles
            else:
                self._counter += 1

    def is_active(self, ctx: CycleContext) -> bool:
        self._advance_to(ctx.cycle)
        return self.enabled and self._burst_remaining > 0

    # -- payload -------------------------------------------------------------

    def payload_toggles(self, ctx: CycleContext) -> float:
        envelope = 0.5 * (
            1.0 + math.sin(2.0 * math.pi * T1_CARRIER_HZ * ctx.time_s)
        )
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * envelope * burst

    def trigger_toggles(self, ctx: CycleContext) -> float:
        # A 21-bit ripple counter toggles on average ~2 bits per cycle.
        return 2.0
