"""Named run-time monitoring presets (CLI ``repro monitor --preset``).

A preset scripts one complete monitoring session — stream lengths,
chunking, detector tuning — and scales to a fleet by cycling the
catalog Trojans over the members (chip ``i`` gets Trojan ``T{(i % 4) +
1}`` and seed ``base_seed + i``), so ``repro monitor --fleet 4``
exercises all four archetypes concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..config import SimConfig
from ..core.analysis.detector import DetectorConfig
from ..errors import AnalysisError, unknown_name_error
from ..store import ArtifactStore
from .events import EventBus
from .fleet import ChipMonitor, ChipSpec, FleetScheduler, build_chip_monitor
from .pipeline import PipelineConfig

#: The four catalog Trojans, in paper order (fleet cycling order).
FLEET_TROJANS: Tuple[str, ...] = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class MonitorPreset:
    """One named monitoring configuration.

    Attributes
    ----------
    name:
        Preset identity.
    trojan:
        Trojan of a single-chip session (fleets cycle the catalog).
    n_baseline, n_active:
        Span lengths of the scripted stream.
    chunk:
        Windows per rendered chunk.
    warmup:
        Detector warm-up traces.
    detector_name:
        Registered detection method of the MONITOR stage (see
        :mod:`repro.detectors`; the CLI's ``--detector`` overrides
        this per session).
    localize:
        Run the LOCALIZE stage on escalation.
    localize_records:
        Records per population in the LOCALIZE stage.
    description:
        Human-readable summary.
    """

    name: str
    trojan: str = "T4"
    n_baseline: int = 8
    n_active: int = 6
    chunk: int = 8
    warmup: int = 6
    detector_name: str = "welford"
    localize: bool = True
    localize_records: int = 2
    description: str = ""

    def detector(self) -> DetectorConfig:
        """Detector tuning of the preset."""
        return DetectorConfig(warmup=self.warmup)

    def pipeline_config(self) -> PipelineConfig:
        """Stage tuning of the preset (RASC ADC always in the loop)."""
        return PipelineConfig(
            detector=self.detector(),
            detector_name=self.detector_name,
            localize=self.localize,
            localize_records=self.localize_records,
        )

    def specs(
        self, n_chips: int, base_seed: Optional[int] = None
    ) -> Tuple[ChipSpec, ...]:
        """Fleet member recipes: Trojans cycle, seeds step.

        A single chip (``n_chips=1``) keeps the preset's own Trojan;
        fleets cycle the full catalog so every archetype is monitored.

        The ``welford`` self-baseline calibrates itself per stream, so
        it watches every sensor.  A reference-free method compares
        against an absolute threshold calibrated for the run-time
        monitor sensor's placement — sensors over the AES core see
        40+ dB of legitimate block-harmonic excess — so those presets
        monitor that sensor only.
        """
        from ..sweep.grid import MONITOR_SENSOR

        if n_chips < 1:
            raise AnalysisError("need at least one chip")
        sensors = None if self.detector_name == "welford" else (MONITOR_SENSOR,)
        seed = SimConfig().seed if base_seed is None else base_seed
        specs = []
        for index in range(n_chips):
            trojan = (
                self.trojan
                if n_chips == 1
                else FLEET_TROJANS[index % len(FLEET_TROJANS)]
            )
            specs.append(
                ChipSpec(
                    chip_id=f"chip{index}",
                    trojan=trojan,
                    seed=seed + index,
                    n_baseline=self.n_baseline,
                    n_active=self.n_active,
                    sensors=sensors,
                    chunk=self.chunk,
                    detector=self.detector(),
                )
            )
        return tuple(specs)


#: Named presets.
MONITOR_PRESETS: Dict[str, MonitorPreset] = {
    preset.name: preset
    for preset in [
        MonitorPreset(
            name="smoke",
            trojan="T4",
            n_baseline=6,
            n_active=4,
            chunk=4,
            warmup=4,
            localize_records=2,
            description="tiny CI stream (T4, 10 windows)",
        ),
        MonitorPreset(
            name="paper",
            description=(
                "Section VI-D monitoring stream (8 quiet + 6 active "
                "windows, warm-up 6, RASC ADC in the loop)"
            ),
        ),
        MonitorPreset(
            name="soak",
            n_baseline=24,
            n_active=12,
            chunk=16,
            warmup=8,
            description="longer self-baseline soak (36 windows per chip)",
        ),
    ]
}


def build_preset(name: str) -> MonitorPreset:
    """Look up a named preset."""
    if name not in MONITOR_PRESETS:
        raise unknown_name_error(
            "monitor preset", name, sorted(MONITOR_PRESETS)
        )
    return MONITOR_PRESETS[name]


def build_fleet(
    preset: "str | MonitorPreset",
    n_chips: int = 1,
    config: Optional[SimConfig] = None,
    bus: Optional[EventBus] = None,
    queue_depth: int = 2,
    monitor_factory: Callable[..., ChipMonitor] = build_chip_monitor,
    store: Optional[ArtifactStore] = None,
) -> FleetScheduler:
    """Assemble a ready-to-run fleet from a preset.

    Parameters
    ----------
    preset:
        Preset name or instance.
    n_chips:
        Fleet size (1 = single-chip session).
    config:
        Base simulation config (backend/workers flow through to every
        member's engine).
    bus:
        Event bus shared by every member (e.g. one JSONL sink for the
        whole fleet).
    queue_depth:
        Backpressure bound per member.
    monitor_factory:
        Override for tests (must match :func:`build_chip_monitor`).
    store:
        Optional :class:`~repro.store.ArtifactStore` shared by every
        member's record memo (warm-starts repeated sessions).
    """
    if isinstance(preset, str):
        preset = build_preset(preset)
    tuning = preset.pipeline_config()
    monitors = [
        monitor_factory(
            spec, config=config, pipeline_config=tuning, bus=bus, store=store
        )
        for spec in preset.specs(n_chips, base_seed=(config or SimConfig()).seed)
    ]
    return FleetScheduler(monitors, queue_depth=queue_depth)
