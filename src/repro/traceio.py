"""Trace archive I/O: save/load trace collections as ``.npz`` files.

The archive layout is flat and self-describing: each trace stores its
sample array plus a JSON metadata blob, so archives survive library
version changes and can be inspected with plain numpy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from .errors import TraceIOError
from .traces import Trace

_FORMAT_VERSION = 1


def save_traces(path: "str | Path", traces: Sequence[Trace]) -> Path:
    """Write traces to an ``.npz`` archive; returns the path written."""
    if not traces:
        raise TraceIOError("refusing to write an empty trace archive")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: Dict[str, np.ndarray] = {}
    index: List[Dict[str, object]] = []
    for number, trace in enumerate(traces):
        key = f"trace_{number:05d}"
        arrays[key] = trace.samples
        meta = dict(trace.meta)
        try:
            json.dumps(meta)
        except TypeError as exc:
            raise TraceIOError(
                f"trace {number} metadata is not JSON-serializable: {exc}"
            ) from exc
        index.append(
            {
                "key": key,
                "fs": trace.fs,
                "label": trace.label,
                "scenario": trace.scenario,
                "meta": meta,
            }
        )
    header = {"version": _FORMAT_VERSION, "traces": index}
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_traces(path: "str | Path") -> List[Trace]:
    """Read back an archive written by :func:`save_traces`."""
    path = Path(path)
    if not path.exists():
        raise TraceIOError(f"no trace archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        if "__header__" not in archive:
            raise TraceIOError(f"{path} is not a repro trace archive")
        header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise TraceIOError(
                f"unsupported archive version {header.get('version')!r}"
            )
        traces = []
        for entry in header["traces"]:
            key = entry["key"]
            if key not in archive:
                raise TraceIOError(f"archive missing array {key!r}")
            traces.append(
                Trace(
                    samples=archive[key],
                    fs=float(entry["fs"]),
                    label=str(entry["label"]),
                    scenario=str(entry["scenario"]),
                    meta=dict(entry["meta"]),
                )
            )
    return traces
