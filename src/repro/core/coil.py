"""Coil synthesis on the PSA lattice.

A programmed sensor is a concentric multi-turn rectangular spiral: turn
``k`` runs along lattice wires inset ``k`` pitches from the outer
boundary, successive turns bridged at a corner crosspoint (Figure 1b
shows the 2-turn example).  Every crosspoint the winding passes through
contributes one T-gate's on-resistance; every inter-crosspoint segment
contributes lattice-wire resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..chip.floorplan import Rect
from ..em.coupling import Receiver
from ..em.devices import (
    WIRE_INDUCTANCE_PER_M,
    tgate_resistance,
    wire_resistance,
)
from ..errors import CoilSynthesisError
from .grid import N_WIRES, PITCH, WIRE_WIDTH, Crosspoint, PsaGrid

#: Height of the coil plane (M7/M8) above the switching layer [m].
COIL_Z = 3.0e-6

#: Residual ambient pickup of an on-chip coil under the package [m^2].
ONCHIP_AMBIENT_GAIN = 2.0e-9


@dataclass(frozen=True)
class Coil:
    """A synthesized PSA coil.

    Attributes
    ----------
    name:
        Identity used for grid ownership and receiver naming.
    turn_rects:
        Enclosed rectangle of each turn, outermost first [m].
    crosspoints:
        Lattice crosspoints whose T-gates must be on.
    n_tgates:
        T-gates in the series winding path.
    wire_length:
        Total winding wire length [m].
    """

    name: str
    turn_rects: List[Rect]
    crosspoints: Set[Crosspoint]
    n_tgates: int
    wire_length: float

    @property
    def n_turns(self) -> int:
        """Number of series turns."""
        return len(self.turn_rects)

    @property
    def enclosed_area(self) -> float:
        """Total flux-linking area (sum over turns) [m^2]."""
        return sum(rect.area for rect in self.turn_rects)

    def resistance(self, vdd: float = 1.2, temperature_c: float = 25.0) -> float:
        """Series resistance of the winding [ohm]."""
        return self.n_tgates * tgate_resistance(
            vdd, temperature_c
        ) + wire_resistance(self.wire_length, WIRE_WIDTH)

    def inductance(self) -> float:
        """Rule-of-thumb series inductance [H]."""
        return WIRE_INDUCTANCE_PER_M * self.wire_length

    def to_receiver(
        self, vdd: float = 1.2, temperature_c: float = 25.0
    ) -> Receiver:
        """EM receiver view of this coil."""
        return Receiver(
            name=self.name,
            turns=list(self.turn_rects),
            z=COIL_Z,
            r_series=self.resistance(vdd, temperature_c),
            inductance=self.inductance(),
            ambient_gain=ONCHIP_AMBIENT_GAIN,
        )

    def program(self, grid: PsaGrid) -> None:
        """Turn on this coil's switches (atomic, ownership-checked)."""
        grid.program(self.crosspoints, owner=self.name)

    def release(self, grid: PsaGrid) -> None:
        """Turn this coil's switches back off."""
        grid.release(self.name)


def synthesize_rect_coil(
    name: str,
    col0: int,
    row0: int,
    size: int,
    turns: int,
) -> Coil:
    """Synthesize a concentric rectangular spiral coil.

    Parameters
    ----------
    name:
        Coil identity.
    col0, row0:
        Lattice indices of the outer turn's lower-left crosspoint.
    size:
        Outer turn side length in lattice pitches.
    turns:
        Number of concentric turns (each inset one pitch).

    Raises
    ------
    CoilSynthesisError
        If the coil does not fit the lattice or the turn count exceeds
        what the size allows.
    """
    if size < 2:
        raise CoilSynthesisError(f"coil size must be >= 2 pitches, got {size}")
    if turns < 1:
        raise CoilSynthesisError(f"coil needs >= 1 turn, got {turns}")
    max_turns = (size - 2) // 2 + 1
    if turns > max_turns:
        raise CoilSynthesisError(
            f"{turns} turns do not fit a {size}-pitch coil "
            f"(max {max_turns})"
        )
    if col0 < 0 or row0 < 0 or col0 + size >= N_WIRES or row0 + size >= N_WIRES:
        raise CoilSynthesisError(
            f"coil [{col0}..{col0+size}] x [{row0}..{row0+size}] exceeds "
            f"the {N_WIRES}-wire lattice"
        )

    turn_rects: List[Rect] = []
    crosspoints: Set[Crosspoint] = set()
    n_tgates = 0
    wire_length = 0.0
    for k in range(turns):
        lo_c, lo_r = col0 + k, row0 + k
        hi_c, hi_r = col0 + size - k, row0 + size - k
        side = hi_c - lo_c
        turn_rects.append(
            Rect(lo_c * PITCH, lo_r * PITCH, hi_c * PITCH, hi_r * PITCH)
        )
        crosspoints.update(_corner_crosspoints(lo_c, lo_r, hi_c, hi_r))
        # Straight runs stay on a single M7/M8 wire; the two layers only
        # join where a T-gate closes a crosspoint, so each turn needs
        # exactly its four corner switches.
        n_tgates += 4
        wire_length += 4 * side * PITCH
    # Inter-turn bridges: one diagonal jog (one extra T-gate and one
    # pitch of wire) per adjacent turn pair.
    if turns > 1:
        n_tgates += turns - 1
        wire_length += (turns - 1) * PITCH
    return Coil(
        name=name,
        turn_rects=turn_rects,
        crosspoints=crosspoints,
        n_tgates=n_tgates,
        wire_length=wire_length,
    )


def _corner_crosspoints(
    lo_c: int, lo_r: int, hi_c: int, hi_r: int
) -> Set[Crosspoint]:
    """The four corner crosspoints of a rectangular turn."""
    return {(lo_c, lo_r), (hi_c, lo_r), (hi_c, hi_r), (lo_c, hi_r)}
