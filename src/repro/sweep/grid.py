"""Sweep grids: which detection cells to evaluate.

A *cell* is one complete detection scenario — a Trojan, the matched
Trojan-inactive reference workload, a sensor subset and a detector
tuning — evaluated over a baseline-then-active monitoring stream.  A
*grid* is an ordered set of cells plus rendering options; the named
presets reproduce the paper's Table I and Section VI-D artifacts and
give the CLI / benchmarks stable entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.analysis.detector import DetectorConfig
from ..detectors import available as detectors_available
from ..errors import AnalysisError, unknown_name_error
from ..workloads.campaign import StreamSegment
from ..workloads.scenarios import reference_for, scenario_by_name

#: The sensor the run-time monitor watches by default (covers the
#: Trojan cluster on the paper's chip).
MONITOR_SENSOR = 10

#: The four catalog Trojans, in paper order.
ALL_TROJANS: Tuple[str, ...] = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class SweepCell:
    """One detection scenario of a sweep grid.

    Attributes
    ----------
    trojan:
        Trojan-active scenario name (``"T1"``..``"T4"``).
    reference:
        Trojan-inactive workload of the stream's first span; ``"auto"``
        resolves the matched reference (T2 pairs with ``T2_ref``).
    sensors:
        Sensor subset monitored by the cell (one detector stream each).
    detector:
        Rolling-Welford detector tuning for every stream of the cell
        (consumed by the ``welford`` method; reference-free methods
        carry their own calibrated defaults).
    detector_name:
        Registered detection method evaluating the cell (see
        :mod:`repro.detectors`).
    n_baseline, n_active:
        Span lengths of the monitoring stream; the Trojan activates at
        trace ``n_baseline``.
    baseline_offset, active_offset:
        First workload/RNG trace index of each span — distinct offsets
        are distinct workload epochs (fresh plaintext streams).
    quantize:
        Pass traces through the RASC monitor's auto-ranged ADC before
        feature extraction (the deployed-monitor condition).
    z_threshold:
        Operating point of the reported detection rate (kept separate
        from ``detector.z_threshold``, which drives the alarm stream).
    label:
        Display name (auto-derived when empty).
    """

    trojan: str
    reference: str = "auto"
    sensors: Tuple[int, ...] = (MONITOR_SENSOR,)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    detector_name: str = "welford"
    n_baseline: int = 8
    n_active: int = 6
    baseline_offset: int = 0
    active_offset: int = 500
    quantize: bool = False
    z_threshold: float = 4.0
    label: str = ""

    def __post_init__(self) -> None:
        scenario_by_name(self.trojan)  # validate early
        if self.reference == "auto":
            object.__setattr__(
                self, "reference", reference_for(self.trojan).name
            )
        scenario_by_name(self.reference)
        if self.detector_name not in detectors_available():
            raise unknown_name_error(
                "detector", self.detector_name, detectors_available()
            )
        if not self.sensors:
            raise AnalysisError("cell needs at least one sensor")
        if self.n_baseline < 2 or self.n_active < 2:
            raise AnalysisError(
                "need at least two traces per span for population statistics"
            )
        if self.detector.warmup >= self.n_baseline + self.n_active:
            raise AnalysisError(
                "detector warmup consumes the whole monitoring stream"
            )
        if not self.label:
            label = f"{self.trojan}|{self.reference}@{self.baseline_offset}"
            if self.detector_name != "welford":
                label += f"|{self.detector_name}"
            object.__setattr__(self, "label", label)

    @property
    def trigger_index(self) -> int:
        """Stream index of the first Trojan-active trace.

        An always-on cell references the Trojan scenario itself (its
        chip has no Trojan-quiet condition), so the implant is active
        from the very first trace: any alarm is a true detection, and
        the MTTD clock starts at stream index 0.
        """
        if scenario_by_name(self.reference).always_on:
            return 0
        return self.n_baseline

    @property
    def segments(self) -> List[StreamSegment]:
        """The cell's monitoring stream as campaign segments."""
        return [
            StreamSegment(self.reference, self.n_baseline, self.baseline_offset),
            StreamSegment(self.trojan, self.n_active, self.active_offset),
        ]


@dataclass(frozen=True)
class SweepGrid:
    """An ordered set of cells plus evaluation options.

    Attributes
    ----------
    name:
        Grid identity (report/JSON tag).
    cells:
        Cells in evaluation order.
    keep_features:
        Retain every cell's feature matrix on its result (presets keep
        them for downstream experiment adapters; large benchmark grids
        drop them).
    """

    name: str
    cells: Tuple[SweepCell, ...]
    keep_features: bool = True

    def __post_init__(self) -> None:
        if not self.cells:
            raise AnalysisError("grid has no cells")
        labels = [cell.label for cell in self.cells]
        if len(set(labels)) != len(labels):
            duplicate = next(l for l in labels if labels.count(l) > 1)
            raise AnalysisError(
                f"duplicate cell label {duplicate!r}; give colliding cells "
                "explicit labels"
            )

    @property
    def n_cells(self) -> int:
        """Cells in the grid."""
        return len(self.cells)

    @classmethod
    def product(
        cls,
        name: str,
        trojans: Sequence[str],
        references: Sequence[Tuple[str, int]] = (("auto", 0),),
        sensor_subsets: Sequence[Tuple[int, ...]] = ((MONITOR_SENSOR,),),
        detectors: Sequence[DetectorConfig] = (DetectorConfig(),),
        detector_names: Sequence[str] = ("welford",),
        keep_features: bool = True,
        **cell_kwargs,
    ) -> "SweepGrid":
        """Cartesian grid over {trojan × reference × sensors × detector}.

        ``references`` pairs a scenario name with a workload epoch
        offset, so the same reference scenario at different offsets
        counts as different workload variants.  ``detectors`` varies
        the Welford tuning, ``detector_names`` the detection *method*.
        When an axis has more than one value, it is folded into the
        auto-derived cell labels so every cell stays addressable by
        label (non-``welford`` methods already label themselves).
        """
        cells = []
        for trojan in trojans:
            for reference, offset in references:
                for subset in sensor_subsets:
                    for position, detector in enumerate(detectors):
                        for detector_name in detector_names:
                            suffix = ""
                            if len(sensor_subsets) > 1:
                                suffix += "|s" + "-".join(
                                    str(s) for s in subset
                                )
                            if len(detectors) > 1:
                                suffix += f"|d{position}"
                            cell = SweepCell(
                                trojan=trojan,
                                reference=reference,
                                baseline_offset=offset,
                                sensors=tuple(subset),
                                detector=detector,
                                detector_name=detector_name,
                                **cell_kwargs,
                            )
                            if suffix:
                                cell = replace(
                                    cell, label=cell.label + suffix
                                )
                            cells.append(cell)
        return cls(name=name, cells=tuple(cells), keep_features=keep_features)


# -- named presets -------------------------------------------------------------


def table1_grid(n_traces: int = 10) -> SweepGrid:
    """Table I's PSA column: per-Trojan populations on the monitor sensor.

    Matches the legacy ``PsaMethod.evaluate`` protocol exactly —
    ``n_traces`` per population, inactive epoch at offset 0, active at
    700, no ADC in the loop — so the sweep reproduces the paper row
    (<10 measurements, every Trojan detected) through the batched
    engine.
    """
    detector = DetectorConfig(warmup=max(2, n_traces - 2))
    cells = [
        SweepCell(
            trojan=trojan,
            detector=detector,
            n_baseline=n_traces,
            n_active=n_traces,
            active_offset=700,
            quantize=False,
        )
        for trojan in ALL_TROJANS
    ]
    return SweepGrid(name="table1", cells=tuple(cells))


def mttd_grid(n_baseline: int = 8, n_active: int = 6) -> SweepGrid:
    """Section VI-D: the runtime monitoring stream of each Trojan.

    Matches the legacy ``run_mttd`` stream — RASC ADC in the loop,
    activation at ``n_baseline``, active epoch at offset 500 — so every
    Trojan alarms within the paper's <10-trace / <10 ms budget.
    """
    detector = DetectorConfig(warmup=max(2, n_baseline - 2))
    cells = [
        SweepCell(
            trojan=trojan,
            detector=detector,
            n_baseline=n_baseline,
            n_active=n_active,
            active_offset=500,
            quantize=True,
        )
        for trojan in ALL_TROJANS
    ]
    return SweepGrid(name="mttd", cells=tuple(cells))


def smoke_grid() -> SweepGrid:
    """A tiny two-cell grid for CI smoke runs and quick CLI checks."""
    detector = DetectorConfig(warmup=4)
    cells = [
        SweepCell(
            trojan=trojan,
            detector=detector,
            n_baseline=6,
            n_active=3,
            quantize=False,
        )
        for trojan in ("T1", "T4")
    ]
    return SweepGrid(name="smoke", cells=tuple(cells))


def benchmark_grid() -> SweepGrid:
    """The 4-Trojan × 4-workload throughput grid of ``BENCH_sweep.json``.

    Workload variants: the matched baseline epoch 0, the idle
    (powered, not encrypting) workload, the T2 alternating-plaintext
    reference and a second independent baseline epoch.  Cells share
    reference spans across Trojans and active spans across variants,
    which the orchestrator's record cache exploits.
    """
    references = [
        ("baseline", 0),
        ("idle", 0),
        ("T2_ref", 0),
        ("baseline", 5000),
    ]
    grid = SweepGrid.product(
        "bench4x4",
        trojans=ALL_TROJANS,
        references=references,
        detectors=(DetectorConfig(warmup=4),),
        keep_features=False,
        n_baseline=6,
        n_active=4,
        quantize=False,
    )
    return grid


#: The detection methods compared by the detector grids, in display
#: order.
DETECTOR_NAMES: Tuple[str, ...] = ("welford", "spectral", "persistence")

#: Every Trojan class of the comparative grid: the four triggered
#: catalog Trojans plus the always-on variant family.
DETECTOR_TROJANS: Tuple[str, ...] = ALL_TROJANS + ("T1A", "T2A", "TP")


def detectors_grid(n_baseline: int = 8, n_active: int = 6) -> SweepGrid:
    """The comparative detector × Trojan-class grid.

    Every registered builtin method evaluates every Trojan class —
    the four triggered catalog Trojans and the three always-on
    variants — over the same quantized monitoring stream as the
    ``mttd`` grid.  The resulting detected/missed matrix pins each
    method's structural blind spots (see
    ``tests/data/detector_grid_expected.json``): the self-baseline
    misses the always-on family it absorbs, the reference-free
    methods miss what their excess statistic or persistence horizon
    cannot see.
    """
    return SweepGrid.product(
        "detectors",
        trojans=DETECTOR_TROJANS,
        detectors=(DetectorConfig(warmup=max(2, n_baseline - 2)),),
        detector_names=DETECTOR_NAMES,
        keep_features=False,
        n_baseline=n_baseline,
        n_active=n_active,
        active_offset=500,
        quantize=True,
    )


def detectors_smoke_grid() -> SweepGrid:
    """CI-sized slice of :func:`detectors_grid`: one triggered Trojan
    (T1) and one always-on variant (T1A) under every method."""
    return SweepGrid.product(
        "detectors-smoke",
        trojans=("T1", "T1A"),
        detectors=(DetectorConfig(warmup=4),),
        detector_names=DETECTOR_NAMES,
        keep_features=False,
        n_baseline=6,
        n_active=4,
        active_offset=500,
        quantize=True,
    )


#: Named grid registry (CLI ``repro sweep --grid <name>``).
GRIDS: Dict[str, Callable[[], SweepGrid]] = {
    "table1": table1_grid,
    "mttd": mttd_grid,
    "smoke": smoke_grid,
    "bench4x4": benchmark_grid,
    "detectors": detectors_grid,
    "detectors-smoke": detectors_smoke_grid,
}


def build_grid(name: str) -> SweepGrid:
    """Instantiate a named grid preset."""
    if name not in GRIDS:
        raise unknown_name_error("sweep grid", name, sorted(GRIDS))
    return GRIDS[name]()
