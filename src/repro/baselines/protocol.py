"""Shared evaluation protocol for the Table I comparison.

Every method exposes a per-trace scalar detection statistic.  For each
Trojan we measure the statistic's populations with the Trojan inactive
and active (matched workloads), then derive:

* the **effect size** (Cohen's d),
* the **required measurement count** for a 95 %-power detection at a
  1e-3 false-positive rate (the "Measurement#" row of Table I),
* the **detection rate** at the method's nominal trace budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..dsp.stats import cohens_d, detection_rate, required_measurements
from ..errors import AnalysisError

#: Trojans evaluated by the comparison.
EVALUATED_TROJANS = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class TrojanOutcome:
    """Per-Trojan evaluation of one method.

    Attributes
    ----------
    trojan:
        Trojan name.
    effect_size:
        Cohen's d between active and inactive statistic populations.
    n_required:
        Measurements needed for 95 % power at alpha = 1e-3.
    detection_rate:
        Fraction of active traces flagged at the method's budget.
    """

    trojan: str
    effect_size: float
    n_required: int
    detection_rate: float


@dataclass
class MethodReport:
    """Table I row for one method.

    Attributes
    ----------
    name:
        Method label.
    outcomes:
        Per-Trojan results.
    snr_db:
        He-style SNR of the method's receiver (Equation (1)).
    localization:
        Whether the method can point at a die location.
    runtime:
        Whether the method deploys at run time (no bench equipment).
    """

    name: str
    outcomes: Dict[str, TrojanOutcome] = field(default_factory=dict)
    snr_db: float = float("nan")
    localization: bool = False
    runtime: bool = False

    @property
    def worst_n_required(self) -> int:
        """Measurement count for the hardest Trojan."""
        if not self.outcomes:
            raise AnalysisError("method report has no outcomes")
        return max(outcome.n_required for outcome in self.outcomes.values())

    @property
    def best_n_required(self) -> int:
        """Measurement count for the easiest Trojan."""
        if not self.outcomes:
            raise AnalysisError("method report has no outcomes")
        return min(outcome.n_required for outcome in self.outcomes.values())

    @property
    def mean_detection_rate(self) -> float:
        """Average detection rate across Trojans."""
        if not self.outcomes:
            raise AnalysisError("method report has no outcomes")
        return float(
            np.mean([o.detection_rate for o in self.outcomes.values()])
        )

    def rate_label(self, threshold: float = 0.85) -> str:
        """Table I's qualitative "High"/"Low" detection-rate label.

        "High" means the method detects the great majority of the
        Trojans at its operating point.
        """
        return "High" if self.mean_detection_rate >= threshold else "Low"


def outcome_from_populations(
    trojan: str,
    inactive: np.ndarray,
    active: np.ndarray,
    z_threshold: float = 4.0,
) -> TrojanOutcome:
    """Build a :class:`TrojanOutcome` from measured statistic samples."""
    inactive = np.asarray(inactive, dtype=float)
    active = np.asarray(active, dtype=float)
    if inactive.size < 2 or active.size < 2:
        raise AnalysisError("need at least two samples per population")
    d = cohens_d(active, inactive)
    return TrojanOutcome(
        trojan=trojan,
        effect_size=d,
        n_required=required_measurements(d),
        detection_rate=detection_rate(active, inactive, z_threshold),
    )
