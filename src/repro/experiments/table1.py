"""Table I: comparison of EM side-channel data collection methods.

Regenerates every row of the paper's Table I from simulation:
HT detection rate, localization capability, required measurement
count, SNR, and run-time deployability — for the external probe, the
backscattering method, the on-chip single coil and the proposed PSA.

The PSA row is a thin preset over :mod:`repro.sweep`: its per-Trojan
populations are the named ``table1`` grid evaluated through the
batched-engine orchestrator (identical to the legacy
``PsaMethod.evaluate`` protocol); the bench-instrument baselines keep
their own evaluation paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.backscatter import BackscatterMethod
from ..baselines.external_probe import ExternalProbeMethod
from ..baselines.protocol import MethodReport, TrojanOutcome
from ..baselines.psa_method import PsaMethod
from ..baselines.single_coil import SingleCoilMethod
from ..errors import AnalysisError
from ..sweep import DetectionSweep, table1_grid
from .context import ExperimentContext, default_context
from .reporting import format_table

#: Paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "external_probe": {
        "rate": "Low",
        "localization": "No",
        "measurements": ">10,000",
        "snr": "14.3 dB",
        "runtime": "No",
    },
    "backscatter": {
        "rate": "High",
        "localization": "No",
        "measurements": "100",
        "snr": "N/A",
        "runtime": "No",
    },
    "single_coil": {
        "rate": "Low",
        "localization": "No",
        "measurements": ">10,000",
        "snr": "30.5 dB",
        "runtime": "Yes",
    },
    "psa": {
        "rate": "High",
        "localization": "Yes",
        "measurements": "<10",
        "snr": "41.0 dB",
        "runtime": "Yes",
    },
}


@dataclass(frozen=True)
class Table1Result:
    """Method reports in paper column order."""

    reports: Dict[str, MethodReport]

    def measurement_ordering_holds(self) -> bool:
        """PSA needs fewest measurements; probe/coil need the most."""
        psa = self.reports["psa"].worst_n_required
        backscatter = self.reports["backscatter"].worst_n_required
        coil = self.reports["single_coil"].worst_n_required
        probe = self.reports["external_probe"].worst_n_required
        return psa < backscatter < min(coil, probe)


def run_psa_sweep(
    ctx: ExperimentContext, n_traces: int = 10
) -> MethodReport:
    """The PSA's Table I row, evaluated through the sweep orchestrator.

    One ``table1`` grid cell per Trojan renders as a batched engine
    pass; the per-cell populations yield the same effect sizes,
    required-measurement counts and detection rates as the legacy
    per-method evaluation loop.
    """
    if n_traces < 4:
        raise AnalysisError("need at least 4 traces per population")
    psa_method = PsaMethod(ctx.chip, ctx.campaign, ctx.psa)
    report = MethodReport(
        name=psa_method.name,
        localization=psa_method.localization,
        runtime=psa_method.runtime,
    )
    report.snr_db = psa_method.snr_db()
    sweep = DetectionSweep(ctx.campaign)
    for cell in sweep.run(table1_grid(n_traces=n_traces)).cells:
        best = cell.best
        report.outcomes[cell.trojan] = TrojanOutcome(
            trojan=cell.trojan,
            effect_size=best.effect_size,
            n_required=best.n_required,
            detection_rate=best.detection_rate,
        )
    return report


def run_table1(
    ctx: Optional[ExperimentContext] = None, n_traces: int = 10
) -> Table1Result:
    """Evaluate all four methods under the shared protocol."""
    ctx = ctx or default_context()
    methods = [
        ExternalProbeMethod(ctx.chip, ctx.campaign),
        BackscatterMethod(ctx.chip, ctx.campaign),
        SingleCoilMethod(ctx.chip, ctx.campaign),
    ]
    reports = {}
    for method in methods:
        if isinstance(method, BackscatterMethod):
            reports[method.name] = method.evaluate(n_traces=max(3 * n_traces, 24))
        else:
            reports[method.name] = method.evaluate(n_traces=n_traces)
    reports["psa"] = run_psa_sweep(ctx, n_traces=n_traces)
    return Table1Result(reports=reports)


def _measurements_label(report: MethodReport) -> str:
    worst = report.worst_n_required
    if worst >= 10_000:
        return ">10,000"
    if worst < 10:
        return "<10"
    return str(worst)


def format_table1(result: Table1Result) -> str:
    """Render Table I with measured and paper values."""
    rows = []
    for name in ["external_probe", "backscatter", "single_coil", "psa"]:
        report = result.reports[name]
        paper = PAPER_TABLE1[name]
        snr = "N/A" if report.snr_db != report.snr_db else f"{report.snr_db:.1f} dB"
        rows.append(
            (
                name,
                f"{report.rate_label()} ({report.mean_detection_rate:.0%})",
                "Yes" if report.localization else "No",
                _measurements_label(report),
                snr,
                "Yes" if report.runtime else "No",
                "| "
                + " / ".join(
                    [
                        paper["rate"],
                        paper["localization"],
                        paper["measurements"],
                        paper["snr"],
                        paper["runtime"],
                    ]
                ),
            )
        )
    header = "Table I — comparison of EM side-channel methods\n"
    return header + format_table(
        [
            "method",
            "HT detection",
            "localizes",
            "measurements",
            "SNR",
            "run-time",
            "| paper (rate/loc/meas/SNR/runtime)",
        ],
        rows,
    )
