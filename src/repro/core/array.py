"""The Programmable Sensor Array measurement facade.

Couples the lattice/coil model to the EM substrate: given an
:class:`~repro.chip.power.ActivityRecord` from the test chip, the PSA
renders amplified, noisy voltage traces for any programmed sensor —
the 16 standard sensors of Section V-A or ad-hoc refinement coils.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..calibration import COUPLING_SCALE
from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, Receiver, emf_waveforms
from ..em.noise import NoiseModel
from ..errors import MeasurementError
from ..rng import stream
from ..traces import Trace
from .coil import Coil
from .decoder import PsaDecoder
from .grid import PsaGrid
from .sensors import N_SENSORS, standard_sensor_coil


class ProgrammableSensorArray:
    """The on-chip PSA, electrically attached to a test chip.

    Parameters
    ----------
    chip:
        The test chip the lattice is fabricated on.
    turns:
        Turns per standard sensor coil (5 = the deepest spiral the
        symmetric 11-pitch sensor supports; see repro.core.sensors).
    points_per_side:
        Line-integral resolution of the flux computation.
    amplifier:
        Measurement front-end (defaults to the THS4504 model).
    coupling_scale:
        Absolute coupling calibration (see :mod:`repro.calibration`).
    """

    def __init__(
        self,
        chip: TestChip,
        turns: int = 5,
        points_per_side: int = 48,
        amplifier: Optional[MeasurementAmplifier] = None,
        coupling_scale: float = COUPLING_SCALE,
    ):
        self.chip = chip
        self.config = chip.config
        self.grid = PsaGrid()
        self.decoder = PsaDecoder()
        self.amplifier = amplifier or MeasurementAmplifier()
        self.coupling_scale = coupling_scale
        self.points_per_side = points_per_side
        self.sensor_coils: List[Coil] = [
            standard_sensor_coil(index, turns) for index in range(N_SENSORS)
        ]
        receivers = [
            coil.to_receiver(self.config.vdd, self.config.temperature_c)
            for coil in self.sensor_coils
        ]
        self._coupling = CouplingMatrix(
            chip.floorplan,
            receivers,
            points_per_side=points_per_side,
            scale=coupling_scale,
        )
        self._custom_couplings: Dict[str, CouplingMatrix] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def coupling(self) -> CouplingMatrix:
        """Coupling matrix of the 16 standard sensors."""
        return self._coupling

    def sensor_coil(self, index: int) -> Coil:
        """Standard coil of one sensor."""
        if not 0 <= index < N_SENSORS:
            raise MeasurementError(f"sensor index {index} outside 0..15")
        return self.sensor_coils[index]

    # -- measurement -----------------------------------------------------------

    def measure_all(
        self, record: ActivityRecord, trace_index: int = 0
    ) -> List[Trace]:
        """Capture one trace from every standard sensor.

        Noise realizations are independent per sensor and per
        ``trace_index`` but fully reproducible for a given config seed.
        """
        emf = emf_waveforms(self._coupling, record)
        traces = []
        for index in range(N_SENSORS):
            traces.append(
                self._render(
                    emf[index],
                    self.sensor_coils[index],
                    record,
                    trace_index,
                )
            )
        return traces

    def measure(
        self, record: ActivityRecord, sensor_index: int, trace_index: int = 0
    ) -> Trace:
        """Capture one trace from one standard sensor.

        The gate-level decoder performs the selection, so a tampered
        decoder would surface here.
        """
        if not 0 <= sensor_index < N_SENSORS:
            raise MeasurementError(f"sensor index {sensor_index} outside 0..15")
        self.decoder.select(sensor_index)
        if self.decoder.selected() != sensor_index:
            raise MeasurementError("decoder selection mismatch")
        emf = emf_waveforms(self._coupling, record)
        return self._render(
            emf[sensor_index],
            self.sensor_coils[sensor_index],
            record,
            trace_index,
        )

    def measure_coil(
        self, coil: Coil, record: ActivityRecord, trace_index: int = 0
    ) -> Trace:
        """Capture one trace from an ad-hoc programmed coil.

        The coil is programmed onto the lattice for the duration of the
        measurement (ownership-checked) and released afterwards.
        """
        coil.program(self.grid)
        try:
            coupling = self._coupling_for(coil)
            emf = emf_waveforms(coupling, record)
            return self._render(emf[0], coil, record, trace_index)
        finally:
            coil.release(self.grid)

    # -- internals -------------------------------------------------------------

    def _coupling_for(self, coil: Coil) -> CouplingMatrix:
        key = coil.name
        cached = self._custom_couplings.get(key)
        if cached is None:
            cached = CouplingMatrix(
                self.chip.floorplan,
                [coil.to_receiver(self.config.vdd, self.config.temperature_c)],
                points_per_side=self.points_per_side,
                scale=self.coupling_scale,
            )
            self._custom_couplings[key] = cached
        return cached

    def _render(
        self,
        emf: np.ndarray,
        coil: Coil,
        record: ActivityRecord,
        trace_index: int,
    ) -> Trace:
        config = self.config
        receiver = coil.to_receiver(config.vdd, config.temperature_c)
        noise_model = NoiseModel(
            resistance=receiver.r_series,
            temperature_c=config.temperature_c,
            ambient_area=receiver.ambient_gain,
        )
        tag = f"{record.scenario}/{coil.name}/{trace_index}"
        sensor_noise = noise_model.sample(
            config.n_samples, config.fs, stream(config.seed, f"noise/{tag}")
        )
        amplified = self.amplifier.amplify(
            emf + sensor_noise,
            config.fs,
            rng=stream(config.seed, f"amp/{tag}"),
            source_impedance=receiver.r_series,
        )
        return Trace(
            samples=amplified,
            fs=config.fs,
            label=coil.name,
            scenario=record.scenario,
            meta={
                "trace_index": trace_index,
                "r_series": receiver.r_series,
                "turns": coil.n_turns,
            },
        )
