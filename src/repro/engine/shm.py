"""Zero-copy shared-memory execution backend.

The ``process`` backend pickles every shard payload — including each
record's low-rank activity factors — into the worker, and pickles the
rendered sample arrays back out.  :class:`SharedMemoryBackend` removes
both copies:

* **inputs** — every factor array reachable from the shard payloads is
  packed once into a single :class:`multiprocessing.shared_memory`
  arena; payloads ship slim :class:`SharedArrayRef` descriptors and
  workers resolve them to read-only views of the same physical pages
  (a factor referenced by every shard crosses the process boundary
  zero times instead of once per shard);
* **outputs** — the backend allocates the full ``(n_receivers,
  n_traces, n_samples)`` result in shared memory up front and each
  worker writes its rendered column block straight into it; the parent
  wraps the segment as the result array with no concatenation and no
  result pickling.

Because the transport never touches the rendered values — workers run
the exact same serial render path — the backend is **bit-for-bit
identical** to ``serial`` and ``process`` (the engine's determinism
contract), and is selectable everywhere a backend spec is accepted:
``SimConfig(engine_backend="shared")``, the CLI ``--backend shared``,
or ``MeasurementEngine(..., backend="shared")``.

Lifetime: the backend owns a **persistent input arena** — one segment
reused (and geometrically grown) across every dispatch instead of
being created/unlinked per render; workers cache their attachment to
it, so steady-state dispatches pay zero segment churn on the input
side.  Output segments live exactly as long as the returned arrays (a
``weakref.finalize`` closes and unlinks each).  :meth:`close` unlinks
the arena and shuts the pool down; the next dispatch restarts both.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .backends import ProcessBackend


@dataclass(frozen=True)
class SharedArrayRef:
    """Descriptor of one array inside a shared-memory arena."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment owned by the parent process.

    The attaching process must not let a resource tracker claim the
    segment — the parent owns the lifecycle (under ``spawn`` the
    worker's own tracker would unlink it at worker exit; under
    ``fork`` the shared tracker would double-account it).  Python 3.13
    exposes this as ``track=False``; on 3.10–3.12 the attach-time
    registration is suppressed directly.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: Worker-side attachment memo: arena segments are named stably across
#: dispatches, so long-lived workers attach once per arena generation
#: instead of once per task.  Bounded (stale generations are closed)
#: because a grown arena gets a fresh name.
_ATTACH_CACHE: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_LIMIT = 8


def _attach_cached(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACH_CACHE.get(name)
    if shm is None:
        while len(_ATTACH_CACHE) >= _ATTACH_CACHE_LIMIT:
            _, stale = _ATTACH_CACHE.popitem()
            stale.close()
        shm = _attach(name)
        _ATTACH_CACHE[name] = shm
    return shm


def _view(shm: shared_memory.SharedMemory, ref: SharedArrayRef) -> np.ndarray:
    """Read-only array view over one packed arena entry."""
    view = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
    )
    view.flags.writeable = False
    return view


class _InputArena:
    """Packs deduplicated input arrays into one shared segment."""

    def __init__(self) -> None:
        self._refs: Dict[int, SharedArrayRef] = {}
        self._arrays: List[np.ndarray] = []
        self._total = 0
        self.shm: "shared_memory.SharedMemory | None" = None

    def add(self, array: np.ndarray) -> SharedArrayRef:
        """Plan one array into the arena (deduplicated by identity)."""
        ref = self._refs.get(id(array))
        if ref is None:
            contiguous = np.ascontiguousarray(array)
            # 64-byte alignment keeps every view cacheline-aligned.
            offset = (self._total + 63) & ~63
            ref = SharedArrayRef(
                offset=offset,
                shape=tuple(contiguous.shape),
                dtype=contiguous.dtype.str,
            )
            self._refs[id(array)] = ref
            self._arrays.append(contiguous)
            self._total = offset + contiguous.nbytes
        return ref

    @property
    def n_arrays(self) -> int:
        return len(self._arrays)

    @property
    def nbytes(self) -> int:
        """Bytes the planned arrays occupy (including alignment)."""
        return self._total

    def write_into(self, shm: shared_memory.SharedMemory) -> None:
        """Copy every planned array into an existing segment."""
        for array, ref in zip(self._arrays, self._refs.values()):
            view = np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=shm.buf,
                offset=ref.offset,
            )
            view[...] = array

    def materialize(self) -> str:
        """Create the segment, copy every planned array in; its name."""
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(self._total, 1)
        )
        self.write_into(self.shm)
        return self.shm.name

    def release(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            self.shm = None


class _PersistentArena:
    """One input segment reused (and grown) across dispatches.

    Per dispatch the payload arrays are *planned* with a fresh
    :class:`_InputArena` (identity-dedup, alignment) but *written*
    into a segment that outlives the call: if the planned bytes fit
    the current segment it is reused in place; otherwise a segment of
    the next power-of-two size replaces it (the old one is unlinked —
    worker-side attachment memos expire by name).  Steady-state
    dispatches therefore create zero input segments.
    """

    def __init__(self) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = None
        self.generations = 0

    @property
    def capacity(self) -> int:
        """Bytes the current segment can hold (0 = no segment)."""
        return 0 if self.shm is None else self.shm.size

    def place(self, plan: _InputArena) -> str:
        """Write a planned arena into the persistent segment; its name."""
        needed = max(plan.nbytes, 1)
        if self.shm is None or self.shm.size < needed:
            size = 1
            while size < needed:
                size *= 2
            self.close()
            self.shm = shared_memory.SharedMemory(create=True, size=size)
            self.generations += 1
        plan.write_into(self.shm)
        return self.shm.name

    def close(self) -> None:
        """Unlink the segment (the next dispatch allocates afresh)."""
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            self.shm = None


def _pack_payload(payload, arena: _InputArena, seen: Dict[int, bool]):
    """Replace factor arrays in a shard payload with arena refs.

    Walks the payload for objects carrying a ``factors`` dict (the
    engine's record proxies and records) and rewrites each factor's
    ``(name, weights, toggles)`` arrays into :class:`SharedArrayRef`
    descriptors, in place.  Proxies deduplicated by identity across
    shards are rewritten once.
    """
    if isinstance(payload, (tuple, list)):
        return type(payload)(
            _pack_payload(item, arena, seen) for item in payload
        )
    factors = getattr(payload, "factors", None)
    if isinstance(factors, dict) and not seen.get(id(payload)):
        seen[id(payload)] = True
        payload.factors = {
            group: [
                (
                    name,
                    weights
                    if isinstance(weights, SharedArrayRef)
                    else arena.add(weights),
                    toggles
                    if isinstance(toggles, SharedArrayRef)
                    else arena.add(toggles),
                )
                for name, weights, toggles in parts
            ]
            for group, parts in factors.items()
        }
    return payload


def _resolve_payload(payload, shm: shared_memory.SharedMemory, seen):
    """Worker-side inverse of :func:`_pack_payload` (views, no copies)."""
    if isinstance(payload, (tuple, list)):
        return type(payload)(
            _resolve_payload(item, shm, seen) for item in payload
        )
    factors = getattr(payload, "factors", None)
    if isinstance(factors, dict) and not seen.get(id(payload)):
        seen[id(payload)] = True
        payload.factors = {
            group: [
                (
                    name,
                    _view(shm, weights)
                    if isinstance(weights, SharedArrayRef)
                    else weights,
                    _view(shm, toggles)
                    if isinstance(toggles, SharedArrayRef)
                    else toggles,
                )
                for name, weights, toggles in parts
            ]
            for group, parts in factors.items()
        }
    return payload


def _run_shard(task) -> None:
    """Pool entry point: render one shard into the shared output."""
    (fn, payload, in_name, out_name, out_shape, out_dtype, lo, hi) = task
    in_shm = _attach_cached(in_name) if in_name is not None else None
    out_shm = _attach(out_name)
    try:
        if in_shm is not None:
            payload = _resolve_payload(payload, in_shm, {})
        result = fn(payload)
        out = np.ndarray(
            out_shape, dtype=np.dtype(out_dtype), buffer=out_shm.buf
        )
        out[:, lo:hi] = result
    finally:
        out_shm.close()


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedMemoryBackend(ProcessBackend):
    """Worker-pool backend shipping shards through shared memory.

    Pool management (lazy fork-preferring executor, restart-on-use
    after :meth:`close`) is inherited from
    :class:`~repro.engine.backends.ProcessBackend`; the generic
    :meth:`map` fallback also remains available.  The engine
    dispatches through :meth:`map_concat` (one logical render) or
    :meth:`run_jobs` (a fused plan of many renders in one pool wave);
    both share the persistent input arena.

    Parameters
    ----------
    max_workers:
        Pool size (default: the machine's CPU count, minimum 2).
    start_method:
        Worker start method (see :class:`ProcessBackend`).
    """

    name = "shared"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
    ):
        super().__init__(max_workers=max_workers, start_method=start_method)
        self._arena = _PersistentArena()

    @property
    def arena_generations(self) -> int:
        """Times the persistent input arena was (re)allocated."""
        return self._arena.generations

    @property
    def arena_capacity(self) -> int:
        """Current input-arena capacity in bytes."""
        return self._arena.capacity

    def close(self) -> None:
        """Release the arena and the pool (a later dispatch restarts)."""
        self._arena.close()
        super().close()

    # -- dispatch paths ------------------------------------------------------

    def map_concat(
        self,
        fn: Callable,
        payloads: Sequence,
        out_shape: Tuple[int, int, int],
        splits: Sequence[int],
        dtype=np.float64,
    ) -> np.ndarray:
        """Evaluate shard renders into one shared result array.

        Parameters
        ----------
        fn:
            Shard renderer returning ``(n_receivers, k, n_samples)``.
        payloads:
            One shard payload per ``splits`` interval.
        out_shape:
            Full result shape ``(n_receivers, n_traces, n_samples)``.
        splits:
            Column boundaries: shard ``i`` covers
            ``splits[i]:splits[i+1]`` along axis 1.
        dtype:
            Result dtype.

        Returns
        -------
        numpy.ndarray
            The assembled result, backed by a shared segment whose
            lifetime is tied to the returned array.
        """
        if len(payloads) != len(splits) - 1:
            raise ValueError(
                f"{len(payloads)} payloads for {len(splits) - 1} splits"
            )
        if len(payloads) == 1:
            return np.asarray(fn(payloads[0]), dtype=dtype)
        [result] = self.run_jobs(
            fn, [(list(payloads), tuple(out_shape), list(splits), dtype)]
        )
        return result

    def run_jobs(
        self,
        fn: Callable,
        jobs: Sequence[Tuple[Sequence, Tuple[int, int, int], Sequence[int], object]],
    ) -> List[np.ndarray]:
        """Evaluate many sharded renders as **one** pool wave.

        The fused-dispatch entry point: every job's shard payloads are
        packed into the one persistent input arena and submitted to
        the pool in a single ``map`` call, so a plan of N logical
        renders pays one scatter/gather instead of N.

        Parameters
        ----------
        fn:
            Shard renderer (shared by every job).
        jobs:
            ``(payloads, out_shape, splits, dtype)`` per logical
            render, with the same semantics as :meth:`map_concat`.

        Returns
        -------
        list of numpy.ndarray
            One assembled result per job, in job order, each backed by
            its own shared segment (lifetime tied to the array).
        """
        plan = _InputArena()
        seen: Dict[int, bool] = {}
        packed_jobs = []
        for payloads, out_shape, splits, dtype in jobs:
            if len(payloads) != len(splits) - 1:
                raise ValueError(
                    f"{len(payloads)} payloads for {len(splits) - 1} splits"
                )
            packed_jobs.append(
                (
                    [_pack_payload(p, plan, seen) for p in payloads],
                    tuple(out_shape),
                    [int(s) for s in splits],
                    np.dtype(dtype),
                )
            )
        in_name = self._arena.place(plan) if plan.n_arrays else None

        out_segments: List[shared_memory.SharedMemory] = []
        tasks = []
        try:
            for payloads, out_shape, splits, dtype in packed_jobs:
                out_shm = shared_memory.SharedMemory(
                    create=True,
                    size=max(int(np.prod(out_shape)) * dtype.itemsize, 1),
                )
                out_segments.append(out_shm)
                for payload, lo, hi in zip(payloads, splits[:-1], splits[1:]):
                    tasks.append(
                        (
                            fn,
                            payload,
                            in_name,
                            out_shm.name,
                            out_shape,
                            dtype.str,
                            lo,
                            hi,
                        )
                    )
            list(self._pool().map(_run_shard, tasks))
        except BaseException:
            for out_shm in out_segments:
                _release_segment(out_shm)
            raise
        results = []
        for out_shm, (_, out_shape, _, dtype) in zip(
            out_segments, packed_jobs
        ):
            out = np.ndarray(out_shape, dtype=dtype, buffer=out_shm.buf)
            weakref.finalize(out, _release_segment, out_shm)
            results.append(out)
        return results
