"""Engine throughput: batched rendering vs. the legacy per-trace loop.

Times a 16-sensor x 256-trace campaign through (a) the seed's
per-trace render sequence (EMF convolution + noise + amplifier, one
sensor-trace at a time) and (b) one batched engine render, then times
the ``process`` and ``shared`` backend sessions sharding the full
16-sensor x 1024-trace workload across two workers with output
identical to ``serial`` (worker count and host core count are recorded
with each row; parallel-beats-serial is only asserted on multi-core
hosts).  Results are written to ``BENCH_engine.json`` at the repo root
so the performance trajectory is tracked from PR to PR.

Set ``ENGINE_SMOKE=1`` to run a reduced CI variant: every equivalence
check still runs, the speedup floor is not enforced.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.em.coupling import emf_waveforms
from repro.em.noise import NoiseModel
from repro.engine import MeasurementEngine, ProcessBackend, SharedMemoryBackend
from repro.rng import stream
from repro.workloads.scenarios import scenario_by_name

SMOKE = os.environ.get("ENGINE_SMOKE", "") not in ("", "0")

#: Campaign shape of the headline comparison.
N_SENSORS = 16
N_TRACES = 48 if SMOKE else 256
#: Distinct activity records cycled through the campaign (record
#: synthesis is not part of the rendering path being measured).
N_UNIQUE_RECORDS = 8 if SMOKE else 32
#: Trace count of the worker-backend scaling checks (full array).
N_PROCESS_TRACES = 64 if SMOKE else 1024

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _legacy_render_all(psa, record, trace_index):
    """The seed's per-trace path: one EMF synthesis per call, then a
    per-sensor noise + amplify sequence (kept here as the reference
    implementation the engine replaced)."""
    config = psa.config
    emf = emf_waveforms(psa.coupling, record)
    traces = []
    for index in range(N_SENSORS):
        coil = psa.sensor_coils[index]
        receiver = coil.to_receiver(config.vdd, config.temperature_c)
        noise_model = NoiseModel(
            resistance=receiver.r_series,
            temperature_c=config.temperature_c,
            ambient_area=receiver.ambient_gain,
        )
        tag = f"{record.scenario}/{coil.name}/{trace_index}"
        sensor_noise = noise_model.sample(
            config.n_samples, config.fs, stream(config.seed, f"noise/{tag}")
        )
        traces.append(
            psa.amplifier.amplify(
                emf[index] + sensor_noise,
                config.fs,
                rng=stream(config.seed, f"amp/{tag}"),
                source_impedance=receiver.r_series,
            )
        )
    return traces


def test_engine_throughput(ctx, benchmark):
    psa = ctx.psa
    campaign = ctx.campaign
    scenario = scenario_by_name("baseline")
    unique = [campaign.record(scenario, i) for i in range(N_UNIQUE_RECORDS)]
    records = [unique[i % N_UNIQUE_RECORDS] for i in range(N_TRACES)]
    indices = list(range(N_TRACES))
    # The seed had no low-rank activity factors — its per-trace loop
    # paid the dense region matmul inside emf_waveforms — so the legacy
    # reference renders from factor-stripped records.
    legacy_unique = [replace(record, factors=None) for record in unique]
    legacy_records = [
        legacy_unique[i % N_UNIQUE_RECORDS] for i in range(N_TRACES)
    ]

    # Warm both paths (kernel spectra, gain curves, allocator arenas).
    _legacy_render_all(psa, legacy_records[0], 0)
    psa.render(records, trace_indices=indices)

    start = time.perf_counter()
    for index in indices:
        _legacy_render_all(psa, legacy_records[index], index)
    legacy_seconds = time.perf_counter() - start

    # The batched render is short enough that scheduler noise on a
    # shared host can double a single measurement; take the best of
    # three (the long legacy loop self-averages over 256 iterations).
    batch = benchmark.pedantic(
        lambda: psa.render(records, trace_indices=indices),
        rounds=1,
        iterations=1,
    )
    batched_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        psa.render(records, trace_indices=indices)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    total_traces = N_SENSORS * N_TRACES
    legacy_tps = total_traces / legacy_seconds
    batched_tps = total_traces / batched_seconds
    speedup = batched_tps / legacy_tps

    # Parallel backends: the *full 16-sensor workload* at
    # N_PROCESS_TRACES traces — the scale the fused dispatch plan
    # feeds them — sharded over the worker pool, bit-for-bit identical
    # to the serial backend.  Each backend is a long-lived session: one
    # warm-up render spins the pool / grows the shared arena, then the
    # steady-state pass is timed (that is the regime every later
    # dispatch through the session runs in).
    backend_records = [
        unique[i % N_UNIQUE_RECORDS] for i in range(N_PROCESS_TRACES)
    ]
    backend_indices = list(range(N_PROCESS_TRACES))
    workers = 2
    cpu_count = os.cpu_count() or 1

    def _timed_render(engine):
        engine.render(
            psa.coupling, backend_records, trace_indices=backend_indices
        )
        start = time.perf_counter()
        batch = engine.render(
            psa.coupling, backend_records, trace_indices=backend_indices
        )
        return batch, time.perf_counter() - start

    serial_ref, serial_full_seconds = _timed_render(psa.engine)
    process_engine = MeasurementEngine(
        ctx.config, amplifier=psa.amplifier, backend=ProcessBackend(workers)
    )
    shared_engine = MeasurementEngine(
        ctx.config,
        amplifier=psa.amplifier,
        backend=SharedMemoryBackend(workers),
    )
    try:
        sharded, process_full_seconds = _timed_render(process_engine)
        shared, shared_full_seconds = _timed_render(shared_engine)
    finally:
        process_engine.close()
        shared_engine.close()
    process_identical = bool(
        np.array_equal(serial_ref.samples, sharded.samples)
    )
    shared_identical = bool(
        np.array_equal(serial_ref.samples, shared.samples)
    )

    report = {
        "workload": {
            "n_sensors": N_SENSORS,
            "n_traces": N_TRACES,
            "n_unique_records": N_UNIQUE_RECORDS,
            "scenario": "baseline",
        },
        "smoke": SMOKE,
        "legacy_per_trace": {
            "seconds": round(legacy_seconds, 3),
            "traces_per_sec": round(legacy_tps, 1),
        },
        "batched_engine": {
            "seconds": round(batched_seconds, 3),
            "traces_per_sec": round(batched_tps, 1),
        },
        "speedup": round(speedup, 2),
        "process_backend": {
            "n_traces": N_PROCESS_TRACES,
            "n_sensors": N_SENSORS,
            "workers": workers,
            "cpu_count": cpu_count,
            "serial_seconds": round(serial_full_seconds, 3),
            "process_seconds": round(process_full_seconds, 3),
            "speedup_vs_serial": round(
                serial_full_seconds / process_full_seconds, 3
            ),
            "identical_to_serial": process_identical,
        },
        "shared_backend": {
            "n_traces": N_PROCESS_TRACES,
            "n_sensors": N_SENSORS,
            "workers": workers,
            "cpu_count": cpu_count,
            "serial_seconds": round(serial_full_seconds, 3),
            "shared_seconds": round(shared_full_seconds, 3),
            "speedup_vs_serial": round(
                serial_full_seconds / shared_full_seconds, 3
            ),
            "identical_to_serial": shared_identical,
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))

    assert batch.samples.shape == (N_SENSORS, N_TRACES, psa.config.n_samples)
    assert process_identical
    assert shared_identical
    if not SMOKE:
        assert speedup >= 5.0, f"batched speedup {speedup:.2f}x below 5x"
        # The zero-copy backend only has spare cores to win with on a
        # multi-core host; single-core boxes record the ratio (the CI
        # gate tracks it against a baseline from the same host class)
        # but cannot require parallel > serial.
        if cpu_count >= 2:
            assert shared_full_seconds < serial_full_seconds, (
                f"shared backend ({shared_full_seconds:.2f}s) lost to "
                f"serial ({serial_full_seconds:.2f}s) on a "
                f"{cpu_count}-core host"
            )
