"""The proposed PSA, evaluated under the same Table I protocol."""

from __future__ import annotations

from typing import List

import numpy as np

from ..chip.testchip import TestChip
from ..core.analysis.spectral import sideband_feature_db
from ..core.array import ProgrammableSensorArray
from ..dsp.metrics import snr_rms_db
from ..errors import AnalysisError
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for, scenario_by_name
from .protocol import (
    EVALUATED_TROJANS,
    MethodReport,
    outcome_from_populations,
)

#: Sensor used for the comparison (covers the Trojan cluster).
MONITOR_SENSOR = 10


class PsaMethod:
    """Table I column "PSA (proposed)"."""

    name = "psa"
    localization = True
    runtime = True

    def __init__(
        self,
        chip: TestChip,
        campaign: MeasurementCampaign,
        psa: ProgrammableSensorArray | None = None,
    ):
        self.chip = chip
        self.campaign = campaign
        self.psa = psa or campaign.psa
        self.analyzer = SpectrumAnalyzer()

    def _features(
        self, scenario_name: str, n_traces: int, index_offset: int
    ) -> np.ndarray:
        scenario = scenario_by_name(scenario_name)
        features: List[float] = []
        for index in range(n_traces):
            record = self.campaign.record(scenario, index_offset + index)
            trace = self.psa.measure(
                record, MONITOR_SENSOR, trace_index=index_offset + index
            )
            features.append(
                sideband_feature_db(
                    self.analyzer.spectrum(trace), self.chip.config
                )
            )
        return np.asarray(features)

    def snr_db(self, n_traces: int = 3) -> float:
        """He-style SNR of the monitored PSA sensor."""
        scenario_signal = scenario_by_name("baseline")
        scenario_idle = scenario_by_name("idle")
        signal = []
        noise = []
        for index in range(n_traces):
            rec_s = self.campaign.record(scenario_signal, index)
            rec_n = self.campaign.record(scenario_idle, index)
            signal.append(
                self.psa.measure(rec_s, MONITOR_SENSOR, index).samples
            )
            noise.append(self.psa.measure(rec_n, MONITOR_SENSOR, index).samples)
        return snr_rms_db(np.concatenate(signal), np.concatenate(noise))

    def evaluate(self, n_traces: int = 10) -> MethodReport:
        """Run the full per-Trojan evaluation."""
        if n_traces < 4:
            raise AnalysisError("need at least 4 traces per population")
        report = MethodReport(
            name=self.name,
            localization=self.localization,
            runtime=self.runtime,
        )
        report.snr_db = self.snr_db()
        for trojan in EVALUATED_TROJANS:
            reference = reference_for(trojan).name
            inactive = self._features(reference, n_traces, 0)
            active = self._features(trojan, n_traces, 700)
            report.outcomes[trojan] = outcome_from_populations(
                trojan, inactive, active
            )
        return report
