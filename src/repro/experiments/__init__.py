"""Experiment harnesses — one per paper table/figure.

Every module exposes a ``run_*`` function returning a structured result
and a ``format_*`` helper that renders the same rows/series the paper
reports.  The benchmark suite calls the ``run_*`` functions; the CLI
prints the formatted output.

Index (see DESIGN.md section 4):

* :mod:`table1`  — Table I method comparison
* :mod:`table2`  — Table II Trojan gate counts
* :mod:`fig3`    — PSA vs external-probe spectrum difference
* :mod:`fig4`    — per-sensor Trojan spectra (sensor 10 vs sensor 0)
* :mod:`fig5`    — zero-span time-domain identification
* :mod:`snr`     — Section VI-B SNR measurements
* :mod:`robustness` — Section VI-C voltage/temperature sweeps
* :mod:`mttd`    — Section VI-D run-time detection latency
* :mod:`cost`    — Section V-B implementation cost
* :mod:`ablations` — design-choice sweeps beyond the paper
"""

from .context import ExperimentContext, default_context

__all__ = ["ExperimentContext", "default_context"]
