"""Simulation configuration invariants."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, SimConfig
from repro.errors import ConfigError


def test_default_matches_paper_setup():
    cfg = DEFAULT_CONFIG
    assert cfg.f_clock == pytest.approx(33e6)
    assert cfg.block_cycles == 11
    assert cfg.f_block == pytest.approx(3e6)


def test_sampling_grid():
    cfg = SimConfig()
    assert cfg.fs == pytest.approx(cfg.f_clock * cfg.oversample)
    assert cfg.n_samples == cfg.n_cycles * cfg.oversample
    assert cfg.duration == pytest.approx(cfg.n_cycles / cfg.f_clock)
    assert cfg.dt == pytest.approx(1.0 / cfg.fs)


def test_sidebands_land_on_bins():
    """48 MHz and 84 MHz must be integer multiples of the bin width."""
    cfg = SimConfig()
    for freq in (48e6, 84e6, 33e6, 99e6, 15e6, 3e6):
        bins = freq / cfg.bin_width
        assert bins == pytest.approx(round(bins))


def test_trace_covers_whole_blocks():
    cfg = SimConfig()
    assert cfg.n_cycles % cfg.block_cycles == 0
    assert cfg.n_blocks == cfg.n_cycles // cfg.block_cycles


def test_time_axis():
    cfg = SimConfig()
    t = cfg.time()
    assert t.shape == (cfg.n_samples,)
    assert t[0] == 0.0
    assert np.allclose(np.diff(t), cfg.dt)


def test_cycle_starts_align_with_oversample():
    cfg = SimConfig()
    starts = cfg.cycle_starts()
    assert starts.shape == (cfg.n_cycles,)
    assert np.all(np.diff(starts) == cfg.oversample)


def test_iter_blocks_partitions_cycles():
    cfg = SimConfig(n_cycles=33)
    seen = [cycle for block in cfg.iter_blocks() for cycle in block]
    assert seen == list(range(33))


def test_with_replaces_fields():
    cfg = SimConfig()
    hot = cfg.with_(temperature_c=125.0)
    assert hot.temperature_c == 125.0
    assert hot.f_clock == cfg.f_clock


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(f_clock=-1.0),
        dict(oversample=2),
        dict(oversample=7),
        dict(n_cycles=5),
        dict(vdd=0.2),
        dict(temperature_c=200.0),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        SimConfig(**kwargs)
