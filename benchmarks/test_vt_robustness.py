"""Section VI-C — supply-voltage / temperature robustness.

Paper: ~4 dB impedance drop from 0.8 V to 1.2 V; impedance within a
~4 dB band from -40 C to 125 C; chirp current response "does not
change significantly" across supply voltages.
"""

import pytest

from repro.experiments.robustness import format_robustness, run_robustness


def test_vt_robustness(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_robustness(ctx), rounds=1, iterations=1
    )
    # T-gate nominal on-resistance (Section V-B).
    assert result.tgate_nominal_ohm == pytest.approx(34.0, rel=0.05)
    # Voltage sweep: a few dB, monotonically falling with VDD.
    assert 2.0 < result.voltage.span_db < 6.0
    imp = result.voltage.impedance_db_ohm
    assert all(imp[i] >= imp[i + 1] for i in range(len(imp) - 1))
    # Temperature sweep: bounded span.
    assert result.temperature.span_db < 6.0
    # Chirp current response: flat within tens of percent.
    assert result.chirp.relative_span < 0.6
    print()
    print(format_robustness(result))
