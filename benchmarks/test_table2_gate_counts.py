"""Table II — Trojan gate counts and percentages.

Paper values: 28,806 cells overall; T1 1881 (6.52 %), T2 2132 (7.40 %),
T3 329 (1.14 %), T4 2181 (7.57 %).
"""

import pytest

from repro.experiments.table2 import format_table2, run_table2


def test_table2_gate_counts(benchmark):
    rows = benchmark(run_table2)
    by_name = {row.circuit: row for row in rows}
    assert by_name["Overall"].n_cells == 28806
    assert by_name["T1"].n_cells == 1881
    assert by_name["T2"].n_cells == 2132
    assert by_name["T3"].n_cells == 329
    assert by_name["T4"].n_cells == 2181
    assert by_name["T1"].percentage == pytest.approx(6.52, abs=0.01)
    assert by_name["T4"].percentage == pytest.approx(7.57, abs=0.01)
    print()
    print(format_table2(rows))
