"""End-to-end tests of the ``repro serve`` monitoring service.

The contract under test: a chip streamed through the service — HTTP
replay upload or WebSocket push — produces the *same* session report
and the *same* per-chip event transcript as running the offline
:class:`~repro.runtime.pipeline.EscalationPipeline` on the same
archive, bit for bit.  On top of that, overload must shed loudly
(typed events, counted drops, acked refusals) and recover cleanly.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.runtime.events import (
    Backpressure,
    EventBus,
    Overload,
    Shed,
    read_events,
)
from repro.runtime.fleet import build_chip_monitor
from repro.runtime.pipeline import EscalationPipeline
from repro.runtime.presets import build_preset
from repro.runtime.sources import ReplaySource, record_stream
from repro.serve import (
    MonitorService,
    ServeConfig,
    ServiceRunner,
    pack_chunk,
    unpack_chunk,
)

PRESET = build_preset("smoke")

#: Typed events the service adds on top of the pipeline's own stream.
_SERVICE_EVENTS = (Backpressure, Shed, Overload)


@pytest.fixture(scope="module")
def smoke_archive(tmp_path_factory):
    """The smoke stream recorded once, replayed by every test."""
    spec = PRESET.specs(1)[0]
    monitor = build_chip_monitor(
        spec, pipeline_config=PRESET.pipeline_config()
    )
    path = tmp_path_factory.mktemp("serve") / "smoke.npz"
    record_stream(monitor.source, path)
    return path


def offline_reference(path, chip):
    """The standalone pipeline's report + event transcript."""
    source = ReplaySource(path, batch=4)
    bus = EventBus()
    events = []
    bus.subscribe(events.append)
    pipeline = EscalationPipeline(
        SimConfig(),
        n_streams=source.n_streams,
        pipeline=PRESET.pipeline_config(),
        localizer=None,
        bus=bus,
        chip=chip,
    )
    report = pipeline.run(source)
    return report, events


def chip_events(log_path, chip):
    """One chip's pipeline events from the service's JSONL audit log."""
    return [
        event
        for event in read_events(log_path)
        if event.chip == chip and not isinstance(event, _SERVICE_EVENTS)
    ]


def wait_until(predicate, timeout=60.0, interval=0.05):
    """Poll until ``predicate()`` is truthy (service-side settling)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met within timeout")


def test_chunk_wire_roundtrip(smoke_archive):
    chunk = next(ReplaySource(smoke_archive, batch=4).chunks())
    packed = pack_chunk(chunk)
    back = unpack_chunk(packed)
    assert back.start == chunk.start
    assert back.fs == chunk.fs
    assert back.scenarios == chunk.scenarios
    assert back.trace_indices == chunk.trace_indices
    assert back.labels == chunk.labels
    assert back.samples.dtype == chunk.samples.dtype
    assert np.array_equal(back.samples, chunk.samples)
    # The framing itself is canonical: repack is byte-exact.
    assert pack_chunk(back) == packed


def test_http_replay_bit_identical_to_offline(smoke_archive, tmp_path):
    log = tmp_path / "events.jsonl"
    with ServiceRunner(
        MonitorService(ServeConfig(events_path=log))
    ) as runner:
        client = runner.client()
        status, report = client.post(
            "/chips/repA/replay?batch=4", smoke_archive.read_bytes()
        )
        assert status == 200
        # The report endpoint serves the same finalized snapshot.
        status, again = client.get("/chips/repA/report")
        assert status == 200
        assert again == report
        status, metrics = client.get("/metrics")
        assert status == 200

    reference, ref_events = offline_reference(smoke_archive, "repA")
    assert report == json.loads(reference.to_json())
    assert report["detected"] is True
    assert chip_events(log, "repA") == ref_events

    assert metrics["n_chips"] == 1
    assert metrics["windows_total"] == ReplaySource(smoke_archive).n_windows
    assert metrics["alarms_total"] >= 1
    assert metrics["sheds_total"] == 0
    assert metrics["overload_active"] is False
    assert metrics["queued_windows"] == 0
    (gauge,) = metrics["chips"]
    assert gauge["chip"] == "repA"
    assert gauge["kind"] == "replay"
    assert gauge["done"] is True
    assert gauge["alarms"] >= 1
    assert gauge["mttd_ms"] == round(report["mttd"]["mttd_s"] * 1e3, 3)


def test_ws_stream_bit_identical_to_offline(smoke_archive, tmp_path):
    log = tmp_path / "events.jsonl"
    source = ReplaySource(smoke_archive, batch=4)
    chunks = list(source.chunks())
    with ServiceRunner(
        MonitorService(ServeConfig(events_path=log))
    ) as runner:
        ws = runner.client().websocket("/chips/wsA/ws")
        ws.send_json(
            {
                "op": "hello",
                "n_streams": source.n_streams,
                "trigger_index": source.trigger_index,
            }
        )
        assert ws.recv_json() == {"op": "hello", "chip": "wsA"}
        for chunk in chunks:
            ws.send(pack_chunk(chunk))
            ack = ws.recv_json()
            assert ack["accepted"] is True
            assert ack["shed_reason"] is None
            assert ack["window_start"] == chunk.start
            assert ack["n_windows"] == chunk.n_windows
        ws.send_json({"op": "metrics"})
        midstream = ws.recv_json()
        assert midstream["op"] == "metrics"
        assert midstream["metrics"]["n_chips"] == 1
        ws.send_json({"op": "end"})
        reply = ws.recv_json()
        assert reply["op"] == "report"
        ws.close()

    reference, ref_events = offline_reference(smoke_archive, "wsA")
    assert reply["report"] == json.loads(reference.to_json())
    assert chip_events(log, "wsA") == ref_events


def test_ws_overload_sheds_and_recovers(smoke_archive):
    source = ReplaySource(smoke_archive, batch=4)
    chunks = list(source.chunks())
    n_sent = sum(chunk.n_windows for chunk in chunks)
    config = ServeConfig(
        queue_depth=1, high_water_windows=3, drill_delay_s=0.25
    )
    with ServiceRunner(MonitorService(config)) as runner:
        client = runner.client()
        ws = client.websocket("/chips/load/ws")
        ws.send_json(
            {"op": "hello", "n_streams": source.n_streams}
        )
        ws.recv_json()
        acks = []
        for chunk in chunks:
            ws.send(pack_chunk(chunk))
            acks.append(ws.recv_json())

        # The drill guarantees refused work: every refusal is acked
        # with its reason, nothing stalls silently.
        assert acks[0]["accepted"] is True
        shed = [ack for ack in acks if not ack["accepted"]]
        assert shed
        assert all(
            ack["shed_reason"] in ("overload", "queue-full")
            for ack in shed
        )
        dropped = sum(ack["n_windows"] for ack in shed)

        # Recovery: the backlog drains and overload clears.
        def settled():
            _, metrics = client.get("/metrics")
            done = (
                metrics["queued_windows"] == 0
                and not metrics["overload_active"]
            )
            return metrics if done else None

        metrics = wait_until(settled)
        assert metrics["sheds_total"] == len(shed)
        assert metrics["event_counts"]["Shed"] == len(shed)
        assert metrics["event_counts"]["Backpressure"] == len(shed)
        # Overload was entered and exited — both transitions audited.
        assert metrics["event_counts"].get("Overload", 0) >= 2

        # The client keeps its own numbering; the session rebases
        # past the shed windows, so a fresh chunk is seamless.
        fresh = replace(chunks[0], start=n_sent)
        ws.send(pack_chunk(fresh))
        ack = ws.recv_json()
        assert ack["accepted"] is True
        ws.send_json({"op": "end"})
        report = ws.recv_json()
        assert report["op"] == "report"
        ws.close()

        expected = n_sent - dropped + fresh.n_windows
        assert report["report"]["n_windows"] == expected
        _, listing = client.get("/chips")
        (gauge,) = listing["chips"]
        assert gauge["windows"] == expected
        assert gauge["sheds"] == len(shed)
        assert gauge["dropped_windows"] == dropped
        assert gauge["done"] is True


def test_live_onboarding_detects_and_localizes():
    with ServiceRunner(MonitorService(ServeConfig())) as runner:
        client = runner.client()
        status, accepted = client.post(
            "/chips/liveA/live",
            json.dumps({"trojan": "T2"}).encode("utf-8"),
            content_type="application/json",
        )
        assert status == 200
        assert accepted["kind"] == "live"
        assert accepted["trojan"] == "T2"
        assert accepted["windows_scheduled"] == 10
        assert accepted["trigger_index"] == 6

        def finished():
            _, listing = client.get("/chips")
            (gauge,) = listing["chips"]
            return gauge if gauge["done"] else None

        gauge = wait_until(finished, timeout=300.0, interval=0.25)
        assert gauge["windows"] == 10
        status, report = client.get("/chips/liveA/report")
        assert status == 200
        assert report["detected"] is True
        assert report["identification"]["label"] == "T2"
        # A live source can re-measure, so escalation reaches LOCALIZE.
        assert report["localization"] is not None


def test_http_error_paths(smoke_archive):
    with ServiceRunner(MonitorService(ServeConfig())) as runner:
        client = runner.client()
        status, body = client.get("/healthz")
        assert status == 200
        assert body["ok"] is True

        status, body = client.get("/chips/nope/report")
        assert status == 404
        assert "unknown chip" in body["error"]

        status, body = client.get("/no/such/route")
        assert status == 404

        status, body = client.post("/chips/bad$id/replay", b"x")
        assert status == 400
        assert "invalid chip id" in body["error"]

        status, body = client.post("/chips/empty/replay", b"")
        assert status == 400
        assert "archive body" in body["error"]

        status, body = client.post("/chips/garbage/replay", b"not an npz")
        assert status == 400
        assert "not a readable trace archive" in body["error"]

        payload = smoke_archive.read_bytes()
        status, _ = client.post("/chips/dup/replay?batch=4", payload)
        assert status == 200
        status, body = client.post("/chips/dup/replay?batch=4", payload)
        assert status == 409
        assert "already onboarded" in body["error"]


def test_serve_selftest_cli(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["serve", "--selftest", "--no-store"])
    out = capsys.readouterr().out
    assert code == 0
    assert "serve selftest: OK" in out
