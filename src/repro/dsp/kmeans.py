"""K-means clustering, implemented from scratch (k-means++ init).

Used by the backscattering baseline (Nguyen et al., HOST'20) and by the
unsupervised Trojan identifier.  No external ML dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one K-means fit.

    Attributes
    ----------
    centers:
        Cluster centers, shape ``(k, n_features)``.
    labels:
        Cluster index per sample, shape ``(n_samples,)``.
    inertia:
        Sum of squared distances of samples to their assigned center.
    n_iterations:
        Lloyd iterations actually performed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Independent restarts; the best inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative center-movement convergence tolerance.
    rng:
        Numpy random generator (defaults to a fixed-seed generator so
        results are reproducible).
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-7,
        rng: np.random.Generator | None = None,
    ):
        if n_clusters < 1:
            raise AnalysisError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise AnalysisError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self._rng = rng if rng is not None else np.random.default_rng(7)

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Cluster ``data`` of shape (n_samples, n_features)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise AnalysisError("KMeans expects a 2-D (samples x features) matrix")
        n_samples = data.shape[0]
        if n_samples < self.n_clusters:
            raise AnalysisError(
                f"cannot form {self.n_clusters} clusters from "
                f"{n_samples} samples"
            )
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            result = self._single_run(data)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # -- internals -----------------------------------------------------------

    def _single_run(self, data: np.ndarray) -> KMeansResult:
        centers = self._kmeanspp_init(data)
        labels = np.zeros(data.shape[0], dtype=int)
        n_iterations = 0
        for iteration in range(1, self.max_iter + 1):
            n_iterations = iteration
            distances = _sq_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = data[labels == k]
                if members.size:
                    new_centers[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-fit point.
                    worst = int(np.argmax(np.min(distances, axis=1)))
                    new_centers[k] = data[worst]
            movement = float(np.linalg.norm(new_centers - centers))
            scale = float(np.linalg.norm(centers)) or 1.0
            centers = new_centers
            if movement / scale < self.tol:
                break
        distances = _sq_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(np.min(distances, axis=1)))
        return KMeansResult(
            centers=centers,
            labels=labels,
            inertia=inertia,
            n_iterations=n_iterations,
        )

    def _kmeanspp_init(self, data: np.ndarray) -> np.ndarray:
        n_samples = data.shape[0]
        first = int(self._rng.integers(n_samples))
        centers = [data[first]]
        for _ in range(1, self.n_clusters):
            distances = np.min(_sq_distances(data, np.asarray(centers)), axis=1)
            total = float(distances.sum())
            if total == 0.0:
                # All points coincide with existing centers.
                choice = int(self._rng.integers(n_samples))
            else:
                probs = distances / total
                choice = int(self._rng.choice(n_samples, p=probs))
            centers.append(data[choice])
        return np.asarray(centers, dtype=float)


def _sq_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n_samples, n_centers)."""
    diff = data[:, None, :] - centers[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)
