"""Trojan localization from the per-sensor score map.

Stage 3 of the cross-domain analysis: each of the 16 sensors gets a
score — the dB change of its sideband feature between Trojan-active
and Trojan-inactive populations.  The Trojan sits under the argmax
sensor (sensor 10 in the paper's chip); a Trojan-free sensor such as
sensor 0 shows "hardly any spectrum difference".

The PSA's programmability then buys what no fixed sensor can: the
lattice is reprogrammed into four half-size quadrant coils inside the
hot sensor and re-measured, narrowing the physical location to a
quadrant center (~170 um at the paper's geometry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ...chip.power import ActivityRecord
from ...errors import AnalysisError
from ...instruments.spectrum_analyzer import SpectrumAnalyzer
from ..array import ProgrammableSensorArray
from ..sensors import quadrant_coil
from .spectral import added_sideband_scores, sideband_amplitudes

#: Quadrant labels used by the refinement step.
QUADRANTS = ("sw", "se", "nw", "ne")


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of the localization stage.

    Attributes
    ----------
    sensor_index:
        The hot sensor (argmax of the score map).
    scores:
        Per-sensor added sideband amplitude [V], shape ``(16,)``.
    margin_db:
        Amplitude gap between the hot sensor and the runner-up [dB].
    quadrant:
        Refined quadrant of the hot sensor (None if not refined).
    quadrant_scores:
        Added amplitude per quadrant [V] (None if not refined).
    position:
        Estimated Trojan (x, y) on the die [m]: the refined quadrant's
        center, or the sensor center without refinement.
    """

    sensor_index: int
    scores: np.ndarray
    margin_db: float
    quadrant: Optional[str]
    quadrant_scores: Optional[Dict[str, float]]
    position: Tuple[float, float]


class Localizer:
    """Score-map localization with optional adaptive refinement.

    Parameters
    ----------
    psa:
        The sensor array to measure with.
    analyzer:
        Spectrum analyzer model.
    batched:
        Render the quadrant refinement as one engine pass over every
        (quadrant coil, record) capture (the default).  ``False``
        keeps the per-quadrant render loop as a reference path; both
        produce bit-identical quadrant scores.
    """

    def __init__(
        self,
        psa: ProgrammableSensorArray,
        analyzer: Optional[SpectrumAnalyzer] = None,
        batched: bool = True,
    ):
        self.psa = psa
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.batched = batched

    # -- feature helpers ---------------------------------------------------------

    def _mean_amplitudes(self, batch) -> np.ndarray:
        """Featurize one rendered batch to per-sensor mean amplitudes."""
        grid, display = self.analyzer.display_matrix(
            batch.samples.reshape(-1, batch.n_samples), batch.fs
        )
        amps = sideband_amplitudes(grid, display, self.psa.config).reshape(
            self.psa.n_sensors, -1
        )
        return amps.mean(axis=1)

    def _sensor_amplitudes(
        self, records: Sequence[ActivityRecord], trace_offset: int = 0
    ) -> np.ndarray:
        """Mean sideband RMS amplitude [V] per sensor of the array.

        One engine render covers every (sensor, record) capture; the
        display spectra and band features are extracted in vectorized
        passes over the whole batch.
        """
        if not records:
            raise AnalysisError("no activity records supplied")
        batch = self.psa.render(
            records,
            trace_indices=[trace_offset + i for i in range(len(records))],
        )
        return self._mean_amplitudes(batch)

    def enqueue_score_map(
        self,
        plan,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
    ):
        """Enqueue a score map's renders on a fused dispatch plan.

        The base and active populations share the coupling matrix and
        the full sensor set, so the plan fuses both (and any other
        score maps enqueued alongside) into one engine job.  Feed the
        returned handle to :meth:`finish_score_map` after
        ``plan.execute()``.
        """
        if not baseline_records or not active_records:
            raise AnalysisError("no activity records supplied")
        base = self.psa.enqueue(
            plan,
            baseline_records,
            trace_indices=list(range(len(baseline_records))),
        )
        active = self.psa.enqueue(
            plan,
            active_records,
            trace_indices=[1000 + i for i in range(len(active_records))],
        )
        return base, active

    def finish_score_map(self, tickets) -> np.ndarray:
        """Score map from an executed :meth:`enqueue_score_map` handle."""
        base, active = tickets
        return self._mean_amplitudes(active.result()) - self._mean_amplitudes(
            base.result()
        )

    def score_map(
        self,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
    ) -> np.ndarray:
        """Per-sensor *added* sideband amplitude [V], shape ``(16,)``.

        Linear amplitudes keep the ranking physical: all 16 coils are
        identical, so the sensor over the Trojan gains the most
        amplitude.  (A dB-change map would instead favor quiet corner
        sensors that pick up a whiff of the Trojan through the global
        package loop.)

        Both populations render as one fused engine pass (they share
        the coupling matrix and sensor set); each row is bit-identical
        to its standalone render.
        """
        from ...engine import RenderPlan

        plan = RenderPlan()
        tickets = self.enqueue_score_map(
            plan, baseline_records, active_records
        )
        plan.execute()
        return self.finish_score_map(tickets)

    # -- localization ---------------------------------------------------------------

    def localize(
        self,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
        refine: bool = True,
        scores: Optional[np.ndarray] = None,
    ) -> LocalizationResult:
        """Run the full localization stage.

        Parameters
        ----------
        baseline_records, active_records:
            Matched Trojan-inactive / Trojan-active activity records.
        refine:
            Reprogram the hot sensor into four quadrant coils and
            narrow the estimate to a quadrant center (~170 um).
        scores:
            Prefetched score map for these records (from
            :meth:`enqueue_score_map`/:meth:`finish_score_map` on a
            fused plan); None computes it here.  Both routes are
            bit-identical.

        Returns
        -------
        LocalizationResult
            Hot sensor, score map [V], margin [dB], optional quadrant
            refinement and the position estimate [m].
        """
        if scores is None:
            scores = self.score_map(baseline_records, active_records)
        order = np.argsort(scores)
        hot = int(order[-1])
        runner_up = max(float(scores[order[-2]]), 1e-15)
        margin = float(
            20.0 * np.log10(max(scores[order[-1]], 1e-15) / runner_up)
        )

        quadrant = None
        quadrant_scores: Optional[Dict[str, float]] = None
        coil = self.psa.sensor_coil(hot)
        # Default position: hot sensor's outer-turn center.
        position = coil.turn_rects[0].center

        if refine:
            quadrant_scores = self._refine(hot, baseline_records, active_records)
            quadrant = max(quadrant_scores, key=quadrant_scores.get)
            refined_coil = quadrant_coil(hot, quadrant)
            position = refined_coil.turn_rects[0].center

        return LocalizationResult(
            sensor_index=hot,
            scores=scores,
            margin_db=margin,
            quadrant=quadrant,
            quadrant_scores=quadrant_scores,
            position=position,
        )

    def _refine(
        self,
        sensor_index: int,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
    ) -> Dict[str, float]:
        """Reprogram quadrant coils and score them.

        The batched path renders all four quadrant coils over both
        populations in **one** engine pass (a coupling stack, one
        receiver row per quadrant) and extracts every band feature in
        one vectorized display pass; the per-quadrant render loop is
        retained as the reference path (``batched=False``).  Both
        produce bit-identical scores.

        Returns
        -------
        dict
            Added sideband amplitude [V] per quadrant label.
        """
        config = self.psa.config
        n_base = len(baseline_records)
        records = list(baseline_records) + list(active_records)
        indices = list(range(n_base)) + [
            2000 + i for i in range(len(active_records))
        ]
        if self.batched:
            coils = [quadrant_coil(sensor_index, which) for which in QUADRANTS]
            batched = added_sideband_scores(
                self.psa,
                self.analyzer,
                coils,
                baseline_records,
                active_records,
                active_offset=2000,
            )
            return {
                which: float(score)
                for which, score in zip(QUADRANTS, batched)
            }
        scores: Dict[str, float] = {}
        for which in QUADRANTS:
            coil = quadrant_coil(sensor_index, which)
            batch = self.psa.measure_coil_batch(
                coil, records, trace_indices=indices
            )
            grid, display = self.analyzer.display_matrix(
                batch.samples[0], batch.fs
            )
            amps = sideband_amplitudes(grid, display, config)
            scores[which] = float(
                np.mean(amps[n_base:]) - np.mean(amps[:n_base])
            )
        return scores
