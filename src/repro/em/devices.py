"""Transistor-level device models: MOSFET on-resistance and T-gates.

The PSA's custom T-gate cell (Figure 1c) pairs two PMOS and two NMOS
devices in parallel (10 fingers each, 500/60 nm NMOS and 610/60 nm
PMOS) and achieves ~34 ohm on-resistance at nominal conditions.

The triode-region on-resistance model is

    Ron = 1 / (beta(T) * (VDD - Vth(T))^alpha)

with a velocity-saturation exponent ``alpha ~ 0.6`` (short-channel),
mobility degradation ``beta(T) = beta_300 * (T/300K)^-1.5`` and a
linear threshold shift ``Vth(T) = Vth_300 - k_vt * (T - 300K)``.  The
muted overdrive dependence and the mobility/threshold cancellation are
why Section VI-C measures only a ~4 dB impedance variation across
-40..125 C and 0.8..1.2 V.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..units import celsius_to_kelvin

#: Nominal conditions for calibration.
_V_NOMINAL = 1.2
_T_NOMINAL_K = 300.0

#: Threshold voltages at 300 K [V].
VTH_NMOS = 0.45
VTH_PMOS = 0.50

#: Threshold temperature coefficient [V/K].
K_VT = 1.0e-3

#: Mobility temperature exponent.
MOBILITY_EXPONENT = -1.5

#: Overdrive exponent.  Short-channel (60 nm) devices are velocity
#: saturated: Ron ~ 1/(Vov^alpha) with alpha well below 1, which is why
#: the measured impedance moves only ~4 dB across the 0.8-1.2 V supply
#: range (Section VI-C).
VSAT_EXPONENT = 0.6

# Transconductance factors calibrated so one T-gate (two NMOS + two
# PMOS in parallel) is 34 ohm at 1.2 V / 300 K.
_BETA_NMOS = 1.0 / (130.0 * (_V_NOMINAL - VTH_NMOS) ** VSAT_EXPONENT)
_BETA_PMOS = 1.0 / (143.0 * (_V_NOMINAL - VTH_PMOS) ** VSAT_EXPONENT)

#: Nominal single-T-gate on-resistance [ohm] (Section V-B).
TGATE_R_NOMINAL = 34.0

#: Sheet resistance of the thick top metals (M7/M8) [ohm/sq].
TOP_METAL_SHEET_OHM = 0.02

#: Inductance per meter of on-chip loop wiring [H/m] (rule of thumb).
WIRE_INDUCTANCE_PER_M = 1.0e-6


def _vth(vth_300: float, temperature_k: float) -> float:
    return vth_300 - K_VT * (temperature_k - _T_NOMINAL_K)


def mosfet_on_resistance(
    vdd: float, temperature_c: float, kind: str = "nmos"
) -> float:
    """Triode on-resistance of one (composite) MOSFET [ohm].

    Parameters
    ----------
    vdd:
        Gate drive = supply voltage [V].
    temperature_c:
        Junction temperature [C].
    kind:
        ``"nmos"`` or ``"pmos"``.
    """
    if kind == "nmos":
        beta_300, vth_300 = _BETA_NMOS, VTH_NMOS
    elif kind == "pmos":
        beta_300, vth_300 = _BETA_PMOS, VTH_PMOS
    else:
        raise ConfigError(f"unknown device kind {kind!r}")
    temperature_k = celsius_to_kelvin(temperature_c)
    beta = beta_300 * (temperature_k / _T_NOMINAL_K) ** MOBILITY_EXPONENT
    overdrive = vdd - _vth(vth_300, temperature_k)
    if overdrive <= 0.05:
        raise ConfigError(
            f"device barely on: vdd={vdd} V leaves {overdrive:.3f} V of "
            "overdrive"
        )
    return 1.0 / (beta * overdrive**VSAT_EXPONENT)


def tgate_resistance(vdd: float = 1.2, temperature_c: float = 25.0) -> float:
    """On-resistance of one PSA T-gate cell [ohm].

    Two NMOS and two PMOS devices in parallel (the Figure 1c layout).
    ~34 ohm at nominal corner.
    """
    r_n = mosfet_on_resistance(vdd, temperature_c, "nmos") / 2.0
    r_p = mosfet_on_resistance(vdd, temperature_c, "pmos") / 2.0
    return (r_n * r_p) / (r_n + r_p)


def wire_resistance(length_m: float, width_m: float) -> float:
    """Resistance of a top-metal wire [ohm]."""
    if length_m < 0 or width_m <= 0:
        raise ConfigError("wire needs length >= 0 and width > 0")
    squares = length_m / width_m
    return squares * TOP_METAL_SHEET_OHM


def sensor_impedance(
    n_tgates: int,
    wire_length_m: float,
    frequency: float,
    vdd: float = 1.2,
    temperature_c: float = 25.0,
    wire_width_m: float = 1.0e-6,
) -> complex:
    """Series impedance of a programmed coil at one frequency [ohm].

    Resistance: the traversed T-gates plus the lattice wire; reactance:
    a rule-of-thumb loop inductance proportional to wire length.
    """
    if n_tgates < 0:
        raise ConfigError("n_tgates must be >= 0")
    resistance = n_tgates * tgate_resistance(vdd, temperature_c)
    resistance += wire_resistance(wire_length_m, wire_width_m)
    inductance = WIRE_INDUCTANCE_PER_M * wire_length_m
    return complex(resistance, 2.0 * math.pi * frequency * inductance)


def impedance_db(impedance: complex) -> float:
    """|Z| in dB-ohm."""
    magnitude = abs(impedance)
    if magnitude <= 0:
        raise ConfigError("impedance magnitude must be positive")
    return 20.0 * math.log10(magnitude)
