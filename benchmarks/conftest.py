"""Shared benchmark fixtures: one chip/PSA context per session."""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared experiment context (coupling matrices built once)."""
    return ExperimentContext.build()
