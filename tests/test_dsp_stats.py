"""Detection statistics and power analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.stats import (
    cohens_d,
    detection_power,
    detection_rate,
    required_measurements,
    roc_auc,
    welch_t,
    z_score,
)
from repro.errors import AnalysisError


def test_cohens_d_unit_separation():
    rng = np.random.default_rng(0)
    a = rng.normal(1.0, 1.0, 4000)
    b = rng.normal(0.0, 1.0, 4000)
    assert cohens_d(a, b) == pytest.approx(1.0, abs=0.1)


def test_cohens_d_degenerate_zero_variance():
    assert cohens_d(np.ones(5), np.zeros(5)) == math.inf
    assert cohens_d(np.zeros(5), np.ones(5)) == -math.inf  # signed
    assert cohens_d(np.ones(5), np.ones(5)) == 0.0


def test_required_measurements_decreases_with_effect():
    small = required_measurements(0.04)
    large = required_measurements(5.0)
    assert small > 10_000
    assert large <= 2
    assert required_measurements(0.0) == 10**9


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.01, max_value=10.0))
def test_required_measurements_monotone(d):
    assert required_measurements(d) >= required_measurements(d * 2)


def test_detection_power_wraps_both():
    rng = np.random.default_rng(1)
    a = rng.normal(3.0, 1.0, 500)
    b = rng.normal(0.0, 1.0, 500)
    power = detection_power(a, b)
    assert power.effect_size == pytest.approx(3.0, abs=0.3)
    assert power.n_required <= 5


def test_welch_t_sign():
    assert welch_t(np.array([5.0, 6.0, 7.0]), np.array([1.0, 2.0, 3.0])) > 0
    assert welch_t(np.array([1.0, 2.0, 3.0]), np.array([5.0, 6.0, 7.0])) < 0


def test_welch_t_zero_variance_keeps_sign():
    ones, twos = np.ones(4), np.full(4, 2.0)
    assert welch_t(twos, ones) == math.inf
    assert welch_t(ones, twos) == -math.inf
    assert welch_t(ones, ones) == 0.0


def test_z_score_basic():
    baseline = np.array([10.0, 10.5, 9.5, 10.2, 9.8])
    assert z_score(10.0, baseline) == pytest.approx(0.0, abs=0.2)
    assert z_score(20.0, baseline) > 10


def test_z_score_zero_variance_keeps_sign():
    """A value below a zero-variance baseline is -inf, not +inf."""
    baseline = np.full(6, 3.0)
    assert z_score(5.0, baseline) == math.inf
    assert z_score(1.0, baseline) == -math.inf
    assert z_score(3.0, baseline) == 0.0


def test_roc_auc_perfect_and_chance():
    assert roc_auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0
    same = np.array([1.0, 1.0])
    assert roc_auc(same, same) == 0.5


def test_detection_rate_extremes():
    baseline = np.random.default_rng(2).normal(0, 1, 100)
    far = baseline + 100.0
    assert detection_rate(far, baseline, z_threshold=4.0) == 1.0
    assert detection_rate(baseline, baseline, z_threshold=4.0) < 0.05


def test_small_samples_rejected():
    with pytest.raises(AnalysisError):
        cohens_d(np.array([1.0]), np.array([1.0, 2.0]))
    with pytest.raises(AnalysisError):
        z_score(1.0, np.array([1.0]))
