"""Run-time cross-domain analysis (Section VI-D).

The paper's flow, reproduced end to end:

1. **Frequency domain** — per-sensor spectra (5-trace average) are
   screened for prominent components that appear only when a Trojan is
   active; with the paper's clocking these are the 48 MHz / 84 MHz
   sidebands of the 1st/3rd clock harmonics
   (:mod:`~repro.core.analysis.spectral`).
2. **Detection** — a golden-model-free change detector z-scores each
   new trace's sideband feature against a self-learned baseline
   (:mod:`~repro.core.analysis.detector`), needing fewer than ten
   traces (:mod:`~repro.core.analysis.mttd` converts that to MTTD).
3. **Localization** — the per-sensor score map pins the hot sensor;
   reprogramming the lattice into quadrant coils refines the position
   (:mod:`~repro.core.analysis.localizer`).
4. **Identification** — zero-span envelopes at a prominent sideband are
   classified by modulation signature, without full supervision
   (:mod:`~repro.core.analysis.identifier`).

:class:`~repro.core.analysis.pipeline.CrossDomainAnalyzer` drives all
four stages from raw chip activity.
"""

from .spectral import (
    IMAGE_OFFSET_HARMONICS,
    clock_harmonics,
    find_prominent_components,
    sideband_feature_db,
    sideband_frequencies,
)
from .detector import DetectionDecision, DetectorConfig, RuntimeDetector
from .welford import BankStep, BankTimeline, DetectorBank, RollingMoments
from .localizer import LocalizationResult, Localizer
from .identifier import TrojanIdentifier, IdentificationResult
from .mttd import MttdModel, MttdResult
from .scanner import AdaptiveScanner, ScanResult, ScanWindow
from .pipeline import CrossDomainAnalyzer, CrossDomainReport

__all__ = [
    "IMAGE_OFFSET_HARMONICS",
    "clock_harmonics",
    "find_prominent_components",
    "sideband_feature_db",
    "sideband_frequencies",
    "DetectionDecision",
    "DetectorConfig",
    "RuntimeDetector",
    "BankStep",
    "BankTimeline",
    "DetectorBank",
    "RollingMoments",
    "LocalizationResult",
    "Localizer",
    "TrojanIdentifier",
    "IdentificationResult",
    "MttdModel",
    "MttdResult",
    "AdaptiveScanner",
    "ScanResult",
    "ScanWindow",
    "CrossDomainAnalyzer",
    "CrossDomainReport",
]
