"""Unit tests of the benchmark regression gate (tools/check_bench.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    Path(__file__).resolve().parent.parent / "tools" / "check_bench.py",
)
check_bench = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_bench", check_bench)
_SPEC.loader.exec_module(check_bench)


def test_collect_metrics_flattens_nested_monitored_keys():
    report = {
        "speedup": 3.5,
        "grid": {"n_cells": 16},
        "legacy_per_trace": {"seconds": 8.0, "cells_per_sec": 1.9},
        "store_warm_start": {"speedup_vs_cold": 10.0},
        "smoke": True,
    }
    metrics = check_bench.collect_metrics(report)
    assert metrics == {
        "speedup": 3.5,
        "legacy_per_trace.cells_per_sec": 1.9,
        "store_warm_start.speedup_vs_cold": 10.0,
    }


def test_backend_scaling_metrics_are_monitored():
    baseline = {
        "shared_backend": {"speedup_vs_serial": 0.44, "workers": 2},
        "fleet_scaling": {"scaling_efficiency": 0.9, "chips": [1, 4]},
    }
    regressed = {
        "shared_backend": {"speedup_vs_serial": 0.2, "workers": 2},
        "fleet_scaling": {"scaling_efficiency": 0.5, "chips": [1, 4]},
    }
    assert check_bench.compare_reports(baseline, baseline, 0.25) == []
    problems = check_bench.compare_reports(baseline, regressed, 0.25)
    assert len(problems) == 2
    joined = "\n".join(problems)
    assert "shared_backend.speedup_vs_serial" in joined
    assert "fleet_scaling.scaling_efficiency" in joined


def test_compare_passes_within_tolerance():
    baseline = {"speedup": 4.0, "sweep": {"cells_per_sec": 10.0}}
    current = {"speedup": 3.2, "sweep": {"cells_per_sec": 7.6}}
    assert check_bench.compare_reports(baseline, current, 0.25) == []


def test_compare_flags_regression_beyond_tolerance():
    baseline = {"speedup": 4.0}
    current = {"speedup": 2.9}
    problems = check_bench.compare_reports(baseline, current, 0.25)
    assert len(problems) == 1
    assert "speedup" in problems[0]


def test_compare_boundary_is_inclusive():
    baseline = {"speedup": 4.0}
    exactly_at_floor = {"speedup": 3.0}
    assert check_bench.compare_reports(baseline, exactly_at_floor, 0.25) == []


def test_missing_monitored_metric_fails():
    baseline = {"speedup": 4.0, "fleet": {"windows_per_sec": 50.0}}
    current = {"speedup": 4.0}
    problems = check_bench.compare_reports(baseline, current, 0.25)
    assert len(problems) == 1
    assert "missing metric fleet.windows_per_sec" in problems[0]


def test_improvements_and_new_metrics_pass():
    baseline = {"speedup": 4.0}
    current = {"speedup": 9.0, "extra": {"windows_per_sec": 1.0}}
    assert check_bench.compare_reports(baseline, current, 0.25) == []


def test_non_monitored_keys_ignored():
    baseline = {"seconds": 100.0, "n_cells": 16}
    current = {"seconds": 9000.0, "n_cells": 2}
    assert check_bench.compare_reports(baseline, current, 0.25) == []


def _write(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))


def test_run_pairs_files_and_gates(tmp_path):
    baselines = tmp_path / "baselines"
    current = tmp_path / "current"
    _write(baselines / "BENCH_a.json", {"speedup": 4.0})
    _write(baselines / "BENCH_b.json", {"windows_per_sec": 100.0})
    _write(current / "BENCH_a.json", {"speedup": 4.1})
    _write(current / "BENCH_b.json", {"windows_per_sec": 10.0})
    code, lines = check_bench.run(baselines, current, 0.25)
    assert code == 1
    joined = "\n".join(lines)
    assert "ok   BENCH_a.json" in joined
    assert "FAIL BENCH_b.json" in joined


def test_run_fails_on_missing_current_report(tmp_path):
    baselines = tmp_path / "baselines"
    _write(baselines / "BENCH_a.json", {"speedup": 4.0})
    code, lines = check_bench.run(baselines, tmp_path / "current", 0.25)
    assert code == 1
    assert "no current report" in lines[0]


def test_run_fails_without_baselines(tmp_path):
    code, lines = check_bench.run(
        tmp_path / "none", tmp_path / "current", 0.25
    )
    assert code == 1


def test_main_exit_codes_and_tolerance_flag(tmp_path, capsys):
    baselines = tmp_path / "baselines"
    current = tmp_path / "current"
    _write(baselines / "BENCH_a.json", {"speedup": 4.0})
    _write(current / "BENCH_a.json", {"speedup": 2.5})
    argv = [
        "--baseline-dir",
        str(baselines),
        "--current-dir",
        str(current),
    ]
    assert check_bench.main(argv) == 1
    capsys.readouterr()
    assert check_bench.main(argv + ["--tolerance", "0.5"]) == 0
    with pytest.raises(SystemExit):
        check_bench.main(argv + ["--tolerance", "1.5"])
