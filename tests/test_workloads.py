"""Workload generation and campaigns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.lfsr import GaloisLfsr, PlaintextGenerator
from repro.workloads.scenarios import (
    SCENARIOS,
    reference_for,
    scenario_by_name,
)


def test_lfsr_deterministic_and_nontrivial():
    a = GaloisLfsr(seed=0x1234)
    b = GaloisLfsr(seed=0x1234)
    blocks_a = [a.next_block() for _ in range(4)]
    blocks_b = [b.next_block() for _ in range(4)]
    assert blocks_a == blocks_b
    assert len(set(blocks_a)) == 4  # no short cycles


def test_lfsr_bit_balance():
    lfsr = GaloisLfsr()
    bits = [lfsr.step() for _ in range(4096)]
    assert 0.45 < np.mean(bits) < 0.55


def test_lfsr_rejects_zero_seed():
    with pytest.raises(WorkloadError):
        GaloisLfsr(seed=0)


def test_random_blocks_never_trigger_t2():
    generator = PlaintextGenerator()
    for block in generator.random_blocks(200):
        assert block[:2] != b"\xaa\xaa"


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=40))
def test_t2_trigger_fraction(n_blocks):
    generator = PlaintextGenerator()
    blocks = generator.t2_trigger_blocks(n_blocks, match_fraction=0.5)
    matches = sum(1 for b in blocks if b[:2] == b"\xaa\xaa")
    assert matches == n_blocks // 2


def test_t2_full_match_fraction():
    generator = PlaintextGenerator()
    blocks = generator.t2_trigger_blocks(10, match_fraction=1.0)
    assert all(b[:2] == b"\xaa\xaa" for b in blocks)


def test_scenarios_cover_paper_conditions():
    assert {"idle", "baseline", "T1", "T2", "T3", "T4"} <= set(SCENARIOS)
    assert scenario_by_name("idle").idle
    assert scenario_by_name("T3").active == frozenset({"T3"})
    with pytest.raises(WorkloadError):
        scenario_by_name("T9")


def test_t2_reference_uses_matched_workload():
    """T2 compares against the same plaintext distribution."""
    assert reference_for("T2").name == "T2_ref"
    assert reference_for("T2").active == frozenset()
    assert reference_for("T1").name == "baseline"


def test_scenario_plaintexts_respect_policy():
    t2 = scenario_by_name("T2").plaintexts(10, seed=1)
    assert any(block[:2] == b"\xaa\xaa" for block in t2)
    base = scenario_by_name("baseline").plaintexts(10, seed=1)
    assert all(block[:2] != b"\xaa\xaa" for block in base)


def test_campaign_records_fresh_plaintexts(campaign):
    scenario = scenario_by_name("baseline")
    a = campaign.record(scenario, 0)
    b = campaign.record(scenario, 1)
    assert not np.allclose(a.main, b.main)


def test_campaign_collect(campaign):
    trace_set = campaign.collect("baseline", n_traces=2, sensors=[0, 10])
    assert trace_set.n_traces == 2
    assert len(trace_set.sensor(10)) == 2
    assert trace_set.sensor(10)[0].scenario == "baseline"
    with pytest.raises(WorkloadError):
        trace_set.sensor(5)


def test_campaign_validates_inputs(campaign):
    with pytest.raises(WorkloadError):
        campaign.records("baseline", 0)


def test_campaign_collect_derives_sensors_from_psa(chip):
    """A 4-sensor array collects exactly 4 sensors — no phantom 16."""
    from repro.core.array import ProgrammableSensorArray
    from repro.workloads.campaign import MeasurementCampaign

    small_psa = ProgrammableSensorArray(chip, n_sensors=4)
    small_campaign = MeasurementCampaign(chip, small_psa)
    trace_set = small_campaign.collect("baseline", n_traces=2)
    assert set(trace_set.traces) == {0, 1, 2, 3}
    assert all(len(traces) == 2 for traces in trace_set.traces.values())
    with pytest.raises(Exception):
        small_campaign.collect("baseline", n_traces=1, sensors=[7])

    # Downstream consumers derive the count too (no hardcoded 16).
    from repro.core.analysis.localizer import Localizer
    from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
    from repro.workloads.scenarios import scenario_by_name

    base = [small_campaign.record(scenario_by_name("baseline"), 0)]
    active = [small_campaign.record(scenario_by_name("T1"), 500)]
    score = Localizer(small_psa, SpectrumAnalyzer()).score_map(base, active)
    assert score.shape == (4,)


def test_campaign_collect_stream_concatenates_segments(campaign):
    from repro.workloads.campaign import StreamSegment

    cache = {}
    batch = campaign.collect_stream(
        [
            StreamSegment("baseline", 2, 0),
            StreamSegment("T1", 2, 500),
        ],
        sensors=[10],
        record_cache=cache,
    )
    assert batch.n_traces == 4
    assert batch.scenarios == ("baseline", "baseline", "T1", "T1")
    assert batch.trace_indices == (0, 1, 500, 501)
    assert set(cache) == {
        ("baseline", 0), ("baseline", 1), ("T1", 500), ("T1", 501),
    }
    # Cache hit: the same stream re-renders without re-simulating.
    again = campaign.collect_stream(
        [StreamSegment("baseline", 2, 0), StreamSegment("T1", 2, 500)],
        sensors=[10],
        record_cache=cache,
    )
    assert np.array_equal(again.samples, batch.samples)
    with pytest.raises(WorkloadError):
        campaign.collect_stream([], sensors=[10])
    with pytest.raises(WorkloadError):
        StreamSegment("baseline", 0, 0)
