"""Stdlib wire protocol of the serve front-end.

The monitoring service speaks plain HTTP/1.1 plus RFC 6455 WebSocket
over asyncio streams — no third-party web framework, because the
surface is tiny (a handful of JSON endpoints, one binary streaming
socket) and the deployment constraint is "runs anywhere the Python
toolchain runs".  This module owns everything byte-shaped:

* :func:`read_request` / :func:`response_bytes` — minimal HTTP/1.1
  request parsing and response framing (Content-Length bodies only;
  the service never chunk-encodes).
* :func:`websocket_accept` / :func:`read_ws_frame` /
  :func:`ws_frame` — the WebSocket upgrade handshake and frame codec
  (server side unmasked, client side masked, no fragmentation — a
  chunk is always one frame).
* :func:`pack_chunk` / :func:`unpack_chunk` — the binary
  :class:`~repro.runtime.sources.StreamChunk` wire form (JSON header
  + raw C-order samples), byte-exact across the round trip.
* :class:`ServeClient` — a small *blocking* HTTP/WS client used by
  the tests, the benchmark and ``repro serve --selftest``; keeping it
  here means client and server share one framing implementation.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from ..errors import AnalysisError
from ..runtime.sources import StreamChunk

#: Upload bound: a replay archive bigger than this is refused with
#: 413 instead of buffered (64 windows x 64 streams of float64 smoke
#: traces is ~26 MB; this leaves generous headroom).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: RFC 6455 handshake GUID.
WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes the service speaks.
WS_TEXT = 0x1
WS_BINARY = 0x2
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA

#: Status phrases for the responses the service actually sends.
STATUS_PHRASES: Dict[int, str] = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


class ProtocolError(AnalysisError):
    """A peer sent bytes the protocol layer cannot accept."""


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP/1.1 request.

    Attributes
    ----------
    method, path:
        Request line (path with the query string split off).
    query:
        Decoded query parameters.
    headers:
        Header fields, keys lower-cased.
    body:
        Request body (b"" when absent).
    """

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def wants_websocket(self) -> bool:
        """Whether this request asks for the WebSocket upgrade."""
        return (
            self.headers.get("upgrade", "").lower() == "websocket"
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    @property
    def keep_alive(self) -> bool:
        """Whether the connection persists after the response."""
        return "close" not in self.headers.get("connection", "").lower()


async def read_request(
    reader, max_body: int = MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request from an asyncio stream reader.

    Returns None on a cleanly closed connection (EOF before the
    request line); raises :class:`ProtocolError` on malformed bytes
    or a body above ``max_body``.
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError:
        raise ProtocolError(f"malformed request line {line!r}")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body:
        raise ProtocolError(
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte bound"
        )
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(
        method=method.upper(),
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Iterable[Tuple[str, str]] = (),
    keep_alive: bool = True,
) -> bytes:
    """Frame one HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def json_response(
    status: int, payload: object, keep_alive: bool = True
) -> bytes:
    """Frame one JSON response."""
    return response_bytes(
        status,
        (json.dumps(payload) + "\n").encode("utf-8"),
        keep_alive=keep_alive,
    )


# -- WebSocket framing (RFC 6455) ------------------------------------------


def websocket_accept(key: str) -> str:
    """The Sec-WebSocket-Accept digest of a handshake key."""
    digest = hashlib.sha1((key + WS_MAGIC).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake_bytes(request: HttpRequest) -> bytes:
    """The 101 upgrade response for a WebSocket request."""
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise ProtocolError("websocket upgrade without Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
    ).encode("ascii")


def ws_frame(
    payload: bytes, opcode: int = WS_BINARY, mask: bool = False
) -> bytes:
    """Frame one unfragmented WebSocket message.

    Servers send unmasked frames; clients must mask (RFC 6455 §5.1).
    """
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return bytes(head) + masked
    return bytes(head) + payload


async def read_ws_frame(
    reader, max_size: int = MAX_BODY_BYTES
) -> Optional[Tuple[int, bytes]]:
    """Read one WebSocket frame; ``(opcode, payload)`` or None on EOF.

    Handles unmasking (client frames arrive masked).  Fragmented
    messages are rejected — the service's chunk protocol is one
    message per frame by construction.
    """
    head = await reader.read(2)
    if len(head) < 2:
        return None
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    if not fin:
        raise ProtocolError("fragmented websocket frames are not supported")
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > max_size:
        raise ProtocolError(
            f"websocket frame of {length} bytes exceeds the "
            f"{max_size}-byte bound"
        )
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


# -- StreamChunk wire form -------------------------------------------------

#: Chunk wire magic ("Repro Chunk v1").
CHUNK_MAGIC = b"RPC1"


def pack_chunk(chunk: StreamChunk) -> bytes:
    """Serialize one :class:`StreamChunk` for the wire.

    Layout: 4-byte magic, 4-byte big-endian header length, JSON
    header (shape/dtype/bookkeeping), raw C-order samples.  The round
    trip through :func:`unpack_chunk` is byte-exact, so a streamed
    session stays bit-identical to the recorded one.
    """
    samples = np.ascontiguousarray(chunk.samples)
    header = json.dumps(
        {
            "fs": chunk.fs,
            "start": chunk.start,
            "scenarios": list(chunk.scenarios),
            "trace_indices": [int(i) for i in chunk.trace_indices],
            "labels": list(chunk.labels),
            "shape": list(samples.shape),
            "dtype": samples.dtype.str,
        }
    ).encode("utf-8")
    return (
        CHUNK_MAGIC
        + struct.pack(">I", len(header))
        + header
        + samples.tobytes()
    )


def unpack_chunk(data: bytes) -> StreamChunk:
    """Rebuild a :class:`StreamChunk` from its wire form."""
    if data[:4] != CHUNK_MAGIC:
        raise ProtocolError("not a packed stream chunk (bad magic)")
    (header_len,) = struct.unpack(">I", data[4:8])
    header = json.loads(data[8 : 8 + header_len].decode("utf-8"))
    shape = tuple(int(n) for n in header["shape"])
    samples = np.frombuffer(
        data, dtype=np.dtype(header["dtype"]), offset=8 + header_len
    ).reshape(shape)
    expected = int(np.prod(shape))
    if samples.size != expected:
        raise ProtocolError(
            f"chunk payload holds {samples.size} samples, header "
            f"promises {expected}"
        )
    return StreamChunk(
        samples=samples.copy(),
        fs=float(header["fs"]),
        start=int(header["start"]),
        scenarios=tuple(header["scenarios"]),
        trace_indices=tuple(int(i) for i in header["trace_indices"]),
        labels=tuple(header["labels"]),
    )


# -- Blocking client (tests, benchmark, --selftest) ------------------------


class WsConnection:
    """One blocking client-side WebSocket connection."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._file = sock.makefile("rb")

    def send(self, payload: bytes, opcode: int = WS_BINARY) -> None:
        """Send one masked frame (clients must mask)."""
        self._sock.sendall(ws_frame(payload, opcode=opcode, mask=True))

    def send_json(self, payload: object) -> None:
        """Send one JSON text frame."""
        self.send(json.dumps(payload).encode("utf-8"), opcode=WS_TEXT)

    def _readexactly(self, n: int) -> bytes:
        data = self._file.read(n)
        if data is None or len(data) < n:
            raise ProtocolError("websocket connection closed mid-frame")
        return data

    def recv(self) -> Tuple[int, bytes]:
        """Read one frame; ``(opcode, payload)`` (server frames are
        unmasked, but masked frames are handled for symmetry)."""
        head = self._readexactly(2)
        fin = bool(head[0] & 0x80)
        opcode = head[0] & 0x0F
        if not fin:
            raise ProtocolError(
                "fragmented websocket frames are not supported"
            )
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", self._readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", self._readexactly(8))
        key = self._readexactly(4) if masked else b""
        payload = self._readexactly(length) if length else b""
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return opcode, payload

    def recv_json(self) -> dict:
        """Read one frame and decode it as JSON."""
        opcode, payload = self.recv()
        if opcode == WS_CLOSE:
            raise ProtocolError("websocket closed by peer")
        return json.loads(payload.decode("utf-8"))

    def close(self) -> None:
        """Send a close frame and drop the socket."""
        try:
            self._sock.sendall(ws_frame(b"", opcode=WS_CLOSE, mask=True))
        except OSError:
            pass
        self._file.close()
        self._sock.close()


class ServeClient:
    """Blocking HTTP/WebSocket client for one serve instance.

    The tests, the throughput benchmark and ``repro serve --selftest``
    all drive the service through this class, so client and server
    exercise the same framing code.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> Tuple[int, dict]:
        """One HTTP exchange; returns ``(status, decoded JSON body)``."""
        sock = self._connect()
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            sock.sendall(head + body)
            raw = b""
            while True:
                block = sock.recv(65536)
                if not block:
                    break
                raw += block
        finally:
            sock.close()
        header_blob, _, payload = raw.partition(b"\r\n\r\n")
        status_line = header_blob.split(b"\r\n", 1)[0].decode("ascii")
        status = int(status_line.split()[1])
        decoded = json.loads(payload.decode("utf-8")) if payload else {}
        return status, decoded

    def get(self, path: str) -> Tuple[int, dict]:
        """GET one JSON endpoint."""
        return self.request("GET", path)

    def post(
        self,
        path: str,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
    ) -> Tuple[int, dict]:
        """POST a body to one JSON endpoint."""
        return self.request("POST", path, body, content_type)

    def websocket(self, path: str) -> WsConnection:
        """Open a WebSocket to ``path`` (handshake included)."""
        sock = self._connect()
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        sock.sendall(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("ascii")
        )
        handle = sock.makefile("rb")
        status_line = handle.readline().decode("ascii")
        headers: Dict[str, str] = {}
        while True:
            line = handle.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        handle.close()
        if " 101 " not in status_line:
            sock.close()
            raise ProtocolError(
                f"websocket upgrade refused: {status_line.strip()}"
            )
        expected = websocket_accept(key)
        if headers.get("sec-websocket-accept") != expected:
            sock.close()
            raise ProtocolError("websocket handshake digest mismatch")
        return WsConnection(sock)
