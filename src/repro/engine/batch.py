"""The batched trace container produced by the measurement engine.

A :class:`TraceBatch` holds every rendered sample of a render call in
one ``(n_receivers, n_traces, n_samples)`` array plus the metadata
needed to reconstruct individual :class:`~repro.traces.Trace` objects
on demand.  Downstream vectorized consumers (batched spectra, feature
extraction) operate on the array directly; legacy consumers convert
lazily via :meth:`TraceBatch.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..traces import Trace


@dataclass(frozen=True)
class TraceBatch:
    """Rendered traces for a set of receivers over a set of captures.

    Attributes
    ----------
    samples:
        Voltage samples [V], shape ``(n_receivers, n_traces, n_samples)``.
    fs:
        Sampling rate [Hz].
    labels:
        Receiver name per receiver axis entry.
    scenarios:
        Workload scenario per trace axis entry.
    trace_indices:
        Capture index per trace axis entry (the RNG stream index).
    receiver_meta:
        Static per-receiver metadata merged into every constructed
        :class:`~repro.traces.Trace` (series resistance, turn count).
    """

    samples: np.ndarray
    fs: float
    labels: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    trace_indices: Tuple[int, ...]
    receiver_meta: Tuple[Dict[str, object], ...]

    def __post_init__(self) -> None:
        if self.samples.ndim != 3:
            raise MeasurementError(
                "TraceBatch samples must be (n_receivers, n_traces, "
                f"n_samples), got shape {self.samples.shape}"
            )
        n_receivers, n_traces, _ = self.samples.shape
        if len(self.labels) != n_receivers:
            raise MeasurementError("one label per receiver required")
        if len(self.receiver_meta) != n_receivers:
            raise MeasurementError("one meta dict per receiver required")
        if len(self.scenarios) != n_traces or len(self.trace_indices) != n_traces:
            raise MeasurementError("one scenario/index per trace required")

    # -- shape ---------------------------------------------------------------

    @property
    def n_receivers(self) -> int:
        """Receivers along the first axis."""
        return int(self.samples.shape[0])

    @property
    def n_traces(self) -> int:
        """Captures along the second axis."""
        return int(self.samples.shape[1])

    @property
    def n_samples(self) -> int:
        """Fast-time samples per trace."""
        return int(self.samples.shape[2])

    # -- lookup --------------------------------------------------------------

    def receiver_index(self, label: str) -> int:
        """Axis position of the named receiver."""
        try:
            return self.labels.index(label)
        except ValueError:
            raise MeasurementError(f"batch holds no receiver {label!r}") from None

    # -- conversion ----------------------------------------------------------

    def trace(self, receiver: int, index: int) -> Trace:
        """One capture as a legacy :class:`~repro.traces.Trace`."""
        if not 0 <= receiver < self.n_receivers:
            raise MeasurementError(
                f"receiver {receiver} outside 0..{self.n_receivers - 1}"
            )
        if not 0 <= index < self.n_traces:
            raise MeasurementError(
                f"trace {index} outside 0..{self.n_traces - 1}"
            )
        meta: Dict[str, object] = {"trace_index": self.trace_indices[index]}
        meta.update(self.receiver_meta[receiver])
        return Trace(
            samples=self.samples[receiver, index],
            fs=self.fs,
            label=self.labels[receiver],
            scenario=self.scenarios[index],
            meta=meta,
        )

    def traces(self, receiver: int) -> List[Trace]:
        """All captures of one receiver, in trace-axis order."""
        return [self.trace(receiver, index) for index in range(self.n_traces)]

    # -- composition -----------------------------------------------------------

    @classmethod
    def concatenate(cls, batches: Sequence["TraceBatch"]) -> "TraceBatch":
        """Join batches along the trace axis (same receivers required)."""
        if not batches:
            raise MeasurementError("nothing to concatenate")
        first = batches[0]
        for other in batches[1:]:
            if other.labels != first.labels or other.fs != first.fs:
                raise MeasurementError(
                    "can only concatenate batches of the same receivers"
                )
        return cls(
            samples=np.concatenate([b.samples for b in batches], axis=1),
            fs=first.fs,
            labels=first.labels,
            scenarios=tuple(s for b in batches for s in b.scenarios),
            trace_indices=tuple(i for b in batches for i in b.trace_indices),
            receiver_meta=first.receiver_meta,
        )
