"""Trojan identification from zero-span envelopes (Figure 5).

After detection, the analysis "switches back to the time domain" at a
prominent sideband.  Each Trojan's modulation leaves a distinct
envelope:

* **T1** — smooth sinusoid at the 750 kHz AM-carrier rate;
* **T2** — two-level block-gated bursts following the plaintext
  trigger pattern (strongly periodic, bimodal);
* **T3** — pseudo-random two-level chips from the PN spreading code
  (bimodal but aperiodic / spectrally flat);
* **T4** — near-constant elevated level (low ripple).

The classifier is deliberately *not fully supervised*: a rule template
over scale-free envelope features separates the archetypes, and a
K-means helper clusters unlabeled trace collections with the same
features (matching the paper's "classify all 4 HTs without full
supervision").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...dsp.features import EnvelopeFeatures, envelope_features
from ...dsp.kmeans import KMeans, KMeansResult
from ...errors import AnalysisError
from ...instruments.spectrum_analyzer import SpectrumAnalyzer, ZeroSpanResult
from ...traces import Trace

#: Classifier thresholds (scale-free features), fitted on the measured
#: envelope signatures (tests pin them):
#:   T1: autocorr ~0.92, dominant 0.75 MHz (the AM carrier);
#:   T2: autocorr ~0.95, dominant 1.5 MHz (plaintext gating);
#:   T3: autocorr ~0.62 (PN chips, partially periodic);
#:   T4: autocorr ~0.13 (aperiodic droop-driven envelope).
AUTOCORR_APERIODIC_MAX = 0.40   # below: T4
AUTOCORR_PN_MAX = 0.80          # below (after T4): T3
T1_T2_SPLIT_HZ = 1.1e6          # dominant frequency split: T1 vs T2


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of identifying one envelope.

    Attributes
    ----------
    label:
        Predicted Trojan name (``"T1"``..``"T4"``).
    features:
        The envelope features the decision used.
    f_probe:
        Sideband frequency the zero-span capture was tuned to [Hz].
    """

    label: str
    features: EnvelopeFeatures
    f_probe: float


class TrojanIdentifier:
    """Zero-span envelope classifier.

    Parameters
    ----------
    analyzer:
        Spectrum analyzer providing the zero-span mode.
    f_probe:
        Tuned sideband frequency [Hz] (48 MHz by default).
    rbw:
        Zero-span resolution bandwidth [Hz].
    """

    def __init__(
        self,
        analyzer: Optional[SpectrumAnalyzer] = None,
        f_probe: float = 48e6,
        rbw: float = 8e6,
    ):
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.f_probe = f_probe
        self.rbw = rbw

    # -- feature extraction -----------------------------------------------------

    def zero_span(self, trace: Trace) -> ZeroSpanResult:
        """Zero-span capture of a trace at the probe frequency."""
        return self.analyzer.zero_span(trace, self.f_probe, self.rbw)

    def features(self, trace: Trace) -> EnvelopeFeatures:
        """Envelope features of a trace's zero-span capture."""
        capture = self.zero_span(trace)
        return envelope_features(capture.envelope, capture.fs)

    # -- rule-template classification ---------------------------------------------

    def classify_features(self, feats: EnvelopeFeatures) -> str:
        """Map envelope features to a Trojan archetype.

        Decision order mirrors how separable the signatures are: the
        envelope's periodicity (autocorrelation) splits {T1, T2} from
        T3 from T4; the dominant modulation frequency then separates
        the 750 kHz AM carrier (T1) from the ~1.5 MHz plaintext gating
        (T2).
        """
        if feats.autocorr_peak < AUTOCORR_APERIODIC_MAX:
            return "T4"
        if feats.autocorr_peak < AUTOCORR_PN_MAX:
            return "T3"
        if feats.dominant_freq <= T1_T2_SPLIT_HZ:
            return "T1"
        return "T2"

    def classify(self, trace: Trace) -> IdentificationResult:
        """Classify one detection-positive trace."""
        feats = self.features(trace)
        return IdentificationResult(
            label=self.classify_features(feats),
            features=feats,
            f_probe=self.f_probe,
        )

    # -- unsupervised clustering -----------------------------------------------------

    def cluster(
        self, traces: Sequence[Trace], n_clusters: int = 4
    ) -> KMeansResult:
        """K-means over envelope feature vectors of unlabeled traces."""
        if len(traces) < n_clusters:
            raise AnalysisError(
                f"need at least {n_clusters} traces to form "
                f"{n_clusters} clusters"
            )
        matrix = np.vstack(
            [self.features(t).cluster_vector() for t in traces]
        )
        # Standardize features so no single scale dominates.
        std = matrix.std(axis=0)
        std[std == 0.0] = 1.0
        normalized = (matrix - matrix.mean(axis=0)) / std
        return KMeans(n_clusters=n_clusters).fit(normalized)

    def label_clusters(
        self, traces: Sequence[Trace], result: KMeansResult
    ) -> Dict[int, str]:
        """Name each cluster by majority rule-template vote."""
        votes: Dict[int, List[str]] = {}
        for trace, cluster in zip(traces, result.labels):
            votes.setdefault(int(cluster), []).append(
                self.classify_features(self.features(trace))
            )
        labeled = {}
        for cluster, labels in votes.items():
            names, counts = np.unique(labels, return_counts=True)
            labeled[cluster] = str(names[np.argmax(counts)])
        return labeled
