"""Detection-sweep orchestration over the batched measurement engine.

Evaluates grids of {Trojan × workload × sensor subset × detector
config} detection cells and grids of {Trojan × implant position ×
workload} localization cells: each cell renders as batched engine
passes (monitoring streams, score maps, quadrant refinements, scan
levels), and the per-cell scorecard — ROC-AUC / detection rate /
required measurements / MTTD for detection, hit-rate / localization
error / margin / windows-to-converge for localization — lands in a
structured :class:`~repro.sweep.report.SweepReport`.

The named presets make the paper's headline artifacts grid
configurations::

    repro sweep --grid table1     # Table I PSA row via the engine
    repro sweep --grid mttd       # Section VI-D MTTD budget
    repro sweep --grid localize   # Section VI-D localization, incl.
                                  # relocated Trojan implants
    repro sweep --grid detectors  # comparative detector x Trojan-class
                                  # blind-spot matrix

and ``experiments.table1`` / ``experiments.mttd`` /
``experiments.localization`` are thin adapters over the same presets.
"""

from .grid import (
    ALL_TROJANS,
    DETECTOR_NAMES,
    DETECTOR_TROJANS,
    GRIDS,
    MONITOR_SENSOR,
    SweepCell,
    SweepGrid,
    benchmark_grid,
    build_grid,
    detectors_grid,
    detectors_smoke_grid,
    mttd_grid,
    smoke_grid,
    table1_grid,
)
from .localize import (
    EXPECTED_QUADRANTS,
    LOCALIZE_GRIDS,
    LocalizationSweep,
    LocalizeCell,
    LocalizeGrid,
    build_localize_grid,
    localize_full_grid,
    localize_grid,
    localize_smoke_grid,
)
from .orchestrator import RASC_ADC, DetectionSweep
from .report import (
    BUDGET_SECONDS,
    BUDGET_TRACES,
    LocalizeCellResult,
    LocalizeOutcome,
    SensorOutcome,
    SweepCellResult,
    SweepReport,
)

__all__ = [
    "ALL_TROJANS",
    "DETECTOR_NAMES",
    "DETECTOR_TROJANS",
    "GRIDS",
    "MONITOR_SENSOR",
    "SweepCell",
    "SweepGrid",
    "benchmark_grid",
    "build_grid",
    "detectors_grid",
    "detectors_smoke_grid",
    "mttd_grid",
    "smoke_grid",
    "table1_grid",
    "EXPECTED_QUADRANTS",
    "LOCALIZE_GRIDS",
    "LocalizationSweep",
    "LocalizeCell",
    "LocalizeGrid",
    "build_localize_grid",
    "localize_full_grid",
    "localize_grid",
    "localize_smoke_grid",
    "RASC_ADC",
    "DetectionSweep",
    "BUDGET_SECONDS",
    "BUDGET_TRACES",
    "LocalizeCellResult",
    "LocalizeOutcome",
    "SensorOutcome",
    "SweepCellResult",
    "SweepReport",
]
