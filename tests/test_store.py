"""Artifact-store behavior: keying, invalidation, robustness.

The store's contract has three legs, each pinned here:

* **keying** — identical provenance maps to identical content
  addresses (hit); *any* chip/workload/Trojan/engine-parameter
  perturbation changes the address (miss, never a wrong payload);
* **integrity** — corrupted or partial entries are evicted, not
  served; payload round-trips are bit-identical;
* **robustness** — concurrent writers (a fleet) cannot corrupt the
  store, and the LRU cap evicts oldest-first with reads refreshing
  recency.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chip.floorplan import floorplan_with_trojans_at
from repro.chip.testchip import TestChip as AesTestChip
from repro.errors import StoreError
from repro.instruments.adc import AdcSpec
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.store import (
    ArrayCodec,
    ArtifactStore,
    RecordCodec,
    adc_fingerprint,
    analyzer_fingerprint,
    campaign_fingerprint,
    chip_fingerprint,
    digest,
)
from repro.workloads.scenarios import scenario_by_name


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


# -- keying ---------------------------------------------------------------------


def test_same_chip_same_address(chip):
    assert digest(chip_fingerprint(chip)) == digest(chip_fingerprint(chip))


def test_identical_rebuild_same_address(chip, config):
    twin = AesTestChip(bytes(range(16)), config)
    assert digest(chip_fingerprint(twin)) == digest(chip_fingerprint(chip))


@pytest.mark.parametrize(
    "changes",
    [
        {"seed": 1},
        {"vdd": 1.0},
        {"oversample": 8},
        {"n_cycles": 264},
        {"f_clock": 66e6},
        {"temperature_c": 85.0},
    ],
)
def test_engine_param_perturbation_misses(chip, config, changes):
    perturbed = AesTestChip(bytes(range(16)), config.with_(**changes))
    assert digest(chip_fingerprint(perturbed)) != digest(
        chip_fingerprint(chip)
    )


def test_key_and_floorplan_perturbations_miss(chip, config):
    other_key = AesTestChip(bytes(range(1, 17)), config)
    assert digest(chip_fingerprint(other_key)) != digest(
        chip_fingerprint(chip)
    )
    moved = AesTestChip(
        bytes(range(16)), config, floorplan=floorplan_with_trojans_at(6)
    )
    assert digest(chip_fingerprint(moved)) != digest(chip_fingerprint(chip))


def test_frontend_perturbations_miss(campaign):
    base = digest(
        {
            "campaign": campaign_fingerprint(campaign),
            "analyzer": analyzer_fingerprint(SpectrumAnalyzer()),
            "adc": adc_fingerprint(AdcSpec(n_bits=12, full_scale=10.0)),
        }
    )
    narrower = digest(
        {
            "campaign": campaign_fingerprint(campaign),
            "analyzer": analyzer_fingerprint(SpectrumAnalyzer(n_points=500)),
            "adc": adc_fingerprint(AdcSpec(n_bits=12, full_scale=10.0)),
        }
    )
    coarser = digest(
        {
            "campaign": campaign_fingerprint(campaign),
            "analyzer": analyzer_fingerprint(SpectrumAnalyzer()),
            "adc": adc_fingerprint(AdcSpec(n_bits=8, full_scale=10.0)),
        }
    )
    assert len({base, narrower, coarser}) == 3


def test_workload_and_trojan_keys_distinct(store, chip):
    mapping = store.mapping(
        "record", {"chip": chip_fingerprint(chip)}, RecordCodec(chip.config)
    )
    addresses = {
        mapping.address(item)
        for item in [
            ("baseline", 0),
            ("baseline", 1),
            ("T1", 0),
            ("T4", 0),
            ("T2_ref", 0),
        ]
    }
    assert len(addresses) == 5


def test_mapping_hit_after_reopen(store, campaign, chip, tmp_path):
    record = campaign.record(scenario_by_name("T1"), 3)
    context = {"chip": chip_fingerprint(chip)}
    store.mapping("record", context, RecordCodec(chip.config))[
        ("T1", 3)
    ] = record
    reopened = ArtifactStore(store.root).mapping(
        "record", context, RecordCodec(chip.config)
    )
    loaded = reopened[("T1", 3)]
    assert np.array_equal(loaded.main, record.main)
    assert np.array_equal(loaded.trojan, record.trojan)
    assert np.array_equal(loaded.trojan_rising, record.trojan_rising)
    assert loaded.scenario == record.scenario
    assert loaded.meta == record.meta
    assert set(loaded.factors) == set(record.factors)
    for group, parts in record.factors.items():
        for (name, w, t), (name2, w2, t2) in zip(parts, loaded.factors[group]):
            assert name == name2
            assert np.array_equal(w, w2)
            assert np.array_equal(t, t2)


def test_mapping_memoizes_identity(store, campaign, chip):
    record = campaign.record(scenario_by_name("baseline"), 11)
    context = {"chip": chip_fingerprint(chip)}
    mapping = ArtifactStore(store.root).mapping(
        "record", context, RecordCodec(chip.config)
    )
    mapping[("baseline", 11)] = record
    fresh = ArtifactStore(store.root).mapping(
        "record", context, RecordCodec(chip.config)
    )
    assert fresh[("baseline", 11)] is fresh[("baseline", 11)]


def test_array_mapping_roundtrip(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec(True))
    data = np.arange(12.0).reshape(3, 4)
    mapping[("baseline", 4, 0, (0, 1, 2), True)] = data
    back = ArtifactStore(store.root).mapping(
        "span-features", {"v": 1}, ArrayCodec(True)
    )[("baseline", 4, 0, (0, 1, 2), True)]
    assert np.array_equal(back, data)
    assert not back.flags.writeable


def test_context_partitions_namespaces(store):
    a = store.mapping("span-features", {"v": 1}, ArrayCodec())
    b = store.mapping("span-features", {"v": 2}, ArrayCodec())
    a[("x",)] = np.ones(3)
    assert b.get(("x",)) is None


# -- integrity ------------------------------------------------------------------


def _single_object_path(store: ArtifactStore):
    paths = [
        path
        for path in (store.root / "objects").rglob("*.npz")
        if not path.name.startswith(".tmp-")
    ]
    assert len(paths) == 1
    return paths[0]


def test_corrupted_entry_evicted_not_served(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    mapping[("x",)] = np.ones(4)
    path = _single_object_path(store)
    path.write_bytes(b"not a zip archive at all")
    fresh = ArtifactStore(store.root)
    assert fresh.mapping("span-features", {"v": 1}, ArrayCodec()).get(
        ("x",)
    ) is None
    assert not path.exists()
    assert fresh.corrupt_evictions == 1


def test_partial_entry_evicted_not_served(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    mapping[("x",)] = np.arange(4096.0)
    path = _single_object_path(store)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    fresh = ArtifactStore(store.root)
    assert fresh.mapping("span-features", {"v": 1}, ArrayCodec()).get(
        ("x",)
    ) is None
    assert not path.exists()


def test_kind_mismatch_is_evicted(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    mapping[("x",)] = np.ones(4)
    address = mapping.address(("x",))
    # Same bytes presented under another kind must not be served.
    source = store._path("span-features", address)
    target = store._path("record", address)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(source.read_bytes())
    fresh = ArtifactStore(store.root)
    assert fresh.get("record", address) is None
    assert not target.exists()


def test_schema_marker_mismatch_clears(store, tmp_path):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    mapping[("x",)] = np.ones(4)
    (store.root / "store.json").write_text(json.dumps({"schema": -1}))
    fresh = ArtifactStore(store.root)
    assert fresh.stats().entries == 0
    # The wipe rewrites the marker, so entries written afterwards
    # survive the *next* open instead of being wiped again.
    fresh.mapping("span-features", {"v": 1}, ArrayCodec())[("y",)] = (
        np.ones(4)
    )
    assert ArtifactStore(store.root).stats().entries == 1


@pytest.mark.parametrize("blob", ["null", "[]", "not json {"])
def test_degenerate_marker_is_recovered(store, blob):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    mapping[("x",)] = np.ones(4)
    (store.root / "store.json").write_text(blob)
    fresh = ArtifactStore(store.root)  # must not raise
    assert fresh.stats().entries == 0
    assert json.loads((store.root / "store.json").read_text()) == {
        "schema": 1
    }


def test_code_version_is_part_of_every_address(store, monkeypatch):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    before = mapping.address(("x",))
    import repro.store.store as store_module

    monkeypatch.setattr(store_module, "CODE_VERSION", "999.0.0")
    after = store.mapping(
        "span-features", {"v": 1}, ArrayCodec()
    ).address(("x",))
    assert before != after


def test_reserved_array_name_rejected(store):
    with pytest.raises(StoreError):
        store.put("k", "0" * 64, {"__meta__": np.ones(1)}, {})


# -- LRU / gc -------------------------------------------------------------------


def test_gc_evicts_oldest_first(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    for index in range(4):
        mapping[(index,)] = np.full(256, float(index))
        path = store._path("span-features", mapping.address((index,)))
        os.utime(path, (1000.0 + index, 1000.0 + index))
    keep = sum(
        store._path("span-features", mapping.address((index,))).stat().st_size
        for index in (2, 3)
    )
    store.gc(keep)
    fresh = ArtifactStore(store.root).mapping(
        "span-features", {"v": 1}, ArrayCodec()
    )
    assert fresh.get((0,)) is None
    assert fresh.get((1,)) is None
    assert fresh.get((2,)) is not None
    assert fresh.get((3,)) is not None


def test_read_refreshes_recency(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    for index in range(3):
        mapping[(index,)] = np.full(256, float(index))
        path = store._path("span-features", mapping.address((index,)))
        os.utime(path, (1000.0 + index, 1000.0 + index))
    # A fresh handle reads entry 0, making it the most recent.
    reader = ArtifactStore(store.root)
    assert reader.mapping("span-features", {"v": 1}, ArrayCodec()).get(
        (0,)
    ) is not None
    keep = store._path(
        "span-features", mapping.address((0,))
    ).stat().st_size
    reader.gc(keep)
    survivor = ArtifactStore(store.root).mapping(
        "span-features", {"v": 1}, ArrayCodec()
    )
    assert survivor.get((0,)) is not None
    assert survivor.get((1,)) is None


def test_put_triggers_opportunistic_gc(tmp_path):
    small = ArtifactStore(tmp_path / "small", max_bytes=1)
    mapping = small.mapping("span-features", {"v": 1}, ArrayCodec())
    for index in range(3):
        mapping[(index,)] = np.full(64, float(index))
    assert small.stats().entries <= 1


def _total_bytes(store: ArtifactStore) -> int:
    return ArtifactStore(store.root).stats().total_bytes


# -- concurrency ----------------------------------------------------------------


def test_concurrent_writers_do_not_corrupt(store):
    def mapping_factory():
        return ArtifactStore(store.root).mapping(
            "span-features", {"v": 1}, ArrayCodec()
        )

    def worker(worker_id: int) -> None:
        mapping = mapping_factory()
        for round_index in range(10):
            # Half the keys collide across workers (same content —
            # determinism makes racing writes byte-identical), half
            # are private.
            shared = ("shared", round_index)
            private = ("private", worker_id, round_index)
            mapping[shared] = np.full(128, float(round_index))
            mapping[private] = np.full(128, float(worker_id))
            loaded = mapping_factory().get(shared)
            assert loaded is None or np.array_equal(
                loaded, np.full(128, float(round_index))
            )

    with ThreadPoolExecutor(max_workers=8) as pool:
        for future in [pool.submit(worker, i) for i in range(8)]:
            future.result()

    # Every surviving entry must load cleanly.
    verifier = ArtifactStore(store.root)
    mapping = verifier.mapping("span-features", {"v": 1}, ArrayCodec())
    for round_index in range(10):
        value = mapping.get(("shared", round_index))
        assert value is not None
        assert np.array_equal(value, np.full(128, float(round_index)))
    assert verifier.corrupt_evictions == 0


def test_concurrent_gc_and_reads(store):
    mapping = store.mapping("span-features", {"v": 1}, ArrayCodec())
    for index in range(20):
        mapping[(index,)] = np.full(64, float(index))

    def reader() -> None:
        fresh = ArtifactStore(store.root).mapping(
            "span-features", {"v": 1}, ArrayCodec()
        )
        for index in range(20):
            value = fresh.get((index,))
            if value is not None:
                assert np.array_equal(value, np.full(64, float(index)))

    def collector() -> None:
        ArtifactStore(store.root).gc(0)

    with ThreadPoolExecutor(max_workers=6) as pool:
        futures = [pool.submit(reader) for _ in range(4)]
        futures += [pool.submit(collector) for _ in range(2)]
        for future in futures:
            future.result()
