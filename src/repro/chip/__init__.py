"""Test-chip substrate: floorplan, placement, power model, assembly.

Reproduces the physical organization of the paper's 1 mm x 1 mm AES-128
test chip (Figure 2): module placement on a region grid, power-stripe
return-current geometry, the supply-current kernel, and the
:class:`TestChip` facade that turns workloads + Trojan activations into
per-region current activity for the EM model.
"""

from .floorplan import (
    DIE_SIZE,
    N_REGIONS_SIDE,
    SENSOR_GRID,
    SENSOR_PITCH,
    SENSOR_SIDE,
    Floorplan,
    Rect,
    default_floorplan,
    sensor_rect,
)
from .power import ActivityRecord, PowerModel, current_kernel, emf_kernel
from .pins import IO_PINS, PinAssignment, channel_for_sensor
from .testchip import TestChip

__all__ = [
    "DIE_SIZE",
    "N_REGIONS_SIDE",
    "SENSOR_GRID",
    "SENSOR_PITCH",
    "SENSOR_SIDE",
    "Floorplan",
    "Rect",
    "default_floorplan",
    "sensor_rect",
    "ActivityRecord",
    "PowerModel",
    "current_kernel",
    "emf_kernel",
    "IO_PINS",
    "PinAssignment",
    "channel_for_sensor",
    "TestChip",
]
