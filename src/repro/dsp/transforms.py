"""Spectra: FFT-based amplitude spectra and the paper's 2000-point grid.

The paper's spectrum analyzer reports a DC-120 MHz spectrum populated
with 2000 sample points, averaged over five captured traces
(Section VI-D).  :func:`amplitude_spectrum` produces the native
FFT-binned spectrum; :func:`resample_spectrum` maps it onto the
instrument's uniform display grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError
from ..units import UV


@dataclass(frozen=True)
class Spectrum:
    """A one-sided amplitude spectrum.

    Attributes
    ----------
    freqs:
        Frequency axis [Hz], monotonically increasing.
    amps:
        RMS amplitude per bin [V].
    """

    freqs: np.ndarray
    amps: np.ndarray

    def __post_init__(self) -> None:
        if self.freqs.shape != self.amps.shape:
            raise AnalysisError(
                f"frequency axis {self.freqs.shape} and amplitude axis "
                f"{self.amps.shape} differ in shape"
            )
        if self.freqs.ndim != 1:
            raise AnalysisError("Spectrum arrays must be one-dimensional")

    def __len__(self) -> int:
        return int(self.freqs.size)

    def db(self, reference: float = UV) -> np.ndarray:
        """Amplitude in dB relative to ``reference`` volts (default dBuV)."""
        floor = np.finfo(float).tiny
        return 20.0 * np.log10(np.maximum(self.amps, floor) / reference)

    def at(self, freq: float) -> float:
        """Amplitude [V] of the bin nearest to ``freq``."""
        index = int(np.argmin(np.abs(self.freqs - freq)))
        return float(self.amps[index])

    def bin_of(self, freq: float) -> int:
        """Index of the bin nearest to ``freq``."""
        return int(np.argmin(np.abs(self.freqs - freq)))


def amplitude_spectrum(samples: np.ndarray, fs: float) -> Spectrum:
    """One-sided RMS amplitude spectrum of a real trace.

    Scaling: a full-scale sine ``A*sin(2*pi*f*t)`` whose frequency sits
    exactly on a bin yields ``A/sqrt(2)`` (its RMS value) in that bin.

    Parameters
    ----------
    samples:
        Real time-domain trace.
    fs:
        Sampling rate [Hz].
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise AnalysisError("amplitude_spectrum expects a 1-D trace")
    freqs, amps = amplitude_spectra(samples[None, :], fs)
    return Spectrum(freqs=freqs, amps=amps[0])


def amplitude_spectra(
    samples: np.ndarray, fs: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched one-sided RMS amplitude spectra of a trace stack.

    Returns ``(freqs, amps)`` with ``amps`` of shape ``(n_traces,
    n_bins)``; every trace shares the frequency axis, and per-row
    results are identical to :func:`amplitude_spectrum` of that row.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise AnalysisError("amplitude_spectra expects a 2-D trace stack")
    if samples.shape[1] < 2:
        raise AnalysisError("traces too short for a spectrum")
    n = samples.shape[1]
    spec = np.fft.rfft(samples, axis=-1)
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)
    # Peak amplitude of each component, then to RMS.  The DC and Nyquist
    # bins are not doubled.
    amps = np.abs(spec)
    amps /= n
    if n % 2 == 0:
        amps[:, 1:-1] *= 2.0
    else:
        amps[:, 1:] *= 2.0
    amps[:, 1:] /= np.sqrt(2.0)
    return freqs, amps


def average_spectra(spectra: Sequence[Spectrum]) -> Spectrum:
    """Average several spectra bin-by-bin (RMS-power average).

    The paper averages five collected traces to derive each displayed
    spectrum (Section VI-D); averaging in the power domain matches what
    a spectrum analyzer's trace-average mode does.
    """
    if not spectra:
        raise AnalysisError("cannot average an empty spectrum list")
    freqs = spectra[0].freqs
    for spec in spectra[1:]:
        if spec.freqs.shape != freqs.shape or not np.allclose(
            spec.freqs, freqs
        ):
            raise AnalysisError("spectra have mismatched frequency axes")
    power = np.mean([spec.amps**2 for spec in spectra], axis=0)
    return Spectrum(freqs=freqs, amps=np.sqrt(power))


def resample_spectrum(
    spectrum: Spectrum,
    f_lo: float = 0.0,
    f_hi: float = 120e6,
    n_points: int = 2000,
) -> Spectrum:
    """Map a spectrum onto a uniform display grid.

    Reproduces the instrument setting in Section VI-D: "Each trace spans
    a frequency band from DC to 120 MHz, populated with 2000 sample
    points".  Each display point uses a positive-peak detector over its
    frequency bucket (as a real spectrum analyzer does), so narrow
    spectral lines are never lost between display points; buckets
    without a native bin interpolate in the power domain.
    """
    grid, amps = resample_spectra(
        spectrum.freqs, spectrum.amps[None, :], f_lo, f_hi, n_points
    )
    return Spectrum(freqs=grid, amps=amps[0])


class _ResamplePlan:
    """Precomputed display-grid geometry for one native frequency axis.

    The per-call work of :func:`resample_spectra` splits into geometry
    (bucket assignment, interpolation knots — a function of the
    frequency axis and the display band only) and per-row arithmetic.
    The geometry is cached across calls keyed by the axis/band
    content, which removes the dominant cost of steady-state display
    passes (the same sampling grid is featurized thousands of times in
    a sweep or a fleet run).

    The applied arithmetic is **bit-identical** to the reference
    per-row ``np.interp`` + ``np.maximum.at`` formulation:

    * interpolation evaluates ``slope*(g - x_lo) + y_lo`` with the
      same operand order as NumPy's scalar kernel (exact at knot hits
      because ``searchsorted(side="right") - 1`` always lands an exact
      hit on its *left* knot, where the residual is exactly zero);
    * peak detection exploits that buckets of an ascending axis are
      nondecreasing, so each bucket is one contiguous run and
      ``np.maximum.reduceat`` over run starts computes the exact same
      float maxima as element-wise ``np.maximum.at``.
    """

    __slots__ = (
        "freqs", "grid", "below", "above", "inside", "idx", "x_lo",
        "dx", "offsets", "in_band", "run_starts", "run_buckets",
    )

    def __init__(
        self, freqs: np.ndarray, f_lo: float, f_hi: float, n_points: int
    ):
        self.freqs = np.array(freqs, dtype=float, copy=True)
        self.freqs.setflags(write=False)
        freqs = self.freqs
        grid = np.linspace(f_lo, f_hi, n_points)
        self.grid = grid
        # Both axes are ascending, so every region is one contiguous
        # run — store slices, not boolean masks: the per-row gathers
        # and scatters in :meth:`apply` become view operations.
        n_below = int(np.count_nonzero(grid < freqs[0]))
        n_above = int(np.count_nonzero(grid >= freqs[-1]))
        self.below = slice(0, n_below)
        self.above = slice(n_points - n_above, n_points)
        self.inside = slice(n_below, n_points - n_above)
        g_in = grid[self.inside]
        idx = np.searchsorted(freqs, g_in, side="right") - 1
        self.idx = np.clip(idx, 0, len(freqs) - 2)
        self.x_lo = freqs[self.idx]
        self.dx = freqs[self.idx + 1] - self.x_lo
        self.offsets = g_in - self.x_lo
        spacing = (f_hi - f_lo) / (n_points - 1)
        band_mask = (freqs >= f_lo - spacing / 2) & (
            freqs <= f_hi + spacing / 2
        )
        band_indices = np.flatnonzero(band_mask)
        if band_indices.size:
            self.in_band = slice(
                int(band_indices[0]), int(band_indices[-1]) + 1
            )
        else:
            self.in_band = slice(0, 0)
        buckets = np.clip(
            np.round((freqs[self.in_band] - f_lo) / spacing).astype(int),
            0,
            n_points - 1,
        )
        if buckets.size:
            starts = np.flatnonzero(
                np.r_[True, buckets[1:] != buckets[:-1]]
            )
            self.run_starts = starts
            self.run_buckets = buckets[starts]
        else:
            self.run_starts = None
            self.run_buckets = None

    def apply(self, native_power: np.ndarray) -> np.ndarray:
        """Resample a power stack onto the display grid (peak-held).

        Two gathers, then every pass runs in place — the arithmetic
        (``slope*(g - x_lo) + y_lo`` with slope ``(y_hi - y_lo)/dx``)
        is the reference formulation operation for operation.
        """
        n_rows = native_power.shape[0]
        power = np.empty((n_rows, self.grid.size))
        y_lo = native_power[:, self.idx]
        interp = native_power[:, self.idx + 1]
        np.subtract(interp, y_lo, out=interp)
        np.divide(interp, self.dx, out=interp)
        np.multiply(interp, self.offsets, out=interp)
        np.add(interp, y_lo, out=power[:, self.inside])
        power[:, self.below] = native_power[:, :1]
        power[:, self.above] = native_power[:, -1:]
        if self.run_starts is not None:
            run_max = np.maximum.reduceat(
                native_power[:, self.in_band], self.run_starts, axis=1
            )
            np.maximum(power[:, self.run_buckets], run_max, out=run_max)
            power[:, self.run_buckets] = run_max
        return power

    def apply_at(
        self, native_power: np.ndarray, bins: np.ndarray
    ) -> np.ndarray:
        """Resample only the display columns ``bins`` (sorted indices).

        Every display point's value is a function of its own knots and
        its own peak-hold run, so evaluating a subset reproduces
        :meth:`apply`'s columns **bit for bit** at a fraction of the
        work — the fast path for feature extraction that reads a few
        sideband bins out of a 2000-point display.
        """
        n_rows = native_power.shape[0]
        power = np.empty((n_rows, len(bins)))
        lo, hi = self.inside.start, self.inside.stop
        for col, b in enumerate(bins):
            if b < lo:
                power[:, col] = native_power[:, 0]
            elif b >= hi:
                power[:, col] = native_power[:, -1]
            else:
                j = b - lo
                idx = self.idx[j]
                y_lo = native_power[:, idx]
                column = native_power[:, idx + 1] - y_lo
                column /= self.dx[j]
                column *= self.offsets[j]
                column += y_lo
                power[:, col] = column
        if self.run_buckets is not None:
            band = native_power[:, self.in_band]
            n_runs = len(self.run_starts)
            band_stop = band.shape[1]
            positions = np.searchsorted(self.run_buckets, bins)
            for col, b in enumerate(bins):
                run = positions[col]
                if run >= n_runs or self.run_buckets[run] != b:
                    continue
                start = self.run_starts[run]
                stop = (
                    self.run_starts[run + 1]
                    if run + 1 < n_runs
                    else band_stop
                )
                np.maximum(
                    power[:, col],
                    band[:, start:stop].max(axis=1),
                    out=power[:, col],
                )
        return power


#: Cached resample geometries keyed by display band + axis content
#: summary (full axis equality is verified on every hit).
_RESAMPLE_PLANS: "dict[tuple, _ResamplePlan]" = {}
_RESAMPLE_PLAN_LIMIT = 8
_RESAMPLE_PLAN_HITS = 0
_RESAMPLE_PLAN_MISSES = 0


def resample_plan_stats() -> "dict[str, int]":
    """Resample-plan cache counters: ``hits``, ``misses``, ``size``."""
    return {
        "hits": _RESAMPLE_PLAN_HITS,
        "misses": _RESAMPLE_PLAN_MISSES,
        "size": len(_RESAMPLE_PLANS),
    }


def _resample_plan(
    freqs: np.ndarray, f_lo: float, f_hi: float, n_points: int
) -> _ResamplePlan:
    global _RESAMPLE_PLAN_HITS, _RESAMPLE_PLAN_MISSES
    key = (
        n_points,
        float(f_lo),
        float(f_hi),
        len(freqs),
        float(freqs[0]),
        float(freqs[-1]),
    )
    plan = _RESAMPLE_PLANS.get(key)
    if plan is not None and np.array_equal(plan.freqs, freqs):
        _RESAMPLE_PLAN_HITS += 1
        return plan
    _RESAMPLE_PLAN_MISSES += 1
    plan = _ResamplePlan(freqs, f_lo, f_hi, n_points)
    if len(_RESAMPLE_PLANS) >= _RESAMPLE_PLAN_LIMIT:
        _RESAMPLE_PLANS.clear()
    _RESAMPLE_PLANS[key] = plan
    return plan


def resample_spectra(
    freqs: np.ndarray,
    amps: np.ndarray,
    f_lo: float = 0.0,
    f_hi: float = 120e6,
    n_points: int = 2000,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched :func:`resample_spectrum` over an amplitude stack.

    ``amps`` is ``(n_spectra, n_bins)`` sharing one native frequency
    axis; the display grid, bucket assignment and in-band mask come
    from a plan cached across calls (see :class:`_ResamplePlan` — the
    applied arithmetic is bit-identical to the per-row reference).
    Returns ``(grid, out)`` with ``out`` of shape
    ``(n_spectra, n_points)``.
    """
    if f_hi <= f_lo:
        raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
    if n_points < 2:
        raise AnalysisError("display grid needs at least two points")
    if f_hi > freqs[-1] * (1 + 1e-9):
        raise AnalysisError(
            f"band edge {f_hi/1e6:.1f} MHz beyond Nyquist "
            f"{freqs[-1]/1e6:.1f} MHz"
        )
    amps = np.asarray(amps, dtype=float)
    if amps.ndim != 2:
        raise AnalysisError("resample_spectra expects a 2-D amplitude stack")
    plan = _resample_plan(np.asarray(freqs, dtype=float), f_lo, f_hi, n_points)
    power = plan.apply(amps**2)
    np.sqrt(power, out=power)
    return plan.grid, power


def resample_spectra_at(
    freqs: np.ndarray,
    amps: np.ndarray,
    bins: np.ndarray,
    f_lo: float = 0.0,
    f_hi: float = 120e6,
    n_points: int = 2000,
) -> "tuple[np.ndarray, np.ndarray]":
    """:func:`resample_spectra` restricted to display columns ``bins``.

    Returns ``(grid[bins], out[:, bins])`` with values bit-identical
    to the full resample's columns (see :meth:`_ResamplePlan.apply_at`)
    while touching only those display points — the fast path when a
    caller reads a handful of feature bins out of the display.
    """
    if f_hi <= f_lo:
        raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
    if n_points < 2:
        raise AnalysisError("display grid needs at least two points")
    if f_hi > freqs[-1] * (1 + 1e-9):
        raise AnalysisError(
            f"band edge {f_hi/1e6:.1f} MHz beyond Nyquist "
            f"{freqs[-1]/1e6:.1f} MHz"
        )
    amps = np.asarray(amps, dtype=float)
    if amps.ndim != 2:
        raise AnalysisError("resample_spectra expects a 2-D amplitude stack")
    bins = np.asarray(bins, dtype=int)
    if bins.ndim != 1 or bins.size == 0:
        raise AnalysisError("bins must be a non-empty 1-D index array")
    if bins.min() < 0 or bins.max() >= n_points:
        raise AnalysisError(
            f"display bins outside 0..{n_points - 1}"
        )
    plan = _resample_plan(np.asarray(freqs, dtype=float), f_lo, f_hi, n_points)
    power = plan.apply_at(amps**2, bins)
    np.sqrt(power, out=power)
    return plan.grid[bins], power


def band_slice(spectrum: Spectrum, f_lo: float, f_hi: float) -> Spectrum:
    """Return the sub-spectrum with ``f_lo <= f <= f_hi``."""
    if f_hi <= f_lo:
        raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
    mask = (spectrum.freqs >= f_lo) & (spectrum.freqs <= f_hi)
    if not mask.any():
        raise AnalysisError("band contains no spectrum bins")
    return Spectrum(freqs=spectrum.freqs[mask], amps=spectrum.amps[mask])


def spectrum_dbuv(samples: np.ndarray, fs: float) -> np.ndarray:
    """Shorthand: one-sided spectrum of ``samples`` in dBuV."""
    return amplitude_spectrum(samples, fs).db()


def coherent_gain(window: np.ndarray) -> float:
    """Coherent gain of a window (mean of its samples)."""
    window = np.asarray(window, dtype=float)
    return float(window.mean())


def pick_peaks(
    spectrum: Spectrum,
    n_peaks: int,
    min_separation_hz: float,
    exclude: Iterable[float] = (),
    exclusion_hz: float = 0.0,
) -> list[int]:
    """Greedy spectral peak picking.

    Returns bin indices of the ``n_peaks`` largest local maxima that are
    at least ``min_separation_hz`` apart and not within ``exclusion_hz``
    of any frequency in ``exclude`` (used to mask the clock harmonics
    themselves when hunting for Trojan sidebands).
    """
    amps = spectrum.amps.copy()
    freqs = spectrum.freqs
    for masked in exclude:
        amps[np.abs(freqs - masked) <= exclusion_hz] = 0.0
    picked: list[int] = []
    for _ in range(n_peaks):
        index = int(np.argmax(amps))
        if amps[index] <= 0.0:
            break
        picked.append(index)
        amps[np.abs(freqs - freqs[index]) < min_separation_hz] = 0.0
    return picked
