#!/usr/bin/env python3
"""Detector-matrix drift gate: a SweepReport vs a committed expectation.

Rebuilds the detector × Trojan-class detected/missed matrix from a
``repro sweep --sweep-json`` report and diffs it cell-by-cell against a
committed expectation file (``tests/data/detector_grid_expected.json``
or its smoke slice).  Every committed miss is a *structural* blind spot
of its method, so a flip in either direction fails the gate — a newly
"detected" cell means the simulated physics or a detector's semantics
drifted just as surely as a newly missed one.

Usage::

    repro sweep --grid detectors-smoke --no-store \
        --sweep-json detector-grid.json
    python tools/check_detector_grid.py --report detector-grid.json \
        --expected tests/data/detector_grid_smoke_expected.json

Exit status 0 = matrix matches exactly, 1 = drift (or a malformed /
missing file).  Stdlib only, unit-tested by
``tests/test_check_detector_grid.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

Matrix = Dict[str, Dict[str, bool]]


def matrix_from_report(report: dict) -> Matrix:
    """Rebuild the detection matrix from a SweepReport JSON payload."""
    matrix: Matrix = {}
    for cell in report.get("cells", []):
        if cell.get("kind") != "detection":
            continue
        detector = cell["detector"]
        trojan = cell["trojan"]
        row = matrix.setdefault(detector, {})
        if trojan in row:
            raise ValueError(
                f"report evaluates {trojan!r} twice under {detector!r}"
            )
        mttd = cell["mttd"]
        row[trojan] = bool(mttd["detected"])
    return matrix


def diff_matrices(expected: Matrix, actual: Matrix) -> List[str]:
    """Human-readable drift lines (empty = exact match)."""
    problems: List[str] = []
    for detector, row in sorted(expected.items()):
        actual_row = actual.get(detector)
        if actual_row is None:
            problems.append(f"detector {detector!r} missing from report")
            continue
        for trojan, want in sorted(row.items()):
            if trojan not in actual_row:
                problems.append(
                    f"{detector} x {trojan}: cell missing from report"
                )
            elif actual_row[trojan] != want:
                verdict = "detected" if actual_row[trojan] else "missed"
                wanted = "detected" if want else "missed"
                problems.append(
                    f"{detector} x {trojan}: {verdict}, expected {wanted}"
                )
    for detector in sorted(set(actual) - set(expected)):
        problems.append(f"unexpected detector {detector!r} in report")
    for detector in set(actual) & set(expected):
        for trojan in sorted(set(actual[detector]) - set(expected[detector])):
            problems.append(
                f"unexpected cell {detector} x {trojan} in report"
            )
    return problems


def run(report_path: Path, expected_path: Path) -> Tuple[int, List[str]]:
    """Load, diff, and return (exit_code, message_lines)."""
    try:
        report = json.loads(report_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return 1, [f"cannot read report {report_path}: {exc}"]
    try:
        expectation = json.loads(expected_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return 1, [f"cannot read expectation {expected_path}: {exc}"]
    grid = expectation.get("grid")
    if grid is not None and report.get("grid") != grid:
        return 1, [
            f"report is for grid {report.get('grid')!r}, "
            f"expectation pins {grid!r}"
        ]
    try:
        actual = matrix_from_report(report)
    except (KeyError, TypeError, ValueError) as exc:
        return 1, [f"malformed report {report_path}: {exc}"]
    problems = diff_matrices(expectation["matrix"], actual)
    if problems:
        return 1, ["detector matrix drift:"] + [
            f"  {line}" for line in problems
        ]
    cells = sum(len(row) for row in actual.values())
    return 0, [
        f"detector matrix matches {expected_path.name} "
        f"({len(actual)} detectors x {cells} cells)"
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        type=Path,
        required=True,
        help="SweepReport JSON produced by repro sweep --sweep-json",
    )
    parser.add_argument(
        "--expected",
        type=Path,
        required=True,
        help="committed expectation JSON (tests/data/...)",
    )
    args = parser.parse_args(argv)
    code, lines = run(args.report, args.expected)
    print("\n".join(lines), file=sys.stderr if code else sys.stdout)
    return code


if __name__ == "__main__":
    sys.exit(main())
