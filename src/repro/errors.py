"""Exception hierarchy for the PSA-EM reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid simulation or device configuration was supplied."""


class NetlistError(ReproError):
    """A netlist operation failed (duplicate instance, unknown cell...)."""


class LogicSimulationError(ReproError):
    """The event-driven logic simulator hit an inconsistent state."""


class FloorplanError(ReproError):
    """A floorplan/placement constraint was violated."""


class GridProgrammingError(ReproError):
    """A PSA lattice programming request is geometrically impossible."""


class CoilSynthesisError(GridProgrammingError):
    """A requested coil cannot be synthesized on the lattice."""


class MeasurementError(ReproError):
    """An instrument was asked for a measurement it cannot perform."""


class AnalysisError(ReproError):
    """The cross-domain analysis pipeline received unusable data."""


class TraceIOError(ReproError):
    """Reading or writing a trace archive failed."""


class StoreError(ReproError):
    """An artifact-store operation failed (bad root, key, payload...)."""


class WorkloadError(ReproError):
    """A workload/campaign specification is invalid."""


def unknown_name_error(
    kind: str, name: str, available: "list[str] | tuple[str, ...]"
) -> AnalysisError:
    """The one friendly ``unknown <kind>`` error of every registry.

    Every name-keyed catalog (detectors, sweep grids, monitor
    presets...) raises through this helper, so the CLI's one-line
    message is byte-identical everywhere: what was asked for, and
    what actually exists.
    """
    catalog = ", ".join(available) or "(none registered)"
    return AnalysisError(
        f"unknown {kind} {name!r}; available {kind}s: {catalog}"
    )
