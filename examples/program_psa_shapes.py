#!/usr/bin/env python
"""Programming the PSA lattice: shapes, sizes and locations (Figure 1b).

Demonstrates the core hardware idea: the 36x36 T-gate lattice can be
programmed into coils of arbitrary size and position at run time.
Synthesizes the paper's 2-turn example, a standard 5-turn sensor, and a
custom Trojan-matched probe coil, then measures with each.

Run:
    python examples/program_psa_shapes.py
"""

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.core.coil import synthesize_rect_coil
from repro.core.grid import PsaGrid
from repro.core.sensors import standard_sensor_coil
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import scenario_by_name


def describe(coil) -> str:
    outer = coil.turn_rects[0]
    return (
        f"{coil.n_turns} turn(s), outer "
        f"{outer.width * 1e6:.0f} x {outer.height * 1e6:.0f} um, "
        f"{coil.n_tgates} T-gates, R = {coil.resistance():.0f} ohm, "
        f"L ~ {coil.inductance() * 1e9:.0f} nH"
    )


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)

    # Figure 1b: the 2-turn example coil.
    fig1b = synthesize_rect_coil("figure_1b", col0=0, row0=0, size=6, turns=2)
    print(f"Figure 1b coil     : {describe(fig1b)}")

    grid = PsaGrid()
    fig1b.program(grid)
    print("lattice occupancy  :", grid.n_on, "of 1296 switches on")
    print(grid.ascii_art(step=3))
    fig1b.release(grid)
    print()

    # A standard sensor and a Trojan-matched probe.
    sensor = standard_sensor_coil(10)
    probe = synthesize_rect_coil("ht_matched", col0=19, row0=11, size=6, turns=3)
    print(f"standard sensor 10 : {describe(sensor)}")
    print(f"HT-matched probe   : {describe(probe)}")
    print()

    # Measure the T3 scenario with both: the matched probe concentrates
    # on the Trojan cluster.
    record = campaign.record(scenario_by_name("T3"), 123)
    baseline = campaign.record(scenario_by_name("baseline"), 123)
    for coil in (sensor, probe):
        active = psa.measure_coil(coil, record, trace_index=1)
        quiet = psa.measure_coil(coil, baseline, trace_index=1)
        delta = active.rms() / quiet.rms()
        print(
            f"{coil.name:<18s}: RMS x{delta:5.2f} when T3 activates "
            f"(trace RMS {quiet.rms():.3f} -> {active.rms():.3f} V)"
        )


if __name__ == "__main__":
    main()
