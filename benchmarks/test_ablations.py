"""Ablations — the design choices behind the PSA.

Covers: programmed sensor size vs Trojan coupling (the "match the HT
size" claim and the single-coil self-cancellation), turn count vs
coupling, and current-kernel duty vs even-harmonic suppression (why
the sidebands live around the 1st/3rd harmonics).
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    format_ablations,
    run_duty_sweep,
    run_size_sweep,
    run_turns_sweep,
)


def test_ablations(benchmark, ctx):
    def run():
        return (
            run_size_sweep(ctx),
            run_turns_sweep(ctx),
            run_duty_sweep(),
        )

    size, turns, duty = benchmark.pedantic(run, rounds=1, iterations=1)

    # Size sweep: a Trojan-scale coil beats the whole-chip loop by a
    # wide margin (self-cancellation), and the optimum is small.
    assert size.best_size <= 11
    whole_chip = size.trojan_coupling[size.sizes_pitches.index(35)]
    assert size.trojan_coupling.max() > 5 * whole_chip

    # Turns sweep: coupling grows monotonically with turns for the
    # standard sensor (every added turn still encloses the cluster).
    coupling = turns.trojan_coupling
    assert all(coupling[i] < coupling[i + 1] for i in range(len(coupling) - 1))

    # Duty sweep: even harmonics are most suppressed at 50 % duty.
    assert duty.min_ratio_duty == pytest.approx(0.5, abs=0.06)
    edge = duty.even_odd_ratio_db[np.argmin(np.abs(duty.duties - 0.15))]
    center = duty.even_odd_ratio_db.min()
    assert center < edge - 20.0
    print()
    print(format_ablations(size, turns, duty))
