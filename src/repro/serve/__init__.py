"""``repro.serve`` — the fleet-scale streaming monitoring service.

A long-running asyncio front-end over the run-time subsystem: chip
streams arrive over HTTP (replay uploads) or WebSocket (pushed
chunks), each chip runs its own
:class:`~repro.runtime.pipeline.EscalationPipeline` behind a bounded
queue drained by a shared analysis pool, and overload is handled by
the typed backpressure/shed contract shared with the in-process
:class:`~repro.runtime.fleet.FleetScheduler`.  See :mod:`.app` for
the endpoint table.
"""

from .app import ChipSession, MonitorService, ServeConfig, ServiceRunner
from .metrics import ChipGauge, MetricsSnapshot, ThroughputMeter
from .protocol import ServeClient, WsConnection, pack_chunk, unpack_chunk
from .shedding import ChunkShedder, OverloadGuard

__all__ = [
    "ChipGauge",
    "ChipSession",
    "ChunkShedder",
    "MetricsSnapshot",
    "MonitorService",
    "OverloadGuard",
    "ServeClient",
    "ServeConfig",
    "ServiceRunner",
    "ThroughputMeter",
    "WsConnection",
    "pack_chunk",
    "unpack_chunk",
]
