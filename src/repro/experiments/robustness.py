"""Section VI-C: PSA behaviour across supply voltage and temperature.

Three results to reproduce:

* sweeping VDD from 0.8 V to 1.2 V changes a sensor's impedance by only
  ~4 dB (Virtuoso simulation in the paper);
* sweeping ambient temperature from -40 C to 125 C keeps the impedance
  within a ~4 dB band;
* injecting a 70 mV chirp and measuring the current response across
  supply voltages shows no significant change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.sensors import standard_sensor_coil
from ..em.devices import impedance_db, sensor_impedance, tgate_resistance
from ..instruments.signal_gen import chirp
from .context import ExperimentContext, default_context
from .reporting import format_series

#: Mid-band frequency at which |Z| is evaluated [Hz].
Z_EVAL_FREQ = 50e6


@dataclass(frozen=True)
class SweepResult:
    """One |Z| sweep.

    Attributes
    ----------
    axis:
        Sweep values (volts or Celsius).
    impedance_db_ohm:
        |Z| in dB-ohm per sweep point.
    span_db:
        Max-min spread (paper: ~4 dB for both sweeps).
    """

    axis: np.ndarray
    impedance_db_ohm: np.ndarray

    @property
    def span_db(self) -> float:
        return float(self.impedance_db_ohm.max() - self.impedance_db_ohm.min())


@dataclass(frozen=True)
class ChirpResult:
    """Current response of one sensor to the 70 mV chirp vs VDD."""

    vdd_axis: np.ndarray
    current_rms: np.ndarray

    @property
    def relative_span(self) -> float:
        """(max-min)/mean of the current response."""
        mean = float(self.current_rms.mean())
        return float(
            (self.current_rms.max() - self.current_rms.min()) / mean
        )


@dataclass(frozen=True)
class RobustnessResult:
    """All Section VI-C sweeps."""

    voltage: SweepResult
    temperature: SweepResult
    chirp: ChirpResult
    tgate_nominal_ohm: float


def _coil_impedance_db(vdd: float, temperature_c: float) -> float:
    coil = standard_sensor_coil(10)
    z = sensor_impedance(
        n_tgates=coil.n_tgates,
        wire_length_m=coil.wire_length,
        frequency=Z_EVAL_FREQ,
        vdd=vdd,
        temperature_c=temperature_c,
    )
    return impedance_db(z)


def run_robustness(
    ctx: Optional[ExperimentContext] = None,
    n_voltage: int = 9,
    n_temperature: int = 12,
) -> RobustnessResult:
    """Run the three Section VI-C sweeps."""
    ctx = ctx or default_context()
    volts = np.linspace(0.8, 1.2, n_voltage)
    v_imp = np.array([_coil_impedance_db(v, 25.0) for v in volts])

    temps = np.linspace(-40.0, 125.0, n_temperature)
    t_imp = np.array([_coil_impedance_db(1.2, t) for t in temps])

    # Chirp current response: a 70 mV sweep across the sensor's series
    # impedance; the current RMS is the measured response.
    coil = standard_sensor_coil(10)
    stimulus = chirp(
        f_start=1e6,
        f_stop=120e6,
        duration=ctx.config.duration,
        fs=ctx.config.fs,
        amplitude=70e-3,
    )
    spectrum = np.fft.rfft(stimulus.samples)
    freqs = np.fft.rfftfreq(stimulus.n_samples, d=1.0 / ctx.config.fs)
    chirp_volts = np.linspace(0.8, 1.25, 10)
    currents = []
    for vdd in chirp_volts:
        z = np.array(
            [
                sensor_impedance(
                    coil.n_tgates, coil.wire_length, max(f, 1e3), vdd, 25.0
                )
                for f in freqs
            ]
        )
        current = np.fft.irfft(spectrum / z, n=stimulus.n_samples)
        currents.append(float(np.sqrt(np.mean(current**2))))

    return RobustnessResult(
        voltage=SweepResult(axis=volts, impedance_db_ohm=v_imp),
        temperature=SweepResult(axis=temps, impedance_db_ohm=t_imp),
        chirp=ChirpResult(
            vdd_axis=chirp_volts, current_rms=np.array(currents)
        ),
        tgate_nominal_ohm=tgate_resistance(1.2, 25.0),
    )


def format_robustness(result: RobustnessResult) -> str:
    """Render the Section VI-C summary."""
    lines = [
        "Section VI-C — supply voltage / temperature robustness",
        f"nominal T-gate on-resistance: {result.tgate_nominal_ohm:.1f} ohm "
        "(paper: ~34 ohm)",
        "",
        format_series(
            result.voltage.axis,
            result.voltage.impedance_db_ohm,
            "VDD [V]",
            "|Z| [dB-ohm]",
        ),
        f"voltage span: {result.voltage.span_db:.1f} dB (paper: ~4 dB)",
        "",
        format_series(
            result.temperature.axis,
            result.temperature.impedance_db_ohm,
            "T [C]",
            "|Z| [dB-ohm]",
        ),
        f"temperature span: {result.temperature.span_db:.1f} dB "
        "(paper: ~4 dB)",
        "",
        "chirp current response spread across VDD: "
        f"{result.chirp.relative_span:.1%} (paper: 'does not change "
        "significantly')",
    ]
    return "\n".join(lines)
