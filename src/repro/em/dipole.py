"""Magnetic dipole fields (Biot-Savart far-field form).

A switching region's supply loop is small (tens of um) compared with
the distances to the sensing structures, so each pole of the dipole
pair is treated as an ideal vertical (z-oriented) magnetic dipole:

    Bz(r) = mu0/(4*pi) * m * (3*dz^2 - r^2) / r^5

which integrates to *zero* net flux through any infinite plane above
the source — large loops capture progressively less net flux, the
physical root of the single-coil SNR deficit.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..units import MU0

_PREFACTOR = MU0 / (4.0 * np.pi)


def bz_unit_dipole(
    dipole_xy: np.ndarray,
    dipole_z: float,
    points_xy: np.ndarray,
    points_z: float,
) -> np.ndarray:
    """Vertical field component per unit dipole moment.

    Parameters
    ----------
    dipole_xy:
        Dipole positions, shape ``(D, 2)`` [m].
    dipole_z:
        Common dipole height [m].
    points_xy:
        Field evaluation points, shape ``(P, 2)`` [m].
    points_z:
        Common evaluation height [m].

    Returns
    -------
    numpy.ndarray
        ``(D, P)`` array of Bz per unit moment [T/(A*m^2)].
    """
    dipole_xy = np.atleast_2d(np.asarray(dipole_xy, dtype=float))
    points_xy = np.atleast_2d(np.asarray(points_xy, dtype=float))
    if dipole_xy.shape[1] != 2 or points_xy.shape[1] != 2:
        raise ConfigError("positions must be (N, 2) arrays")
    dz = points_z - dipole_z
    if abs(dz) < 1e-12:
        raise ConfigError(
            "dipole and evaluation planes coincide; the point-dipole "
            "field diverges"
        )
    dx = points_xy[None, :, 0] - dipole_xy[:, None, 0]
    dy = points_xy[None, :, 1] - dipole_xy[:, None, 1]
    r2 = dx * dx + dy * dy + dz * dz
    r5 = r2 ** 2.5
    return _PREFACTOR * (3.0 * dz * dz - r2) / r5


def flux_through_patches(
    dipole_xy: np.ndarray,
    dipole_z: float,
    patch_xy: np.ndarray,
    patch_z: float,
    patch_area: float,
) -> np.ndarray:
    """Net flux per unit moment through a patch-discretized surface.

    Parameters
    ----------
    dipole_xy, dipole_z:
        Dipole positions/height as in :func:`bz_unit_dipole`.
    patch_xy:
        Patch centers, shape ``(P, 2)``.
    patch_z:
        Surface height [m].
    patch_area:
        Area of each patch [m^2].

    Returns
    -------
    numpy.ndarray
        ``(D,)`` array: flux per unit dipole moment [Wb/(A*m^2)].
    """
    bz = bz_unit_dipole(dipole_xy, dipole_z, patch_xy, patch_z)
    return bz.sum(axis=1) * patch_area


def analytic_centered_flux(
    loop_radius: float, height: float
) -> float:
    """Closed-form flux through a circle centered above a unit dipole.

    ``Phi = mu0 * a^2 / (2 * (a^2 + z^2)^(3/2))`` — used by tests to
    validate the patch integration.
    """
    if loop_radius <= 0 or height <= 0:
        raise ConfigError("radius and height must be positive")
    a2 = loop_radius * loop_radius
    return MU0 * a2 / (2.0 * (a2 + height * height) ** 1.5)
