"""Assembled test-chip behaviour."""

import numpy as np
import pytest

from repro.chip.testchip import TestChip as AesTestChip
from repro.config import SimConfig
from repro.errors import WorkloadError

PLAINTEXTS = [bytes(range(16)), bytes(range(16, 32))]


def test_idle_record_is_quiet(chip):
    idle = chip.run_trace(PLAINTEXTS, idle=True)
    busy = chip.run_trace(PLAINTEXTS, active=set())
    assert idle.total_toggles() < 0.01 * busy.total_toggles()
    # Idle has no Trojan activity at all (clock gated).
    assert idle.trojan.sum() == 0.0


def test_trojan_activity_isolated_to_trojan_matrix(chip):
    baseline = chip.run_trace(PLAINTEXTS, active=set())
    with_t4 = chip.run_trace(PLAINTEXTS, active={"T4"})
    # Main activity identical; the delta lives in the trojan planes
    # (T4 is a rising-phase power virus).
    assert np.allclose(baseline.main, with_t4.main)
    assert (
        with_t4.trojan_total().sum() > 100 * baseline.trojan_total().sum()
    )


def test_trojan_activity_in_correct_regions(chip):
    record = chip.run_trace(PLAINTEXTS, active={"T3"})
    delta = record.trojan.sum(axis=1)
    baseline = chip.run_trace(PLAINTEXTS, active=set()).trojan.sum(axis=1)
    added = delta - baseline
    t3_weights = chip.floorplan.module_weights("T3")
    # At least 90 % of the added toggles land on T3's regions.
    assert added[t3_weights > 0].sum() > 0.9 * added.sum()


def test_t2_needs_matching_plaintext(chip):
    matching = [b"\xaa\xaa" + bytes(14)]
    random = [b"\x01\x02" + bytes(14)]
    armed = chip.run_trace(matching, active={"T2"})
    unarmed = chip.run_trace(random, active={"T2"})
    assert armed.trojan.sum() > 10 * unarmed.trojan.sum()


def test_scenario_labels(chip):
    assert chip.run_trace(PLAINTEXTS, idle=True).scenario == "idle"
    assert chip.run_trace(PLAINTEXTS).scenario == "baseline"
    assert chip.run_trace(PLAINTEXTS, active={"T1"}).scenario == "T1"


def test_unknown_trojan_rejected(chip):
    with pytest.raises(WorkloadError):
        chip.run_trace(PLAINTEXTS, active={"T7"})


def test_activity_is_data_dependent(chip):
    a = chip.run_trace([bytes(16)], active=set())
    b = chip.run_trace([b"\xff" * 16], active=set())
    assert not np.allclose(a.main, b.main)


def test_records_are_deterministic(chip):
    a = chip.run_trace(PLAINTEXTS, active={"T1"})
    b = chip.run_trace(PLAINTEXTS, active={"T1"})
    assert np.array_equal(a.main, b.main)
    assert np.array_equal(a.trojan, b.trojan)


def test_make_trojans_configuration(chip):
    trojans = chip.make_trojans({"T1", "T3"})
    by_name = {t.name: t for t in trojans}
    assert by_name["T1"].enabled and by_name["T3"].enabled
    assert not by_name["T2"].enabled and not by_name["T4"].enabled
    # T1 is parked at its terminal count so the burst starts at once.
    assert by_name["T1"].start_count == 0x1FFFFF


def test_key_must_be_16_bytes():
    with pytest.raises(WorkloadError):
        AesTestChip(b"short", SimConfig())


def test_variant_records_deterministic_across_fresh_chips():
    """Same seed => bit-identical always-on records on fresh chips."""
    key = bytes(range(16))
    for name in ("T1A", "T2A", "TP"):
        a = AesTestChip(key, SimConfig()).run_trace(
            PLAINTEXTS, active={name}
        )
        b = AesTestChip(key, SimConfig()).run_trace(
            PLAINTEXTS, active={name}
        )
        assert np.array_equal(a.main, b.main)
        assert np.array_equal(a.trojan, b.trojan)
        assert a.trojan.any()  # the implant is emitting


def test_variant_activity_lands_on_parent_site(chip):
    """A variant's toggles land in its parent implant's region (the
    ``site`` attribute maps T1A->T1 weights etc.)."""
    quiet = chip.run_trace(PLAINTEXTS, active=set())
    for name, site in (("T1A", "T1"), ("T2A", "T2"), ("TP", "T4")):
        record = chip.run_trace(PLAINTEXTS, active={name})
        extra = record.trojan - quiet.trojan
        assert extra.any()
        by_name = {t.name: t for t in chip.make_trojans({name})}
        assert by_name[name].site == site
