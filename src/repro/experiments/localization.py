"""Section VI-D localization: score maps and adaptive refinement.

For each Trojan, the per-sensor sideband score map must peak at
sensor 10 (where the Trojans live), sensor 0 must stay quiet, and the
quadrant refinement must point at the correct quadrant of sensor 10.

This is a thin adapter over the localization sweep
(:class:`~repro.sweep.localize.LocalizationSweep`): one grid of four
cells at the paper's implant position, with the per-Trojan
:class:`~repro.core.analysis.localizer.LocalizationResult` details
surfaced unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..chip.floorplan import DEFAULT_TROJAN_SENSOR
from ..core.analysis.localizer import LocalizationResult
from ..sweep.localize import (
    EXPECTED_QUADRANTS,
    LocalizationSweep,
    LocalizeCell,
    LocalizeGrid,
)
from .context import ExperimentContext, default_context
from .reporting import format_table

#: The sensor hosting every Trojan on the paper's chip.
EXPECTED_SENSOR = DEFAULT_TROJAN_SENSOR


@dataclass(frozen=True)
class LocalizationExperimentResult:
    """Localization outcome for all four Trojans."""

    results: Dict[str, LocalizationResult]

    @property
    def sensors_correct(self) -> bool:
        """All Trojans localized to sensor 10."""
        return all(
            r.sensor_index == EXPECTED_SENSOR for r in self.results.values()
        )

    @property
    def quadrants_correct(self) -> bool:
        """All refinements point at the true quadrant."""
        return all(
            self.results[t].quadrant == EXPECTED_QUADRANTS[t]
            for t in self.results
        )


def run_localization(
    ctx: Optional[ExperimentContext] = None,
    n_records: int = 3,
    refine: bool = True,
) -> LocalizationExperimentResult:
    """Localize each Trojan from matched active/inactive populations.

    A thin preset over the localization sweep: one cell per Trojan at
    the paper's implant position, reusing the context's chip/PSA, with
    the same record populations (baseline epoch 0, active epoch 500)
    as the legacy per-Trojan loop.
    """
    ctx = ctx or default_context()
    grid = LocalizeGrid(
        name="experiment",
        cells=tuple(
            LocalizeCell(trojan=trojan, n_records=n_records, refine=refine)
            for trojan in EXPECTED_QUADRANTS
        ),
        keep_details=True,
    )
    sweep = LocalizationSweep(ctx.config, campaign=ctx.campaign)
    report = sweep.run(grid)
    results = {
        cell.trojan: cell.details[0] for cell in report.cells
    }
    return LocalizationExperimentResult(results=results)


def format_localization(result: LocalizationExperimentResult) -> str:
    """Render the localization summary."""
    rows = []
    for trojan, loc in result.results.items():
        position = f"({loc.position[0]*1e6:.0f}, {loc.position[1]*1e6:.0f}) um"
        rows.append(
            (
                trojan,
                loc.sensor_index,
                f"{loc.margin_db:.1f}",
                loc.quadrant or "-",
                EXPECTED_QUADRANTS[trojan],
                position,
            )
        )
    header = (
        "Section VI-D — localization (expected: sensor 10 for every "
        "Trojan)\n"
    )
    return header + format_table(
        ["trojan", "sensor", "margin [dB]", "quadrant", "expected", "position"],
        rows,
    )
