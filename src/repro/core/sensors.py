"""The standard 16-sensor configuration (Section V-A).

"The entire area was uniformly divided into 16 square sensing areas or
sensors.  Each sensor shares 33 % of its area with adjacent sensors."

On the 36-wire lattice we use 11-pitch square sensors at a uniform
8-pitch stride (lattice origins 0, 8, 16, 24 per axis).  This is the
only *symmetric* tiling the 36-wire lattice admits: every sensor's
exclusive zone is centered on its own coil, which the localization
stage relies on.  The per-neighbour shared area is 3/11 = 27 % (the
paper's quoted 33 % cannot be realized with integer wire indices;
documented deviation).  Each sensor is programmed as a 5-turn
concentric coil — the deepest spiral an 11-pitch square supports
(the paper's "6-turn coil" needs a 12-pitch square, which breaks the
symmetric tiling; documented deviation).

Sensor indexing is row-major with row 0 at the *top* of the die, so
sensor 0 is the Trojan-free top-left corner and sensor 10 sits over the
Trojan cluster — the published semantics.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import CoilSynthesisError
from .coil import Coil, synthesize_rect_coil

#: Number of sensors in the standard configuration.
N_SENSORS = 16

#: Sensor square side in lattice pitches.
SENSOR_SIZE_PITCHES = 11

#: Default turns per sensor coil.
DEFAULT_TURNS = 5

#: Lattice origin of each sensor column (left to right).
COLUMN_ORIGINS: Tuple[int, ...] = (0, 8, 16, 24)

#: Lattice origin of each sensor row, for display rows top to bottom.
ROW_ORIGINS: Tuple[int, ...] = (24, 16, 8, 0)


def sensor_grid_origin(index: int) -> Tuple[int, int]:
    """Lattice (col0, row0) of sensor ``index`` (row-major, row 0 top)."""
    if not 0 <= index < N_SENSORS:
        raise CoilSynthesisError(f"sensor index {index} outside 0..15")
    row, col = divmod(index, 4)
    return (COLUMN_ORIGINS[col], ROW_ORIGINS[row])


def standard_sensor_coil(index: int, turns: int = DEFAULT_TURNS) -> Coil:
    """The standard coil for one of the 16 sensors."""
    col0, row0 = sensor_grid_origin(index)
    return synthesize_rect_coil(
        name=f"psa_sensor_{index}",
        col0=col0,
        row0=row0,
        size=SENSOR_SIZE_PITCHES,
        turns=turns,
    )


def quadrant_coil(index: int, which: str, turns: int = 1) -> Coil:
    """A half-size refinement coil over one quadrant of a sensor.

    Used by the adaptive localization step: after a sensor flags a
    Trojan, the lattice is reprogrammed into four 5-pitch single-turn
    coils, one per quadrant (a one-pitch gap separates opposite
    quadrants).  Single turns keep the quadrant response monotonic in
    containment — concentric turns of a small coil would re-introduce
    sign-alternating rings around the Trojan sites.
    """
    col0, row0 = sensor_grid_origin(index)
    size = SENSOR_SIZE_PITCHES // 2  # 5 pitches
    far = SENSOR_SIZE_PITCHES - size  # 6: opposite-corner origin offset
    offsets = {
        "sw": (0, 0),
        "se": (far, 0),
        "nw": (0, far),
        "ne": (far, far),
    }
    if which not in offsets:
        raise CoilSynthesisError(
            f"unknown quadrant {which!r}; expected one of {sorted(offsets)}"
        )
    dc, dr = offsets[which]
    return synthesize_rect_coil(
        name=f"psa_sensor_{index}_{which}",
        col0=col0 + dc,
        row0=row0 + dr,
        size=size,
        turns=turns,
    )
