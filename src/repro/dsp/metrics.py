"""Scalar signal metrics: RMS, dB conversions and He's SNR measure.

Equation (1) of the paper defines SNR as the RMS-voltage ratio of a
signal trace (chip performing AES encryption) to a noise trace (chip
powered up, no encryption):

    SNR = 20 * log10(Vrms_signal / Vrms_noise)
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


def rms(samples: np.ndarray) -> float:
    """Root-mean-square value of a trace."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise AnalysisError("rms of an empty trace is undefined")
    return float(np.sqrt(np.mean(samples**2)))


def db_amplitude(ratio: np.ndarray) -> np.ndarray:
    """Element-wise ``20*log10`` with a tiny-floor guard."""
    ratio = np.asarray(ratio, dtype=float)
    floor = np.finfo(float).tiny
    return 20.0 * np.log10(np.maximum(ratio, floor))


def db_to_amplitude(value_db: np.ndarray) -> np.ndarray:
    """Element-wise inverse of :func:`db_amplitude`."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 20.0)


def snr_rms_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """He's SNR measure (paper Equation (1)).

    Parameters
    ----------
    signal:
        Trace captured while the chip performs AES encryption.
    noise:
        Trace captured from the powered-up chip without encryption
        activity.
    """
    noise_rms = rms(noise)
    if noise_rms == 0.0:
        raise AnalysisError("noise trace has zero RMS; SNR undefined")
    return float(20.0 * np.log10(rms(signal) / noise_rms))
