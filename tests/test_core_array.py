"""The PSA measurement facade."""

import numpy as np
import pytest

from repro.core.coil import synthesize_rect_coil
from repro.errors import MeasurementError


def test_measure_all_returns_16_traces(psa, records):
    traces = psa.measure_all(records["baseline"][0])
    assert len(traces) == 16
    for index, trace in enumerate(traces):
        assert trace.label == f"psa_sensor_{index}"
        assert trace.n_samples == psa.config.n_samples
        assert trace.fs == pytest.approx(psa.config.fs)


def test_measure_single_sensor_uses_decoder(psa, records):
    trace = psa.measure(records["baseline"][0], 10, trace_index=1)
    assert trace.label == "psa_sensor_10"
    assert psa.decoder.selected() == 10


def test_measurement_is_reproducible(psa, records):
    a = psa.measure(records["baseline"][0], 10, trace_index=3)
    b = psa.measure(records["baseline"][0], 10, trace_index=3)
    assert np.array_equal(a.samples, b.samples)


def test_noise_varies_across_trace_indices(psa, records):
    a = psa.measure(records["baseline"][0], 10, trace_index=0)
    b = psa.measure(records["baseline"][0], 10, trace_index=1)
    assert not np.array_equal(a.samples, b.samples)
    # Same underlying signal: the RMS difference is noise-scale.
    assert abs(a.rms() - b.rms()) < 0.2 * a.rms()


def test_noise_independent_per_sensor(psa, records):
    traces = psa.measure_all(records["idle"][0])
    assert not np.array_equal(traces[0].samples, traces[1].samples)


def test_sensor10_sees_more_signal_than_sensor0(psa, records):
    traces = psa.measure_all(records["baseline"][0])
    assert traces[10].rms() > 2 * traces[0].rms()


def test_invalid_sensor_rejected(psa, records):
    with pytest.raises(MeasurementError):
        psa.measure(records["baseline"][0], 16)


def test_measure_custom_coil(psa, records):
    coil = synthesize_rect_coil("custom_probe", 18, 10, size=8, turns=3)
    trace = psa.measure_coil(coil, records["baseline"][0])
    assert trace.label == "custom_probe"
    assert trace.n_samples == psa.config.n_samples
    # The grid is released afterwards.
    assert psa.grid.n_on == 0


def test_measure_coil_releases_on_repeat(psa, records):
    coil = synthesize_rect_coil("repeat_probe", 2, 2, size=6, turns=2)
    first = psa.measure_coil(coil, records["baseline"][0], trace_index=0)
    second = psa.measure_coil(coil, records["baseline"][0], trace_index=0)
    assert np.array_equal(first.samples, second.samples)


def test_trace_metadata(psa, records):
    trace = psa.measure(records["T1"][0], 10, trace_index=7)
    assert trace.scenario == "T1"
    assert trace.meta["trace_index"] == 7
    assert trace.meta["turns"] == 5
    assert trace.meta["r_series"] > 100.0
