"""The end-to-end cross-domain analyzer.

One object that runs the paper's full Section VI-D flow against a test
chip: collect spectra, find the prominent sideband components, detect
the activation golden-model-free, localize the Trojan to a sensor (and
quadrant), and identify which Trojan it is from the zero-span envelope
— with MTTD accounting throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...chip.testchip import TestChip
from ...dsp.transforms import average_spectra
from ...errors import AnalysisError
from ...instruments.spectrum_analyzer import SpectrumAnalyzer
from ...traces import Trace
from ...workloads.campaign import MeasurementCampaign
from ...workloads.scenarios import reference_for, scenario_by_name
from ..array import ProgrammableSensorArray
from .detector import DetectorConfig, RuntimeDetector
from .identifier import IdentificationResult, TrojanIdentifier
from .localizer import LocalizationResult, Localizer
from .mttd import MttdModel, MttdResult, mttd_from_alarm
from .spectral import (
    find_prominent_components,
    sideband_feature_db,
    sideband_features_db,
    sideband_frequencies,
)

#: The sensor the run-time monitor watches by default (covers the
#: Trojan cluster on the paper's chip).
DEFAULT_MONITOR_SENSOR = 10


@dataclass(frozen=True)
class CrossDomainReport:
    """Everything the cross-domain analysis concludes about one Trojan.

    Attributes
    ----------
    scenario:
        The analyzed Trojan scenario name.
    prominent_components:
        ``(frequency, delta_db)`` pairs from the frequency-domain stage.
    mttd:
        Detection latency result.
    alarm_trace_index:
        Stream index of the alarming trace (None if undetected).
    localization:
        Localization stage outcome.
    identification:
        Identification stage outcome.
    monitor_sensor:
        The sensor whose stream fed the detector.
    """

    scenario: str
    prominent_components: List[Tuple[float, float]]
    mttd: MttdResult
    alarm_trace_index: Optional[int]
    localization: LocalizationResult
    identification: IdentificationResult
    monitor_sensor: int


class CrossDomainAnalyzer:
    """Drives detection, localization and identification.

    Parameters
    ----------
    chip:
        Device under test.
    psa:
        Its programmable sensor array.
    analyzer:
        Spectrum analyzer model.
    detector_config:
        Run-time detector tuning.
    mttd_model:
        Per-trace timing model.
    monitor_sensor:
        Sensor watched by the streaming detector.
    """

    def __init__(
        self,
        chip: TestChip,
        psa: ProgrammableSensorArray,
        analyzer: Optional[SpectrumAnalyzer] = None,
        detector_config: Optional[DetectorConfig] = None,
        mttd_model: Optional[MttdModel] = None,
        monitor_sensor: int = DEFAULT_MONITOR_SENSOR,
    ):
        self.chip = chip
        self.psa = psa
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.detector_config = detector_config or DetectorConfig(warmup=6)
        self.mttd_model = mttd_model or MttdModel()
        self.monitor_sensor = monitor_sensor
        self.campaign = MeasurementCampaign(chip, psa)
        self.identifier = TrojanIdentifier(
            self.analyzer, f_probe=sideband_frequencies(chip.config)[0]
        )
        self.localizer = Localizer(psa, self.analyzer)

    # -- feature stream -----------------------------------------------------------

    def _feature(self, trace: Trace) -> float:
        return sideband_feature_db(
            self.analyzer.spectrum(trace), self.chip.config
        )

    def _monitor_batch(
        self, records: List, trace_indices: List[int]
    ) -> Tuple[np.ndarray, "object"]:
        """Render captures of the monitor sensor; features + batch."""
        batch = self.psa.render(
            records,
            trace_indices=trace_indices,
            sensors=[self.monitor_sensor],
        )
        grid, display = self.analyzer.display_matrix(
            batch.samples[0], batch.fs
        )
        features = sideband_features_db(grid, display, self.chip.config)
        return features, batch

    def monitor_stream(
        self, scenario_name: str, n_baseline: int, n_active: int
    ) -> Tuple[List[float], List[Trace], int]:
        """Build the runtime stream: baseline traces, then activation.

        Delegates to the streaming subsystem: the scripted
        :class:`~repro.runtime.sources.ActivationSchedule` renders
        through a :class:`~repro.runtime.sources.LiveSource` and the
        shared chunk featurizer — the exact machinery behind
        ``repro monitor`` — which the engine's determinism contract
        keeps bit-identical to the legacy one-shot render
        (:meth:`_monitor_batch`, retained as the reference path and
        pinned by ``tests/test_runtime_stream.py``).  Returns
        ``(features, active_traces, trigger_index)``.
        """
        # Function-level import: repro.runtime sits above the analysis
        # package (it composes detector/identifier/localizer), so the
        # delegation must not run at module-import time.
        from ...runtime.pipeline import chunk_features
        from ...runtime.sources import ActivationSchedule, LiveSource

        schedule = ActivationSchedule.step(
            scenario_name,
            n_baseline=n_baseline,
            n_active=n_active,
            active_offset=500,
        )
        source = LiveSource(
            self.campaign,
            schedule,
            sensors=[self.monitor_sensor],
            chunk=max(1, n_baseline + n_active),
        )
        features: List[float] = []
        active_traces: List[Trace] = []
        for chunk in source.chunks():
            block = chunk_features(
                chunk, self.analyzer, self.chip.config, adc=None
            )
            features.extend(float(value) for value in block[0])
            for offset in range(chunk.n_windows):
                if chunk.start + offset >= n_baseline:
                    active_traces.append(chunk.trace(0, offset))
        return features, active_traces, n_baseline

    def monitor_stream_legacy(
        self, scenario_name: str, n_baseline: int, n_active: int
    ) -> Tuple[List[float], List[Trace], int]:
        """The pre-runtime one-shot render (reference path).

        Kept as the equivalence anchor for :meth:`monitor_stream`:
        both produce bit-identical features and traces.
        """
        reference = reference_for(scenario_name)
        scenario = scenario_by_name(scenario_name)
        records = [
            self.campaign.record(reference, i) for i in range(n_baseline)
        ] + [self.campaign.record(scenario, 500 + i) for i in range(n_active)]
        indices = list(range(n_baseline)) + [
            500 + i for i in range(n_active)
        ]
        features, batch = self._monitor_batch(records, indices)
        active_traces = [
            batch.trace(0, n_baseline + index) for index in range(n_active)
        ]
        return list(features), active_traces, n_baseline

    # -- the full flow -----------------------------------------------------------------

    def run(
        self,
        scenario_name: str,
        n_baseline: int = 8,
        n_active: int = 8,
        refine_localization: bool = True,
    ) -> CrossDomainReport:
        """Run the complete cross-domain analysis for one Trojan.

        Parameters
        ----------
        scenario_name:
            ``"T1"``..``"T4"``.
        n_baseline:
            Pre-activation traces (detector warm-up; the paper's flow
            needs fewer than ten in total).
        n_active:
            Post-activation traces available to the pipeline.
        refine_localization:
            Whether to run the quadrant-refinement stage.
        """
        scenario = scenario_by_name(scenario_name)
        if scenario.idle or not scenario.active:
            raise AnalysisError(
                f"scenario {scenario_name!r} has no Trojan to analyze"
            )

        # 1+2: stream features through the golden-model-free detector.
        features, active_traces, trigger = self.monitor_stream(
            scenario_name, n_baseline, n_active
        )
        detector = RuntimeDetector(self.detector_config)
        alarm_index = detector.run(features)
        mttd = mttd_from_alarm(
            alarm_index, trigger, self.chip.config, self.mttd_model
        )

        # Frequency-domain stage: prominent components from 5-trace
        # averaged spectra (the paper's display setting).  Both
        # populations render as one engine batch on the monitor sensor.
        reference = reference_for(scenario_name)
        base_records = [self.campaign.record(reference, 100 + i) for i in range(5)]
        act_records = [self.campaign.record(scenario, 600 + i) for i in range(5)]
        display_batch = self.psa.render(
            base_records + act_records,
            trace_indices=[100 + i for i in range(5)]
            + [600 + i for i in range(5)],
            sensors=[self.monitor_sensor],
        )
        spectra = self.analyzer.display_spectra(
            display_batch.samples[0], display_batch.fs
        )
        base_avg = average_spectra(spectra[:5])
        act_avg = average_spectra(spectra[5:])
        prominent = find_prominent_components(
            act_avg, base_avg, self.chip.config
        )

        # 3: localization over the full sensor map.
        localization = self.localizer.localize(
            base_records, act_records, refine=refine_localization
        )

        # 4: identification from a detection-positive trace's envelope.
        if not active_traces:
            raise AnalysisError("no active traces available to identify")
        identification = self.identifier.classify(active_traces[-1])

        return CrossDomainReport(
            scenario=scenario_name,
            prominent_components=prominent,
            mttd=mttd,
            alarm_trace_index=alarm_index,
            localization=localization,
            identification=identification,
            monitor_sensor=self.monitor_sensor,
        )
