#!/usr/bin/env python
"""Quickstart: detect, localize and identify a hardware Trojan.

Builds the paper's AES-128 test chip with its on-chip Programmable
Sensor Array, activates the T1 AM-carrier Trojan mid-stream, and runs
the full cross-domain analysis — golden-model free.

Run:
    python examples/quickstart.py
"""

from repro import (
    CrossDomainAnalyzer,
    ProgrammableSensorArray,
    SimConfig,
    TestChip,
)


def main() -> None:
    config = SimConfig()  # 33 MHz clock, 16 us capture windows
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)

    print("chip: AES-128-LUT + UART + 4 Trojans (28,806 cells)")
    print(f"PSA: 16 programmable sensors, {psa.sensor_coils[0].n_turns}-turn"
          " coils, lattice 36x36")
    print()

    analyzer = CrossDomainAnalyzer(chip, psa)
    report = analyzer.run("T1", n_baseline=7, n_active=5)

    mttd = report.mttd
    print(f"scenario           : {report.scenario} (AM radio carrier)")
    print(f"detected           : {mttd.detected}")
    print(f"traces to detect   : {mttd.traces_to_detect} (paper: <10)")
    print(f"MTTD               : {mttd.mttd_s * 1e3:.2f} ms (paper: <10 ms)")
    components = ", ".join(
        f"{freq / 1e6:.1f} MHz (+{delta:.1f} dB)"
        for freq, delta in report.prominent_components
    )
    print(f"prominent components: {components} (paper: 48 and 84 MHz)")
    loc = report.localization
    print(
        f"localized          : sensor {loc.sensor_index}, "
        f"quadrant {loc.quadrant}, position "
        f"({loc.position[0] * 1e6:.0f}, {loc.position[1] * 1e6:.0f}) um"
    )
    print(f"identified as      : {report.identification.label}")


if __name__ == "__main__":
    main()
