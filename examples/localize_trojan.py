#!/usr/bin/env python
"""Localization deep-dive: sensor score maps and quadrant refinement.

Prints the 4x4 per-sensor score map for each Trojan (the added sideband
amplitude when the Trojan activates) and shows the adaptive refinement:
the lattice reprogrammed into four quadrant coils inside the hot
sensor, rendered as ONE batched engine pass over a coupling stack.

The per-Trojan results come from the localization sweep
(`repro.sweep.LocalizationSweep`) — the same orchestrator behind
`repro sweep --grid localize` — so this example also prints the
sweep's scorecard table (hit-rate, error, margin, windows).

Run:
    python examples/localize_trojan.py
"""

import numpy as np

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.sweep import LocalizationSweep, LocalizeCell, LocalizeGrid
from repro.workloads.campaign import MeasurementCampaign


def print_score_map(scores: np.ndarray) -> None:
    """Render the 16-sensor map in its physical 4x4 arrangement."""
    peak = max(float(scores.max()), 1e-30)
    for row in range(4):
        cells = []
        for col in range(4):
            value = scores[row * 4 + col]
            bar = "#" * max(0, int(8 * value / peak))
            cells.append(f"s{row * 4 + col:<2} {value * 1e3:7.2f} {bar:<8}")
        print("   " + " | ".join(cells))


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)

    grid = LocalizeGrid(
        name="example",
        cells=tuple(
            LocalizeCell(trojan=trojan, n_records=3)
            for trojan in ("T1", "T2", "T3", "T4")
        ),
        keep_details=True,
    )
    sweep = LocalizationSweep(config, campaign=campaign)
    report = sweep.run(grid)

    for cell in report.cells:
        result = cell.details[0]
        true_center = chip.floorplan.placements[cell.trojan][0].center

        print(f"=== {cell.trojan}: added sideband amplitude per sensor"
              " [mV] ===")
        print_score_map(result.scores)
        quadrants = {
            name: f"{value * 1e3:.2f}"
            for name, value in (result.quadrant_scores or {}).items()
        }
        print(f"   hot sensor : {result.sensor_index} "
              f"(margin {result.margin_db:.1f} dB)")
        print(f"   quadrants  : {quadrants} -> {result.quadrant}")
        error = np.hypot(
            result.position[0] - true_center[0],
            result.position[1] - true_center[1],
        )
        print(
            f"   position   : ({result.position[0] * 1e6:.0f}, "
            f"{result.position[1] * 1e6:.0f}) um — "
            f"{error * 1e6:.0f} um from the true Trojan center "
            f"({cell.outcomes[0].windows} programmed windows)"
        )
        print()

    print(report.format())


if __name__ == "__main__":
    main()
