"""Pluggable execution backends for the measurement engine.

A backend only knows how to evaluate a picklable function over a list
of payloads; the engine decides how to shard a render into payloads.
``serial`` is the in-process reference implementation; ``process``
fans shards out over a worker pool.  Because every random draw in the
render path comes from a stream named by (scenario, receiver, trace
index), sharding never changes the rendered samples — the backends
are interchangeable bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Protocol, Sequence, TypeVar, runtime_checkable

from ..config import BACKEND_NAMES
from ..errors import ConfigError

_P = TypeVar("_P")
_R = TypeVar("_R")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can evaluate a function over payload shards."""

    name: str

    @property
    def parallelism(self) -> int:
        """How many shards are worth creating for one render."""
        ...

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads, preserving order."""
        ...


class SerialBackend:
    """In-process reference backend (no sharding)."""

    name = "serial"

    @property
    def parallelism(self) -> int:
        """Always one shard: the render stays in-process."""
        return 1

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads in order, in-process."""
        return [fn(payload) for payload in payloads]


class ProcessBackend:
    """Worker-pool backend sharding renders across processes.

    The pool is created lazily on first use and reused for every
    subsequent render (spawn-based platforms pay worker start-up only
    once); :meth:`close` tears it down explicitly, and Python's
    executor machinery joins any remaining workers at interpreter
    exit.

    Parameters
    ----------
    max_workers:
        Pool size (default: the machine's CPU count, minimum 2 so the
        sharding path is exercised even on single-core hosts).
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or max(os.cpu_count() or 1, 2)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def parallelism(self) -> int:
        """One shard per pool worker."""
        return self.max_workers

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Fork keeps worker start-up cheap and inherits sys.path;
            # fall back to the platform default where fork is missing.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (a later map() restarts it)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads on the pool, preserving order."""
        if len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        return list(self._pool().map(fn, payloads))


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    workers: int = 0,
) -> ExecutionBackend:
    """Turn a config/CLI backend spec into a backend instance.

    Parameters
    ----------
    backend:
        A backend instance (returned as-is), a name (``"serial"`` /
        ``"process"`` / ``"shared"``), or None for the serial
        reference backend.
    workers:
        Worker count for the pool backends (0 = machine CPU count).

    Returns
    -------
    ExecutionBackend
        The resolved backend.

    Raises
    ------
    ConfigError
        For unknown backend names.
    """
    if backend is None:
        return SerialBackend()
    if not isinstance(backend, str):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessBackend(max_workers=workers or None)
    if backend == "shared":
        # In-function import: shm subclasses ProcessBackend from this
        # module, so a top-level import would be circular.
        from .shm import SharedMemoryBackend

        return SharedMemoryBackend(max_workers=workers or None)
    raise ConfigError(
        f"unknown engine backend {backend!r}; choose from {BACKEND_NAMES}"
    )
