"""Spectra: FFT-based amplitude spectra and the paper's 2000-point grid.

The paper's spectrum analyzer reports a DC-120 MHz spectrum populated
with 2000 sample points, averaged over five captured traces
(Section VI-D).  :func:`amplitude_spectrum` produces the native
FFT-binned spectrum; :func:`resample_spectrum` maps it onto the
instrument's uniform display grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError
from ..units import UV


@dataclass(frozen=True)
class Spectrum:
    """A one-sided amplitude spectrum.

    Attributes
    ----------
    freqs:
        Frequency axis [Hz], monotonically increasing.
    amps:
        RMS amplitude per bin [V].
    """

    freqs: np.ndarray
    amps: np.ndarray

    def __post_init__(self) -> None:
        if self.freqs.shape != self.amps.shape:
            raise AnalysisError(
                f"frequency axis {self.freqs.shape} and amplitude axis "
                f"{self.amps.shape} differ in shape"
            )
        if self.freqs.ndim != 1:
            raise AnalysisError("Spectrum arrays must be one-dimensional")

    def __len__(self) -> int:
        return int(self.freqs.size)

    def db(self, reference: float = UV) -> np.ndarray:
        """Amplitude in dB relative to ``reference`` volts (default dBuV)."""
        floor = np.finfo(float).tiny
        return 20.0 * np.log10(np.maximum(self.amps, floor) / reference)

    def at(self, freq: float) -> float:
        """Amplitude [V] of the bin nearest to ``freq``."""
        index = int(np.argmin(np.abs(self.freqs - freq)))
        return float(self.amps[index])

    def bin_of(self, freq: float) -> int:
        """Index of the bin nearest to ``freq``."""
        return int(np.argmin(np.abs(self.freqs - freq)))


def amplitude_spectrum(samples: np.ndarray, fs: float) -> Spectrum:
    """One-sided RMS amplitude spectrum of a real trace.

    Scaling: a full-scale sine ``A*sin(2*pi*f*t)`` whose frequency sits
    exactly on a bin yields ``A/sqrt(2)`` (its RMS value) in that bin.

    Parameters
    ----------
    samples:
        Real time-domain trace.
    fs:
        Sampling rate [Hz].
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise AnalysisError("amplitude_spectrum expects a 1-D trace")
    freqs, amps = amplitude_spectra(samples[None, :], fs)
    return Spectrum(freqs=freqs, amps=amps[0])


def amplitude_spectra(
    samples: np.ndarray, fs: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched one-sided RMS amplitude spectra of a trace stack.

    Returns ``(freqs, amps)`` with ``amps`` of shape ``(n_traces,
    n_bins)``; every trace shares the frequency axis, and per-row
    results are identical to :func:`amplitude_spectrum` of that row.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise AnalysisError("amplitude_spectra expects a 2-D trace stack")
    if samples.shape[1] < 2:
        raise AnalysisError("traces too short for a spectrum")
    n = samples.shape[1]
    spec = np.fft.rfft(samples, axis=-1)
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)
    # Peak amplitude of each component, then to RMS.  The DC and Nyquist
    # bins are not doubled.
    amps = np.abs(spec) / n
    if n % 2 == 0:
        amps[:, 1:-1] *= 2.0
    else:
        amps[:, 1:] *= 2.0
    amps[:, 1:] /= np.sqrt(2.0)
    return freqs, amps


def average_spectra(spectra: Sequence[Spectrum]) -> Spectrum:
    """Average several spectra bin-by-bin (RMS-power average).

    The paper averages five collected traces to derive each displayed
    spectrum (Section VI-D); averaging in the power domain matches what
    a spectrum analyzer's trace-average mode does.
    """
    if not spectra:
        raise AnalysisError("cannot average an empty spectrum list")
    freqs = spectra[0].freqs
    for spec in spectra[1:]:
        if spec.freqs.shape != freqs.shape or not np.allclose(
            spec.freqs, freqs
        ):
            raise AnalysisError("spectra have mismatched frequency axes")
    power = np.mean([spec.amps**2 for spec in spectra], axis=0)
    return Spectrum(freqs=freqs, amps=np.sqrt(power))


def resample_spectrum(
    spectrum: Spectrum,
    f_lo: float = 0.0,
    f_hi: float = 120e6,
    n_points: int = 2000,
) -> Spectrum:
    """Map a spectrum onto a uniform display grid.

    Reproduces the instrument setting in Section VI-D: "Each trace spans
    a frequency band from DC to 120 MHz, populated with 2000 sample
    points".  Each display point uses a positive-peak detector over its
    frequency bucket (as a real spectrum analyzer does), so narrow
    spectral lines are never lost between display points; buckets
    without a native bin interpolate in the power domain.
    """
    grid, amps = resample_spectra(
        spectrum.freqs, spectrum.amps[None, :], f_lo, f_hi, n_points
    )
    return Spectrum(freqs=grid, amps=amps[0])


def resample_spectra(
    freqs: np.ndarray,
    amps: np.ndarray,
    f_lo: float = 0.0,
    f_hi: float = 120e6,
    n_points: int = 2000,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched :func:`resample_spectrum` over an amplitude stack.

    ``amps`` is ``(n_spectra, n_bins)`` sharing one native frequency
    axis; the display grid, bucket assignment and in-band mask are
    computed once for the whole stack.  Returns ``(grid, out)`` with
    ``out`` of shape ``(n_spectra, n_points)``.
    """
    if f_hi <= f_lo:
        raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
    if n_points < 2:
        raise AnalysisError("display grid needs at least two points")
    if f_hi > freqs[-1] * (1 + 1e-9):
        raise AnalysisError(
            f"band edge {f_hi/1e6:.1f} MHz beyond Nyquist "
            f"{freqs[-1]/1e6:.1f} MHz"
        )
    amps = np.asarray(amps, dtype=float)
    if amps.ndim != 2:
        raise AnalysisError("resample_spectra expects a 2-D amplitude stack")
    grid = np.linspace(f_lo, f_hi, n_points)
    native_power = amps**2
    power = np.empty((amps.shape[0], n_points))
    for index, row in enumerate(native_power):
        power[index] = np.interp(grid, freqs, row)
    # Positive-peak detection: assign every native bin to its nearest
    # display bucket and keep the bucket maximum.
    spacing = (f_hi - f_lo) / (n_points - 1)
    in_band = (freqs >= f_lo - spacing / 2) & (freqs <= f_hi + spacing / 2)
    buckets = np.clip(
        np.round((freqs[in_band] - f_lo) / spacing).astype(int),
        0,
        n_points - 1,
    )
    rows = np.arange(amps.shape[0])[:, None]
    np.maximum.at(power, (rows, buckets[None, :]), native_power[:, in_band])
    return grid, np.sqrt(power)


def band_slice(spectrum: Spectrum, f_lo: float, f_hi: float) -> Spectrum:
    """Return the sub-spectrum with ``f_lo <= f <= f_hi``."""
    if f_hi <= f_lo:
        raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
    mask = (spectrum.freqs >= f_lo) & (spectrum.freqs <= f_hi)
    if not mask.any():
        raise AnalysisError("band contains no spectrum bins")
    return Spectrum(freqs=spectrum.freqs[mask], amps=spectrum.amps[mask])


def spectrum_dbuv(samples: np.ndarray, fs: float) -> np.ndarray:
    """Shorthand: one-sided spectrum of ``samples`` in dBuV."""
    return amplitude_spectrum(samples, fs).db()


def coherent_gain(window: np.ndarray) -> float:
    """Coherent gain of a window (mean of its samples)."""
    window = np.asarray(window, dtype=float)
    return float(window.mean())


def pick_peaks(
    spectrum: Spectrum,
    n_peaks: int,
    min_separation_hz: float,
    exclude: Iterable[float] = (),
    exclusion_hz: float = 0.0,
) -> list[int]:
    """Greedy spectral peak picking.

    Returns bin indices of the ``n_peaks`` largest local maxima that are
    at least ``min_separation_hz`` apart and not within ``exclusion_hz``
    of any frequency in ``exclude`` (used to mask the clock harmonics
    themselves when hunting for Trojan sidebands).
    """
    amps = spectrum.amps.copy()
    freqs = spectrum.freqs
    for masked in exclude:
        amps[np.abs(freqs - masked) <= exclusion_hz] = 0.0
    picked: list[int] = []
    for _ in range(n_peaks):
        index = int(np.argmax(amps))
        if amps[index] <= 0.0:
            break
        picked.append(index)
        amps[np.abs(freqs - freqs[index]) < min_separation_hz] = 0.0
    return picked
