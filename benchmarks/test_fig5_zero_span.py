"""Figure 5 — zero-span time-domain identification at 48 MHz.

Paper: the time-domain waveforms of the prominent sideband
differentiate all four Trojans "without full supervision".
"""

import pytest

from repro.experiments.fig5 import format_fig5, run_fig5


def test_fig5_zero_span(benchmark, ctx):
    result = benchmark.pedantic(lambda: run_fig5(ctx), rounds=1, iterations=1)
    assert result.f_probe == pytest.approx(48e6)
    # All four Trojans correctly identified from their envelopes.
    assert result.identification_accuracy == 1.0
    # The envelope signatures match the physical stories.
    feats = {name: panel.features for name, panel in result.panels.items()}
    assert feats["T1"].dominant_freq == pytest.approx(750e3, rel=0.3)
    assert feats["T2"].dominant_freq == pytest.approx(1.5e6, rel=0.3)
    assert feats["T1"].autocorr_peak > 0.8  # smooth periodic carrier
    assert feats["T2"].autocorr_peak > 0.8  # periodic plaintext gating
    assert feats["T4"].autocorr_peak < 0.4  # aperiodic droop envelope
    print()
    print(format_fig5(result))
