"""Table I — comparison of EM side-channel methods.

Paper rows: detection rate (Low/High/Low/High), localization
(No/No/No/Yes), measurements (>10,000 / 100 / >10,000 / <10), SNR
(14.3 / N/A / 30.5 / 41.0 dB), run-time (No/No/Yes/Yes).
"""

from repro.experiments.table1 import format_table1, run_table1


def test_table1_comparison(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_table1(ctx, n_traces=8), rounds=1, iterations=1
    )
    reports = result.reports

    # Localization / run-time columns are structural.
    assert reports["psa"].localization
    assert not reports["external_probe"].localization
    assert not reports["backscatter"].localization
    assert not reports["single_coil"].localization
    assert reports["psa"].runtime and reports["single_coil"].runtime
    assert not reports["external_probe"].runtime

    # Measurement counts: PSA <10; probe and coil orders of magnitude
    # above; backscattering in between.
    assert reports["psa"].worst_n_required < 10
    assert reports["external_probe"].worst_n_required > 1000
    assert reports["single_coil"].worst_n_required > 100
    assert result.measurement_ordering_holds()

    # Detection-rate labels: the PSA catches everything including the
    # 329-cell T3; the low-SNR methods do not.
    assert reports["psa"].rate_label() == "High"
    assert reports["psa"].mean_detection_rate == 1.0
    assert reports["external_probe"].outcomes["T3"].detection_rate < 0.5
    assert reports["single_coil"].outcomes["T3"].detection_rate < 0.5

    # SNR column ordering.
    assert reports["psa"].snr_db > reports["single_coil"].snr_db
    assert reports["single_coil"].snr_db > reports["external_probe"].snr_db
    print()
    print(format_table1(result))
