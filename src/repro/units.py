"""Physical constants and unit helpers.

The library uses strict SI units internally (meters, seconds, volts,
amperes, ohms, henries, webers).  The constants below make intent
explicit at call sites: ``length = 333 * units.UM`` reads better than a
bare ``333e-6``.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants (SI).
# ---------------------------------------------------------------------------

#: Vacuum permeability [H/m].
MU0 = 4.0e-7 * math.pi

#: Boltzmann constant [J/K].
KB = 1.380649e-23

#: Elementary charge [C].
Q_E = 1.602176634e-19

#: Absolute zero offset [K] for Celsius conversion.
ZERO_CELSIUS_K = 273.15

# ---------------------------------------------------------------------------
# Scale prefixes (multiply to convert INTO SI base units).
# ---------------------------------------------------------------------------

MM = 1e-3
UM = 1e-6
NM = 1e-9

MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

MV = 1e-3
UV = 1e-6
NV = 1e-9

MA = 1e-3
UA = 1e-6
NA = 1e-9

PF = 1e-12
FF = 1e-15

KOHM = 1e3

NH = 1e-9
PH = 1e-12


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return temperature_c + ZERO_CELSIUS_K


def kelvin_to_celsius(temperature_k: float) -> float:
    """Convert a Kelvin temperature to Celsius."""
    return temperature_k - ZERO_CELSIUS_K


def db(ratio: float) -> float:
    """Return ``20*log10(ratio)`` — amplitude ratio expressed in dB.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"amplitude ratio must be positive, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def db_power(ratio: float) -> float:
    """Return ``10*log10(ratio)`` — power ratio expressed in dB."""
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(value_db: float) -> float:
    """Invert :func:`db`: dB back to an amplitude ratio."""
    return 10.0 ** (value_db / 20.0)


def from_db_power(value_db: float) -> float:
    """Invert :func:`db_power`: dB back to a power ratio."""
    return 10.0 ** (value_db / 10.0)
