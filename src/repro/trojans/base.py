"""Common Trojan machinery.

Modeling rationale
------------------
All four Trojans tap AES-core signals (key wires, state bits, round
strobes), so while active their switching is synchronous with the AES
block structure: bursts aligned to the rounds of each 11-cycle block.
That block-synchronous burst pattern is what amplitude-modulates the
clock-harmonic comb and produces the sideband components the paper
observes at 48 MHz and 84 MHz (33 MHz + 15 MHz and 99 MHz - 15 MHz,
where 15 MHz is the 5th harmonic of the 3 MHz block rate).

On top of that shared round-synchronous pattern, each Trojan imposes its
own slower envelope — a 750 kHz carrier for T1, plaintext-gated blocks
for T2, a PN chip sequence for T3, a quasi-constant elevated level for
T4 — which is exactly what the zero-span identification step recovers
(Figure 5).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import WorkloadError
from ..netlist.builder import TABLE2_TROJANS

#: Harmonic of the block rate that carries the Trojan sidebands
#: (5 * 3 MHz = 15 MHz -> sidebands at 48 MHz and 84 MHz).
SIDEBAND_BLOCK_HARMONIC = 5

#: Cell counts of Trojan variants beyond the paper's Table II (the
#: always-on family of :mod:`repro.trojans.always_on` registers here).
#: Kept separate from :data:`~repro.netlist.builder.TABLE2_TROJANS` so
#: the paper's gate-count accounting (Table II, netlist inventory) is
#: untouched by model extensions.
EXTENDED_TROJAN_CELLS: Dict[str, int] = {}


@dataclass(frozen=True)
class CycleContext:
    """Everything a Trojan may observe in one clock cycle.

    Attributes
    ----------
    cycle:
        Absolute cycle index within the simulation.
    block:
        AES block index being processed.
    phase:
        Cycle position within the block (0 = load cycle).
    block_cycles:
        Cycles per block (11).
    time_s:
        Absolute time of the cycle's rising edge [s].
    plaintext:
        The 16-byte plaintext of the current block.
    key_hd:
        Hamming distance between the round keys active in this cycle
        and the previous one (0..128).
    aes_norm:
        Main-circuit activity this cycle, normalized to its trace
        maximum (0..1); used for supply-droop coupling.
    """

    cycle: int
    block: int
    phase: int
    block_cycles: int
    time_s: float
    plaintext: bytes
    key_hd: int
    aes_norm: float


def block_pattern(phase: int, block_cycles: int) -> float:
    """Round-synchronous burst weight for a cycle within a block.

    A raised cosine at the :data:`SIDEBAND_BLOCK_HARMONIC`-th harmonic
    of the block rate; its discrete spectrum concentrates the Trojan
    energy at 15 MHz offsets from the clock harmonics.
    """
    angle = 2.0 * math.pi * SIDEBAND_BLOCK_HARMONIC * phase / block_cycles
    return 0.5 * (1.0 + math.cos(angle))


class Trojan(ABC):
    """Base class for the four hardware Trojans.

    Parameters
    ----------
    enabled:
        External enable (the paper adds external enable signals to the
        always-on Trojans T3/T4 for experiments; T1/T2 carry their own
        trigger logic and ignore late enables only in the sense that
        their trigger condition must also hold).

    Notes
    -----
    Subclasses implement :meth:`is_active` (trigger state) and
    :meth:`payload_toggles` (cell toggles while active).  The small
    always-present trigger-circuit activity is modeled by
    :meth:`trigger_toggles` so an *inactive* Trojan is almost — but not
    exactly — invisible, as in the paper.
    """

    #: Trojan name; must match a Table II column or a registered
    #: :data:`EXTENDED_TROJAN_CELLS` variant.
    name: str = ""

    #: Which clock edge launches the payload's switching: "falling"
    #: (opposite phase to the main logic — typical for trigger-gated
    #: payloads strobing off the inverted clock) or "rising"
    #: (synchronous with the main logic).
    clock_phase: str = "falling"

    #: Floorplan module hosting this Trojan's cells.  None means the
    #: Trojan has its own placement under its ``name`` (T1..T4);
    #: variants without a dedicated rect name the host module they are
    #: fabricated into instead.
    site: Optional[str] = None

    def __init__(self, enabled: bool = False):
        cells = TABLE2_TROJANS.get(self.name)
        if cells is None:
            cells = EXTENDED_TROJAN_CELLS.get(self.name)
        if cells is None:
            raise WorkloadError(
                f"Trojan class {type(self).__name__} has invalid name "
                f"{self.name!r}"
            )
        self.enabled = enabled
        self.n_cells = cells

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Reset internal trigger state (counters, match latches)."""

    # -- per-cycle behaviour ---------------------------------------------------

    @abstractmethod
    def is_active(self, ctx: CycleContext) -> bool:
        """Whether the payload is switching in this cycle."""

    @abstractmethod
    def payload_toggles(self, ctx: CycleContext) -> float:
        """Payload cell toggles in this cycle (given the Trojan is active)."""

    def trigger_toggles(self, ctx: CycleContext) -> float:
        """Trigger-circuit toggles in this cycle (always present).

        Default: a few cells' worth of counter/comparator activity —
        negligible against the 22k-cell main circuit, which is why an
        inactive Trojan's spectrum matches the Trojan-free one.
        """
        return 2.0

    def toggles(self, ctx: CycleContext) -> float:
        """Total Trojan toggles this cycle."""
        total = self.trigger_toggles(ctx)
        if self.is_active(ctx):
            total += self.payload_toggles(ctx)
        return total

    # -- metadata ------------------------------------------------------------

    @property
    def always_on(self) -> bool:
        """True for Trojans without an internal trigger (T3, T4)."""
        return False

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"{type(self).__name__}(name={self.name}, {state})"


class ExternallyEnabledTrojan(Trojan):
    """Always-on Trojan gated only by the external enable signal."""

    @property
    def always_on(self) -> bool:
        return True

    def is_active(self, ctx: CycleContext) -> bool:
        return self.enabled
