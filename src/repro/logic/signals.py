"""Wires and logic values for the event-driven simulator."""

from __future__ import annotations

from typing import List

from ..errors import LogicSimulationError

#: Logic low.
LOW = 0
#: Logic high.
HIGH = 1
#: Unresolved value (before the first assignment reaches a wire).
UNKNOWN = -1

_VALID_DRIVES = (LOW, HIGH)


class Wire:
    """A single-bit net.

    Attributes
    ----------
    name:
        Diagnostic name.
    value:
        Current logic value (``LOW``, ``HIGH`` or ``UNKNOWN``).
    fanout:
        Gate indices (into the simulator's gate list) re-evaluated when
        this wire changes.
    """

    __slots__ = ("name", "value", "fanout")

    def __init__(self, name: str):
        self.name = name
        self.value = UNKNOWN
        self.fanout: List[int] = []

    def drive(self, value: int) -> bool:
        """Set the wire value; return True if it changed.

        Raises
        ------
        LogicSimulationError
            If the value is not LOW/HIGH.
        """
        if value not in _VALID_DRIVES:
            raise LogicSimulationError(
                f"wire {self.name!r} driven with invalid value {value!r}"
            )
        changed = value != self.value
        self.value = value
        return changed

    def __repr__(self) -> str:
        symbol = {LOW: "0", HIGH: "1", UNKNOWN: "x"}[self.value]
        return f"Wire({self.name}={symbol})"


def bus_value(wires: List[Wire]) -> int:
    """Interpret ``wires`` (LSB first) as an unsigned integer.

    Raises
    ------
    LogicSimulationError
        If any bit is still UNKNOWN.
    """
    value = 0
    for bit, wire in enumerate(wires):
        if wire.value == UNKNOWN:
            raise LogicSimulationError(
                f"bus bit {wire.name!r} is unresolved (x)"
            )
        value |= wire.value << bit
    return value


def drive_bus(wires: List[Wire], value: int) -> List[Wire]:
    """Drive an unsigned integer onto ``wires`` (LSB first).

    Returns the wires whose value changed.
    """
    if value < 0 or value >= (1 << len(wires)):
        raise LogicSimulationError(
            f"value {value} does not fit in {len(wires)} bits"
        )
    changed = []
    for bit, wire in enumerate(wires):
        if wire.drive((value >> bit) & 1):
            changed.append(wire)
    return changed
