"""The detect→identify→localize escalation pipeline.

The paper's run-time flow as an explicit state machine over a
:class:`~repro.runtime.sources.TraceStream`:

* **MONITOR** — every window of every monitored stream is featurized
  in one vectorized pass (optional RASC ADC front-end, batched display
  spectra, the detector's spectral reduction) and folded through the
  configured :mod:`repro.detectors` method — the rolling-Welford
  self-baseline by default, or a reference-free method selected via
  ``PipelineConfig.detector_name`` / ``repro monitor --detector``.
* **IDENTIFY** — on the first debounced alarm the pipeline switches to
  the time domain: the alarming window's zero-span envelope goes
  through the :class:`~repro.core.analysis.identifier.TrojanIdentifier`
  rule template.
* **LOCALIZE** — if the stream can take new measurements (live
  sources), the batched :class:`~repro.core.analysis.localizer.Localizer`
  runs the score map + quadrant refinement and the machine returns to
  MONITOR for the rest of the stream.

Every stage emits typed :mod:`~repro.runtime.events` onto the bus, so
a session is fully auditable from its JSONL log alone.

Determinism: escalation never touches detector state, and every
per-window feature is an elementwise function of that window's
samples, so the full decision timeline is bit-identical at any chunk
size — the property ``tests/test_runtime_stream.py`` pins against the
one-shot offline render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..config import SimConfig
from ..core.analysis.detector import DetectorConfig
from ..core.analysis.identifier import IdentificationResult, TrojanIdentifier
from ..core.analysis.localizer import LocalizationResult, Localizer
from ..core.analysis.mttd import MttdModel, MttdResult, mttd_from_alarm
from ..core.analysis.spectral import (
    sideband_display_bins,
    sideband_features_db,
    sideband_frequencies,
)
from ..detectors import Detector, make_detector
from ..detectors import available as detectors_available
from ..errors import AnalysisError, unknown_name_error
from ..instruments.adc import AdcSpec, quantize_batch
from ..instruments.rasc import AUTO_RANGE_HEADROOM, RASC_ADC
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..report import ReportBase, Severity
from .events import (
    Alarm,
    EventBus,
    MonitorState,
    StateChanged,
    TrojanIdentified,
    TrojanLocalized,
    WindowProcessed,
)
from .sources import StreamChunk, TraceStream
from .timeline import WindowTimeline


def chunk_features(
    chunk: StreamChunk,
    analyzer: SpectrumAnalyzer,
    config: SimConfig,
    adc: Optional[AdcSpec] = None,
    detector: Optional[Detector] = None,
) -> np.ndarray:
    """Featurize one chunk; ``(n_streams, k)`` detection features [dB].

    Optional auto-ranged ADC quantization (the RASC front-end), then
    one batched display-spectrum + feature pass through the detector's
    spectral reduction (the absolute sideband level when ``detector``
    is None — the historical ``welford`` path).  Every element is a
    function of that window's samples alone, so the result is
    independent of how the stream was chunked.

    Only the display bins the detector's feature actually reads are
    resampled (a few percent of the grid); the values are
    bit-identical to featurizing the full display, see
    :func:`~repro.core.analysis.spectral.sideband_display_bins` /
    :func:`~repro.core.analysis.spectral.excess_display_bins`.
    """
    samples = chunk.samples
    if adc is not None:
        samples = quantize_batch(samples, adc, headroom=AUTO_RANGE_HEADROOM)
    n_streams, k, n_samples = samples.shape
    if detector is None:
        bins = sideband_display_bins(analyzer.display_grid(), config)
    else:
        bins = detector.display_bins(analyzer.display_grid(), config)
    grid, display = analyzer.display_bins(
        samples.reshape(-1, n_samples), chunk.fs, bins
    )
    if detector is None:
        features = sideband_features_db(grid, display, config)
    else:
        features = detector.features(grid, display, config)
    return features.reshape(n_streams, k)


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning of one escalation pipeline.

    Attributes
    ----------
    detector:
        Rolling-Welford detector tuning (warm-up, z-threshold,
        debounce) shared by every monitored stream; consumed by the
        ``welford`` method (reference-free methods carry their own
        calibrated defaults).
    detector_name:
        Registered detection method driving the MONITOR stage (see
        :mod:`repro.detectors`).
    quantize:
        Pass windows through the RASC monitor's auto-ranged ADC before
        feature extraction (the deployed-monitor condition).
    adc:
        The converter used when ``quantize`` is on.
    identify:
        Run the IDENTIFY stage on the first debounced alarm.
    localize:
        Run the LOCALIZE stage after identification (requires a
        localizer and a stream that can re-measure).
    localize_records:
        Activity records per population for the LOCALIZE stage.
    escalate_once:
        Only the first alarm escalates; later alarms are logged as
        events but keep the machine in MONITOR.  (The deployed flow:
        once a Trojan is identified and localized, the verdict stands
        and monitoring continues.)
    mttd:
        Per-window timing model for latency accounting.
    """

    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(warmup=6)
    )
    detector_name: str = "welford"
    quantize: bool = True
    adc: AdcSpec = RASC_ADC
    identify: bool = True
    localize: bool = True
    localize_records: int = 2
    escalate_once: bool = True
    mttd: MttdModel = field(default_factory=MttdModel)

    def __post_init__(self) -> None:
        if self.localize_records < 1:
            raise AnalysisError("localize_records must be >= 1")
        if self.detector_name not in detectors_available():
            raise unknown_name_error(
                "detector", self.detector_name, detectors_available()
            )


@dataclass(frozen=True)
class MonitorReport(ReportBase):
    """Everything one monitoring session concluded.

    Renders through the shared :class:`~repro.report.ReportBase`
    surface — the serve service's ``/chips/<id>/report`` endpoint is
    exactly :meth:`to_json`, not a third formatter.

    Attributes
    ----------
    chip:
        Identity of the monitored chip.
    sensors:
        Sensor index per monitored stream.
    n_windows:
        Windows processed.
    trace_period_s:
        Capture + processing cadence [s].
    features_db:
        Feature timeline, shape ``(n_streams, n_windows)``.
    window_times_s:
        Verdict timestamp per window [s].
    alarms:
        Every alarming window index.
    first_alarm:
        First alarming window (None = silent).
    trigger_index:
        Scripted/recovered activation window (None = unknown).
    mttd:
        Activation-to-alarm latency (None when the trigger is unknown).
    identification:
        IDENTIFY stage outcome (None if never escalated).
    localization:
        LOCALIZE stage outcome (None if unavailable or not escalated).
    escalations:
        Completed escalation sequences.
    final_state:
        State machine position when the stream ended.
    event_counts:
        Events this session emitted per type (the session's own
        counters even on a fleet-shared bus).
    detector:
        Registered detection method that drove the MONITOR stage.
    """

    chip: str
    sensors: Tuple[int, ...]
    n_windows: int
    trace_period_s: float
    features_db: np.ndarray
    window_times_s: Tuple[float, ...]
    alarms: Tuple[int, ...]
    first_alarm: Optional[int]
    trigger_index: Optional[int]
    mttd: Optional[MttdResult]
    identification: Optional[IdentificationResult]
    localization: Optional[LocalizationResult]
    escalations: int
    final_state: str
    event_counts: dict
    detector: str = "welford"

    report_kind = "monitor"

    @property
    def detected(self) -> bool:
        """An alarm fired at/after the scripted activation."""
        return bool(self.mttd and self.mttd.detected)

    def severities(self):
        """One finding — this chip — with deployment semantics."""
        if self.detected:
            yield Severity.CRITICAL
        elif self.mttd is not None and self.mttd.false_alarm:
            yield Severity.WARNING
        elif self.mttd is None and self.first_alarm is not None:
            # No scripted trigger to grade against: any alarm on an
            # unannotated stream still deserves operator attention.
            yield Severity.CRITICAL
        else:
            yield Severity.OK

    def to_dict(self) -> dict:
        """JSON-ready session summary (the serve report payload).

        The per-window feature matrix stays out — transcripts of
        window-level detail are the event log's job — but every
        verdict, latency and escalation outcome is here.
        """
        mttd = None
        if self.mttd is not None:
            mttd = {
                "detected": self.mttd.detected,
                "false_alarm": self.mttd.false_alarm,
                "traces_to_detect": self.mttd.traces_to_detect,
                "mttd_s": self.mttd.mttd_s,
            }
        identification = None
        if self.identification is not None:
            identification = {
                "label": self.identification.label,
                "f_probe_hz": self.identification.f_probe,
            }
        localization = None
        if self.localization is not None:
            localization = {
                "sensor": self.localization.sensor_index,
                "quadrant": self.localization.quadrant,
                "position_m": [float(p) for p in self.localization.position],
                "margin_db": float(self.localization.margin_db),
            }
        return {
            "chip": self.chip,
            "detector": self.detector,
            "sensors": list(self.sensors),
            "n_windows": self.n_windows,
            "trace_period_s": self.trace_period_s,
            "alarms": list(self.alarms),
            "first_alarm": self.first_alarm,
            "trigger_index": self.trigger_index,
            "detected": self.detected,
            "mttd": mttd,
            "identification": identification,
            "localization": localization,
            "escalations": self.escalations,
            "final_state": self.final_state,
            "event_counts": dict(self.event_counts),
        }

    def format(self) -> str:
        """One-chip plain-text session summary."""
        alarm = "-" if self.first_alarm is None else str(self.first_alarm)
        mttd = "-"
        if self.mttd is not None and self.mttd.mttd_s is not None:
            mttd = f"{1e3 * self.mttd.mttd_s:.2f} ms"
        ident = "-" if self.identification is None else self.identification.label
        lines = [
            f"chip {self.chip}: {self.n_windows} windows, "
            f"detector {self.detector}, final state {self.final_state}",
            f"  alarms: {len(self.alarms)} (first @ {alarm}) | "
            f"MTTD {mttd} | identified {ident} | "
            f"escalations {self.escalations}",
        ]
        if self.localization is not None:
            x, y = self.localization.position
            lines.append(
                f"  localized: sensor {self.localization.sensor_index} "
                f"quadrant {self.localization.quadrant or '-'} at "
                f"({1e6 * x:.0f}, {1e6 * y:.0f}) um "
                f"(margin {self.localization.margin_db:.1f} dB)"
            )
        return "\n".join(lines)

    def state_at(self, window: int, warmup: int) -> str:
        """Human-readable monitor state of one window of the timeline.

        The same labeling ladder as
        :meth:`repro.instruments.rasc.RascReport.state_at`, with the
        report's own trigger index — display drivers (the example, ad
        hoc dashboards) should use this instead of re-deriving the
        warm-up/trigger/alarm precedence.
        """
        if window < warmup:
            return "warm-up"
        if window in self.alarms:
            return "ALARM"
        trigger = self.trigger_index
        if trigger is None or window < trigger:
            return "armed, quiet"
        return "TROJAN ACTIVE"


class EscalationPipeline:
    """One chip's streaming monitor: the run-time state machine.

    Parameters
    ----------
    config:
        Simulation config of the monitored chip (feature bookkeeping
        and timing).
    n_streams:
        Monitored feature streams (must match the stream source).
    pipeline:
        Stage tuning.
    analyzer:
        Spectrum analyzer model shared by every stage.
    identifier:
        Zero-span classifier for the IDENTIFY stage (built from the
        analyzer and the config's first sideband by default).
    localizer:
        Batched localizer for the LOCALIZE stage; None disables it
        (e.g. replay-only deployments without array access).
    bus:
        Event bus; a fresh private bus by default.
    chip:
        Chip identity stamped onto every event.
    """

    def __init__(
        self,
        config: SimConfig,
        n_streams: int = 1,
        pipeline: Optional[PipelineConfig] = None,
        analyzer: Optional[SpectrumAnalyzer] = None,
        identifier: Optional[TrojanIdentifier] = None,
        localizer: Optional[Localizer] = None,
        bus: Optional[EventBus] = None,
        chip: str = "chip0",
    ):
        if n_streams < 1:
            raise AnalysisError("need at least one monitored stream")
        self.config = config
        self.n_streams = n_streams
        self.pipeline = pipeline or PipelineConfig()
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.identifier = identifier or TrojanIdentifier(
            self.analyzer, f_probe=sideband_frequencies(config)[0]
        )
        self.localizer = localizer
        self.bus = bus or EventBus()
        self.chip = chip
        self.state = MonitorState.MONITOR
        self._bank = make_detector(
            self.pipeline.detector_name, n_streams, self.pipeline.detector
        )
        self._timeline = WindowTimeline(
            self.pipeline.mttd.trace_period(config), n_streams
        )
        self._sensors: Tuple[int, ...] = tuple(range(n_streams))
        self._identification: Optional[IdentificationResult] = None
        self._localization: Optional[LocalizationResult] = None
        self._escalations = 0
        self._source: Optional[TraceStream] = None
        self._event_counts: dict = {}

    def time_of(self, window: int) -> float:
        """Session time of one window's verdict [s].

        The timestamp schedulers stamp onto events they emit *about*
        this pipeline (backpressure, shedding) so a mixed transcript
        stays on one clock.
        """
        return self._timeline.time_of(window)

    def _emit(self, event) -> None:
        """Emit onto the bus, counting this pipeline's own events.

        The bus may be shared fleet-wide, so the per-session counters
        in :attr:`MonitorReport.event_counts` are kept here, not on
        the bus.
        """
        name = type(event).__name__
        self._event_counts[name] = self._event_counts.get(name, 0) + 1
        self.bus.emit(event)

    # -- state machine --------------------------------------------------------

    def _transition(self, new_state: MonitorState, window: int) -> None:
        previous = self.state
        self.state = new_state
        self._emit(
            StateChanged(
                chip=self.chip,
                window=window,
                time_s=self._timeline.time_of(window),
                previous=previous.value,
                current=new_state.value,
            )
        )

    def _escalate(self, chunk: StreamChunk, offset: int, window: int) -> None:
        """Run IDENTIFY (and LOCALIZE) for the alarming window."""
        time_s = self._timeline.time_of(window)
        if self.pipeline.identify:
            self._transition(MonitorState.IDENTIFY, window)
            # Identify from the alarming stream's raw window (the
            # zero-span stage runs on the analyzer, not the ADC path).
            stream = int(self._alarm_stream)
            result = self.identifier.classify(chunk.trace(stream, offset))
            self._identification = result
            self._emit(
                TrojanIdentified(
                    chip=self.chip,
                    window=window,
                    time_s=time_s,
                    label=result.label,
                    f_probe_hz=result.f_probe,
                    autocorr_peak=result.features.autocorr_peak,
                    dominant_freq_hz=result.features.dominant_freq,
                )
            )
        records = None
        if (
            self.pipeline.localize
            and self.localizer is not None
            and self._source is not None
        ):
            records = self._source.localization_records(
                self.pipeline.localize_records
            )
        if records is not None:
            self._transition(MonitorState.LOCALIZE, window)
            base_records, active_records = records
            result = self.localizer.localize(
                base_records, active_records, refine=True
            )
            self._localization = result
            self._emit(
                TrojanLocalized(
                    chip=self.chip,
                    window=window,
                    time_s=time_s,
                    sensor=result.sensor_index,
                    quadrant=result.quadrant,
                    position_m=tuple(result.position),
                    margin_db=result.margin_db,
                )
            )
        self._escalations += 1
        self._transition(MonitorState.MONITOR, window)

    # -- window processing ----------------------------------------------------

    def process_chunk(self, chunk: StreamChunk) -> None:
        """Fold one chunk of windows through the state machine.

        Features for the whole chunk are extracted in one vectorized
        pass; decisions are inherently sequential (each conditions the
        next self-baseline), so the fold walks the windows in order,
        escalating in-line when an alarm fires.
        """
        if chunk.n_streams != self.n_streams:
            raise AnalysisError(
                f"chunk has {chunk.n_streams} streams, pipeline monitors "
                f"{self.n_streams}"
            )
        features = chunk_features(
            chunk,
            self.analyzer,
            self.config,
            adc=self.pipeline.adc if self.pipeline.quantize else None,
            detector=self._bank,
        )
        for offset in range(chunk.n_windows):
            window = chunk.start + offset
            step = self._bank.step(features[:, offset])
            fired = bool(step.alarm.any())
            recorded = self._timeline.push(features[:, offset], fired)
            if recorded != window:
                raise AnalysisError(
                    f"stream discontinuity: expected window {recorded}, "
                    f"chunk says {window}"
                )
            time_s = self._timeline.time_of(window)
            self._emit(
                WindowProcessed(
                    chip=self.chip,
                    window=window,
                    time_s=time_s,
                    scenario=chunk.scenarios[offset],
                    features_db=tuple(float(f) for f in features[:, offset]),
                    z=tuple(
                        float(z) if np.isfinite(z) else None for z in step.z
                    ),
                    alarm=fired,
                )
            )
            if not fired:
                continue
            # The alarming stream with the strongest evidence leads
            # the escalation (a fleet-of-sensors monitor can trip on
            # several streams in the same window).
            scored = np.where(step.alarm, np.abs(step.z), -np.inf)
            stream = int(np.argmax(scored))
            self._alarm_stream = stream
            # An alarm escalates only when some stage can actually run
            # (a MONITOR-only tuning must not burn the session's one
            # escalation on a no-op or log phantom transitions).
            escalating = (
                self._escalations == 0 or not self.pipeline.escalate_once
            ) and (
                self.pipeline.identify
                or (self.pipeline.localize and self.localizer is not None)
            )
            self._emit(
                Alarm(
                    chip=self.chip,
                    window=window,
                    time_s=time_s,
                    sensor=self._sensors[stream],
                    feature_db=float(features[stream, offset]),
                    z=float(step.z[stream]),
                    escalating=escalating,
                )
            )
            if escalating:
                self._escalate(chunk, offset, window)

    def bind(self, source: TraceStream) -> None:
        """Attach a stream source (escalation pulls records from it).

        Called by :meth:`run`; schedulers that drive the pipeline
        chunk-by-chunk (the fleet) bind explicitly before the first
        :meth:`process_chunk`.
        """
        if source.n_streams != self.n_streams:
            raise AnalysisError(
                f"source has {source.n_streams} streams, pipeline monitors "
                f"{self.n_streams}"
            )
        self._source = source
        self._sensors = tuple(
            getattr(source, "sensors", range(self.n_streams))
        )

    def run(self, source: TraceStream) -> MonitorReport:
        """Monitor a stream end to end; returns the session report."""
        self.bind(source)
        for chunk in source.chunks():
            self.process_chunk(chunk)
        return self.report(trigger_index=source.trigger_index)

    def report(self, trigger_index: Optional[int] = None) -> MonitorReport:
        """Snapshot the session so far as a :class:`MonitorReport`."""
        first_alarm = self._timeline.first_alarm
        mttd = None
        if trigger_index is not None:
            mttd = mttd_from_alarm(
                first_alarm, trigger_index, self.config, self.pipeline.mttd
            )
        features = self._timeline.features_matrix()
        features.flags.writeable = False
        return MonitorReport(
            chip=self.chip,
            sensors=self._sensors,
            n_windows=self._timeline.n_windows,
            trace_period_s=self._timeline.trace_period_s,
            features_db=features,
            window_times_s=self._timeline.window_times_s,
            alarms=self._timeline.alarms,
            first_alarm=first_alarm,
            trigger_index=trigger_index,
            mttd=mttd,
            identification=self._identification,
            localization=self._localization,
            escalations=self._escalations,
            final_state=self.state.value,
            event_counts=dict(self._event_counts),
            detector=self.pipeline.detector_name,
        )
