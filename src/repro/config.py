"""Global simulation configuration.

A single frozen :class:`SimConfig` instance threads through the whole
signal chain so that every module agrees on the clock frequency, the
fast-time sampling grid and the trace length.

Defaults reproduce the paper's test setup: a 33 MHz crystal clock, an
AES-128-LUT core that spends 11 cycles per block (10 rounds + load), and
a trace window that is an integer number of blocks so that the clock
harmonics and the Trojan sidebands land exactly on FFT bins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from .errors import ConfigError
from .units import MHZ

#: Execution backends of the measurement engine.  Canonical here (the
#: lowest layer that needs the names) so config validation and the
#: CLI/backends cannot drift apart.
BACKEND_NAMES = ("serial", "process", "shared")

#: Render output precisions of the measurement engine.  ``float64`` is
#: the bit-exact reference; ``float32`` is an opt-in fast path (half
#: the spectrum/sample traffic, single-precision irFFT) pinned to a
#: tolerance instead of bit-identity.
PRECISION_NAMES = ("float64", "float32")


@dataclass(frozen=True)
class SimConfig:
    """Immutable description of one simulation setup.

    Parameters
    ----------
    f_clock:
        Main circuit clock frequency [Hz].  The paper uses a 33 MHz
        crystal oscillator.
    oversample:
        Fast-time samples per clock cycle.  16 gives fs = 528 MHz, i.e.
        a 264 MHz Nyquist frequency comfortably above the 120 MHz
        analysis band.
    n_cycles:
        Clock cycles per captured trace.  The default 528 cycles = 48
        AES blocks = 16 us, giving a 62.5 kHz FFT bin width with the
        48 MHz / 84 MHz sidebands exactly on bins.
    block_cycles:
        Clock cycles per AES-128 block (load + 10 rounds).
    vdd:
        Supply voltage [V] (0.8 - 1.2 V for TSMC 65 nm).
    temperature_c:
        Ambient temperature [Celsius].
    seed:
        Root seed for every random stream derived from this config.
    engine_backend:
        Execution backend of the measurement engine: ``"serial"``
        (in-process reference), ``"process"`` (shard trace batches
        across a worker pool) or ``"shared"`` (worker pool shipping
        inputs and rendered shards through zero-copy shared memory).
        Backends are bit-for-bit interchangeable; this only selects
        how renders are executed.
    engine_workers:
        Worker count for the ``process``/``shared`` backends
        (0 = auto).
    engine_precision:
        Render output precision: ``"float64"`` (bit-exact reference,
        the default) or ``"float32"`` (opt-in fast path, equivalent to
        the reference within a pinned tolerance — see
        ``tests/test_render_plan.py``).
    """

    f_clock: float = 33.0 * MHZ
    oversample: int = 16
    n_cycles: int = 528
    block_cycles: int = 11
    vdd: float = 1.2
    temperature_c: float = 25.0
    seed: int = 20240122
    engine_backend: str = "serial"
    engine_workers: int = 0
    engine_precision: str = "float64"

    def __post_init__(self) -> None:
        if self.f_clock <= 0:
            raise ConfigError(f"f_clock must be positive, got {self.f_clock}")
        if self.oversample < 4:
            raise ConfigError(
                "oversample must be >= 4 to resolve the current kernel, "
                f"got {self.oversample}"
            )
        if self.oversample % 2:
            raise ConfigError(
                "oversample must be even so the Trojan half-cycle phase "
                f"offset is an integer number of samples, got {self.oversample}"
            )
        if self.n_cycles < self.block_cycles:
            raise ConfigError(
                f"n_cycles ({self.n_cycles}) must cover at least one AES "
                f"block ({self.block_cycles} cycles)"
            )
        if self.block_cycles <= 0:
            raise ConfigError("block_cycles must be positive")
        if not 0.5 <= self.vdd <= 1.5:
            raise ConfigError(
                f"vdd {self.vdd} V outside the modeled 0.5-1.5 V range"
            )
        if not -55.0 <= self.temperature_c <= 150.0:
            raise ConfigError(
                f"temperature {self.temperature_c} C outside -55..150 C"
            )
        if self.engine_backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown engine backend {self.engine_backend!r}; "
                f"choose from {BACKEND_NAMES}"
            )
        if self.engine_workers < 0:
            raise ConfigError(
                f"engine_workers must be >= 0, got {self.engine_workers}"
            )
        if self.engine_precision not in PRECISION_NAMES:
            raise ConfigError(
                f"unknown engine precision {self.engine_precision!r}; "
                f"choose from {PRECISION_NAMES}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def t_clock(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.f_clock

    @property
    def fs(self) -> float:
        """Fast-time sampling rate [Hz]."""
        return self.f_clock * self.oversample

    @property
    def dt(self) -> float:
        """Fast-time sample spacing [s]."""
        return 1.0 / self.fs

    @property
    def n_samples(self) -> int:
        """Fast-time samples per trace."""
        return self.n_cycles * self.oversample

    @property
    def duration(self) -> float:
        """Trace duration [s]."""
        return self.n_cycles * self.t_clock

    @property
    def f_block(self) -> float:
        """AES block rate [Hz] (3 MHz with the defaults)."""
        return self.f_clock / self.block_cycles

    @property
    def n_blocks(self) -> int:
        """Whole AES blocks that fit in one trace."""
        return self.n_cycles // self.block_cycles

    @property
    def bin_width(self) -> float:
        """FFT bin width of a full-trace spectrum [Hz]."""
        return 1.0 / self.duration

    def time(self) -> np.ndarray:
        """Fast-time axis of one trace [s], shape ``(n_samples,)``."""
        return np.arange(self.n_samples) / self.fs

    def cycle_starts(self) -> np.ndarray:
        """Sample index of each clock rising edge, shape ``(n_cycles,)``."""
        return np.arange(self.n_cycles) * self.oversample

    # -- convenience --------------------------------------------------------

    def with_(self, **changes) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def iter_blocks(self) -> Iterator[range]:
        """Yield the cycle-index range of each whole AES block."""
        for block in range(self.n_blocks):
            start = block * self.block_cycles
            yield range(start, start + self.block_cycles)


#: Shared default configuration (the paper's setup).
DEFAULT_CONFIG = SimConfig()
