"""Section V-B: implementation cost of the PSA."""

from __future__ import annotations

from ..core.cost import ImplementationCost, implementation_cost
from .reporting import format_table

#: Paper figures for side-by-side reporting.
PAPER_COST = {
    "tgate_resistance_ohm": 34.0,
    "area_overhead_fraction": 0.05,
    "routing_capacity_fraction": 0.0625,
    "single_coil_routing_fraction": 1.0,
}


def run_cost() -> ImplementationCost:
    """Compute the Section V-B figures from the layout model."""
    return implementation_cost()


def format_cost(cost: ImplementationCost) -> str:
    """Render the cost comparison."""
    rows = [
        (
            "T-gate on-resistance",
            f"{cost.tgate_resistance_ohm:.1f} ohm",
            f"{PAPER_COST['tgate_resistance_ohm']:.0f} ohm",
        ),
        (
            "area overhead",
            f"{cost.area_overhead_fraction:.2%}",
            f"{PAPER_COST['area_overhead_fraction']:.0%}",
        ),
        (
            "routing capacity used (PSA)",
            f"{cost.routing_capacity_fraction:.2%}",
            f"{PAPER_COST['routing_capacity_fraction']:.2%}",
        ),
        (
            "routing capacity used (single coil)",
            f"{cost.single_coil_routing_fraction:.0%}",
            f"{PAPER_COST['single_coil_routing_fraction']:.0%}",
        ),
        (
            "power overhead (leakage / dynamic)",
            f"{cost.power_overhead_fraction:.2%}",
            "negligible",
        ),
    ]
    header = "Section V-B — implementation cost\n"
    return header + format_table(["figure", "measured", "paper"], rows)
