"""Coil synthesis on the lattice."""

import pytest

from repro.core.coil import COIL_Z, synthesize_rect_coil
from repro.core.grid import PITCH, PsaGrid
from repro.em.devices import tgate_resistance
from repro.errors import CoilSynthesisError


def test_figure_1b_two_turn_example():
    """Figure 1b shows a 2-turn coil programmed onto the lattice."""
    coil = synthesize_rect_coil("fig1b", 0, 0, size=6, turns=2)
    assert coil.n_turns == 2
    outer, inner = coil.turn_rects
    assert outer.width == pytest.approx(6 * PITCH)
    assert inner.width == pytest.approx(4 * PITCH)
    # Each turn needs its 4 corner T-gates, plus one inter-turn bridge.
    assert coil.n_tgates == 2 * 4 + 1


def test_turn_geometry_concentric():
    coil = synthesize_rect_coil("c", 4, 6, size=10, turns=3)
    for outer, inner in zip(coil.turn_rects, coil.turn_rects[1:]):
        assert inner.x0 == pytest.approx(outer.x0 + PITCH)
        assert inner.y1 == pytest.approx(outer.y1 - PITCH)


def test_wire_length_and_resistance():
    coil = synthesize_rect_coil("c", 0, 0, size=4, turns=1)
    assert coil.wire_length == pytest.approx(16 * PITCH)
    expected = 4 * tgate_resistance(1.2, 25.0)
    assert coil.resistance(1.2, 25.0) == pytest.approx(expected, rel=0.2)


def test_enclosed_area_sums_turns():
    coil = synthesize_rect_coil("c", 0, 0, size=6, turns=2)
    expected = (6 * PITCH) ** 2 + (4 * PITCH) ** 2
    assert coil.enclosed_area == pytest.approx(expected)


def test_receiver_view():
    coil = synthesize_rect_coil("c", 0, 0, size=6, turns=2)
    receiver = coil.to_receiver()
    assert receiver.name == "c"
    assert receiver.z == COIL_Z
    assert len(receiver.turns) == 2
    assert receiver.r_series == pytest.approx(coil.resistance())


def test_max_turns_enforced():
    # An 11-pitch coil supports at most 5 concentric turns.
    synthesize_rect_coil("ok", 0, 0, size=11, turns=5)
    with pytest.raises(CoilSynthesisError):
        synthesize_rect_coil("bad", 0, 0, size=11, turns=6)


def test_bounds_enforced():
    with pytest.raises(CoilSynthesisError):
        synthesize_rect_coil("bad", 30, 0, size=6, turns=1)
    with pytest.raises(CoilSynthesisError):
        synthesize_rect_coil("bad", -1, 0, size=6, turns=1)
    with pytest.raises(CoilSynthesisError):
        synthesize_rect_coil("bad", 0, 0, size=1, turns=1)


def test_programming_marks_grid():
    grid = PsaGrid()
    coil = synthesize_rect_coil("c", 2, 2, size=6, turns=2)
    coil.program(grid)
    assert grid.n_on == len(coil.crosspoints)
    for point in coil.crosspoints:
        assert grid.is_on(*point)
    coil.release(grid)
    assert grid.n_on == 0


def test_conflicting_coils_refused():
    grid = PsaGrid()
    a = synthesize_rect_coil("a", 0, 0, size=6, turns=1)
    b = synthesize_rect_coil("b", 6, 0, size=6, turns=1)  # shares a corner
    a.program(grid)
    with pytest.raises(CoilSynthesisError.__mro__[1]):  # GridProgrammingError
        b.program(grid)


def test_disjoint_coils_coexist():
    grid = PsaGrid()
    a = synthesize_rect_coil("a", 0, 0, size=6, turns=1)
    b = synthesize_rect_coil("b", 10, 10, size=6, turns=1)
    a.program(grid)
    b.program(grid)
    assert grid.owners() == {"a", "b"}
