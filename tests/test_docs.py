"""Docs-site integrity: cheap strict-build preconditions.

CI builds the site with ``mkdocs build --strict``; these checks catch
the common strict-mode failures without needing the docs toolchain
installed — every nav page exists, every mkdocstrings identifier
imports, and every relative markdown link resolves.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def _load_config() -> dict:
    # mkdocs.yml uses python-name tags in some setups; ours is plain YAML.
    return yaml.safe_load(MKDOCS_YML.read_text())


def _nav_paths(node) -> list:
    if isinstance(node, str):
        return [node]
    if isinstance(node, list):
        return [path for item in node for path in _nav_paths(item)]
    if isinstance(node, dict):
        return [path for value in node.values() for path in _nav_paths(value)]
    return []


def test_nav_pages_exist():
    config = _load_config()
    paths = _nav_paths(config["nav"])
    assert paths, "mkdocs nav is empty"
    for path in paths:
        assert (DOCS / path).is_file(), f"nav page missing: docs/{path}"


def test_mkdocstrings_identifiers_import():
    pattern = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
    found = 0
    for page in DOCS.rglob("*.md"):
        for identifier in pattern.findall(page.read_text()):
            found += 1
            parts = identifier.split(".")
            # Longest importable prefix must exist, and any remaining
            # parts must be attributes along the way.
            obj = None
            for split in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                remainder = parts[split:]
                break
            assert obj is not None, f"cannot import {identifier} ({page})"
            for attribute in remainder:
                obj = getattr(obj, attribute, None)
                assert obj is not None, (
                    f"{identifier} has no attribute {attribute!r} ({page})"
                )
    assert found >= 10, "expected an API reference with many identifiers"


def test_relative_markdown_links_resolve():
    link = re.compile(r"\]\((?!https?://|#|mailto:)([^)#\s]+)")
    for page in DOCS.rglob("*.md"):
        for target in link.findall(page.read_text()):
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page}: broken link {target}"


def test_readme_links_resolve():
    link = re.compile(r"\]\((?!https?://|#|mailto:)([^)#\s]+)")
    readme = REPO / "README.md"
    for target in link.findall(readme.read_text()):
        assert (REPO / target).exists(), f"README: broken link {target}"


def test_docs_extra_declared():
    pyproject = (REPO / "pyproject.toml").read_text()
    assert "mkdocs-material" in pyproject
    assert "mkdocstrings[python]" in pyproject
