"""The paper's five measurement scenarios (plus the idle noise one).

"For each of the 16 sensors, EM traces are recorded under five
scenarios: when HTs T1, T2, T3, and T4 are individually activated and
in the absence of any active HT." (Section VI-D).  The SNR measurement
additionally needs the idle (powered, not encrypting) condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from ..errors import WorkloadError
from .lfsr import PlaintextGenerator


@dataclass(frozen=True)
class Scenario:
    """One measurement condition.

    Attributes
    ----------
    name:
        Scenario label.
    active:
        Trojan payloads allowed to fire.
    idle:
        Powered-but-not-encrypting (the SNR noise condition).
    plaintext_policy:
        ``"random"`` or ``"t2_alternating"``.
    description:
        Human-readable summary.
    always_on:
        The scenario's chip carries an always-on implant: there is no
        Trojan-quiet condition of the *same chip* to reference, so
        :func:`reference_for` returns the scenario itself.
    """

    name: str
    active: FrozenSet[str]
    idle: bool
    plaintext_policy: str
    description: str
    always_on: bool = False

    def plaintexts(self, n_blocks: int, seed: int) -> List[bytes]:
        """Generate this scenario's plaintext stream for one trace."""
        generator = PlaintextGenerator(seed)
        if self.plaintext_policy == "random":
            return generator.random_blocks(n_blocks)
        if self.plaintext_policy == "t2_alternating":
            return generator.t2_trigger_blocks(n_blocks, match_fraction=0.5)
        raise WorkloadError(
            f"unknown plaintext policy {self.plaintext_policy!r}"
        )


def _scenario(
    name: str, active: tuple, idle: bool, policy: str, description: str
) -> Scenario:
    return Scenario(
        name=name,
        active=frozenset(active),
        idle=idle,
        plaintext_policy=policy,
        description=description,
    )


#: All named scenarios.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        _scenario(
            "idle", (), True, "random", "powered up, no encryption (noise)"
        ),
        _scenario(
            "baseline", (), False, "random", "AES encrypting, no active HT"
        ),
        _scenario("T1", ("T1",), False, "random", "AM radio carrier active"),
        _scenario(
            "T2",
            ("T2",),
            False,
            "t2_alternating",
            "key-wire inverter chain, alternating trigger plaintext",
        ),
        _scenario(
            "T2_ref",
            (),
            False,
            "t2_alternating",
            "T2's plaintext pattern with the payload disabled "
            "(matched-workload reference)",
        ),
        _scenario("T3", ("T3",), False, "random", "CDMA key leaker enabled"),
        _scenario("T4", ("T4",), False, "random", "DoS heater enabled"),
        # The always-on variant family: chips fabricated with an
        # implant that has no trigger or enable, so every window of the
        # scenario is Trojan-active (see repro.trojans.always_on).
        Scenario(
            name="T1A",
            active=frozenset({"T1A"}),
            idle=False,
            plaintext_policy="random",
            description="continuous AM carrier (T1 variant, no trigger)",
            always_on=True,
        ),
        Scenario(
            name="T2A",
            active=frozenset({"T2A"}),
            idle=False,
            plaintext_policy="random",
            description="continuous key-wire leaker (T2 variant, no trigger)",
            always_on=True,
        ),
        Scenario(
            name="TP",
            active=frozenset({"TP"}),
            idle=False,
            plaintext_policy="random",
            description="parametric drift implant (leaks from power-on)",
            always_on=True,
        ),
    ]
}


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario.

    Raises
    ------
    WorkloadError
        For unknown names.
    """
    if name not in SCENARIOS:
        raise WorkloadError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name]


def reference_for(name: str) -> Scenario:
    """The matched-workload Trojan-inactive reference of a scenario.

    T2 compares against ``T2_ref`` (same plaintext distribution, payload
    off); everything else compares against ``baseline``.  An always-on
    scenario references *itself*: its chip has no Trojan-quiet
    condition — which is exactly why the rolling-Welford self-baseline
    cannot see that class and the reference-free detectors exist.
    """
    scenario = scenario_by_name(name)
    if scenario.always_on:
        return scenario
    if scenario.name == "T2":
        return SCENARIOS["T2_ref"]
    return SCENARIOS["baseline"]
