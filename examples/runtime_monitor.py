#!/usr/bin/env python
"""Run-time monitoring through the streaming subsystem.

Simulates deployment with ``repro.runtime``: a scripted activation
schedule (normal encryption, then the T4 DoS Trojan enabled
mid-stream) renders on demand through the batched engine, and the
escalation pipeline walks the paper's flow — golden-model-free
detection, zero-span identification, quadrant localization — emitting
a typed event per stage.

The same session is available from the command line::

    repro monitor --preset smoke            # single chip
    repro monitor --preset paper --fleet 4  # four chips, concurrently

Run:
    python examples/runtime_monitor.py
"""

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.core.analysis.detector import DetectorConfig
from repro.core.analysis.localizer import Localizer
from repro.runtime import (
    ActivationSchedule,
    EscalationPipeline,
    EventBus,
    LiveSource,
    PipelineConfig,
    TrojanIdentified,
    TrojanLocalized,
)
from repro.workloads.campaign import MeasurementCampaign

N_BASELINE = 8  # quiet windows before the Trojan is enabled
N_ACTIVE = 4  # windows with the T4 payload firing
WARMUP = 6  # detector warm-up windows


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)

    # The scripted session: baseline workload, then T4 enabled.  The
    # schedule (not hand-rolled bookkeeping) owns the trigger index.
    schedule = ActivationSchedule.step(
        "T4", n_baseline=N_BASELINE, n_active=N_ACTIVE
    )
    source = LiveSource(campaign, schedule, chunk=4)

    bus = EventBus()
    bus.subscribe(
        lambda event: isinstance(event, (TrojanIdentified, TrojanLocalized))
        and print(f"  event: {event.to_dict()}")
    )
    pipeline = EscalationPipeline(
        config,
        pipeline=PipelineConfig(detector=DetectorConfig(warmup=WARMUP)),
        localizer=Localizer(psa),
        bus=bus,
    )
    report = pipeline.run(source)

    print()
    print("window | sideband feature [dBuV] | state")
    for window in range(report.n_windows):
        value = report.features_db[0, window]
        state = report.state_at(window, warmup=WARMUP)
        print(f"  {window:4d} | {value:7.2f}               | {state}")

    mttd = report.mttd
    print()
    print(
        f"trace period : {report.trace_period_s * 1e3:.2f} ms "
        "(capture + on-board processing)"
    )
    print(f"traces to detect: {mttd.traces_to_detect} (paper: <10)")
    print(f"MTTD         : {mttd.mttd_s * 1e3:.2f} ms (paper: <10 ms)")
    print(f"identified   : {report.identification.label} (truth: T4)")
    print(
        f"localized    : sensor {report.localization.sensor_index}, "
        f"quadrant {report.localization.quadrant} (truth: sensor 10, se)"
    )
    print(f"events       : {report.event_counts}")


if __name__ == "__main__":
    main()
