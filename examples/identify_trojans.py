#!/usr/bin/env python
"""Identification via zero-span envelopes (the paper's Figure 5).

Captures sensor-10 traces with each Trojan active, switches to the time
domain at the 48 MHz sideband, and classifies the envelopes — first
with the rule template, then fully unsupervised with K-means.

Run:
    python examples/identify_trojans.py
"""

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.core.analysis.identifier import TrojanIdentifier
from repro.experiments.reporting import sparkline
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import scenario_by_name


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)
    identifier = TrojanIdentifier()

    traces = []
    truth = []
    print(f"zero-span envelopes at {identifier.f_probe / 1e6:.0f} MHz "
          f"(RBW {identifier.rbw / 1e6:.0f} MHz):")
    for trojan in ("T1", "T2", "T3", "T4"):
        for index in range(2):
            record = campaign.record(
                scenario_by_name(trojan), 900 + index
            )
            traces.append(psa.measure(record, 10, 900 + index))
            truth.append(trojan)
        capture = identifier.zero_span(traces[-1])
        normalized = capture.envelope / capture.envelope.max()
        feats = identifier.features(traces[-1])
        print(f"  {trojan}: {sparkline(normalized)}")
        print(
            f"      dominant {feats.dominant_freq / 1e6:.2f} MHz, "
            f"ripple {feats.ripple:.2f}, autocorr {feats.autocorr_peak:.2f}, "
            f"bimodality {feats.bimodality:.2f}"
        )

    print()
    print("rule-template classification:")
    for trace, expected in zip(traces[::2], truth[::2]):
        predicted = identifier.classify(trace).label
        marker = "ok" if predicted == expected else "WRONG"
        print(f"  truth {expected} -> predicted {predicted}  [{marker}]")

    print()
    print("unsupervised (K-means over envelope features):")
    clustering = identifier.cluster(traces, n_clusters=4)
    labels = identifier.label_clusters(traces, clustering)
    correct = 0
    for index, (trace, expected) in enumerate(zip(traces, truth)):
        predicted = labels[int(clustering.labels[index])]
        correct += predicted == expected
    print(f"  cluster-label accuracy: {correct}/{len(traces)} "
          "(paper: all 4 HTs classified without full supervision)")


if __name__ == "__main__":
    main()
