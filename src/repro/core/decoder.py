"""The PSA control decoder (gate level).

Section V-A: the four ``PSA_sel[3:0]`` pins "were decoded into gate
signals for T-gates with the fully combinational decoder".  The decoder
is built out of real gates and evaluated in the event-driven logic
simulator, so its functional correctness (one-hot outputs, glitch-free
settling) is testable, and it doubles as the tamper-evidence mechanism:
a decoder returning non-one-hot patterns fails the test phase.
"""

from __future__ import annotations

from typing import List

from ..errors import GridProgrammingError
from ..logic.components import build_decoder_4to16
from ..logic.simulator import LogicSimulator


class PsaDecoder:
    """Gate-level 4-to-16 selection decoder."""

    def __init__(self) -> None:
        self._sim = LogicSimulator()
        self._sel, self._outputs = build_decoder_4to16(
            self._sim, sel_prefix="PSA_sel", out_prefix="sensor_en"
        )
        self.select(0)

    @property
    def n_gates(self) -> int:
        """Gate count of the decoder network."""
        return self._sim.n_gates

    def select(self, index: int) -> List[int]:
        """Drive ``PSA_sel`` and return the settled 16-bit one-hot output."""
        if not 0 <= index < 16:
            raise GridProgrammingError(f"selection {index} outside 0..15")
        assignments = {
            wire.name: (index >> bit) & 1
            for bit, wire in enumerate(self._sel)
        }
        self._sim.settle(assignments)
        return [wire.value for wire in self._outputs]

    def selected(self) -> int:
        """Currently selected sensor index (from the output pattern).

        Raises
        ------
        GridProgrammingError
            If the output is not one-hot (tamper evidence).
        """
        values = [wire.value for wire in self._outputs]
        highs = [idx for idx, value in enumerate(values) if value == 1]
        if len(highs) != 1:
            raise GridProgrammingError(
                f"decoder output is not one-hot: {values} — "
                "possible tampering"
            )
        return highs[0]
