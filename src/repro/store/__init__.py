"""Content-addressed artifact store: compute once, reuse everywhere.

The run-time flow is only cheap if its expensive intermediates —
activity records, featurized trace spans — are computed once and
reused by every consumer.  :class:`ArtifactStore` persists them on
disk keyed by content (a SHA-256 of the full simulation provenance),
so repeated detection sweeps, localization sweeps, monitor sessions
and CI smoke jobs warm-start **bit-identically** to their cold runs.

The store plugs into the library through
:meth:`ArtifactStore.mapping`, whose views are drop-in replacements
for the in-memory memos already threaded through
:class:`~repro.sweep.orchestrator.DetectionSweep`,
:class:`~repro.sweep.localize.LocalizationSweep` and
:class:`~repro.runtime.sources.LiveSource`.

Administer it from the command line::

    repro store stats          # entries, sizes, session hit/miss
    repro store gc [--max-mb]  # LRU-evict down to the size cap
    repro store clear          # drop everything

``REPRO_STORE_DIR`` relocates the store; sweep/monitor commands take
``--store-dir``/``--no-store`` overrides (CI smoke jobs pass
``--no-store`` so cold-start timings stay cold).
"""

from .keys import (
    CODE_VERSION,
    KEY_SCHEMA,
    adc_fingerprint,
    amplifier_fingerprint,
    analyzer_fingerprint,
    campaign_fingerprint,
    canonical,
    chip_fingerprint,
    config_fingerprint,
    digest,
    floorplan_fingerprint,
    psa_fingerprint,
    sensors_fingerprint,
)
from .store import (
    DEFAULT_MAX_BYTES,
    ENV_STORE_DIR,
    SCHEMA_VERSION,
    ArrayCodec,
    ArtifactStore,
    Codec,
    RecordCodec,
    StoreMapping,
    StoreStats,
    default_store_root,
)

__all__ = [
    "CODE_VERSION",
    "KEY_SCHEMA",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ENV_STORE_DIR",
    "ArtifactStore",
    "ArrayCodec",
    "Codec",
    "RecordCodec",
    "StoreMapping",
    "StoreStats",
    "default_store_root",
    "adc_fingerprint",
    "amplifier_fingerprint",
    "analyzer_fingerprint",
    "campaign_fingerprint",
    "canonical",
    "chip_fingerprint",
    "config_fingerprint",
    "digest",
    "floorplan_fingerprint",
    "psa_fingerprint",
    "sensors_fingerprint",
]
