"""Event-driven simulation kernel.

A classic inertial-delay event simulator: driving a primary input
schedules the fanout gates; each gate evaluation that changes its output
schedules its own fanout ``delay`` time units later.  Used to simulate
the PSA control decoder and the Trojan trigger logic at the gate level.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import LogicSimulationError
from .gates import Gate
from .signals import UNKNOWN, Wire


class LogicSimulator:
    """Owns wires, gates and the event queue.

    Typical usage::

        sim = LogicSimulator()
        a = sim.wire("a"); b = sim.wire("b"); y = sim.wire("y")
        sim.gate("AND", [a, b], y)
        sim.set_inputs({"a": 1, "b": 1})
        sim.run()
        assert y.value == 1
    """

    def __init__(self, max_events: int = 1_000_000):
        self._wires: Dict[str, Wire] = {}
        self._gates: List[Gate] = []
        self._queue: List[Tuple[int, int, int]] = []  # (time, seq, gate_idx)
        self._seq = itertools.count()
        self._now = 0
        self._max_events = max_events
        self.events_processed = 0

    # -- construction --------------------------------------------------------

    def wire(self, name: str) -> Wire:
        """Create (or fetch) the wire called ``name``."""
        if name in self._wires:
            return self._wires[name]
        wire = Wire(name)
        self._wires[name] = wire
        return wire

    def bus(self, prefix: str, width: int) -> List[Wire]:
        """Create ``width`` wires named ``prefix[0]..prefix[width-1]``."""
        if width < 1:
            raise LogicSimulationError(f"bus width must be >= 1, got {width}")
        return [self.wire(f"{prefix}[{bit}]") for bit in range(width)]

    def gate(
        self,
        kind: str,
        inputs: Sequence[Wire],
        output: Wire,
        delay: int = 1,
    ) -> Gate:
        """Add a gate and register its fanout."""
        for wire in inputs:
            if wire.name not in self._wires:
                raise LogicSimulationError(
                    f"input wire {wire.name!r} does not belong to this "
                    "simulator"
                )
        gate = Gate(kind, inputs, output, delay)
        index = len(self._gates)
        self._gates.append(gate)
        for wire in gate.inputs:
            wire.fanout.append(index)
        return gate

    @property
    def n_gates(self) -> int:
        """Number of gates in the design."""
        return len(self._gates)

    @property
    def now(self) -> int:
        """Current simulation time."""
        return self._now

    # -- stimulus ------------------------------------------------------------

    def set_inputs(self, assignments: Dict[str, int]) -> None:
        """Drive primary inputs; schedules affected gates at t=now."""
        for name, value in assignments.items():
            if name not in self._wires:
                raise LogicSimulationError(f"no wire named {name!r}")
            wire = self._wires[name]
            if wire.drive(value):
                self._schedule_fanout(wire, self._now)

    def _schedule_fanout(self, wire: Wire, when: int) -> None:
        for gate_idx in wire.fanout:
            heapq.heappush(self._queue, (when, next(self._seq), gate_idx))

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Process events until quiescence (or time ``until``).

        Returns the simulation time after the last processed event.

        Raises
        ------
        LogicSimulationError
            If the event budget is exhausted (combinational loop).
        """
        while self._queue:
            when, _seq, gate_idx = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self._now = max(self._now, when)
            self.events_processed += 1
            if self.events_processed > self._max_events:
                raise LogicSimulationError(
                    "event budget exhausted — combinational loop or "
                    "oscillation in the design"
                )
            gate = self._gates[gate_idx]
            value = gate.evaluate()
            if value == UNKNOWN:
                continue
            if gate.output.drive(value):
                self._schedule_fanout(gate.output, self._now + gate.delay)
        return self._now

    def settle(self, assignments: Dict[str, int]) -> int:
        """Drive inputs then run to quiescence; returns settle time."""
        start = self._now
        self.set_inputs(assignments)
        self.run()
        return self._now - start

    # -- observation ---------------------------------------------------------

    def value(self, name: str) -> int:
        """Current value of wire ``name``."""
        if name not in self._wires:
            raise LogicSimulationError(f"no wire named {name!r}")
        return self._wires[name].value

    def values(self, names: Iterable[str]) -> Dict[str, int]:
        """Values of several wires by name."""
        return {name: self.value(name) for name in names}
