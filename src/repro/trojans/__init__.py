"""Hardware Trojan models (Section V-A, modified from Trust-Hub).

Four Trojans with distinct triggers and payloads:

* :class:`T1AmCarrier` — amplitude-modulation radio carrier at 750 kHz,
  triggered periodically when a 21-bit counter reaches ``21'h1FFFFF``;
* :class:`T2KeyLeakInverters` — a chain of inverters attached to a key
  wire to amplify its leakage, triggered when the plaintext prefix is
  ``0xAAAA``;
* :class:`T3CdmaLeaker` — a CDMA channel Trojan spreading key bits with
  a PN code (always-on, external enable in experiments);
* :class:`T4DosHeater` — a denial-of-service heater bank that elevates
  power consumption (always-on, external enable in experiments).

Plus the always-on variant family of :mod:`repro.trojans.always_on`
(no trigger, no enable — active from power-on), the scenario class
the reference-free detectors of :mod:`repro.detectors` exist for:

* :class:`T1AContinuousCarrier` — T1's carrier, trigger deleted;
* :class:`T2AContinuousLeaker` — T2's inverter chain, leaks every block;
* :class:`TPParametricDrift` — parametric (dopant-level) drift Trojan.
"""

from .always_on import (
    ALWAYS_ON_CELLS,
    ALWAYS_ON_NAMES,
    AlwaysOnTrojan,
    T1AContinuousCarrier,
    T2AContinuousLeaker,
    TPParametricDrift,
)
from .base import CycleContext, Trojan, block_pattern
from .catalog import (
    TROJAN_CATALOG,
    VARIANT_CATALOG,
    TrojanInfo,
    make_trojan,
    standard_trojans,
)
from .t1_am_carrier import T1AmCarrier
from .t2_leakage import T2KeyLeakInverters
from .t3_cdma import T3CdmaLeaker
from .t4_dos import T4DosHeater

__all__ = [
    "CycleContext",
    "Trojan",
    "block_pattern",
    "T1AmCarrier",
    "T2KeyLeakInverters",
    "T3CdmaLeaker",
    "T4DosHeater",
    "ALWAYS_ON_CELLS",
    "ALWAYS_ON_NAMES",
    "AlwaysOnTrojan",
    "T1AContinuousCarrier",
    "T2AContinuousLeaker",
    "TPParametricDrift",
    "TROJAN_CATALOG",
    "VARIANT_CATALOG",
    "TrojanInfo",
    "make_trojan",
    "standard_trojans",
]
