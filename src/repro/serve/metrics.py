"""Service metrics: throughput meters and the ``/metrics`` snapshot.

The serve front-end answers ``GET /metrics`` with a
:class:`MetricsSnapshot` — a frozen :class:`~repro.report.ReportBase`
report like every other report in the system, so the JSON payload is
exactly :meth:`~repro.report.ReportBase.to_json` and the text form
renders through the same severity vocabulary (an alarming chip is
CRITICAL, shed work is a WARNING).

Throughput is measured by :class:`ThroughputMeter` over the *busy*
span (first to last processed window), so an idle service does not
dilute its rate, plus a sliding recent-rate window for dashboards.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, Optional, Tuple

from ..report import ReportBase, Severity


class ThroughputMeter:
    """Windows-per-second accounting over the busy span.

    Thread-safe: analysis workers record completions from executor
    threads while the event loop snapshots rates.

    Parameters
    ----------
    recent_s:
        Span of the sliding recent-rate window [s].
    """

    def __init__(self, recent_s: float = 30.0):
        self.recent_s = float(recent_s)
        self.total = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None
        self._recent: deque = deque()
        self._lock = Lock()

    def record(self, n: int, now: Optional[float] = None) -> None:
        """Count ``n`` completed windows."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self.total += int(n)
            if self._first is None:
                self._first = stamp
            self._last = stamp
            self._recent.append((stamp, int(n)))
            cutoff = stamp - self.recent_s
            while self._recent and self._recent[0][0] < cutoff:
                self._recent.popleft()

    def rate(self) -> float:
        """Lifetime windows/sec over the busy span."""
        with self._lock:
            if self._first is None or self._last is None:
                return 0.0
            span = self._last - self._first
            if span <= 0:
                # Sub-resolution burst: everything landed in one
                # clock tick; report it against the recent window
                # floor rather than claiming infinite throughput.
                span = 1e-3
            return self.total / span

    def recent_rate(self, now: Optional[float] = None) -> float:
        """Windows/sec over the sliding recent window."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            cutoff = stamp - self.recent_s
            counted = sum(n for t, n in self._recent if t >= cutoff)
            if not counted:
                return 0.0
            oldest = min(t for t, _ in self._recent if t >= cutoff)
            span = max(stamp - oldest, 1e-3)
            return counted / span


@dataclass(frozen=True)
class ChipGauge:
    """One chip's row in the ``/metrics`` snapshot.

    Attributes
    ----------
    chip:
        Chip identity.
    kind:
        How windows arrive: ``"replay"`` (HTTP upload), ``"ws"``
        (streaming socket) or ``"live"`` (server-side rendering).
    state:
        Pipeline state machine position.
    windows:
        Windows processed so far.
    queue_len:
        Chunks waiting in the chip's bounded queue.
    queued_windows:
        Windows those chunks hold.
    sheds:
        Chunks dropped by the shedding layer.
    dropped_windows:
        Windows lost across those sheds.
    alarms:
        Alarm events this chip has emitted.
    first_alarm:
        First alarming window (None = silent so far).
    mttd_ms:
        Detection latency once the session finished with a known
        trigger [ms].
    done:
        Whether the chip's stream has been finalized.
    """

    chip: str
    kind: str
    state: str
    windows: int
    queue_len: int
    queued_windows: int
    sheds: int
    dropped_windows: int
    alarms: int
    first_alarm: Optional[int]
    mttd_ms: Optional[float]
    done: bool

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON row."""
        return {
            "chip": self.chip,
            "kind": self.kind,
            "state": self.state,
            "windows": self.windows,
            "queue_len": self.queue_len,
            "queued_windows": self.queued_windows,
            "sheds": self.sheds,
            "dropped_windows": self.dropped_windows,
            "alarms": self.alarms,
            "first_alarm": self.first_alarm,
            "mttd_ms": self.mttd_ms,
            "done": self.done,
        }


@dataclass(frozen=True)
class MetricsSnapshot(ReportBase):
    """The ``GET /metrics`` payload: fleet health at a glance.

    Attributes
    ----------
    uptime_s:
        Seconds since the service started.
    n_chips:
        Chips currently onboarded.
    windows_total:
        Windows processed since start.
    windows_per_sec:
        Lifetime processing rate over the busy span.
    recent_windows_per_sec:
        Rate over the sliding recent window.
    alarms_total, sheds_total, backpressure_total:
        Fleet-wide counters.
    overload_active:
        Whether the service is currently past its high-water mark.
    queued_windows, high_water_windows:
        Global queued work against its configured bound.
    event_counts:
        Bus-wide event counts by type.
    chips:
        Per-chip gauges, in onboarding order.
    engine_sessions:
        Live engine backend sessions (name, workers).
    store:
        Artifact store counters (None when the service runs without
        a store).
    """

    uptime_s: float
    n_chips: int
    windows_total: int
    windows_per_sec: float
    recent_windows_per_sec: float
    alarms_total: int
    sheds_total: int
    backpressure_total: int
    overload_active: bool
    queued_windows: int
    high_water_windows: int
    event_counts: Dict[str, int] = field(default_factory=dict)
    chips: Tuple[ChipGauge, ...] = ()
    engine_sessions: Tuple[Dict[str, object], ...] = ()
    store: Optional[Dict[str, int]] = None

    report_kind = "metrics"

    def severities(self):
        """Operator-facing rollup: alarms CRITICAL, sheds WARNING."""
        for gauge in self.chips:
            if gauge.alarms:
                yield Severity.CRITICAL
            elif gauge.sheds:
                yield Severity.WARNING
            else:
                yield Severity.OK
        if self.overload_active:
            yield Severity.WARNING

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (the ``/metrics`` body)."""
        return {
            "uptime_s": round(self.uptime_s, 3),
            "n_chips": self.n_chips,
            "windows_total": self.windows_total,
            "windows_per_sec": round(self.windows_per_sec, 2),
            "recent_windows_per_sec": round(
                self.recent_windows_per_sec, 2
            ),
            "alarms_total": self.alarms_total,
            "sheds_total": self.sheds_total,
            "backpressure_total": self.backpressure_total,
            "overload_active": self.overload_active,
            "queued_windows": self.queued_windows,
            "high_water_windows": self.high_water_windows,
            "event_counts": dict(self.event_counts),
            "chips": [gauge.to_dict() for gauge in self.chips],
            "engine_sessions": [dict(s) for s in self.engine_sessions],
            "store": None if self.store is None else dict(self.store),
        }

    def format(self) -> str:
        """Plain-text fleet health summary."""
        lines = [
            f"serve: {self.n_chips} chips | {self.windows_total} windows "
            f"({self.windows_per_sec:.1f} win/s lifetime, "
            f"{self.recent_windows_per_sec:.1f} recent) | "
            f"alarms {self.alarms_total} | sheds {self.sheds_total} | "
            f"overload {'ACTIVE' if self.overload_active else 'clear'} "
            f"({self.queued_windows}/{self.high_water_windows} queued)",
        ]
        if self.chips:
            lines.append(
                "chip       | kind   | state    | windows | queue | "
                "sheds | alarms"
            )
            for gauge in self.chips:
                lines.append(
                    f"{gauge.chip:<10} | {gauge.kind:<6} | "
                    f"{gauge.state:<8} | {gauge.windows:>7} | "
                    f"{gauge.queue_len:>5} | {gauge.sheds:>5} | "
                    f"{gauge.alarms:>6}"
                )
        return "\n".join(lines)
