"""Localization stage (integration)."""

import numpy as np
import pytest

from repro.core.analysis.localizer import Localizer
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def localizer(psa):
    return Localizer(psa)


def test_score_map_peaks_at_sensor10(localizer, records):
    scores = localizer.score_map(records["baseline"], records["T1"])
    assert scores.shape == (16,)
    assert int(np.argmax(scores)) == 10


def test_sensor0_scores_near_zero(localizer, records):
    """Figure 4e: the Trojan-free corner shows hardly any change."""
    scores = localizer.score_map(records["baseline"], records["T1"])
    assert abs(scores[0]) < 0.05 * scores[10]


@pytest.mark.parametrize(
    "trojan,quadrant",
    [("T1", "nw"), ("T3", "sw")],
)
def test_localize_with_refinement(localizer, records, trojan, quadrant):
    reference = "T2_ref" if trojan == "T2" else "baseline"
    result = localizer.localize(records[reference], records[trojan])
    assert result.sensor_index == 10
    assert result.quadrant == quadrant
    assert result.margin_db > 0.0
    # The refined position lands inside sensor 10's footprint.
    x, y = result.position
    from repro.chip.floorplan import sensor_rect

    assert sensor_rect(10).contains(x, y)


def test_position_tracks_trojan(localizer, records, chip):
    """The estimate lands within ~120 um of the true Trojan center."""
    result = localizer.localize(records["baseline"], records["T1"])
    true_center = chip.floorplan.placements["T1"][0].center
    error = np.hypot(
        result.position[0] - true_center[0],
        result.position[1] - true_center[1],
    )
    assert error < 120e-6


def test_localize_without_refinement(localizer, records):
    result = localizer.localize(
        records["baseline"], records["T4"], refine=False
    )
    assert result.sensor_index == 10
    assert result.quadrant is None
    assert result.quadrant_scores is None


def test_empty_records_rejected(localizer, records):
    with pytest.raises(AnalysisError):
        localizer.score_map([], records["T1"])
