"""Deterministic, named random streams.

Every stochastic component draws from a stream derived from the root
seed in :class:`repro.config.SimConfig` plus a component name, so

* results are reproducible bit-for-bit for a given config, and
* adding randomness to one component never perturbs another.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream(seed: int, name: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator`.

    The stream identity is ``(seed, name)``; the name is hashed with
    SHA-256 so streams are statistically independent even for similar
    names.

    Parameters
    ----------
    seed:
        Root seed (normally ``config.seed``).
    name:
        Component identity, e.g. ``"noise/johnson/sensor10"``.
    """
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def substream(rng_name: str, index: int) -> str:
    """Build a child stream name, e.g. for per-trace noise draws."""
    return f"{rng_name}#{index}"
