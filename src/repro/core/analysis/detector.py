"""Golden-model-free run-time change detection.

The detector never sees a reference ("golden") chip: it learns the
baseline statistics of its *own* sideband feature during a warm-up
window and then z-scores every new trace against that self-reference.
A Trojan activating mid-stream shifts the sideband feature by tens of
dB, so a couple of consecutive super-threshold traces suffice — the
paper's "fewer than ten traces ... less than 10 ms MTTD".

Traces that score above threshold are *not* absorbed into the baseline,
so a persistent Trojan cannot slowly poison the reference.

Debounce semantics
------------------
An alarm requires ``consecutive`` super-threshold traces in a row.  The
streak is capped at ``consecutive`` and reset to zero the moment an
alarm fires, so *every* alarm — not just the first — pays the full
debounce; a single later outlier can never re-alarm on its own.  Fired
alarms stay visible through the recorded :attr:`RuntimeDetector.decisions`
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...errors import AnalysisError


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning of the run-time detector.

    Attributes
    ----------
    warmup:
        Traces used to seed the self-baseline before arming.
    z_threshold:
        Alarm threshold on the z-score.  With the two-trace debounce,
        4.5 keeps the per-decision false-alarm probability in the 1e-5
        range even for heavy-tailed baselines while preserving margin
        for the smallest Trojan (T3, 329 cells).
    consecutive:
        Super-threshold traces required for an alarm (debounce).
    baseline_window:
        Maximum baseline population (rolling).
    min_std_db:
        Lower bound on the baseline spread [dB] to keep the z-score
        finite and robust when the baseline is unnaturally quiet.
    two_sided:
        Alarm on |z| rather than z — a golden-model-free change
        detector should flag energy disappearing as well as appearing.
    """

    warmup: int = 8
    z_threshold: float = 4.5
    consecutive: int = 2
    baseline_window: int = 64
    min_std_db: float = 0.05
    two_sided: bool = True

    def __post_init__(self) -> None:
        if self.warmup < 2:
            raise AnalysisError("warmup must be >= 2 traces")
        if self.z_threshold <= 0:
            raise AnalysisError("z_threshold must be positive")
        if self.consecutive < 1:
            raise AnalysisError("consecutive must be >= 1")
        if self.baseline_window < self.warmup:
            raise AnalysisError("baseline_window must cover the warmup")


@dataclass(frozen=True)
class DetectionDecision:
    """Outcome of one trace update.

    Attributes
    ----------
    trace_index:
        Running index of the evaluated trace.
    feature_db:
        The sideband feature of this trace.
    z:
        z-score against the self-baseline (NaN during warm-up).
    armed:
        Whether the detector has finished warming up.
    alarm:
        Whether this trace completes an alarm.
    """

    trace_index: int
    feature_db: float
    z: float
    armed: bool
    alarm: bool


class RuntimeDetector:
    """Streaming golden-model-free detector.

    A thin single-stream wrapper over
    :class:`~repro.core.analysis.welford.DetectorBank`: the baseline
    mean/variance roll forward in O(1) per trace (Welford with exact
    window eviction) instead of re-materializing the whole window, and
    the decision arithmetic is shared with the vectorized sweep path,
    which keeps the two bit-for-bit identical.
    """

    def __init__(self, config: DetectorConfig | None = None):
        from .welford import DetectorBank  # circular at import time

        self.config = config or DetectorConfig()
        self._bank = DetectorBank(1, self.config)
        self._count = 0
        self.decisions: List[DetectionDecision] = []

    def reset(self) -> None:
        """Forget all learned state."""
        self._bank.reset()
        self._count = 0
        self.decisions.clear()

    @property
    def armed(self) -> bool:
        """True once the warm-up baseline is populated."""
        return bool(self._bank.armed[0])

    def update(self, feature_db: float) -> DetectionDecision:
        """Consume one trace's feature; returns the decision."""
        if not np.isfinite(feature_db):
            raise AnalysisError(f"non-finite feature {feature_db!r}")
        index = self._count
        self._count += 1
        step = self._bank.step(np.array([feature_db], dtype=float))
        decision = DetectionDecision(
            trace_index=index,
            feature_db=feature_db,
            z=float(step.z[0]),
            armed=bool(step.armed[0]),
            alarm=bool(step.alarm[0]),
        )
        self.decisions.append(decision)
        return decision

    def process_batch(
        self, features_db: "np.ndarray | List[float]"
    ) -> List[DetectionDecision]:
        """Consume a whole feature vector (e.g. one per batch capture).

        The detector's semantics are inherently sequential (each
        decision conditions the next baseline), so this is an ordered
        fold over :meth:`update` — it exists so batch producers like
        the engine-fed pipeline hand their vectorized features over in
        one call and get the full decision timeline back.
        """
        return [self.update(float(feature)) for feature in features_db]

    def run(self, features_db: "np.ndarray | List[float]") -> int | None:
        """Stream a feature sequence; returns the first alarm index."""
        for feature in features_db:
            decision = self.update(float(feature))
            if decision.alarm:
                return decision.trace_index
        return None
