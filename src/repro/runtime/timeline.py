"""Per-window timeline bookkeeping shared by every monitoring front-end.

Both the vectorized :class:`~repro.runtime.pipeline.EscalationPipeline`
and the per-trace :class:`~repro.instruments.rasc.RascMonitor` fold
their decisions through one :class:`WindowTimeline`, so their timeline
semantics — window indices, verdict timestamps at the capture-plus-
processing cadence, first-alarm accounting — cannot drift apart.

This module sits below the rest of :mod:`repro.runtime` (no imports
from instruments or analysis) precisely so the instrument layer can
reuse it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


class WindowTimeline:
    """Features, alarms and timestamps of one monitoring session.

    Parameters
    ----------
    trace_period_s:
        Capture + on-board processing period per window [s].
    n_streams:
        Feature streams folded per window.
    """

    def __init__(self, trace_period_s: float, n_streams: int = 1):
        if trace_period_s <= 0:
            raise AnalysisError("trace period must be positive")
        if n_streams < 1:
            raise AnalysisError("need at least one stream")
        self.trace_period_s = trace_period_s
        self.n_streams = n_streams
        self._features: List[Tuple[float, ...]] = []
        self._alarms: List[int] = []

    def push(self, features: Sequence[float], alarm: bool) -> int:
        """Record one window's features; returns its window index."""
        row = tuple(float(value) for value in features)
        if len(row) != self.n_streams:
            raise AnalysisError(
                f"expected {self.n_streams} features, got {len(row)}"
            )
        index = len(self._features)
        self._features.append(row)
        if alarm:
            self._alarms.append(index)
        return index

    @property
    def n_windows(self) -> int:
        """Windows folded so far."""
        return len(self._features)

    @property
    def alarms(self) -> Tuple[int, ...]:
        """Every alarming window index, in order."""
        return tuple(self._alarms)

    @property
    def first_alarm(self) -> Optional[int]:
        """Window index of the first alarm (None = silent)."""
        return self._alarms[0] if self._alarms else None

    def time_of(self, window: int) -> float:
        """Wall-clock session time of a window's verdict [s]."""
        return (window + 1) * self.trace_period_s

    @property
    def window_indices(self) -> Tuple[int, ...]:
        """Indices of the folded windows (``0..n_windows-1``)."""
        return tuple(range(self.n_windows))

    @property
    def window_times_s(self) -> Tuple[float, ...]:
        """Verdict timestamp per folded window [s]."""
        return tuple(self.time_of(w) for w in range(self.n_windows))

    def features_matrix(self) -> np.ndarray:
        """All folded features, shape ``(n_streams, n_windows)``."""
        if not self._features:
            return np.empty((self.n_streams, 0))
        return np.asarray(self._features, dtype=float).T

    def stream_features(self, stream: int = 0) -> List[float]:
        """One stream's feature timeline as a flat list."""
        return [row[stream] for row in self._features]
