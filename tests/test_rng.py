"""Deterministic random-stream derivation."""

import numpy as np

from repro.rng import stream, substream


def test_same_identity_same_stream():
    a = stream(7, "noise/x").normal(size=16)
    b = stream(7, "noise/x").normal(size=16)
    assert np.array_equal(a, b)


def test_different_names_differ():
    a = stream(7, "noise/x").normal(size=16)
    b = stream(7, "noise/y").normal(size=16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = stream(7, "noise/x").normal(size=16)
    b = stream(8, "noise/x").normal(size=16)
    assert not np.array_equal(a, b)


def test_similar_names_are_independent():
    """Hashing should decorrelate names that differ by one character."""
    a = stream(7, "sensor1").normal(size=256)
    b = stream(7, "sensor2").normal(size=256)
    correlation = abs(np.corrcoef(a, b)[0, 1])
    assert correlation < 0.2


def test_substream_naming():
    assert substream("noise/x", 3) == "noise/x#3"
