"""Coupling matrices and EMF synthesis."""

import numpy as np
import pytest

from repro.chip.power import ActivityRecord
from repro.em.coupling import CouplingMatrix, emf_waveforms
from repro.em.probes import langer_lf1_probe, single_coil_receiver
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def coupling(chip, psa):
    return psa.coupling


def test_matrix_shape(coupling, chip):
    assert coupling.matrix.shape == (16, chip.floorplan.n_regions)
    assert coupling.bond_row.shape == (16,)


def test_sensor10_dominates_trojan_regions(coupling, chip):
    """Sensor 10 couples hardest to the Trojan cluster."""
    weights = np.zeros(chip.floorplan.n_regions)
    for trojan in ("T1", "T2", "T3", "T4"):
        weights += chip.floorplan.module_weights(trojan)
    scores = np.abs(coupling.matrix) @ weights
    assert int(np.argmax(scores)) == 10


def test_sensor0_weak_on_trojan_regions(coupling, chip):
    weights = chip.floorplan.module_weights("T1")
    scores = np.abs(coupling.matrix) @ weights
    assert scores[0] < 0.05 * scores[10]


def test_row_and_index_lookup(coupling):
    row = coupling.row("psa_sensor_10")
    assert np.array_equal(row, coupling.matrix[10])
    assert coupling.index_of("psa_sensor_3") == 3
    with pytest.raises(ConfigError):
        coupling.row("nonexistent")


def test_bond_row_larger_for_external_probe(chip):
    matrix = CouplingMatrix(
        chip.floorplan,
        [langer_lf1_probe(), single_coil_receiver()],
        scale=1.0,
    )
    # The multi-turn probe at package distance links far more of the
    # bond loop's flux than... both link it; the probe's local-region
    # coupling must be tiny compared to the on-chip coil's.
    probe_local = np.abs(matrix.matrix[0]).sum()
    coil_local = np.abs(matrix.matrix[1]).sum()
    assert coil_local > 10 * probe_local


def test_emf_superposition(chip, psa):
    """EMF is linear in the activity (superposition holds)."""
    config = chip.config
    n_regions = chip.floorplan.n_regions
    base = np.zeros((n_regions, config.n_cycles))
    a = base.copy()
    a[100, :] = 5.0
    b = base.copy()
    b[300, :] = 3.0

    def record(main):
        return ActivityRecord(
            main=main, trojan=base.copy(), config=config, scenario="t"
        )

    emf_a = emf_waveforms(psa.coupling, record(a))
    emf_b = emf_waveforms(psa.coupling, record(b))
    emf_ab = emf_waveforms(psa.coupling, record(a + b))
    assert np.allclose(emf_ab, emf_a + emf_b, atol=1e-12)


def test_trojan_phase_offset(chip, psa):
    """Trojan activity renders half a cycle after main activity."""
    config = chip.config
    n_regions = chip.floorplan.n_regions
    zeros = np.zeros((n_regions, config.n_cycles))
    pulse = zeros.copy()
    pulse[200, 10] = 1.0

    as_main = ActivityRecord(
        main=pulse, trojan=zeros.copy(), config=config, scenario="m"
    )
    as_trojan = ActivityRecord(
        main=zeros.copy(), trojan=pulse.copy(), config=config, scenario="t"
    )
    emf_main = emf_waveforms(psa.coupling, as_main)[10]
    emf_trojan = emf_waveforms(psa.coupling, as_trojan)[10]
    half = config.oversample // 2
    shifted = np.roll(emf_main, half)
    # Identical waveform, displaced by half a cycle.
    assert np.allclose(emf_trojan[half:-half], shifted[half:-half], atol=1e-15)


def test_scale_is_linear(chip):
    receivers = [single_coil_receiver()]
    small = CouplingMatrix(chip.floorplan, receivers, scale=1.0)
    big = CouplingMatrix(chip.floorplan, receivers, scale=10.0)
    assert np.allclose(big.matrix, 10.0 * small.matrix)
    # The bond row is governed by its own scale.
    assert np.allclose(big.bond_row, small.bond_row)


def test_invalid_construction(chip):
    with pytest.raises(ConfigError):
        CouplingMatrix(chip.floorplan, [])
    with pytest.raises(ConfigError):
        CouplingMatrix(chip.floorplan, [single_coil_receiver()], scale=-1.0)
    with pytest.raises(ConfigError):
        CouplingMatrix(
            chip.floorplan, [single_coil_receiver()], return_fraction=1.5
        )
