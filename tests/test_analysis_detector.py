"""Golden-model-free runtime detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.detector import DetectorConfig, RuntimeDetector
from repro.errors import AnalysisError


def _stream(baseline_level, active_level, n_base, n_active, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(baseline_level, noise, n_base),
            rng.normal(active_level, noise, n_active),
        ]
    )


def test_detects_step_change():
    detector = RuntimeDetector(DetectorConfig(warmup=6))
    features = _stream(-40.0, -10.0, 10, 5)
    alarm = detector.run(features)
    assert alarm is not None
    assert 10 <= alarm <= 12  # within a couple of traces of activation


def test_no_alarm_on_stationary_stream():
    detector = RuntimeDetector(DetectorConfig(warmup=6))
    features = _stream(-40.0, -40.0, 30, 0)
    assert detector.run(features) is None


def test_two_sided_detects_drops():
    detector = RuntimeDetector(DetectorConfig(warmup=6, two_sided=True))
    features = _stream(-10.0, -40.0, 10, 5)
    assert detector.run(features) is not None


def test_one_sided_ignores_drops():
    detector = RuntimeDetector(
        DetectorConfig(warmup=6, two_sided=False)
    )
    features = _stream(-10.0, -40.0, 10, 5)
    assert detector.run(features) is None


def test_consecutive_debounce():
    config = DetectorConfig(warmup=4, consecutive=2, z_threshold=5.0)
    detector = RuntimeDetector(config)
    # One outlier then back to baseline: no alarm.
    stream = [0.0, 0.1, -0.1, 0.05, 100.0, 0.0, 0.0, 0.0]
    assert detector.run(stream) is None


def test_streak_resets_after_alarm():
    """Every alarm pays the full debounce — no latched re-alarms."""
    config = DetectorConfig(warmup=4, consecutive=2, z_threshold=5.0)
    detector = RuntimeDetector(config)
    stream = [0.0, 0.1, -0.1, 0.05]  # warm-up
    stream += [100.0, 100.0]  # debounced alarm at index 5
    stream += [0.02]  # back to baseline
    stream += [100.0]  # single outlier: must NOT re-alarm
    stream += [0.01]
    stream += [100.0, 100.0]  # full debounce run: re-alarms at index 10
    alarms = [detector.update(float(f)).alarm for f in stream]
    assert alarms == [
        False, False, False, False,
        False, True,
        False,
        False,
        False,
        False, True,
    ]


def test_streak_capped_during_long_activation():
    """A long super-threshold run alarms repeatedly, once per debounce."""
    config = DetectorConfig(warmup=4, consecutive=3, z_threshold=5.0)
    detector = RuntimeDetector(config)
    for value in (0.0, 0.1, -0.1, 0.05):
        detector.update(value)
    alarms = [detector.update(100.0).alarm for _ in range(9)]
    # Alarm exactly every `consecutive` traces: indices 2, 5, 8.
    assert alarms == [False, False, True] * 3


def test_alarm_requires_warmup():
    detector = RuntimeDetector(DetectorConfig(warmup=8))
    for value in np.linspace(0, 1, 7):
        decision = detector.update(float(value))
        assert not decision.armed
        assert not decision.alarm
    assert not detector.armed


def test_outliers_do_not_poison_baseline():
    """A persistent Trojan cannot drag the self-reference upward."""
    detector = RuntimeDetector(
        DetectorConfig(warmup=6, consecutive=10**6, z_threshold=5.0)
    )
    rng = np.random.default_rng(1)
    for value in rng.normal(0.0, 0.1, 10):
        detector.update(float(value))
    z_values = [detector.update(50.0).z for _ in range(20)]
    # The z-score stays extreme — the baseline did not absorb 50.0.
    assert min(z_values) > 50


def test_reset_clears_state():
    detector = RuntimeDetector(DetectorConfig(warmup=4))
    detector.run(_stream(0.0, 10.0, 6, 3))
    detector.reset()
    assert not detector.armed
    assert detector.decisions == []


def test_nonfinite_feature_rejected():
    detector = RuntimeDetector()
    with pytest.raises(AnalysisError):
        detector.update(float("nan"))


@settings(max_examples=20, deadline=None)
@given(
    step=st.floats(min_value=5.0, max_value=100.0),
    warmup=st.integers(min_value=3, max_value=12),
)
def test_large_steps_always_detected(step, warmup):
    detector = RuntimeDetector(DetectorConfig(warmup=warmup))
    features = _stream(0.0, step, warmup + 4, 6, noise=0.1, seed=42)
    alarm = detector.run(features)
    assert alarm is not None
    assert alarm >= warmup + 4


def test_config_validation():
    with pytest.raises(AnalysisError):
        DetectorConfig(warmup=1)
    with pytest.raises(AnalysisError):
        DetectorConfig(z_threshold=0.0)
    with pytest.raises(AnalysisError):
        DetectorConfig(consecutive=0)
    with pytest.raises(AnalysisError):
        DetectorConfig(warmup=10, baseline_window=5)


def test_process_batch_matches_streaming_updates():
    """The batch entry point is an ordered fold over update()."""
    features = _stream(0.0, 30.0, 10, 4, noise=0.2, seed=7)
    streaming = RuntimeDetector(DetectorConfig(warmup=6))
    expected = [streaming.update(float(f)) for f in features]
    batched = RuntimeDetector(DetectorConfig(warmup=6))
    decisions = batched.process_batch(features)
    assert len(decisions) == len(expected)
    for got, want in zip(decisions, expected):
        assert got.trace_index == want.trace_index
        assert got.feature_db == want.feature_db
        assert got.armed == want.armed
        assert got.alarm == want.alarm
        assert got.z == want.z or (np.isnan(got.z) and np.isnan(want.z))
    assert any(decision.alarm for decision in decisions)
