"""Backpressure and load shedding for the monitoring service.

The serve front-end accepts work faster than analysis can drain it
only up to two bounds, both announced with the same typed event
vocabulary the in-process :class:`~repro.runtime.fleet.FleetScheduler`
uses (one queue-full contract across both deployments):

* **Per-chip**: each chip's chunk queue is bounded.  A flow-controlled
  producer (HTTP replay upload) simply waits; a fire-and-forget
  producer (WebSocket push) has its chunk *shed* — dropped with a
  :class:`~repro.runtime.events.Backpressure` (``action="shed"``)
  plus a :class:`~repro.runtime.events.Shed` event.
* **Service-wide**: the :class:`OverloadGuard` tracks total queued
  windows across every chip.  Past the high-water mark it flips to
  overload (a :class:`~repro.runtime.events.Overload` event,
  ``active=True``), new push work is shed regardless of per-chip
  space, and recovery below the low-water mark is announced with
  ``active=False`` — so a transcript shows exactly when and why the
  service degraded and when it came back.

Shedding keeps the *pipeline* consistent: the chip session rebases
subsequent chunk start indices by the dropped window count, so the
detector sees a gapless stream (it just never saw the shed windows).
"""

from __future__ import annotations

from threading import Lock
from typing import Optional

from ..runtime.events import Backpressure, EventBus, Overload, Shed

#: Chip tag stamped on service-wide (not per-chip) events.
SERVICE_CHIP = "serve"


class OverloadGuard:
    """Service-wide queued-work accounting with hysteresis.

    Parameters
    ----------
    bus:
        Event bus the :class:`~repro.runtime.events.Overload`
        transitions are announced on.
    high_water:
        Queued-window count that flips the service into overload.
    low_water:
        Recovery bound (default: half the high-water mark) — the
        hysteresis gap keeps the service from flapping at the edge.
    """

    def __init__(
        self,
        bus: EventBus,
        high_water: int,
        low_water: Optional[int] = None,
    ):
        self.bus = bus
        self.high_water = int(high_water)
        self.low_water = (
            self.high_water // 2 if low_water is None else int(low_water)
        )
        self.queued_windows = 0
        self.active = False
        self.transitions = 0
        self._lock = Lock()

    def _emit(self, active: bool, time_s: float) -> None:
        self.bus.emit(
            Overload(
                chip=SERVICE_CHIP,
                window=-1,
                time_s=time_s,
                queued_windows=self.queued_windows,
                high_water=self.high_water,
                active=active,
            )
        )

    def note_enqueued(self, n_windows: int, time_s: float) -> None:
        """Account ``n_windows`` entering some chip's queue."""
        with self._lock:
            self.queued_windows += int(n_windows)
            if not self.active and self.queued_windows > self.high_water:
                self.active = True
                self.transitions += 1
                self._emit(True, time_s)

    def note_dequeued(self, n_windows: int, time_s: float) -> None:
        """Account ``n_windows`` leaving some chip's queue."""
        with self._lock:
            self.queued_windows -= int(n_windows)
            if self.active and self.queued_windows <= self.low_water:
                self.active = False
                self.transitions += 1
                self._emit(False, time_s)


class ChunkShedder:
    """The shed decision + its event contract, per offered chunk.

    One instance per service; chip sessions call :meth:`should_shed`
    with their own queue occupancy and, when the answer is "drop",
    :meth:`announce` emits the typed ``Backpressure(action="shed")``
    + ``Shed`` pair and counts the loss.
    """

    def __init__(self, bus: EventBus, guard: OverloadGuard):
        self.bus = bus
        self.guard = guard
        self.sheds = 0
        self.shed_windows = 0
        self._lock = Lock()

    def should_shed(self, queue_len: int, queue_depth: int) -> Optional[str]:
        """Why an offered chunk must be dropped (None = admit it)."""
        if self.guard.active:
            return "overload"
        if queue_len >= queue_depth:
            return "queue-full"
        return None

    def announce(
        self,
        chip: str,
        window: int,
        n_windows: int,
        reason: str,
        queue_len: int,
        queue_depth: int,
        time_s: float,
    ) -> None:
        """Emit the typed shed pair and count the dropped windows."""
        with self._lock:
            self.sheds += 1
            self.shed_windows += int(n_windows)
        self.bus.emit(
            Backpressure(
                chip=chip,
                window=window,
                time_s=time_s,
                queue_depth=queue_depth,
                queue_len=queue_len,
                action="shed",
            )
        )
        self.bus.emit(
            Shed(
                chip=chip,
                window=window,
                time_s=time_s,
                n_windows=n_windows,
                reason=reason,
            )
        )
