"""AES-128 block cipher with full round-state history.

The cycle-accurate activity model needs the intermediate state after
every round, so :func:`encrypt_block_with_history` records them all.
State layout: a flat 16-byte array in the standard AES column-major
order (byte ``i`` is row ``i % 4``, column ``i // 4``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigError
from .key_schedule import expand_key
from .sbox import INV_SBOX, SBOX, gf_mul

# Byte-index permutation implementing ShiftRows on the flat
# column-major state (value = source index for each destination).
_SHIFT_ROWS = np.array(
    [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp
)
_INV_SHIFT_ROWS = np.argsort(_SHIFT_ROWS)

# GF(2^8) multiplication tables used by (Inv)MixColumns.
_MUL = {
    factor: np.array([gf_mul(value, factor) for value in range(256)], dtype=np.uint8)
    for factor in (1, 2, 3, 9, 11, 13, 14)
}


def _as_state(data: bytes | np.ndarray) -> np.ndarray:
    array = np.frombuffer(bytes(data), dtype=np.uint8).copy() if isinstance(
        data, (bytes, bytearray)
    ) else np.asarray(data, dtype=np.uint8).copy()
    if array.shape != (16,):
        raise ConfigError(f"AES state must be 16 bytes, got shape {array.shape}")
    return array


def _sub_bytes(state: np.ndarray) -> np.ndarray:
    return SBOX[state]


def _inv_sub_bytes(state: np.ndarray) -> np.ndarray:
    return INV_SBOX[state]


def _shift_rows(state: np.ndarray) -> np.ndarray:
    return state[_SHIFT_ROWS]


def _inv_shift_rows(state: np.ndarray) -> np.ndarray:
    return state[_INV_SHIFT_ROWS]


def _mix_columns(state: np.ndarray, inverse: bool = False) -> np.ndarray:
    factors = [14, 11, 13, 9] if inverse else [2, 3, 1, 1]
    # factors listed so that factors[(k - row) % 4] gives the standard
    # circulant matrix row [2 3 1 1] (or [14 11 13 9] for the inverse).
    # All four columns mix at once: the flat column-major state reshapes
    # to (column, row), and each output row is an XOR of four table
    # lookups across the whole column axis — exact GF(2^8) arithmetic,
    # identical bytes to the per-column reference loop.
    columns = state.reshape(4, 4)
    out = np.empty_like(columns)
    for row in range(4):
        acc = _MUL[factors[(0 - row) % 4]][columns[:, 0]].copy()
        for k in range(1, 4):
            acc ^= _MUL[factors[(k - row) % 4]][columns[:, k]]
        out[:, row] = acc
    return out.reshape(16)


@dataclass(frozen=True)
class RoundTrace:
    """Intermediate values of one AES round.

    Attributes
    ----------
    round_index:
        1..10.
    state_in:
        State entering the round.
    after_subbytes, after_shiftrows, after_mixcolumns:
        Intermediate states (``after_mixcolumns`` equals
        ``after_shiftrows`` in round 10, which has no MixColumns).
    state_out:
        State after AddRoundKey, i.e. entering the next round.
    """

    round_index: int
    state_in: np.ndarray
    after_subbytes: np.ndarray
    after_shiftrows: np.ndarray
    after_mixcolumns: np.ndarray
    state_out: np.ndarray


@dataclass(frozen=True)
class EncryptionHistory:
    """Complete state evolution of one block encryption.

    Attributes
    ----------
    plaintext, ciphertext:
        Input and output blocks (16-byte uint8 arrays).
    initial_state:
        State after the initial AddRoundKey (the LUT core's load cycle).
    rounds:
        Ten :class:`RoundTrace` records.
    round_keys:
        The 11 round keys.
    """

    plaintext: np.ndarray
    ciphertext: np.ndarray
    initial_state: np.ndarray
    rounds: List[RoundTrace]
    round_keys: List[np.ndarray]

    def cycle_states(self) -> List[np.ndarray]:
        """State captured in the state register at each core cycle.

        Index 0 is the load cycle (plaintext ^ rk0); indices 1..10 are
        the round outputs.  Length is 11 = the paper core's cycles per
        block.
        """
        return [self.initial_state] + [r.state_out for r in self.rounds]


def encrypt_block_with_history(
    plaintext: bytes | np.ndarray,
    key: bytes,
    round_keys: List[np.ndarray] | None = None,
) -> EncryptionHistory:
    """Encrypt one block, recording every intermediate state.

    ``round_keys`` lets callers with a fixed key (the LUT core
    encrypting a whole trace window) expand the schedule once instead
    of once per block; when given it must equal ``expand_key(key)``.
    """
    state = _as_state(plaintext)
    plaintext_arr = state.copy()
    if round_keys is None:
        round_keys = expand_key(key)
    state = state ^ round_keys[0]
    initial_state = state.copy()
    rounds: List[RoundTrace] = []
    for round_index in range(1, 11):
        state_in = state.copy()
        after_sub = _sub_bytes(state)
        after_shift = _shift_rows(after_sub)
        if round_index < 10:
            after_mix = _mix_columns(after_shift)
        else:
            after_mix = after_shift.copy()
        state = after_mix ^ round_keys[round_index]
        rounds.append(
            RoundTrace(
                round_index=round_index,
                state_in=state_in,
                after_subbytes=after_sub,
                after_shiftrows=after_shift,
                after_mixcolumns=after_mix,
                state_out=state.copy(),
            )
        )
    return EncryptionHistory(
        plaintext=plaintext_arr,
        ciphertext=state.copy(),
        initial_state=initial_state,
        rounds=rounds,
        round_keys=round_keys,
    )


def encrypt_block(plaintext: bytes | np.ndarray, key: bytes) -> bytes:
    """Encrypt one 16-byte block; returns the 16-byte ciphertext."""
    return bytes(encrypt_block_with_history(plaintext, key).ciphertext)


def decrypt_block(ciphertext: bytes | np.ndarray, key: bytes) -> bytes:
    """Decrypt one 16-byte block; returns the 16-byte plaintext."""
    state = _as_state(ciphertext)
    round_keys = expand_key(key)
    state = state ^ round_keys[10]
    for round_index in range(10, 0, -1):
        state = _inv_shift_rows(state)
        state = _inv_sub_bytes(state)
        state = state ^ round_keys[round_index - 1]
        if round_index > 1:
            state = _mix_columns(state, inverse=True)
    return bytes(state)
