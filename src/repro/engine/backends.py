"""Pluggable execution backends for the measurement engine.

A backend only knows how to evaluate a picklable function over a list
of payloads; the engine decides how to shard a render into payloads.
``serial`` is the in-process reference implementation; ``process``
fans shards out over a worker pool.  Because every random draw in the
render path comes from a stream named by (scenario, receiver, trace
index), sharding never changes the rendered samples — the backends
are interchangeable bit-for-bit.

Backends are **long-lived session objects**: resolving a backend by
name returns a process-wide session shared by every engine that asked
for the same spec, so the worker pool (and, for ``shared``, the input
arena) persists across dispatches instead of being rebuilt per render.
``close()`` releases the resources; the next dispatch transparently
restarts them.  :func:`close_backend_sessions` tears every session
down (the CLI calls it on exit, and an ``atexit`` hook covers
everything else).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    runtime_checkable,
)

from ..config import BACKEND_NAMES
from ..errors import ConfigError

_P = TypeVar("_P")
_R = TypeVar("_R")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can evaluate a function over payload shards."""

    name: str

    @property
    def parallelism(self) -> int:
        """How many shards are worth creating for one render."""
        ...

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads, preserving order."""
        ...


class SerialBackend:
    """In-process reference backend (no sharding)."""

    name = "serial"

    @property
    def parallelism(self) -> int:
        """Always one shard: the render stays in-process."""
        return 1

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads in order, in-process."""
        return [fn(payload) for payload in payloads]

    def close(self) -> None:
        """Nothing to release (uniform lifecycle hook)."""


class ProcessBackend:
    """Worker-pool backend sharding renders across processes.

    The pool is created lazily on first use and reused for every
    subsequent render (spawn-based platforms pay worker start-up only
    once); :meth:`close` tears it down explicitly — a later dispatch
    transparently restarts it — and Python's executor machinery joins
    any remaining workers at interpreter exit.

    Parameters
    ----------
    max_workers:
        Pool size (default: the machine's CPU count, minimum 2 so the
        sharding path is exercised even on single-core hosts).
    start_method:
        Worker start method (``"fork"`` / ``"spawn"`` / ...).  None
        prefers ``fork`` (cheap start-up, inherits sys.path) and falls
        back to the platform default where fork is missing.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        methods = multiprocessing.get_all_start_methods()
        if start_method is not None and start_method not in methods:
            raise ConfigError(
                f"unknown start method {start_method!r}; "
                f"choose from {tuple(methods)}"
            )
        self.max_workers = max_workers or max(os.cpu_count() or 1, 2)
        self.start_method = start_method
        self._executor: ProcessPoolExecutor | None = None

    @property
    def parallelism(self) -> int:
        """One shard per pool worker."""
        return self.max_workers

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            method = self.start_method
            if method is None:
                methods = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in methods else None
            context = multiprocessing.get_context(method)
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (a later map() restarts it)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def map(
        self, fn: Callable[[_P], _R], payloads: Sequence[_P]
    ) -> List[_R]:
        """Evaluate ``fn`` over payloads on the pool, preserving order."""
        if len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        return list(self._pool().map(fn, payloads))


#: Process-wide backend sessions, one per resolved (name, workers)
#: spec.  Engines resolving the same spec share the same pool (and
#: shared-memory arena), which is what lets a fleet of chips — each
#: with its own engine — amortize one worker pool across every
#: dispatch.
_SESSIONS: Dict[Tuple[str, int], "ExecutionBackend"] = {}


def close_backend_sessions() -> None:
    """Close every process-wide backend session.

    Sessions stay registered: the next render through them lazily
    restarts their pool/arena, so this is always safe to call.
    """
    for backend in _SESSIONS.values():
        close = getattr(backend, "close", None)
        if close is not None:
            close()


def backend_session_stats() -> List[Dict[str, object]]:
    """One row per live process-wide backend session.

    Observability hook for long-running deployments (the serve
    service's ``/metrics`` endpoint): which named backends this
    process has resolved, and the parallelism each one carries.
    """
    return [
        {
            "backend": name,
            "workers": workers,
            "parallelism": backend.parallelism,
        }
        for (name, workers), backend in sorted(_SESSIONS.items())
    ]


atexit.register(close_backend_sessions)


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    workers: int = 0,
) -> ExecutionBackend:
    """Turn a config/CLI backend spec into a backend session.

    Parameters
    ----------
    backend:
        A backend instance (returned as-is), a name (``"serial"`` /
        ``"process"`` / ``"shared"``), or None for the serial
        reference backend.
    workers:
        Worker count for the pool backends (0 = machine CPU count).

    Returns
    -------
    ExecutionBackend
        The resolved backend.  Named specs resolve to process-wide
        sessions: every engine asking for the same (name, workers)
        gets the *same* long-lived instance, so pools and shared
        arenas persist across dispatches and across engines.

    Raises
    ------
    ConfigError
        For unknown backend names.
    """
    if backend is None:
        return SerialBackend()
    if not isinstance(backend, str):
        return backend
    if backend not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown engine backend {backend!r}; choose from {BACKEND_NAMES}"
        )
    key = (backend, int(workers))
    session = _SESSIONS.get(key)
    if session is None:
        if backend == "serial":
            session = SerialBackend()
        elif backend == "process":
            session = ProcessBackend(max_workers=workers or None)
        else:
            # In-function import: shm subclasses ProcessBackend from
            # this module, so a top-level import would be circular.
            from .shm import SharedMemoryBackend

            session = SharedMemoryBackend(max_workers=workers or None)
        _SESSIONS[key] = session
    return session
