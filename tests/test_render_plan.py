"""The fused dispatch layer: RenderPlan/RenderTicket semantics.

The contract under test: any set of logical renders enqueued on one
plan — across couplings, coil stacks, engines and backends — executes
as fused engine passes whose demultiplexed results are bit-identical
to the standalone ``engine.render`` calls; the opt-in float32
precision is pinned to a tolerance instead.
"""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.sensors import quadrant_coil
from repro.engine import (
    MeasurementEngine,
    ProcessBackend,
    RenderPlan,
    SharedMemoryBackend,
)
from repro.errors import MeasurementError

#: Relative sample tolerance of the float32 fast path against the
#: float64 reference (single-precision rounding through the spectrum
#: assembly + irFFT; measured headroom is ~4x).
FLOAT32_RTOL = 2e-6


def _records(campaign, scenario, n, offset=0):
    from repro.workloads.scenarios import scenario_by_name

    s = scenario_by_name(scenario)
    return [campaign.record(s, offset + i) for i in range(n)]


# -- fusion bit-identity -----------------------------------------------------


def test_single_request_plan_matches_render(psa, campaign):
    recs = _records(campaign, "baseline", 3)
    reference = psa.render(recs, trace_indices=[7, 8, 9], sensors=[10, 2])
    plan = RenderPlan(engine=psa.engine)
    ticket = plan.add(
        psa.coupling, recs, trace_indices=[7, 8, 9], receiver_indices=[10, 2]
    )
    plan.execute()
    assert np.array_equal(ticket.result().samples, reference.samples)
    assert ticket.result().labels == reference.labels


def test_fused_requests_demux_bit_identically(psa, campaign):
    """Requests sharing (coupling, receivers) fuse into one job and
    slice back apart exactly."""
    recs = _records(campaign, "T1", 4)
    reference = psa.render(recs, trace_indices=[3, 5, 7, 9], sensors=[10, 5])
    plan = RenderPlan()
    first = psa.enqueue(
        plan, recs[:2], trace_indices=[3, 5], sensors=[10, 5], tag="a"
    )
    second = psa.enqueue(
        plan, recs[2:], trace_indices=[7, 9], sensors=[10, 5], tag="b"
    )
    plan.execute()
    assert first.tag == "a" and second.tag == "b"
    assert np.array_equal(first.result().samples, reference.samples[:, :2])
    assert np.array_equal(second.result().samples, reference.samples[:, 2:])


def test_mixed_couplings_and_stacks_on_one_plan(psa, campaign):
    """Standard-sensor renders and ad-hoc coil stacks share a plan."""
    recs = _records(campaign, "T2", 2)
    coils = [quadrant_coil(10, which) for which in ("sw", "ne")]
    ref_sensors = psa.render(recs, trace_indices=[11, 12], sensors=[10])
    ref_coils = psa.measure_coils_batch(coils, recs, trace_indices=[11, 12])
    plan = RenderPlan()
    sensor_ticket = psa.enqueue(
        plan, recs, trace_indices=[11, 12], sensors=[10]
    )
    coil_ticket = psa.enqueue_coils(plan, coils, recs, trace_indices=[11, 12])
    plan.execute()
    assert np.array_equal(
        sensor_ticket.result().samples, ref_sensors.samples
    )
    assert np.array_equal(coil_ticket.result().samples, ref_coils.samples)
    assert coil_ticket.result().labels == ref_coils.labels


def test_multiple_engines_one_plan(config, psa, campaign):
    """Engines with distinct seeds fuse at the wave level, each demuxed
    against its own standalone render."""
    other_engine = MeasurementEngine(
        config.with_(seed=config.seed + 1), amplifier=psa.amplifier
    )
    recs = _records(campaign, "baseline", 2)
    ref_a = psa.render(recs, trace_indices=[1, 2], sensors=[10])
    ref_b = other_engine.render(
        psa.coupling, recs, trace_indices=[1, 2], receiver_indices=[10]
    )
    assert not np.array_equal(ref_a.samples, ref_b.samples)
    plan = RenderPlan()
    t_a = psa.enqueue(plan, recs, trace_indices=[1, 2], sensors=[10])
    t_b = plan.add(
        psa.coupling,
        recs,
        trace_indices=[1, 2],
        receiver_indices=[10],
        engine=other_engine,
    )
    plan.execute()
    assert np.array_equal(t_a.result().samples, ref_a.samples)
    assert np.array_equal(t_b.result().samples, ref_b.samples)


@pytest.mark.parametrize("backend_factory", [
    lambda: ProcessBackend(2),
    lambda: SharedMemoryBackend(2),
])
def test_fused_plan_on_pool_backends(config, psa, campaign, backend_factory):
    """One pool wave serves many fused jobs, bit-identical to serial."""
    backend = backend_factory()
    engine = MeasurementEngine(
        config, amplifier=psa.amplifier, backend=backend
    )
    try:
        recs = _records(campaign, "T3", 4)
        ref = psa.render(recs, trace_indices=[3, 5, 7, 9], sensors=[10, 5])
        plan = RenderPlan(engine=engine)
        t1 = plan.add(
            psa.coupling, recs[:2], trace_indices=[3, 5],
            receiver_indices=[10, 5],
        )
        t2 = plan.add(
            psa.coupling, recs[2:], trace_indices=[7, 9],
            receiver_indices=[10, 5],
        )
        plan.execute()
        fused = np.concatenate(
            [t1.result().samples, t2.result().samples], axis=1
        )
        assert np.array_equal(fused, ref.samples)
    finally:
        engine.close()


def test_campaign_enqueue_stream_matches_collect_stream(psa, campaign):
    from repro.workloads.campaign import StreamSegment

    segments = [StreamSegment("baseline", 2, 30), StreamSegment("T1", 2, 32)]
    reference = campaign.collect_stream(segments, sensors=[10, 0])
    plan = RenderPlan()
    ticket = campaign.enqueue_stream(plan, segments, sensors=[10, 0])
    plan.execute()
    batch = ticket.result()
    assert np.array_equal(batch.samples, reference.samples)
    assert batch.scenarios == reference.scenarios
    assert batch.trace_indices == reference.trace_indices


def test_score_map_prefetch_matches_standalone(psa, campaign):
    from repro.core.analysis.localizer import Localizer

    localizer = Localizer(psa)
    base = _records(campaign, "baseline", 2)
    active = _records(campaign, "T1", 2)
    reference = localizer.score_map(base, active)
    plan = RenderPlan()
    tickets = localizer.enqueue_score_map(plan, base, active)
    plan.execute()
    assert np.array_equal(localizer.finish_score_map(tickets), reference)


# -- plan lifecycle errors ---------------------------------------------------


def test_result_before_execute_raises(psa, campaign):
    plan = RenderPlan()
    ticket = psa.enqueue(plan, _records(campaign, "idle", 1))
    with pytest.raises(MeasurementError, match="not executed"):
        ticket.result()


def test_plan_executes_once(psa, campaign):
    plan = RenderPlan()
    psa.enqueue(plan, _records(campaign, "idle", 1))
    plan.execute()
    with pytest.raises(MeasurementError, match="already executed"):
        plan.execute()
    with pytest.raises(MeasurementError, match="already executed"):
        psa.enqueue(plan, _records(campaign, "idle", 1))


def test_add_without_engine_raises(psa, campaign):
    plan = RenderPlan()
    with pytest.raises(MeasurementError, match="no engine"):
        plan.add(psa.coupling, _records(campaign, "idle", 1))


def test_empty_plan_executes(config):
    RenderPlan().execute()


# -- float32 fast path -------------------------------------------------------


def test_float32_pinned_to_tolerance(config, psa, campaign):
    recs = _records(campaign, "T4", 3)
    reference = psa.render(recs, trace_indices=[5, 6, 7], sensors=[10, 0])
    engine32 = MeasurementEngine(
        config, amplifier=psa.amplifier, precision="float32"
    )
    batch32 = engine32.render(
        psa.coupling, recs, trace_indices=[5, 6, 7], receiver_indices=[10, 0]
    )
    assert batch32.samples.dtype == np.float32
    scale = float(np.max(np.abs(reference.samples)))
    err = float(np.max(np.abs(batch32.samples - reference.samples)))
    assert err <= FLOAT32_RTOL * scale


def test_float32_from_config(psa, campaign):
    config32 = SimConfig(engine_precision="float32")
    engine32 = MeasurementEngine(config32, amplifier=psa.amplifier)
    batch = engine32.render(
        psa.coupling,
        _records(campaign, "baseline", 1),
        trace_indices=[0],
        receiver_indices=[10],
    )
    assert batch.samples.dtype == np.float32


def test_unknown_precision_rejected(config, psa):
    with pytest.raises(MeasurementError, match="precision"):
        MeasurementEngine(config, amplifier=psa.amplifier, precision="half")
