"""Reference-free spectral-anomaly detection (after arXiv:2601.20163).

Tahghigh & Salmani's spectral-anomaly method needs no golden model, no
matched reference workload and — unlike the rolling-Welford
self-baseline — no self-history either: each captured spectrum is
judged against *its own* broadband noise floor.  The statistic is the
sideband excess
(:func:`~repro.core.analysis.spectral.sideband_excess_db`): the RMS of
the two prominent Trojan sidebands in dB over the median amplitude at
the noise-floor probe frequencies midway between clock harmonics.

Because the statistic carries its reference inside every single
window, the detector is armed from window 0 and sees an always-on
Trojan immediately — the class the self-baseline is structurally
blind to.  The price is an absolute threshold: the excess must clear a
fixed margin (in dB) rather than a learned per-chip distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import SimConfig
from ..core.analysis.spectral import excess_display_bins, sideband_excess_db
from ..errors import AnalysisError
from .base import BankStep, Detector

#: Default alarm threshold on the sideband excess [dB].  Calibrated on
#: the simulated testbench: the AES block harmonics put real energy at
#: the sideband frequencies even Trojan-quiet (excess 14-23 dB over
#: the inter-harmonic noise floor), the strong narrowband emitters
#: (T1, T2 and every always-on variant) clear 36+ dB, while T3's weak
#: CDMA leakage (< 31 dB) and T4's heater (which raises the *floor*,
#: collapsing its own relative excess below baseline's) stay under —
#: the reference-free statistic's own structural blind spots.
DEFAULT_EXCESS_THRESHOLD_DB = 33.0


@dataclass(frozen=True)
class SpectralConfig:
    """Tuning of the spectral-anomaly detector.

    Attributes
    ----------
    excess_threshold_db:
        Alarm threshold on the per-window sideband excess [dB].
    consecutive:
        Super-threshold windows required to complete an alarm (the
        same debounce discipline as the Welford bank).
    """

    excess_threshold_db: float = DEFAULT_EXCESS_THRESHOLD_DB
    consecutive: int = 2

    def __post_init__(self):
        if not np.isfinite(self.excess_threshold_db):
            raise AnalysisError("excess_threshold_db must be finite")
        if self.consecutive < 1:
            raise AnalysisError("consecutive must be >= 1")


class SpectralDetector(Detector):
    """Per-window sideband-excess thresholding, reference-free.

    Parameters
    ----------
    n_streams:
        Parallel feature streams (one per monitored sensor).
    config:
        Threshold and debounce tuning.
    """

    name = "spectral"
    feature_kind = "sideband-excess-db"

    def __init__(self, n_streams: int, config: Optional[SpectralConfig] = None):
        super().__init__(n_streams)
        self.config = config or SpectralConfig()
        self._streak = np.zeros(n_streams, dtype=np.int64)

    # -- spectral reduction ----------------------------------------------------

    def display_bins(self, grid: np.ndarray, config: SimConfig) -> np.ndarray:
        return excess_display_bins(grid, config)

    def features(
        self, freqs: np.ndarray, amps: np.ndarray, config: SimConfig
    ) -> np.ndarray:
        return sideband_excess_db(freqs, amps, config)

    # -- temporal decision -----------------------------------------------------

    def reset(self) -> None:
        self._streak.fill(0)

    @property
    def armed(self) -> np.ndarray:
        """Always armed: every window carries its own reference."""
        return np.ones(self.n_streams, dtype=bool)

    def fit(self, values: np.ndarray) -> None:
        """No cross-window model to train — validates and discards."""
        self._check_values(values)

    def score(self, values: np.ndarray) -> np.ndarray:
        """The excess itself [dB]; compare against the threshold."""
        return self._check_values(values)

    def update(self, values: np.ndarray) -> BankStep:
        values = self._check_values(values)
        config = self.config
        over = values > config.excess_threshold_db
        # Same debounce discipline as DetectorBank.step: streak capped
        # at `consecutive`, reset when an alarm fires.
        self._streak = np.where(
            over, np.minimum(self._streak + 1, config.consecutive), 0
        )
        fired = self._streak >= config.consecutive
        self._streak[fired] = 0
        return BankStep(
            z=values.copy(),
            armed=np.ones(self.n_streams, dtype=bool),
            alarm=fired,
        )
