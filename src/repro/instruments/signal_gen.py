"""Stimulus generation for bench experiments.

Section VI-C injects "a 70 mV frequency sweeping chirp signal" into one
PSA sensor to measure its current response across supply voltages.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeasurementError
from ..traces import Trace


def chirp(
    f_start: float,
    f_stop: float,
    duration: float,
    fs: float,
    amplitude: float = 70e-3,
) -> Trace:
    """Linear chirp trace.

    Parameters
    ----------
    f_start, f_stop:
        Sweep endpoints [Hz].
    duration:
        Sweep length [s].
    fs:
        Sampling rate [Hz].
    amplitude:
        Peak amplitude [V] (paper: 70 mV).
    """
    if f_start < 0 or f_stop <= f_start:
        raise MeasurementError("need 0 <= f_start < f_stop")
    if f_stop >= fs / 2:
        raise MeasurementError("f_stop must sit below Nyquist")
    if duration <= 0:
        raise MeasurementError("duration must be positive")
    n = int(round(duration * fs))
    if n < 16:
        raise MeasurementError("chirp too short for its sampling rate")
    t = np.arange(n) / fs
    sweep_rate = (f_stop - f_start) / duration
    phase = 2.0 * np.pi * (f_start * t + 0.5 * sweep_rate * t * t)
    return Trace(
        samples=amplitude * np.sin(phase),
        fs=fs,
        label="chirp",
        meta={"f_start": f_start, "f_stop": f_stop, "amplitude": amplitude},
    )
