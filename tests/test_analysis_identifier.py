"""Zero-span Trojan identification."""

import pytest

from repro.core.analysis.identifier import TrojanIdentifier
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def identifier():
    return TrojanIdentifier()


def test_all_four_trojans_identified(identifier, psa, records):
    """Section VI-D: all 4 HTs classified without full supervision."""
    for trojan in ("T1", "T2", "T3", "T4"):
        trace = psa.measure(records[trojan][0], 10, trace_index=700)
        result = identifier.classify(trace)
        assert result.label == trojan, (
            f"{trojan} misidentified as {result.label}: {result.features}"
        )


def test_identification_stable_across_noise(identifier, psa, records):
    labels = set()
    for trace_index in range(3):
        trace = psa.measure(records["T1"][0], 10, trace_index=trace_index)
        labels.add(identifier.classify(trace).label)
    assert labels == {"T1"}


def test_t1_envelope_shows_carrier(identifier, psa, records):
    trace = psa.measure(records["T1"][0], 10, 0)
    feats = identifier.features(trace)
    assert feats.dominant_freq == pytest.approx(750e3, rel=0.3)
    assert feats.autocorr_peak > 0.8


def test_t4_envelope_aperiodic(identifier, psa, records):
    trace = psa.measure(records["T4"][0], 10, 0)
    feats = identifier.features(trace)
    assert feats.autocorr_peak < 0.4


def test_zero_span_capture_properties(identifier, psa, records):
    trace = psa.measure(records["T1"][0], 10, 0)
    capture = identifier.zero_span(trace)
    assert capture.f_center == pytest.approx(48e6)
    assert (capture.envelope >= 0).all()
    assert capture.fs < trace.fs


def test_unsupervised_clustering_separates_trojans(identifier, psa, records):
    traces = []
    truth = []
    for trojan in ("T1", "T2", "T3", "T4"):
        for index in range(2):
            traces.append(psa.measure(records[trojan][index], 10, 50 + index))
            truth.append(trojan)
    result = identifier.cluster(traces, n_clusters=4)
    # Same-Trojan traces land in the same cluster.
    for i in (0, 2, 4, 6):
        assert result.labels[i] == result.labels[i + 1], truth[i]
    labeled = identifier.label_clusters(traces, result)
    predicted = [labeled[int(c)] for c in result.labels]
    assert predicted == truth


def test_cluster_needs_enough_traces(identifier, psa, records):
    trace = psa.measure(records["T1"][0], 10, 0)
    with pytest.raises(AnalysisError):
        identifier.cluster([trace], n_clusters=4)
