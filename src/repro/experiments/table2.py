"""Table II: Trojan gate counts and percentages."""

from __future__ import annotations

from typing import List

from ..netlist.stats import TrojanGateRow, expected_table, trojan_gate_table
from .reporting import format_table


def run_table2() -> List[TrojanGateRow]:
    """Compute Table II from the built netlist."""
    return trojan_gate_table()


def format_table2(rows: List[TrojanGateRow]) -> str:
    """Render Table II next to the paper's values."""
    paper = {row.circuit: row for row in expected_table()}
    body = []
    for row in rows:
        expected = paper[row.circuit]
        body.append(
            (
                row.circuit,
                row.n_cells,
                f"{row.percentage:.2f}",
                expected.n_cells,
                f"{expected.percentage:.2f}",
            )
        )
    return format_table(
        ["circuit", "cells", "%", "paper cells", "paper %"], body
    )
