"""PSA-EM: programmable on-chip EM sensor array simulation.

A full-stack reproduction of *"Programmable EM Sensor Array for
Golden-Model Free Run-time Trojan Detection and Localization"*
(Wang et al., DATE 2024): the AES-128 test chip with its four hardware
Trojans, the physical EM substrate, the programmable sensor array, the
comparison baselines, and the cross-domain detection / localization /
identification pipeline.

Quickstart::

    from repro import (
        SimConfig, TestChip, ProgrammableSensorArray, CrossDomainAnalyzer,
    )

    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    report = CrossDomainAnalyzer(chip, psa).run("T1")
    print(report.mttd, report.localization.sensor_index,
          report.identification.label)
"""

from ._version import __version__
from .config import DEFAULT_CONFIG, SimConfig
from .errors import ReproError
from .traces import Trace
from .chip.testchip import TestChip
from .chip.floorplan import Floorplan, Rect, default_floorplan
from .core.array import ProgrammableSensorArray
from .core.grid import PsaGrid
from .core.coil import Coil, synthesize_rect_coil
from .core.analysis.pipeline import CrossDomainAnalyzer, CrossDomainReport
from .engine import MeasurementEngine, TraceBatch
from .instruments.spectrum_analyzer import SpectrumAnalyzer
from .store import ArtifactStore
from .workloads.campaign import MeasurementCampaign
from .traceio import load_traces, save_traces

__all__ = [
    "__version__",
    "DEFAULT_CONFIG",
    "SimConfig",
    "ReproError",
    "Trace",
    "TestChip",
    "Floorplan",
    "Rect",
    "default_floorplan",
    "ProgrammableSensorArray",
    "PsaGrid",
    "Coil",
    "synthesize_rect_coil",
    "CrossDomainAnalyzer",
    "CrossDomainReport",
    "MeasurementEngine",
    "TraceBatch",
    "ArtifactStore",
    "SpectrumAnalyzer",
    "MeasurementCampaign",
    "load_traces",
    "save_traces",
]
