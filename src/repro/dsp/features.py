"""Envelope feature extraction for Trojan identification.

Section VI-D of the paper identifies *which* Trojan is active from the
time-domain waveform of a prominent sideband (zero-span mode): each
Trojan amplitude-modulates the clock harmonics differently, so the
recovered envelopes differ in modulation frequency, burstiness and
periodicity.  The features here quantify exactly those differences:

* T1 (AM radio carrier)  — smooth sinusoidal envelope at 750 kHz.
* T2 (key-wire inverters) — plaintext-gated on/off bursts, block-aligned.
* T3 (CDMA leaker)        — pseudo-random binary chip pattern.
* T4 (DoS heater)         — constant elevated level, low variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class EnvelopeFeatures:
    """Scalar features of one zero-span envelope.

    Attributes
    ----------
    mean:
        Mean envelope level [V].
    ripple:
        Coefficient of variation (std / mean); near zero for a constant
        envelope (T4), large for bursty envelopes (T2, T3).
    dominant_freq:
        Frequency [Hz] of the strongest non-DC envelope component.
    dominant_strength:
        Amplitude of that component relative to the envelope mean.
    duty_cycle:
        Fraction of samples above the midpoint between the 10th and
        90th percentile levels; ~0.5 for a sine, workload-dependent for
        gated bursts, ~1.0 for a constant level.
    bimodality:
        Sarle's bimodality coefficient; high (> 5/9) for two-level
        (on/off) envelopes, low for sinusoidal or constant ones.
    autocorr_peak:
        Highest normalized autocorrelation at a non-zero lag; near 1 for
        strongly periodic envelopes, low for pseudo-random chips.
    spectral_flatness:
        Geometric/arithmetic mean ratio of the envelope power spectrum
        (excluding DC); near 1 for noise-like (PN-coded) envelopes.
    """

    mean: float
    ripple: float
    dominant_freq: float
    dominant_strength: float
    duty_cycle: float
    bimodality: float
    autocorr_peak: float
    spectral_flatness: float

    def vector(self) -> np.ndarray:
        """Full feature vector in a fixed order."""
        return np.array(
            [
                self.ripple,
                np.log10(max(self.dominant_freq, 1.0)),
                self.dominant_strength,
                self.duty_cycle,
                self.bimodality,
                self.autocorr_peak,
                self.spectral_flatness,
            ]
        )

    def cluster_vector(self) -> np.ndarray:
        """Workload-robust subset used for unsupervised clustering.

        The dominant envelope *frequency* is excluded: for aperiodic
        envelopes (the T4 droop signature) it jumps between workload-
        dependent components, which would scatter one Trojan's traces
        across clusters.  The remaining shape features are stable per
        Trojan.
        """
        return np.array(
            [
                self.ripple,
                self.dominant_strength,
                self.duty_cycle,
                self.bimodality,
                self.autocorr_peak,
                self.spectral_flatness,
            ]
        )

    def as_dict(self) -> Dict[str, float]:
        """All features by name."""
        return {
            "mean": self.mean,
            "ripple": self.ripple,
            "dominant_freq": self.dominant_freq,
            "dominant_strength": self.dominant_strength,
            "duty_cycle": self.duty_cycle,
            "bimodality": self.bimodality,
            "autocorr_peak": self.autocorr_peak,
            "spectral_flatness": self.spectral_flatness,
        }


def envelope_features(envelope: np.ndarray, fs: float) -> EnvelopeFeatures:
    """Extract :class:`EnvelopeFeatures` from a real envelope trace.

    Parameters
    ----------
    envelope:
        Real, non-negative zero-span envelope samples.
    fs:
        Envelope sampling rate [Hz].
    """
    env = np.asarray(envelope, dtype=float)
    if env.ndim != 1 or env.size < 16:
        raise AnalysisError("envelope must be 1-D with at least 16 samples")
    mean = float(env.mean())
    if mean <= 0.0:
        raise AnalysisError("envelope mean must be positive")
    std = float(env.std())
    ripple = std / mean

    ac = env - mean
    spec = np.abs(np.fft.rfft(ac))
    freqs = np.fft.rfftfreq(env.size, d=1.0 / fs)
    if spec.size > 1:
        peak_bin = int(np.argmax(spec[1:])) + 1
        dominant_freq = float(freqs[peak_bin])
        dominant_strength = float(2.0 * spec[peak_bin] / env.size / mean)
    else:
        dominant_freq = 0.0
        dominant_strength = 0.0

    lo, hi = np.percentile(env, [10.0, 90.0])
    midpoint = 0.5 * (lo + hi)
    duty_cycle = float(np.mean(env > midpoint))

    bimodality = _bimodality_coefficient(env)
    autocorr_peak = _autocorrelation_peak(ac)
    spectral_flatness = _spectral_flatness(spec[1:])

    return EnvelopeFeatures(
        mean=mean,
        ripple=ripple,
        dominant_freq=dominant_freq,
        dominant_strength=dominant_strength,
        duty_cycle=duty_cycle,
        bimodality=bimodality,
        autocorr_peak=autocorr_peak,
        spectral_flatness=spectral_flatness,
    )


def _bimodality_coefficient(samples: np.ndarray) -> float:
    """Sarle's bimodality coefficient (uniform ~ 5/9, bimodal > 5/9)."""
    n = samples.size
    std = samples.std()
    if std == 0.0:
        return 0.0
    centered = (samples - samples.mean()) / std
    skew = float(np.mean(centered**3))
    kurt = float(np.mean(centered**4)) - 3.0
    denom = kurt + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    if denom <= 0.0:
        return 0.0
    return float((skew**2 + 1.0) / denom)


def _autocorrelation_peak(centered: np.ndarray) -> float:
    """Max normalized autocorrelation at lags >= 4 samples."""
    n = centered.size
    power = float(np.dot(centered, centered))
    if power == 0.0:
        return 0.0
    # FFT-based autocorrelation.
    padded = np.fft.rfft(centered, n=2 * n)
    ac = np.fft.irfft(padded * np.conj(padded))[:n]
    ac /= ac[0]
    min_lag = 4
    max_lag = n // 2
    if max_lag <= min_lag:
        return 0.0
    return float(np.max(ac[min_lag:max_lag]))


def _spectral_flatness(spec: np.ndarray) -> float:
    """Geometric over arithmetic mean of a power spectrum (0..1]."""
    power = np.asarray(spec, dtype=float) ** 2
    power = power[power > 0.0]
    if power.size == 0:
        return 0.0
    log_mean = float(np.mean(np.log(power)))
    arith = float(np.mean(power))
    if arith == 0.0:
        return 0.0
    return float(np.exp(log_mean) / arith)
