"""Section VI-B: SNR measurement (Equation (1)).

Reproduces the paper's comparison: PSA 41.0 dB, on-chip single coil
30.5 dB, external Langer LF1 probe 14.3 dB, plus the text remark that
the best external micro-probe (ICR HH100-6) reaches ~34 dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..baselines.common import ReceiverBench
from ..calibration import PAPER_SNR_DB
from ..dsp.metrics import snr_rms_db
from ..em.probes import icr_hh100_probe, langer_lf1_probe, single_coil_receiver
from ..workloads.scenarios import scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import format_table


@dataclass(frozen=True)
class SnrResult:
    """Measured vs paper SNR per receiver."""

    measured_db: Dict[str, float]
    paper_db: Dict[str, float]

    def deviation_db(self, name: str) -> float:
        """Measured minus paper value."""
        return self.measured_db[name] - self.paper_db[name]


def run_snr(
    ctx: Optional[ExperimentContext] = None, n_traces: int = 2
) -> SnrResult:
    """Measure He-style SNR for the PSA and the three comparators."""
    ctx = ctx or default_context()
    signal_scn = scenario_by_name("baseline")
    idle_scn = scenario_by_name("idle")
    sig_records = [ctx.campaign.record(signal_scn, i) for i in range(n_traces)]
    idle_records = [ctx.campaign.record(idle_scn, i) for i in range(n_traces)]

    measured: Dict[str, float] = {}
    sig = np.concatenate(
        [ctx.psa.measure(r, 10, i).samples for i, r in enumerate(sig_records)]
    )
    idle = np.concatenate(
        [ctx.psa.measure(r, 10, i).samples for i, r in enumerate(idle_records)]
    )
    measured["psa"] = snr_rms_db(sig, idle)

    for name, receiver in [
        ("single_coil", single_coil_receiver()),
        ("langer_lf1", langer_lf1_probe()),
        ("icr_hh100", icr_hh100_probe()),
    ]:
        bench = ReceiverBench(ctx.chip, receiver)
        sig = np.concatenate(
            [bench.measure(r, i).samples for i, r in enumerate(sig_records)]
        )
        idle = np.concatenate(
            [bench.measure(r, i).samples for i, r in enumerate(idle_records)]
        )
        measured[name] = snr_rms_db(sig, idle)
    return SnrResult(measured_db=measured, paper_db=dict(PAPER_SNR_DB))


def format_snr(result: SnrResult) -> str:
    """Render the Section VI-B comparison."""
    rows = []
    for name in ["psa", "single_coil", "icr_hh100", "langer_lf1"]:
        rows.append(
            (
                name,
                f"{result.measured_db[name]:.1f}",
                f"{result.paper_db[name]:.1f}",
                f"{result.deviation_db(name):+.1f}",
            )
        )
    return format_table(
        ["receiver", "measured SNR [dB]", "paper [dB]", "delta"], rows
    )
