"""Units and conversion helpers."""

import math

import pytest

from repro import units


def test_mu0_value():
    assert units.MU0 == pytest.approx(4e-7 * math.pi)


def test_scale_prefixes_are_consistent():
    assert units.MM == pytest.approx(1e3 * units.UM)
    assert units.MM == pytest.approx(1e6 * units.NM)
    assert units.MHZ == pytest.approx(1e3 * units.KHZ)
    assert units.US == pytest.approx(1e3 * units.NS)


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == 25.0
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_db_amplitude_definition():
    assert units.db(10.0) == pytest.approx(20.0)
    assert units.db(1.0) == pytest.approx(0.0)
    assert units.from_db(units.db(3.7)) == pytest.approx(3.7)


def test_db_power_definition():
    assert units.db_power(10.0) == pytest.approx(10.0)
    assert units.from_db_power(units.db_power(42.0)) == pytest.approx(42.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_db_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        units.db(bad)
    with pytest.raises(ValueError):
        units.db_power(bad)
