"""MTTD accounting."""

import pytest

from repro.core.analysis.mttd import MttdModel, MttdResult, mttd_from_alarm
from repro.config import SimConfig
from repro.errors import AnalysisError


def test_trace_period_includes_processing():
    config = SimConfig()
    model = MttdModel(processing_latency_s=0.9e-3)
    assert model.trace_period(config) == pytest.approx(
        config.duration + 0.9e-3
    )


def test_mttd_computation():
    config = SimConfig()
    model = MttdModel(processing_latency_s=1e-3)
    result = mttd_from_alarm(
        alarm_index=9, trigger_index=8, config=config, model=model
    )
    assert result.detected
    assert result.traces_to_detect == 2
    assert result.mttd_s == pytest.approx(2 * model.trace_period(config))


def test_paper_budget_check():
    config = SimConfig()
    result = mttd_from_alarm(10, 8, config, MttdModel())
    assert result.within(10e-3, 10)
    slow = MttdResult(detected=True, traces_to_detect=12, mttd_s=15e-3)
    assert not slow.within(10e-3, 10)


def test_missed_detection():
    result = mttd_from_alarm(None, 8, SimConfig())
    assert not result.detected
    assert result.mttd_s is None
    assert not result.within(10e-3, 10)


def test_pre_trigger_alarm_classified_as_false_alarm():
    """An alarm before the activation is a false alarm, not a latency."""
    result = mttd_from_alarm(alarm_index=5, trigger_index=8, config=SimConfig())
    assert result.false_alarm
    assert not result.detected
    assert result.traces_to_detect is None
    assert result.mttd_s is None
    assert not result.within(10e-3, 10)


def test_true_detection_has_no_false_alarm_flag():
    result = mttd_from_alarm(alarm_index=9, trigger_index=8, config=SimConfig())
    assert result.detected and not result.false_alarm
    missed = mttd_from_alarm(None, 8, SimConfig())
    assert not missed.detected and not missed.false_alarm


def test_pre_trigger_alarm_stream_end_to_end():
    """A detector stream whose baseline glitches pre-trigger yields a
    classified false alarm instead of a bogus negative MTTD."""
    from repro.core.analysis.detector import DetectorConfig, RuntimeDetector

    config = SimConfig()
    detector = RuntimeDetector(
        DetectorConfig(warmup=4, consecutive=2, z_threshold=5.0)
    )
    # Warm-up, then a 2-trace glitch *before* the Trojan activates.
    stream = [0.0, 0.1, -0.1, 0.05, 80.0, 80.0, 0.0, 0.0, 40.0, 40.0]
    trigger_index = 8
    alarm = detector.run(stream)
    assert alarm is not None and alarm < trigger_index
    result = mttd_from_alarm(alarm, trigger_index, config)
    assert result.false_alarm and not result.detected
    assert result.mttd_s is None


def test_negative_latency_rejected():
    with pytest.raises(AnalysisError):
        MttdModel(processing_latency_s=-1e-3)


def test_default_cadence_meets_paper_budget():
    """Capture (16 us) + processing (0.9 ms) x a few traces < 10 ms."""
    config = SimConfig()
    model = MttdModel()
    assert 3 * model.trace_period(config) < 10e-3
