"""Trojan trigger and payload models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trojans.base import SIDEBAND_BLOCK_HARMONIC, CycleContext, block_pattern
from repro.trojans.catalog import TROJAN_CATALOG, make_trojan, standard_trojans
from repro.trojans.t1_am_carrier import T1_TERMINAL, T1AmCarrier
from repro.trojans.t2_leakage import T2KeyLeakInverters
from repro.trojans.t3_cdma import PN_PERIOD, PN_SEQUENCE, T3CdmaLeaker
from repro.trojans.t4_dos import T4DosHeater


def _ctx(cycle=0, plaintext=b"\x00" * 16, key_hd=64, aes_norm=0.5):
    return CycleContext(
        cycle=cycle,
        block=cycle // 11,
        phase=cycle % 11,
        block_cycles=11,
        time_s=cycle / 33e6,
        plaintext=plaintext,
        key_hd=key_hd,
        aes_norm=aes_norm,
    )


def test_block_pattern_concentrates_fifth_harmonic():
    """The burst pattern's discrete spectrum peaks at harmonic 5."""
    pattern = np.array([block_pattern(p, 11) for p in range(11)])
    spectrum = np.abs(np.fft.rfft(pattern - pattern.mean()))
    assert int(np.argmax(spectrum[1:])) + 1 == SIDEBAND_BLOCK_HARMONIC


def test_t1_counter_period_matches_paper():
    """0x1FFFFF terminal at 33 MHz -> ~63.6 ms activation period."""
    period_s = (T1_TERMINAL + 1) / 33e6
    assert period_s == pytest.approx(63.6e-3, rel=0.01)


def test_t1_fires_at_terminal_count():
    trojan = T1AmCarrier(enabled=True, start_count=T1_TERMINAL, burst_cycles=100)
    assert trojan.is_active(_ctx(cycle=0))
    assert trojan.is_active(_ctx(cycle=99))
    assert not trojan.is_active(_ctx(cycle=100))


def test_t1_never_fires_when_disabled():
    trojan = T1AmCarrier(enabled=False, start_count=T1_TERMINAL)
    assert not any(trojan.is_active(_ctx(cycle=c)) for c in range(200))


def test_t1_payload_carries_750khz_envelope():
    trojan = T1AmCarrier(enabled=True, start_count=T1_TERMINAL)
    # Payload at the carrier's peak vs trough (same block phase).
    quarter = int(33e6 / 750e3 / 4)
    cycles = [11 * (quarter // 11), 11 * ((3 * quarter) // 11)]
    peaks = [trojan.payload_toggles(_ctx(cycle=c)) for c in cycles]
    assert max(peaks) > 2 * min(peaks) or min(peaks) == 0.0


def test_t1_out_of_order_cycles_rejected():
    trojan = T1AmCarrier(enabled=True)
    trojan.is_active(_ctx(cycle=10))
    with pytest.raises(WorkloadError):
        trojan.is_active(_ctx(cycle=5))
    trojan.reset()
    assert not trojan.is_active(_ctx(cycle=0))


def test_t2_trigger_condition():
    trojan = T2KeyLeakInverters(enabled=True)
    assert trojan.is_active(_ctx(plaintext=b"\xaa\xaa" + b"\x00" * 14))
    assert not trojan.is_active(_ctx(plaintext=b"\xaa\xab" + b"\x00" * 14))
    assert not trojan.is_active(_ctx(plaintext=b"\x00" * 16))


def test_t2_payload_scales_with_key_hd():
    trojan = T2KeyLeakInverters(enabled=True)
    ctx_lo = _ctx(cycle=1, plaintext=b"\xaa\xaa" + b"\x00" * 14, key_hd=16)
    ctx_hi = _ctx(cycle=1, plaintext=b"\xaa\xaa" + b"\x00" * 14, key_hd=64)
    assert trojan.payload_toggles(ctx_hi) == pytest.approx(
        4 * trojan.payload_toggles(ctx_lo)
    )


def test_pn_sequence_is_maximal():
    assert len(PN_SEQUENCE) == PN_PERIOD == 63
    assert sum(PN_SEQUENCE) == 32  # balanced m-sequence: 32 ones, 31 zeros
    # The sequence must not be constant or short-period.
    for period in (1, 3, 7, 9, 21):
        assert PN_SEQUENCE != PN_SEQUENCE[period:] + PN_SEQUENCE[:period]


def test_t3_chip_stream_follows_pn():
    trojan = T3CdmaLeaker(enabled=True, key=b"\x00" * 16, chip_cycles=22)
    chips = [trojan.chip_value(c * 22) for c in range(PN_PERIOD)]
    assert chips == PN_SEQUENCE  # key bit 0 -> chip = pn


def test_t3_key_bit_inverts_chips():
    key_one = b"\x01" + b"\x00" * 15  # first key bit = 1
    trojan = T3CdmaLeaker(enabled=True, key=key_one, chip_cycles=22)
    chips = [trojan.chip_value(c * 22) for c in range(PN_PERIOD)]
    assert chips == [1 - bit for bit in PN_SEQUENCE]


def test_t3_payload_gated_by_chip():
    trojan = T3CdmaLeaker(enabled=True, key=b"\x00" * 16)
    active = [
        trojan.payload_toggles(_ctx(cycle=c)) for c in range(0, 22 * 8, 22)
    ]
    assert any(v == 0.0 for v in active)
    assert any(v > 0.0 for v in active)


def test_t4_droop_modulation():
    trojan = T4DosHeater(enabled=True, droop_coupling=0.3)
    quiet = trojan.payload_toggles(_ctx(aes_norm=0.0))
    busy = trojan.payload_toggles(_ctx(aes_norm=1.0))
    assert quiet == pytest.approx(trojan.n_cells * trojan.ro_toggle_rate)
    assert busy == pytest.approx(quiet * 0.7)


def test_t4_default_droop_detectable():
    """The default coupling leaves a clear AES-correlated ripple."""
    trojan = T4DosHeater(enabled=True)
    quiet = trojan.payload_toggles(_ctx(aes_norm=0.0))
    busy = trojan.payload_toggles(_ctx(aes_norm=1.0))
    assert (quiet - busy) / quiet == pytest.approx(
        trojan.droop_coupling, rel=1e-9
    )


def test_always_on_flags():
    assert not T1AmCarrier().always_on
    assert not T2KeyLeakInverters().always_on
    assert T3CdmaLeaker().always_on
    assert T4DosHeater().always_on


def test_clock_phases():
    """T4's power virus is main-clock synchronous; the rest strobe on
    the inverted clock."""
    assert T4DosHeater().clock_phase == "rising"
    for trojan in (T1AmCarrier(), T2KeyLeakInverters(), T3CdmaLeaker()):
        assert trojan.clock_phase == "falling"


def test_inactive_trojans_still_tick():
    """Trigger circuits keep a tiny, nonzero footprint when inactive."""
    for trojan in standard_trojans():
        toggles = trojan.toggles(_ctx(cycle=0))
        assert 0.0 < toggles < 10.0


def test_catalog_matches_table2():
    assert set(TROJAN_CATALOG) == {"T1", "T2", "T3", "T4"}
    assert TROJAN_CATALOG["T3"].n_cells == 329
    assert TROJAN_CATALOG["T1"].trigger.startswith("21-bit counter")


def test_make_trojan_factory():
    trojan = make_trojan("T4", enabled=True)
    assert isinstance(trojan, T4DosHeater)
    assert trojan.enabled
    with pytest.raises(WorkloadError):
        make_trojan("T9")


def test_parameter_validation():
    with pytest.raises(WorkloadError):
        T1AmCarrier(start_count=-1)
    with pytest.raises(WorkloadError):
        T1AmCarrier(burst_cycles=0)
    with pytest.raises(WorkloadError):
        T2KeyLeakInverters(payload_fraction=0.0)
    with pytest.raises(WorkloadError):
        T3CdmaLeaker(key=b"\x00" * 8)
    with pytest.raises(WorkloadError):
        T4DosHeater(droop_coupling=1.5)


# -- always-on variant family (T1A / T2A / TP) --------------------------------


def test_variant_catalog_contents():
    from repro.trojans.always_on import ALWAYS_ON_CELLS, ALWAYS_ON_NAMES
    from repro.trojans.catalog import VARIANT_CATALOG

    assert tuple(VARIANT_CATALOG) == ALWAYS_ON_NAMES
    # Deliberately disjoint from Table II: the fabricated chip carries
    # exactly T1..T4 and the gate-count artifacts account only those.
    assert not set(VARIANT_CATALOG) & set(TROJAN_CATALOG)
    for name, info in VARIANT_CATALOG.items():
        assert info.always_on
        assert info.n_cells == ALWAYS_ON_CELLS[name]
        assert "power-on" in info.trigger or "parametric" in info.trigger


def test_make_trojan_builds_variants():
    from repro.trojans.always_on import (
        T1AContinuousCarrier,
        T2AContinuousLeaker,
        TPParametricDrift,
    )

    kinds = {
        "T1A": T1AContinuousCarrier,
        "T2A": T2AContinuousLeaker,
        "TP": TPParametricDrift,
    }
    for name, cls in kinds.items():
        trojan = make_trojan(name)
        assert isinstance(trojan, cls)
        assert trojan.always_on
        assert trojan.enabled
    with pytest.raises(WorkloadError):
        make_trojan("T9")


def test_variants_have_no_trigger_and_emit_from_cycle_zero():
    for name in ("T1A", "T2A", "TP"):
        trojan = make_trojan(name)
        emitted = 0.0
        for cycle in range(0, 44):
            ctx = _ctx(cycle=cycle)
            assert trojan.is_active(ctx)
            assert trojan.trigger_toggles(ctx) == 0.0
            emitted += trojan.payload_toggles(ctx)
        assert emitted > 0.0  # leaking within the very first blocks


def test_tp_drift_ramps_then_saturates():
    from repro.trojans.always_on import TPParametricDrift

    trojan = TPParametricDrift(drift_floor=0.2, drift_cycles=128)
    # Compare equal block phases so only the thermal drift differs.
    phase_period = 11
    cold = trojan.payload_toggles(_ctx(cycle=phase_period))
    warm = trojan.payload_toggles(_ctx(cycle=128 + phase_period))
    hot = trojan.payload_toggles(_ctx(cycle=1280 + phase_period))
    assert cold < warm
    assert warm == pytest.approx(hot)  # saturated past drift_cycles


def test_variant_parameter_validation():
    from repro.trojans.always_on import (
        T1AContinuousCarrier,
        T2AContinuousLeaker,
        TPParametricDrift,
    )

    with pytest.raises(WorkloadError):
        T1AContinuousCarrier(payload_fraction=0.0)
    with pytest.raises(WorkloadError):
        T2AContinuousLeaker(payload_fraction=1.5)
    with pytest.raises(WorkloadError):
        TPParametricDrift(drift_floor=-0.1)
    with pytest.raises(WorkloadError):
        TPParametricDrift(drift_cycles=0)
