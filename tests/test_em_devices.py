"""T-gate / MOSFET device physics."""

import pytest

from repro.em.devices import (
    TGATE_R_NOMINAL,
    impedance_db,
    mosfet_on_resistance,
    sensor_impedance,
    tgate_resistance,
    wire_resistance,
)
from repro.errors import ConfigError


def test_tgate_nominal_resistance_is_34_ohm():
    """Section V-B: ~34 ohm at 1.2 V / 25 C."""
    assert tgate_resistance(1.2, 25.0) == pytest.approx(
        TGATE_R_NOMINAL, rel=0.03
    )


def test_resistance_rises_at_low_supply():
    assert tgate_resistance(0.8, 25.0) > tgate_resistance(1.2, 25.0)


def test_voltage_span_about_4db():
    """Section VI-C: only ~4 dB impedance drop from 0.8 V to 1.2 V."""
    from repro.core.sensors import standard_sensor_coil

    coil = standard_sensor_coil(10)
    z_lo = sensor_impedance(coil.n_tgates, coil.wire_length, 50e6, vdd=0.8)
    z_hi = sensor_impedance(coil.n_tgates, coil.wire_length, 50e6, vdd=1.2)
    span = impedance_db(z_lo) - impedance_db(z_hi)
    assert 1.0 < span < 6.0


def test_temperature_compensation():
    """Mobility and Vth shifts partially cancel: |span| stays small."""
    values = [
        tgate_resistance(1.2, t) for t in (-40.0, 0.0, 25.0, 85.0, 125.0)
    ]
    span_db = impedance_db(complex(max(values))) - impedance_db(
        complex(min(values))
    )
    assert span_db < 6.0


def test_pmos_weaker_than_nmos():
    assert mosfet_on_resistance(1.2, 25.0, "pmos") > mosfet_on_resistance(
        1.2, 25.0, "nmos"
    )


def test_unknown_device_kind():
    with pytest.raises(ConfigError):
        mosfet_on_resistance(1.2, 25.0, "finfet")


def test_subthreshold_supply_rejected():
    with pytest.raises(ConfigError):
        mosfet_on_resistance(0.45, 25.0, "nmos")


def test_wire_resistance_scaling():
    base = wire_resistance(1e-3, 1e-6)
    assert wire_resistance(2e-3, 1e-6) == pytest.approx(2 * base)
    assert wire_resistance(1e-3, 2e-6) == pytest.approx(base / 2)


def test_sensor_impedance_inductive_at_high_frequency():
    z_lo = sensor_impedance(20, 4e-3, 1e6)
    z_hi = sensor_impedance(20, 4e-3, 100e6)
    assert z_hi.imag > z_lo.imag
    assert z_hi.real == pytest.approx(z_lo.real)


def test_impedance_db_guard():
    with pytest.raises(ConfigError):
        impedance_db(complex(0.0))
