"""Section VI-D: run-time detection with <10 traces and MTTD < 10 ms.

A monitoring stream is synthesized per Trojan: the RASC-style monitor
watches sensor 10 while the chip runs its normal workload, the Trojan
activates mid-stream, and the golden-model-free detector raises an
alarm.  The MTTD is the activation-to-alarm wall-clock latency with the
per-trace capture + processing cadence.

This module is a thin preset over :mod:`repro.sweep`: the whole
experiment is the named ``mttd`` grid (one cell per Trojan, RASC ADC in
the loop) evaluated by the batched-engine orchestrator, repackaged into
the historical per-Trojan result shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.analysis.mttd import MttdModel, MttdResult
from ..sweep import DetectionSweep, mttd_grid
from ..sweep.report import BUDGET_SECONDS, BUDGET_TRACES
from .context import ExperimentContext, default_context
from .reporting import format_table

__all__ = [
    "BUDGET_SECONDS",
    "BUDGET_TRACES",
    "MttdScenarioResult",
    "MttdExperimentResult",
    "run_mttd",
    "format_mttd",
]


@dataclass(frozen=True)
class MttdScenarioResult:
    """Detection latency for one Trojan."""

    trojan: str
    result: MttdResult
    alarm_index: Optional[int]
    trigger_index: int
    features_db: List[float]

    @property
    def within_budget(self) -> bool:
        """Whether the paper's <10 ms / <10 traces budget is met."""
        return self.result.within(BUDGET_SECONDS, BUDGET_TRACES)


@dataclass(frozen=True)
class MttdExperimentResult:
    """MTTD per Trojan."""

    scenarios: Dict[str, MttdScenarioResult]
    trace_period_s: float

    @property
    def all_within_budget(self) -> bool:
        """Whether every Trojan met the paper's budget."""
        return all(s.within_budget for s in self.scenarios.values())


def run_mttd(
    ctx: Optional[ExperimentContext] = None,
    n_baseline: int = 8,
    n_active: int = 6,
    model: Optional[MttdModel] = None,
) -> MttdExperimentResult:
    """Run the runtime monitoring stream for all four Trojans."""
    ctx = ctx or default_context()
    sweep = DetectionSweep(ctx.campaign, mttd_model=model)
    report = sweep.run(mttd_grid(n_baseline=n_baseline, n_active=n_active))

    scenarios = {}
    for cell in report.cells:
        features = cell.features_db
        scenarios[cell.trojan] = MttdScenarioResult(
            trojan=cell.trojan,
            result=cell.mttd,
            alarm_index=cell.alarm_index,
            trigger_index=cell.n_baseline,
            features_db=[] if features is None else list(features[0]),
        )
    return MttdExperimentResult(
        scenarios=scenarios, trace_period_s=report.trace_period_s
    )


def format_mttd(result: MttdExperimentResult) -> str:
    """Render the MTTD rows."""
    rows = []
    for trojan, scenario in result.scenarios.items():
        mttd = scenario.result
        if mttd.false_alarm:
            detected = "FALSE ALARM"
        else:
            detected = "yes" if mttd.detected else "NO"
        rows.append(
            (
                trojan,
                detected,
                mttd.traces_to_detect if mttd.detected else "-",
                f"{mttd.mttd_s*1e3:.2f} ms" if mttd.detected else "-",
                "yes" if scenario.within_budget else "NO",
            )
        )
    header = (
        "Section VI-D — MTTD (trace period "
        f"{result.trace_period_s*1e3:.2f} ms; paper budget: <10 traces, "
        "<10 ms)\n"
    )
    return header + format_table(
        ["trojan", "detected", "traces", "MTTD", "within budget"], rows
    )
