"""T4 — denial-of-service heater.

"T4 is a simple denial-of-service Trojan that elevates power
consumption, potentially causing the IC to overheat" — always-on with
an external enable in the experiments.

The payload is a clocked power-virus bank (Trust-Hub DoS style): wide
toggle registers re-clocked from the system clock, each cell switching
several times per cycle through a local buffer chain.  Because the
bank is *synchronous with the main clock* (``clock_phase = "rising"``),
its current pulses add in phase with the main comb.  The current draw
follows the supply voltage, and the supply droops with main-circuit
activity, so the heater current is amplitude-modulated by the AES
block structure — that IR-drop coupling is what puts T4's signature at
the same 48/84 MHz sideband frequencies, while its zero-span envelope
stays aperiodic (Figure 5d).
"""

from __future__ import annotations

from ..errors import WorkloadError
from .base import CycleContext, ExternallyEnabledTrojan


class T4DosHeater(ExternallyEnabledTrojan):
    """T4: ring-oscillator heater bank (always-on, externally enabled).

    Parameters
    ----------
    enabled:
        External enable signal.
    ro_toggle_rate:
        Transitions per payload cell per clock cycle (the toggle bank
        re-circulates through short buffer chains within the cycle).
    droop_coupling:
        Fractional current modulation per unit of normalized AES
        activity (IR-drop coupling).
    """

    name = "T4"
    clock_phase = "rising"

    def __init__(
        self,
        enabled: bool = False,
        ro_toggle_rate: float = 6.0,
        droop_coupling: float = 0.45,
    ):
        super().__init__(enabled)
        if ro_toggle_rate <= 0:
            raise WorkloadError("ro_toggle_rate must be positive")
        if not 0.0 <= droop_coupling < 1.0:
            raise WorkloadError("droop_coupling must be in [0, 1)")
        self.ro_toggle_rate = ro_toggle_rate
        self.droop_coupling = droop_coupling

    def payload_toggles(self, ctx: CycleContext) -> float:
        modulation = 1.0 - self.droop_coupling * ctx.aes_norm
        return self.n_cells * self.ro_toggle_rate * modulation

    def trigger_toggles(self, ctx: CycleContext) -> float:
        # Just the enable gating; nothing else switches when disabled.
        return 0.5
