"""The assembled AES-128 test chip.

:class:`TestChip` wires together the netlist inventory, the floorplan,
the AES-LUT core cycle model, the UART and the four Trojans, and renders
one measurement window into an :class:`~repro.chip.power.ActivityRecord`
(per-region toggle matrices) for the EM stage.

All four Trojans are always *present* (their trigger circuits tick every
cycle); the ``active`` set controls which payloads can fire, mirroring
the paper's five measurement scenarios (no active HT, T1..T4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..config import SimConfig
from ..crypto.key_schedule import expand_key
from ..crypto.lut_core import AesLutCore
from ..crypto.sbox import bit_hamming
from ..errors import WorkloadError
from ..trojans.always_on import (
    ALWAYS_ON_NAMES,
    T1AContinuousCarrier,
    T2AContinuousLeaker,
    TPParametricDrift,
)
from ..trojans.base import CycleContext, Trojan
from ..trojans.t1_am_carrier import T1AmCarrier, T1_TERMINAL
from ..trojans.t2_leakage import T2KeyLeakInverters
from ..trojans.t3_cdma import T3CdmaLeaker
from ..trojans.t4_dos import T4DosHeater
from ..uart.uart import Uart
from .floorplan import Floorplan, default_floorplan
from .power import ActivityRecord

#: Scenario labels accepted by :meth:`TestChip.run_trace`.
TROJAN_NAMES = ("T1", "T2", "T3", "T4")

#: Always-on variant factories (instantiated only when requested; the
#: fabricated chip carries exactly T1..T4, so a variant scenario
#: models a *different* chip carrying that implant instead).
_VARIANT_FACTORIES = {
    "T1A": T1AContinuousCarrier,
    "T2A": T2AContinuousLeaker,
    "TP": TPParametricDrift,
}
assert set(_VARIANT_FACTORIES) == set(ALWAYS_ON_NAMES)


#: Hamming distance (popcount lookup, shared with the LUT core).
_hamming = bit_hamming


class TestChip:
    """The fabricated test chip, as a simulation object.

    Parameters
    ----------
    key:
        AES-128 key programmed into the core.
    config:
        Simulation configuration.
    floorplan:
        Module placement (defaults to the paper's Figure 2 layout).
    """

    def __init__(
        self,
        key: bytes,
        config: SimConfig,
        floorplan: Optional[Floorplan] = None,
    ):
        self.key = bytes(key)
        self.config = config
        self.floorplan = floorplan or default_floorplan()
        self.core = AesLutCore(key, config)
        self.uart = Uart(config)
        # Round-key Hamming distances per block phase (fixed key =>
        # computed once).  Phase 0 is the load cycle: the key-expand
        # datapath swings from the last round key back to rk0.
        round_keys = expand_key(self.key)
        self._key_hd = [_hamming(round_keys[10], round_keys[0])] + [
            _hamming(round_keys[p - 1], round_keys[p]) for p in range(1, 11)
        ]
        self._module_weights = self._build_weight_matrix()
        # The UART datapath spreads evenly over its two modules; built
        # once so every record shares one weights object (which lets
        # the engine memoize its coupling projection by identity).
        self._uart_weights = 0.5 * (
            self._module_weights["uart_core"]
            + self._module_weights["uart_fifo"]
        )
        self._uart_weights.setflags(write=False)

    # -- construction helpers --------------------------------------------------

    def _build_weight_matrix(self) -> Dict[str, np.ndarray]:
        """Region weights for every placed module."""
        weights = {}
        for module in self.floorplan.placements:
            weights[module] = self.floorplan.module_weights(module)
        return weights

    def make_trojans(self, active: Iterable[str]) -> List[Trojan]:
        """Instantiate the Trojans present in a measurement scenario.

        ``active`` lists the Trojans whose payloads should fire in this
        window: T1 gets its counter parked at the terminal count (the
        experimentalist waits for an activation; we fast-forward to it),
        T2 is armed (the workload must supply matching plaintext), and
        T3/T4 get their external enables asserted.

        The four catalog Trojans are always present (their trigger
        circuits tick even when inactive).  An always-on *variant*
        (``"T1A"``/``"T2A"``/``"TP"``) is additionally fabricated into
        the chip only when named — it has no off state, so a chip
        carrying one can never produce a Trojan-quiet record.
        """
        active_set = frozenset(active)
        unknown = active_set.difference(TROJAN_NAMES, _VARIANT_FACTORIES)
        if unknown:
            raise WorkloadError(f"unknown Trojans requested: {sorted(unknown)}")
        trojans: List[Trojan] = [
            T1AmCarrier(
                enabled="T1" in active_set,
                start_count=T1_TERMINAL if "T1" in active_set else 0,
            ),
            T2KeyLeakInverters(enabled="T2" in active_set),
            T3CdmaLeaker(enabled="T3" in active_set, key=self.key),
            T4DosHeater(enabled="T4" in active_set),
        ]
        for name in ALWAYS_ON_NAMES:
            if name in active_set:
                trojans.append(_VARIANT_FACTORIES[name]())
        return trojans

    # -- simulation --------------------------------------------------------------

    def run_trace(
        self,
        plaintexts: Sequence[bytes],
        active: Iterable[str] = (),
        idle: bool = False,
        scenario: str | None = None,
    ) -> ActivityRecord:
        """Simulate one measurement window.

        Parameters
        ----------
        plaintexts:
            Plaintext blocks fed over UART (recycled as needed).
        active:
            Trojan payloads allowed to fire (subset of T1..T4).
        idle:
            Powered-but-not-encrypting window (the SNR noise
            condition).
        scenario:
            Label stored on the record (defaults to the active set).
        """
        config = self.config
        core_activity = self.core.run(plaintexts, idle=idle)

        n_regions = self.floorplan.n_regions
        main = np.zeros((n_regions, config.n_cycles))
        main_factors = []
        for module, toggles in core_activity.toggles.items():
            weights = self._module_weights[module]
            main += np.outer(weights, toggles)
            main_factors.append((module, weights, np.asarray(toggles, float)))
        if not idle:
            uart_toggles = np.asarray(
                self.uart.activity(transmitting=True), float
            )
            main += np.outer(self._uart_weights, uart_toggles)
            main_factors.append(("uart", self._uart_weights, uart_toggles))

        trojan = np.zeros_like(main)
        trojan_rising = np.zeros_like(main)
        if idle:
            # Clock-gated idle: the Trojan trigger circuits do not tick
            # either (the paper's noise condition is a quiet chip).
            return ActivityRecord(
                main=main,
                trojan=trojan,
                config=config,
                scenario=scenario if scenario is not None else "idle",
                meta={"active": (), "idle": True},
                factors={"main": main_factors},
            )
        trojans = self.make_trojans(active)
        trojan_factors = []
        rising_factors = []
        aes_total = main.sum(axis=0)
        aes_peak = float(aes_total.max()) or 1.0
        block_cycles = config.block_cycles
        for trj in trojans:
            trj.reset()
            # Variants without a dedicated floorplan rect occupy their
            # host module's placement (e.g. T1A sits in T1's rect).
            weights = self._module_weights[trj.site or trj.name]
            toggles = np.zeros(config.n_cycles)
            for cycle in range(config.n_cycles):
                block = cycle // block_cycles
                phase = cycle % block_cycles
                if idle or not core_activity.histories:
                    plaintext = b"\x00" * 16
                    key_hd = 0
                else:
                    history = core_activity.histories[
                        block % len(core_activity.histories)
                    ]
                    plaintext = bytes(history.plaintext)
                    key_hd = self._key_hd[phase]
                ctx = CycleContext(
                    cycle=cycle,
                    block=block,
                    phase=phase,
                    block_cycles=block_cycles,
                    time_s=cycle * config.t_clock,
                    plaintext=plaintext,
                    key_hd=key_hd,
                    aes_norm=float(aes_total[cycle]) / aes_peak,
                )
                toggles[cycle] = trj.toggles(ctx)
            if trj.clock_phase == "rising":
                trojan_rising += np.outer(weights, toggles)
                if toggles.any():
                    rising_factors.append((trj.name, weights, toggles))
            else:
                trojan += np.outer(weights, toggles)
                if toggles.any():
                    trojan_factors.append((trj.name, weights, toggles))

        label = scenario
        if label is None:
            label = "idle" if idle else ("+".join(sorted(active)) or "baseline")
        factors = {"main": main_factors}
        if trojan_factors:
            factors["trojan"] = trojan_factors
        if rising_factors:
            factors["trojan_rising"] = rising_factors
        return ActivityRecord(
            main=main,
            trojan=trojan,
            trojan_rising=trojan_rising,
            config=config,
            scenario=label,
            meta={"active": tuple(sorted(active)), "idle": idle},
            factors=factors,
        )
