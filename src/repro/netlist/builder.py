"""Builders reproducing the paper's cell budget (Table II).

Table II of the paper:

    =====================  =======  ====  ====  ===  ====
    Circuit                Overall  T1    T2    T3   T4
    Standard Cell Number   28806    1881  2132  329  2181
    Percentage             100      6.52  7.40  1.14 7.57
    =====================  =======  ====  ====  ===  ====

The main circuit therefore holds 28806 - 6523 = 22283 cells, split here
across the blocks named in Figure 2 (AES core, UART FIFO, PSA control,
clock tree, IO ring).  Each module recipe is a cell-kind mix scaled to
an exact total, so the assembled netlist reproduces Table II cell for
cell.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import NetlistError
from .netlist import Netlist

#: Exact cell totals from Table II.
TABLE2_OVERALL = 28806
TABLE2_TROJANS: Dict[str, int] = {"T1": 1881, "T2": 2132, "T3": 329, "T4": 2181}
MAIN_TOTAL = TABLE2_OVERALL - sum(TABLE2_TROJANS.values())  # 22283


def _scale_mix(fractions: Mapping[str, float], total: int) -> Dict[str, int]:
    """Scale a cell-kind fraction mix to an exact integer total.

    Largest-remainder rounding: floors everything then hands leftover
    cells to the kinds with the largest fractional parts, so the result
    sums to ``total`` exactly and is deterministic.
    """
    if total < 0:
        raise NetlistError(f"cannot scale a mix to negative total {total}")
    weight_sum = float(sum(fractions.values()))
    if weight_sum <= 0:
        raise NetlistError("mix weights must sum to a positive value")
    raw = {
        name: total * weight / weight_sum for name, weight in fractions.items()
    }
    counts = {name: int(value) for name, value in raw.items()}
    leftover = total - sum(counts.values())
    remainders = sorted(
        fractions, key=lambda name: (raw[name] - counts[name], name), reverse=True
    )
    for name in remainders[:leftover]:
        counts[name] += 1
    return counts


# ---------------------------------------------------------------------------
# Main circuit: an AES-128-LUT core (Morioka/Satoh LUT S-box architecture)
# with an RS232 UART, as in Section V-A.
# ---------------------------------------------------------------------------

#: Per-module totals for the main circuit.  Sum = 22283 (checked below).
MAIN_MODULE_TOTALS: Dict[str, int] = {
    "aes_sbox_bank": 8800,   # 16 LUT S-boxes for SubBytes
    "aes_key_expand": 3400,  # key schedule incl. 4 S-boxes
    "aes_mixcolumns": 2100,  # GF(2^8) xtime/XOR network
    "aes_addroundkey": 1408,  # 128 XOR2 + buffering
    "aes_state_regs": 1500,  # 128-bit state registers + input muxes
    "aes_round_ctrl": 350,   # round counter / FSM
    "uart_fifo": 2600,       # RX/TX FIFO registers
    "uart_core": 900,        # baud generator, shifters, framing
    "clock_tree": 600,       # clock distribution buffers
    "psa_control": 425,      # PSA_sel decode + switch-control registers
    "io_ring": 200,          # pad-adjacent logic
}

#: Cell-kind mixes per main-circuit module (weights, not counts).
MAIN_MODULE_RECIPES: Dict[str, Dict[str, float]] = {
    "aes_sbox_bank": {
        "NAND2_X1": 0.34,
        "NOR2_X1": 0.18,
        "INV_X1": 0.22,
        "NAND3_X1": 0.10,
        "AOI21_X1": 0.08,
        "OAI21_X1": 0.08,
    },
    "aes_key_expand": {
        "XOR2_X1": 0.30,
        "DFF_X1": 0.28,
        "NAND2_X1": 0.18,
        "INV_X1": 0.12,
        "MUX2_X1": 0.12,
    },
    "aes_mixcolumns": {
        "XOR2_X1": 0.58,
        "XNOR2_X1": 0.12,
        "INV_X1": 0.14,
        "NAND2_X1": 0.16,
    },
    "aes_addroundkey": {
        "XOR2_X1": 0.91,
        "BUF_X2": 0.09,
    },
    "aes_state_regs": {
        "DFF_X1": 0.52,
        "MUX2_X1": 0.34,
        "BUF_X2": 0.14,
    },
    "aes_round_ctrl": {
        "DFFR_X1": 0.30,
        "NAND2_X1": 0.25,
        "INV_X1": 0.25,
        "NOR2_X1": 0.20,
    },
    "uart_fifo": {
        "DFF_X1": 0.60,
        "MUX2_X1": 0.20,
        "NAND2_X1": 0.12,
        "INV_X1": 0.08,
    },
    "uart_core": {
        "DFFR_X1": 0.35,
        "NAND2_X1": 0.20,
        "INV_X1": 0.20,
        "XOR2_X1": 0.10,
        "MUX2_X1": 0.15,
    },
    "clock_tree": {
        "CLKBUF_X4": 0.85,
        "INV_X4": 0.15,
    },
    "psa_control": {
        "DFF_X1": 0.45,
        "AND2_X1": 0.25,
        "INV_X1": 0.20,
        "BUF_X2": 0.10,
    },
    "io_ring": {
        "BUF_X2": 0.55,
        "INV_X4": 0.45,
    },
}

# ---------------------------------------------------------------------------
# Trojans (Section V-A, modified from Trust-Hub):
#   T1 amplitude-modulation radio carrier (750 kHz) with a 21-bit
#      counter trigger;
#   T2 chain of inverters on a key wire (leakage amplifier), plaintext
#      prefix trigger;
#   T3 CDMA channel key leaker (PN-code spreading), small;
#   T4 denial-of-service heater (ring oscillators).
# ---------------------------------------------------------------------------

TROJAN_RECIPES: Dict[str, Dict[str, float]] = {
    "T1": {
        "INV_X4": 0.40,   # carrier oscillator / driver chain
        "DFF_X1": 0.20,   # 21-bit trigger counter + modulator state
        "NAND2_X1": 0.15,
        "XOR2_X1": 0.10,
        "AND2_X1": 0.08,
        "BUF_X2": 0.07,
    },
    "T2": {
        "INV_X4": 0.88,   # the key-wire inverter chain itself
        "XNOR2_X1": 0.06,  # plaintext comparator
        "AND2_X1": 0.04,
        "DFF_X1": 0.02,
    },
    "T3": {
        "DFF_X1": 0.25,   # PN-sequence LFSR + shift register
        "XOR2_X1": 0.30,  # spreading XORs
        "NAND2_X1": 0.20,
        "INV_X1": 0.15,
        "MUX2_X1": 0.10,
    },
    "T4": {
        "INV_X4": 0.70,   # ring-oscillator heater banks
        "NAND2_X1": 0.15,  # enable gating
        "BUF_X2": 0.10,
        "DFF_X1": 0.05,
    },
}


def build_main_circuit(name: str = "aes128_main") -> Netlist:
    """Build the Trojan-free main circuit netlist (22,283 cells)."""
    netlist = Netlist(name)
    for module, total in MAIN_MODULE_TOTALS.items():
        mix = _scale_mix(MAIN_MODULE_RECIPES[module], total)
        netlist.add_bulk(module, mix)
    if len(netlist) != MAIN_TOTAL:
        raise NetlistError(
            f"main circuit built {len(netlist)} cells, expected {MAIN_TOTAL}"
        )
    return netlist


def build_trojan(trojan: str) -> Netlist:
    """Build one Trojan netlist with its exact Table II cell count."""
    if trojan not in TROJAN_RECIPES:
        raise NetlistError(
            f"unknown Trojan {trojan!r}; expected one of "
            f"{sorted(TROJAN_RECIPES)}"
        )
    total = TABLE2_TROJANS[trojan]
    netlist = Netlist(trojan)
    mix = _scale_mix(TROJAN_RECIPES[trojan], total)
    netlist.add_bulk(trojan, mix)
    if len(netlist) != total:
        raise NetlistError(
            f"{trojan} built {len(netlist)} cells, expected {total}"
        )
    return netlist


def build_test_chip_netlist(name: str = "aes128_testchip") -> Netlist:
    """Build the full test chip: main circuit + all four Trojans.

    The result reproduces Table II exactly: 28,806 standard cells.
    """
    netlist = build_main_circuit(name)
    for trojan in sorted(TROJAN_RECIPES):
        netlist.merge(build_trojan(trojan))
    if len(netlist) != TABLE2_OVERALL:
        raise NetlistError(
            f"test chip built {len(netlist)} cells, expected {TABLE2_OVERALL}"
        )
    return netlist


def _check_totals() -> None:
    """Import-time consistency check of the module budget."""
    main_sum = sum(MAIN_MODULE_TOTALS.values())
    if main_sum != MAIN_TOTAL:
        raise NetlistError(
            f"main module totals sum to {main_sum}, expected {MAIN_TOTAL}"
        )


_check_totals()
