"""The fleet scheduler: concurrent monitors, backpressure, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import AnalysisError
from repro.runtime import (
    EventBus,
    FleetScheduler,
    build_chip_monitor,
    build_fleet,
    build_preset,
)
from repro.runtime.presets import MONITOR_PRESETS


@pytest.fixture(scope="module")
def fleet_report():
    """One 4-chip smoke fleet run shared by the assertions below."""
    scheduler = build_fleet("smoke", n_chips=4, queue_depth=2)
    return scheduler.run()


def test_fleet_runs_four_chips_concurrently(fleet_report):
    report = fleet_report
    assert report.n_chips == 4
    # Every archetype is monitored, one per chip.
    assert [c.trojan for c in report.chips] == ["T1", "T2", "T3", "T4"]
    # Round-robin interleave: the first tick touches every chip before
    # any chip gets its second chunk — genuinely concurrent progress.
    chip_ids = [c.chip_id for c in report.chips]
    assert list(report.interleave[:4]) == chip_ids
    assert set(report.interleave) == set(chip_ids)
    # Backpressure: prefetch fills each member's queue exactly to the
    # bound (3 chunks per member > depth 2) and never exceeds it.
    assert report.max_queue_len == report.queue_depth


def test_fleet_detects_identifies_localizes(fleet_report):
    report = fleet_report
    assert report.all_detected
    assert report.mean_mttd_s < 10e-3
    assert report.mean_traces_to_detect < 10
    for chip in report.chips:
        assert chip.report.identification.label == chip.trojan
        assert chip.report.localization.sensor_index == chip.host_sensor
        # Quadrant-center estimate lands within ~half a sensor pitch.
        assert chip.localization_error_um < 250


def test_fleet_member_bit_identical_to_standalone(fleet_report):
    """Interleaving never changes a member's decisions."""
    preset = build_preset("smoke")
    spec = preset.specs(4)[2]  # chip2: T3
    monitor = build_chip_monitor(
        spec, pipeline_config=preset.pipeline_config()
    )
    standalone = monitor.pipeline.run(monitor.source)
    fleet_side = fleet_report.chips[2].report
    assert np.array_equal(standalone.features_db, fleet_side.features_db)
    assert standalone.alarms == fleet_side.alarms
    assert standalone.mttd == fleet_side.mttd
    assert (
        standalone.identification.label == fleet_side.identification.label
    )
    assert (
        standalone.localization.position
        == fleet_side.localization.position
    )


def test_shared_bus_keeps_per_session_event_counts():
    """A fleet-shared bus must not inflate per-chip event counters."""
    bus = EventBus()
    report = build_fleet("smoke", n_chips=2, bus=bus).run()
    for chip in report.chips:
        counts = chip.report.event_counts
        assert counts["WindowProcessed"] == chip.report.n_windows
        # Scheduler-emitted backpressure is not a pipeline decision.
        assert "Backpressure" not in counts
    total = sum(
        sum(c.report.event_counts.values()) for c in report.chips
    )
    # The bus additionally carries the scheduler's own typed
    # backpressure events; everything else is pipeline-emitted.
    assert total + report.backpressure_events == bus.n_emitted
    assert bus.counts.get("Backpressure", 0) == report.backpressure_events


def test_queue_full_emits_typed_backpressure_not_silent_stall():
    """The queue-full contract: a refused producer is announced.

    The smoke preset scripts 3 chunks per member against a depth-2
    queue, so the first render tick refuses every member's third
    chunk — one typed ``Backpressure(action="stall")`` event each,
    on the shared bus, with the refused chunk's start window.
    """
    from repro.runtime import Backpressure

    bus = EventBus()
    seen = []
    bus.subscribe(
        lambda event: seen.append(event)
        if isinstance(event, Backpressure)
        else None
    )
    report = build_fleet("smoke", n_chips=2, bus=bus, queue_depth=2).run()
    assert report.backpressure_events == len(seen) == 2
    assert {event.chip for event in seen} == {"chip0", "chip1"}
    for event in seen:
        assert event.action == "stall"
        assert event.queue_depth == event.queue_len == 2
        # The refused chunk is the third of three: the 6-window
        # baseline splits 4+2 (chunks never span a segment), so the
        # active-segment chunk at window 6 is the one stalled.
        assert event.window == 6
    # Stalling loses nothing: every member still processes its full
    # stream and detects its Trojan.
    assert report.all_detected
    assert report.to_dict()["backpressure_events"] == 2


def test_fleet_report_serializes(fleet_report):
    payload = fleet_report.to_dict()
    encoded = json.loads(json.dumps(payload))
    assert encoded["n_chips"] == 4
    assert len(encoded["chips"]) == 4
    assert encoded["all_detected"] is True
    table = fleet_report.format()
    for chip in fleet_report.chips:
        assert chip.chip_id in table


def test_fleet_guards():
    with pytest.raises(AnalysisError):
        FleetScheduler([], queue_depth=2)
    preset = build_preset("smoke")
    monitor = build_chip_monitor(preset.specs(1)[0])
    with pytest.raises(AnalysisError):
        FleetScheduler([monitor], queue_depth=0)
    with pytest.raises(AnalysisError):
        FleetScheduler([monitor, monitor])  # duplicate chip id
    with pytest.raises(AnalysisError):
        build_preset("bogus")
    with pytest.raises(AnalysisError):
        preset.specs(0)


def test_presets_registry():
    assert {"smoke", "paper", "soak"} <= set(MONITOR_PRESETS)
    smoke = MONITOR_PRESETS["smoke"]
    assert smoke.n_baseline + smoke.n_active == 10
    # Single-chip sessions keep the preset Trojan; fleets cycle.
    assert smoke.specs(1)[0].trojan == smoke.trojan
    trojans = [spec.trojan for spec in smoke.specs(5)]
    assert trojans == ["T1", "T2", "T3", "T4", "T1"]
    seeds = [spec.seed for spec in smoke.specs(3)]
    assert len(set(seeds)) == 3


def test_cli_monitor_smoke(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    payload = tmp_path / "fleet.json"
    code = main(
        [
            "monitor",
            "--preset",
            "smoke",
            "--fleet",
            "2",
            # Keep the test hermetic: never touch the user's real
            # artifact store.
            "--store-dir",
            str(tmp_path / "store"),
            "--events",
            str(events),
            "--monitor-json",
            str(payload),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet: 2 chips" in out
    report = json.loads(payload.read_text())
    assert report["n_chips"] == 2
    assert report["all_detected"] is True
    lines = [
        json.loads(line)
        for line in events.read_text().splitlines()
        if line.strip()
    ]
    assert {entry["chip"] for entry in lines} == {"chip0", "chip1"}
    assert any(entry["type"] == "TrojanLocalized" for entry in lines)
