"""The full comparative detector × Trojan-class grid, end to end.

Renders the complete ``detectors`` grid — every catalog Trojan
(T1..T4) and every always-on variant (T1A/T2A/TP) under every
registered detection method — and asserts the detected/missed matrix
equals the committed expectation
(``tests/data/detector_grid_expected.json``) cell for cell.  Tier-1
pins the ``detectors-smoke`` slice; this run covers the 21-cell full
grid, so it lives with the benchmarks rather than the unit suite.

Timing lands in ``BENCH_detector_grid.json`` at the repo root.

Set ``DETECTOR_SMOKE=1`` to run the smoke slice instead (CI).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.sweep import DetectionSweep, detectors_grid, detectors_smoke_grid

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_detector_grid.json"
)
EXPECTED_DIR = Path(__file__).resolve().parent.parent / "tests" / "data"

SMOKE = os.environ.get("DETECTOR_SMOKE", "") not in ("", "0")


def _expected_matrix(name: str) -> dict:
    with open(EXPECTED_DIR / name, encoding="utf-8") as handle:
        return json.load(handle)["matrix"]


def test_detector_grid_reproduces_committed_matrix(ctx):
    if SMOKE:
        grid = detectors_smoke_grid()
        expected = _expected_matrix("detector_grid_smoke_expected.json")
    else:
        grid = detectors_grid()
        expected = _expected_matrix("detector_grid_expected.json")

    sweep = DetectionSweep(ctx.campaign)
    start = time.perf_counter()
    report = sweep.run(grid)
    elapsed = time.perf_counter() - start

    matrix = report.detection_matrix()
    assert matrix == expected, (
        "detector matrix drift — every committed miss is a structural "
        f"blind spot, so flips in either direction are regressions: "
        f"{matrix}"
    )

    payload = {
        "grid": grid.name,
        "n_cells": grid.n_cells,
        "smoke": SMOKE,
        "seconds": elapsed,
        "cells_per_sec": grid.n_cells / elapsed,
        "matrix": matrix,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
