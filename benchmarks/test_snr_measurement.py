"""Section VI-B — SNR per receiver (paper Equation (1)).

Paper values: PSA 41.0 dB, on-chip single coil 30.5 dB, Langer LF1
probe 14.3 dB, ICR HH100-6 ~34 dB.  The reproduction must land within
the calibration tolerance and preserve the full ordering.
"""

from repro.calibration import SNR_TOLERANCE_DB
from repro.experiments.snr import format_snr, run_snr


def test_snr_measurement(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_snr(ctx, n_traces=2), rounds=1, iterations=1
    )
    measured = result.measured_db
    # Absolute levels within the documented calibration tolerance.
    for name, paper in result.paper_db.items():
        assert abs(measured[name] - paper) < SNR_TOLERANCE_DB, name
    # The ordering is the shape claim: PSA on top, LF1 at the bottom.
    assert measured["psa"] > measured["single_coil"] > measured["langer_lf1"]
    assert measured["psa"] > measured["icr_hh100"] > measured["langer_lf1"]
    print()
    print(format_snr(result))
