"""Vectorized rolling-Welford detector core.

The streaming :class:`~repro.core.analysis.detector.RuntimeDetector`
keeps a bounded self-baseline and z-scores every new trace against it.
The seed implementation re-materialized the whole baseline window on
every update (``np.fromiter`` + a two-pass ``std``), an O(window) cost
per trace.  This module replaces that with rolling Welford moments —
O(1) mean/variance updates with exact window eviction — and vectorizes
the whole decision loop across any number of parallel feature streams
(one stream per sensor of a sweep cell).

Bit-identity contract
---------------------
Every arithmetic step is an elementwise float64 operation, so a stream
produces the same z-scores and alarms whether it is folded alone
(``RuntimeDetector``, which delegates to a 1-stream bank) or inside any
:class:`DetectorBank` batch — the property
``tests/test_sweep.py::test_bank_bit_identical_to_sequential_fold``
pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...errors import AnalysisError
from .detector import DetectorConfig


class RollingMoments:
    """Windowed mean/variance over parallel streams, Welford-style.

    Maintains per-stream count, mean and the centered second moment
    ``M2`` with O(1) updates; a ring buffer provides exact eviction of
    the oldest sample once a stream's population reaches ``window``.

    Parameters
    ----------
    n_streams:
        Parallel stream count.
    window:
        Maximum population per stream (the rolling baseline size).
    """

    def __init__(self, n_streams: int, window: int):
        if n_streams < 1:
            raise AnalysisError("need at least one stream")
        if window < 2:
            raise AnalysisError("window must hold at least two samples")
        self.n_streams = n_streams
        self.window = window
        self._buffer = np.zeros((n_streams, window))
        self._head = np.zeros(n_streams, dtype=np.int64)
        self.count = np.zeros(n_streams, dtype=np.int64)
        self.mean = np.zeros(n_streams)
        self.m2 = np.zeros(n_streams)

    def reset(self) -> None:
        """Forget every absorbed sample."""
        self._buffer.fill(0.0)
        self._head.fill(0)
        self.count.fill(0)
        self.mean.fill(0.0)
        self.m2.fill(0.0)

    def push(self, values: np.ndarray, mask: np.ndarray) -> None:
        """Absorb ``values[i]`` into stream ``i`` wherever ``mask[i]``.

        Streams at full window evict their oldest sample first (exact
        Welford downdate), so the moments always describe the most
        recent ``<= window`` absorbed samples.
        """
        index = np.nonzero(mask)[0]
        if index.size == 0:
            return
        # Evict the oldest sample of full streams.
        full = index[self.count[index] == self.window]
        if full.size:
            old = self._buffer[full, self._head[full]]
            n = self.count[full].astype(float)
            evicted_mean = (n * self.mean[full] - old) / (n - 1.0)
            self.m2[full] -= (old - self.mean[full]) * (old - evicted_mean)
            self.mean[full] = evicted_mean
            self._head[full] = (self._head[full] + 1) % self.window
            self.count[full] -= 1
        # Welford update with the incoming sample.
        slot = (self._head[index] + self.count[index]) % self.window
        incoming = values[index]
        self._buffer[index, slot] = incoming
        grown = self.count[index] + 1
        delta = incoming - self.mean[index]
        new_mean = self.mean[index] + delta / grown
        self.m2[index] += delta * (incoming - new_mean)
        self.mean[index] = new_mean
        self.count[index] = grown

    def std(self, ddof: int = 1) -> np.ndarray:
        """Per-stream sample standard deviation (NaN below ddof+1)."""
        denom = self.count.astype(float) - ddof
        with np.errstate(invalid="ignore", divide="ignore"):
            variance = np.where(
                denom > 0, np.maximum(self.m2, 0.0) / denom, np.nan
            )
        return np.sqrt(variance)


@dataclass(frozen=True)
class BankStep:
    """Per-stream outcome of one :meth:`DetectorBank.step`.

    Attributes
    ----------
    z:
        z-score per stream (NaN while a stream is warming up).
    armed:
        Whether each stream had finished warm-up before this trace.
    alarm:
        Whether this trace completed an alarm on each stream.
    """

    z: np.ndarray
    armed: np.ndarray
    alarm: np.ndarray


@dataclass(frozen=True)
class BankTimeline:
    """Full decision history of a :meth:`DetectorBank.process` run.

    Attributes
    ----------
    z:
        z-score matrix, shape ``(n_streams, n_traces)``.
    armed:
        Armed mask, same shape.
    alarms:
        Alarm mask, same shape (every alarm, not just the first).
    """

    z: np.ndarray
    armed: np.ndarray
    alarms: np.ndarray

    def first_alarms(self) -> List[Optional[int]]:
        """First alarming trace index per stream (None = silent)."""
        out: List[Optional[int]] = []
        for row in self.alarms:
            hits = np.nonzero(row)[0]
            out.append(int(hits[0]) if hits.size else None)
        return out

    def first_alarm(self) -> Optional[int]:
        """Earliest alarm across every stream (None = all silent)."""
        firsts = [index for index in self.first_alarms() if index is not None]
        return min(firsts) if firsts else None


class DetectorBank:
    """N parallel golden-model-free detectors sharing one config.

    Semantically identical to folding one
    :class:`~repro.core.analysis.detector.RuntimeDetector` per stream —
    warm-up absorption, super-threshold exclusion from the baseline,
    the ``consecutive``-trace debounce and the post-alarm streak reset —
    but every per-trace update is a handful of vectorized O(n_streams)
    operations instead of an O(window) baseline recompute per stream.

    Parameters
    ----------
    n_streams:
        Parallel feature streams (e.g. sensors of a sweep cell).
    config:
        Shared detector tuning.
    """

    def __init__(self, n_streams: int, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()
        self.n_streams = n_streams
        self._moments = RollingMoments(n_streams, self.config.baseline_window)
        self._streak = np.zeros(n_streams, dtype=np.int64)

    def reset(self) -> None:
        """Forget all learned state on every stream."""
        self._moments.reset()
        self._streak.fill(0)

    @property
    def armed(self) -> np.ndarray:
        """Per-stream warm-up completion mask."""
        return self._moments.count >= self.config.warmup

    def absorb(self, values: np.ndarray) -> None:
        """Absorb one trace's feature per stream without deciding.

        Every stream takes the sample into its baseline regardless of
        warm-up state or magnitude — the explicit-fit half of the
        :class:`~repro.detectors.base.Detector` protocol, for callers
        that train on a known-clean population before scoring.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_streams,):
            raise AnalysisError(
                f"expected {self.n_streams} features, got shape {values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise AnalysisError("non-finite feature in detector input")
        self._moments.push(values, np.ones(self.n_streams, dtype=bool))

    def step(self, values: np.ndarray) -> BankStep:
        """Consume one trace's feature per stream."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_streams,):
            raise AnalysisError(
                f"expected {self.n_streams} features, got shape {values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise AnalysisError("non-finite feature in detector input")
        config = self.config
        armed = self._moments.count >= config.warmup
        z = np.full(self.n_streams, np.nan)
        alarm = np.zeros(self.n_streams, dtype=bool)
        absorb = ~armed  # warm-up always absorbs
        live = np.nonzero(armed)[0]
        if live.size:
            count = self._moments.count[live].astype(float)
            variance = np.maximum(self._moments.m2[live], 0.0) / (count - 1.0)
            std = np.maximum(np.sqrt(variance), config.min_std_db)
            scored = (values[live] - self._moments.mean[live]) / std
            z[live] = scored
            excess = np.abs(scored) if config.two_sided else scored
            over = excess > config.z_threshold
            # Debounce: the streak is capped at `consecutive` and reset
            # once an alarm fires, so every alarm requires a full run of
            # consecutive super-threshold traces (no latched re-alarms).
            self._streak[live] = np.where(
                over,
                np.minimum(self._streak[live] + 1, config.consecutive),
                0,
            )
            fired = self._streak[live] >= config.consecutive
            alarm[live] = fired
            self._streak[live[fired]] = 0
            absorb[live] = ~over  # outliers never poison the baseline
        self._moments.push(values, absorb)
        return BankStep(z=z, armed=armed, alarm=alarm)

    def process(self, features: np.ndarray) -> BankTimeline:
        """Fold a whole ``(n_streams, n_traces)`` feature matrix.

        The decision semantics are inherently sequential along the
        trace axis (each decision conditions the next baseline), so the
        fold iterates traces while vectorizing across streams.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.ndim != 2 or features.shape[0] != self.n_streams:
            raise AnalysisError(
                "expected a (n_streams, n_traces) feature matrix, got "
                f"shape {features.shape}"
            )
        n_traces = features.shape[1]
        z = np.full((self.n_streams, n_traces), np.nan)
        armed = np.zeros((self.n_streams, n_traces), dtype=bool)
        alarms = np.zeros((self.n_streams, n_traces), dtype=bool)
        for index in range(n_traces):
            step = self.step(features[:, index])
            z[:, index] = step.z
            armed[:, index] = step.armed
            alarms[:, index] = step.alarm
        return BankTimeline(z=z, armed=armed, alarms=alarms)
