"""A synchronous FIFO with overflow/underflow accounting."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import WorkloadError


class Fifo:
    """Bounded FIFO used by the UART RX/TX paths.

    Parameters
    ----------
    depth:
        Maximum number of entries.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise WorkloadError(f"FIFO depth must be >= 1, got {depth}")
        self.depth = depth
        self._entries: Deque[int] = deque()
        self.overflows = 0
        self.underflows = 0
        self.high_watermark = 0

    def push(self, value: int) -> bool:
        """Push one entry; returns False (and counts) on overflow."""
        if len(self._entries) >= self.depth:
            self.overflows += 1
            return False
        self._entries.append(value)
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return True

    def pop(self) -> Optional[int]:
        """Pop one entry; returns None (and counts) on underflow."""
        if not self._entries:
            self.underflows += 1
            return None
        return self._entries.popleft()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        """True when no entries are queued."""
        return not self._entries

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return len(self._entries) >= self.depth
