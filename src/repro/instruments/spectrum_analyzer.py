"""Spectrum analyzer model: sweep display and zero-span mode.

Section VI-D's settings: "Each trace spans a frequency band from DC to
120 MHz, populated with 2000 sample points.  We averaged five collected
traces to derive the spectrum" and "we use the zero-span mode of the
spectrum analyzer to measure the time-domain signal of the PSA's output
at a desired single frequency".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..dsp.filters import analytic_bandpass
from ..dsp.transforms import (
    Spectrum,
    amplitude_spectra,
    amplitude_spectrum,
    average_spectra,
    resample_spectra,
    resample_spectra_at,
    resample_spectrum,
)
from ..engine import TraceBatch
from ..errors import MeasurementError
from ..traces import Trace

#: Paper display settings.
DISPLAY_F_LO = 0.0
DISPLAY_F_HI = 120e6
DISPLAY_POINTS = 2000
DEFAULT_AVERAGES = 5

#: Default zero-span resolution bandwidth [Hz].
DEFAULT_RBW = 8e6


@dataclass(frozen=True)
class ZeroSpanResult:
    """Zero-span capture at one tuned frequency.

    Attributes
    ----------
    envelope:
        Detected envelope magnitude [V], decimated.
    fs:
        Envelope sampling rate [Hz].
    f_center:
        Tuned frequency [Hz].
    rbw:
        Resolution bandwidth [Hz].
    label, scenario:
        Propagated from the input trace.
    """

    envelope: np.ndarray
    fs: float
    f_center: float
    rbw: float
    label: str = ""
    scenario: str = ""

    def time(self) -> np.ndarray:
        """Time axis [s]."""
        return np.arange(self.envelope.size) / self.fs

    def as_trace(self) -> Trace:
        """View the envelope as a Trace (for feature extraction)."""
        return Trace(
            samples=self.envelope,
            fs=self.fs,
            label=f"{self.label}@{self.f_center/1e6:.0f}MHz",
            scenario=self.scenario,
            meta={"f_center": self.f_center, "rbw": self.rbw},
        )


class SpectrumAnalyzer:
    """Sweep + zero-span measurement model.

    Parameters
    ----------
    f_lo, f_hi:
        Display band [Hz].
    n_points:
        Display points across the band.
    """

    def __init__(
        self,
        f_lo: float = DISPLAY_F_LO,
        f_hi: float = DISPLAY_F_HI,
        n_points: int = DISPLAY_POINTS,
    ):
        if f_hi <= f_lo:
            raise MeasurementError(f"empty display band [{f_lo}, {f_hi}]")
        if n_points < 16:
            raise MeasurementError("display needs at least 16 points")
        self.f_lo = f_lo
        self.f_hi = f_hi
        self.n_points = n_points

    # -- sweep mode ------------------------------------------------------------

    def spectrum(self, trace: Trace) -> Spectrum:
        """Single-capture display spectrum (2000 uniform points)."""
        native = amplitude_spectrum(trace.samples, trace.fs)
        return resample_spectrum(native, self.f_lo, self.f_hi, self.n_points)

    def display_matrix(
        self, samples: np.ndarray, fs: float
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Batched display spectra of a trace stack.

        Returns ``(grid, amps)`` where ``amps`` is ``(n_traces,
        n_points)`` on the shared display grid — every row identical
        to :meth:`spectrum` of that trace.  This is the vectorized
        entry point the analysis layers feed trace batches through.
        """
        freqs, native = amplitude_spectra(samples, fs)
        return resample_spectra(
            freqs, native, self.f_lo, self.f_hi, self.n_points
        )

    def display_grid(self) -> np.ndarray:
        """The display frequency axis, without computing any spectra."""
        return np.linspace(self.f_lo, self.f_hi, self.n_points)

    def display_bins(
        self, samples: np.ndarray, fs: float, bins: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """:meth:`display_matrix` restricted to display columns ``bins``.

        Returns ``(grid[bins], amps[:, bins])`` bit-identical to the
        corresponding columns of the full display — the fast path when
        a caller only reads a handful of feature bins per trace.
        """
        freqs, native = amplitude_spectra(samples, fs)
        return resample_spectra_at(
            freqs, native, bins, self.f_lo, self.f_hi, self.n_points
        )

    def display_spectra(self, samples: np.ndarray, fs: float) -> List[Spectrum]:
        """Batched display spectra as :class:`Spectrum` objects."""
        grid, amps = self.display_matrix(samples, fs)
        return [Spectrum(freqs=grid, amps=row) for row in amps]

    def batch_spectra(self, batch: TraceBatch) -> List[List[Spectrum]]:
        """Display spectra of a whole :class:`TraceBatch`.

        Returns ``spectra[receiver][trace]``, computed in one
        vectorized pass over every capture in the batch.
        """
        flat = self.display_spectra(
            batch.samples.reshape(-1, batch.n_samples), batch.fs
        )
        per_receiver = batch.n_traces
        return [
            flat[index * per_receiver : (index + 1) * per_receiver]
            for index in range(batch.n_receivers)
        ]

    def average_spectrum(self, traces: Sequence[Trace]) -> Spectrum:
        """Trace-averaged display spectrum (the paper averages five)."""
        if not traces:
            raise MeasurementError("no traces to average")
        return average_spectra([self.spectrum(trace) for trace in traces])

    # -- zero-span mode ----------------------------------------------------------

    def zero_span(
        self,
        trace: Trace,
        f_center: float,
        rbw: float = DEFAULT_RBW,
        decimate_to: float | None = None,
    ) -> ZeroSpanResult:
        """Envelope of the signal inside ``rbw`` around ``f_center``.

        Parameters
        ----------
        trace:
            Input capture.
        f_center:
            Tuned frequency [Hz] (e.g. the 48 MHz sideband).
        rbw:
            Resolution bandwidth [Hz].
        decimate_to:
            Target envelope rate [Hz]; defaults to ``4 * rbw``.
        """
        baseband = analytic_bandpass(trace.samples, trace.fs, f_center, rbw)
        envelope = np.abs(baseband)
        target_fs = 4.0 * rbw if decimate_to is None else decimate_to
        step = max(1, int(trace.fs / target_fs))
        envelope = envelope[::step]
        if envelope.size < 16:
            raise MeasurementError(
                "zero-span capture too short after decimation; lower the "
                "decimation target or capture longer traces"
            )
        return ZeroSpanResult(
            envelope=envelope,
            fs=trace.fs / step,
            f_center=f_center,
            rbw=rbw,
            label=trace.label,
            scenario=trace.scenario,
        )
