"""Receiver models for the comparison methods.

* :func:`single_coil_receiver` — He et al. (DAC'20): one winding around
  the whole die on the top metal, on-chip.  Encloses every dipole pair
  entirely, so the linked fluxes self-cancel — the 30.5 dB SNR.
* :func:`langer_lf1_probe` — the external Langer EMV LF1 probe used by
  the paper for comparison: a chip-scale loop a couple of millimetres
  above the die, with strong ambient pickup — the 14.3 dB SNR.
* :func:`icr_hh100_probe` — the ICR HH100-6 100 um micro-probe (the
  best external probe the paper cites at ~34 dB below 120 MHz):
  near-field but still package-distance away and ambient-exposed.
"""

from __future__ import annotations

from ..chip.floorplan import DIE_SIZE, Rect
from ..errors import ConfigError
from ..units import MM, UM
from .coupling import Receiver
from .devices import wire_resistance

#: Height of the on-chip sensing metals above the switching layer [m].
ONCHIP_SENSE_Z = 3.0 * UM


def single_coil_receiver(inset: float = 10.0 * UM) -> Receiver:
    """The whole-chip single-turn coil of He et al. (DAC'20)."""
    if inset < 0 or 2 * inset >= DIE_SIZE:
        raise ConfigError(f"invalid coil inset {inset}")
    turn = Rect(inset, inset, DIE_SIZE - inset, DIE_SIZE - inset)
    perimeter = 2.0 * (turn.width + turn.height)
    return Receiver(
        name="single_coil",
        turns=[turn],
        z=ONCHIP_SENSE_Z,
        r_series=wire_resistance(perimeter, 1.0 * UM),
        inductance=1.0e-6 * perimeter,
        # Under the package lid, same as the PSA: negligible ambient.
        ambient_gain=2.0e-9,
        # No probe positioning, but the >10,000-trace campaigns this
        # method needs span hours: supply/temperature drift moves the
        # effective gain a couple of percent between captures.  (The
        # PSA's ten-trace decision completes within ~10 ms, where such
        # drift is frozen.)
        gain_jitter=0.02,
    )


def langer_lf1_probe(
    height: float = 1.5 * MM,
    loop_side: float = 3.5 * MM,
    n_turns: int = 12,
) -> Receiver:
    """The Langer EMV LF1 near-field probe over the package.

    The LF series are multi-turn loops; the default 12 turns and
    1.5 mm standoff represent the probe resting on the QFN lid.
    """
    if height <= 0 or loop_side <= 0:
        raise ConfigError("probe height and loop side must be positive")
    if n_turns < 1:
        raise ConfigError("probe needs at least one turn")
    center = DIE_SIZE / 2.0
    half = loop_side / 2.0
    turn = Rect(center - half, center - half, center + half, center + half)
    return Receiver(
        name="langer_lf1",
        turns=[turn] * n_turns,
        z=height,
        r_series=2.0,
        inductance=200e-9,
        ambient_gain=n_turns * turn.area,
        gain_jitter=0.06,
    )


def icr_hh100_probe(
    height: float = 110.0 * UM,
    x_center: float | None = None,
    y_center: float | None = None,
    n_turns: int = 6,
) -> Receiver:
    """The ICR HH100-6 100 um micro-probe over a die location.

    The "-6" suffix is the turn count; the 110 um standoff represents
    the probe tip touching a thinned/decapped die — the best case the
    paper grants this probe (~34 dB below 120 MHz).  Default position:
    die center.
    """
    if height <= 0:
        raise ConfigError("probe height must be positive")
    if n_turns < 1:
        raise ConfigError("probe needs at least one turn")
    side = 89.0 * UM  # square with the 100 um circle's area
    cx = DIE_SIZE / 2.0 if x_center is None else x_center
    cy = DIE_SIZE / 2.0 if y_center is None else y_center
    turn = Rect(cx - side / 2, cy - side / 2, cx + side / 2, cy + side / 2)
    return Receiver(
        name="icr_hh100",
        turns=[turn] * n_turns,
        z=height,
        r_series=3.0,
        inductance=12e-9,
        ambient_gain=0.25 * n_turns * turn.area,
        # Micro-probes are even more positioning-sensitive: 100 um of
        # aperture over a 40 um standoff.
        gain_jitter=0.08,
    )
