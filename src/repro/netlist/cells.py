"""A compact 65nm-style standard-cell library.

Electrical figures are representative of a commercial 65nm LP library at
nominal corner (1.2 V, 25 C): cell areas of a few um^2, switched
capacitance of a few fF per output transition, and sub-nA leakage per
cell.  Absolute accuracy is not required — the EM model only needs
plausible relative weights between cell kinds — but the values are kept
in a physically sensible range so derived quantities (current per
toggle, module leakage) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import NetlistError


@dataclass(frozen=True)
class StandardCell:
    """One library cell.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2_X1"``.
    n_transistors:
        Transistor count (for area sanity checks).
    area_um2:
        Placed area [um^2].
    switch_cap_ff:
        Effective switched capacitance per output toggle [fF]
        (internal + typical output load).
    leakage_na:
        Static leakage at nominal corner [nA].
    is_sequential:
        True for flip-flops/latches (they toggle on every active clock
        edge they capture, and their clock pins load the clock tree).
    """

    name: str
    n_transistors: int
    area_um2: float
    switch_cap_ff: float
    leakage_na: float
    is_sequential: bool = False

    def __post_init__(self) -> None:
        if self.n_transistors < 2:
            raise NetlistError(f"cell {self.name}: implausible transistor count")
        if self.area_um2 <= 0 or self.switch_cap_ff <= 0 or self.leakage_na < 0:
            raise NetlistError(f"cell {self.name}: non-physical parameters")


def _cell(
    name: str,
    n_transistors: int,
    area_um2: float,
    switch_cap_ff: float,
    leakage_na: float,
    is_sequential: bool = False,
) -> StandardCell:
    return StandardCell(
        name=name,
        n_transistors=n_transistors,
        area_um2=area_um2,
        switch_cap_ff=switch_cap_ff,
        leakage_na=leakage_na,
        is_sequential=is_sequential,
    )


#: The library, keyed by cell name.
CELL_LIBRARY: Dict[str, StandardCell] = {
    cell.name: cell
    for cell in [
        _cell("INV_X1", 2, 1.44, 1.4, 0.25),
        _cell("INV_X4", 8, 2.88, 3.2, 0.9),
        _cell("BUF_X2", 4, 2.16, 2.4, 0.5),
        _cell("NAND2_X1", 4, 2.16, 2.0, 0.4),
        _cell("NAND3_X1", 6, 2.88, 2.6, 0.55),
        _cell("NOR2_X1", 4, 2.16, 2.1, 0.45),
        _cell("AND2_X1", 6, 2.52, 2.4, 0.5),
        _cell("OR2_X1", 6, 2.52, 2.5, 0.5),
        _cell("XOR2_X1", 10, 4.32, 3.6, 0.8),
        _cell("XNOR2_X1", 10, 4.32, 3.6, 0.8),
        _cell("AOI21_X1", 6, 2.88, 2.7, 0.55),
        _cell("OAI21_X1", 6, 2.88, 2.7, 0.55),
        _cell("MUX2_X1", 12, 4.68, 3.4, 0.85),
        _cell("DFF_X1", 24, 7.92, 6.5, 1.6, is_sequential=True),
        _cell("DFFR_X1", 28, 9.00, 7.0, 1.9, is_sequential=True),
        _cell("CLKBUF_X4", 8, 3.60, 4.5, 1.1),
        # The custom T-gate cell of Figure 1c: 3.2 um x 4 um layout with
        # two parallel PMOS/NMOS pairs of 10 fingers each.
        _cell("TGATE_PSA", 40, 12.80, 0.9, 3.2),
    ]
}


def get_cell(name: str) -> StandardCell:
    """Look up a cell by name.

    Raises
    ------
    NetlistError
        If the library has no such cell.
    """
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise NetlistError(f"unknown cell {name!r}") from None
