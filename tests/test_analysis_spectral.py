"""Sideband bookkeeping and prominent-component identification."""

import numpy as np
import pytest

from repro.core.analysis.spectral import (
    clock_harmonics,
    find_prominent_components,
    image_frequencies,
    sideband_amplitude,
    sideband_feature_db,
    sideband_frequencies,
)
from repro.dsp.transforms import Spectrum, amplitude_spectrum
from repro.errors import AnalysisError


def test_sideband_frequencies_match_paper(config):
    lower, upper = sideband_frequencies(config)
    assert lower == pytest.approx(48e6)
    assert upper == pytest.approx(84e6)


def test_image_frequencies(config):
    lo, hi = image_frequencies(config)
    assert lo == pytest.approx(18e6)
    assert hi == pytest.approx(114e6)


def test_clock_harmonics(config):
    assert clock_harmonics(config) == [33e6, 66e6, 99e6]
    assert clock_harmonics(config, f_max=70e6) == [33e6, 66e6]


def _synthetic_spectrum(sideband_amp, config, n=8448):
    t = np.arange(n) / config.fs
    trace = 1.0 * np.sin(2 * np.pi * 33e6 * t)
    trace += sideband_amp * np.sin(2 * np.pi * 48e6 * t)
    trace += sideband_amp * np.sin(2 * np.pi * 84e6 * t)
    return amplitude_spectrum(trace, config.fs)


def test_sideband_feature_tracks_amplitude(config):
    quiet = sideband_feature_db(_synthetic_spectrum(1e-5, config), config)
    loud = sideband_feature_db(_synthetic_spectrum(1e-3, config), config)
    assert loud - quiet == pytest.approx(40.0, abs=1.0)


def test_sideband_amplitude_linear(config):
    spec = _synthetic_spectrum(2e-4, config)
    amp = sideband_amplitude(spec, config)
    assert amp == pytest.approx(2e-4 / np.sqrt(2), rel=0.01)


def test_find_prominent_components_locates_sidebands(config):
    baseline = _synthetic_spectrum(1e-6, config)
    active = _synthetic_spectrum(1e-3, config)
    peaks = find_prominent_components(active, baseline, config, top_n=2)
    freqs = sorted(freq for freq, _delta in peaks)
    assert freqs[0] == pytest.approx(48e6, abs=2e5)
    assert freqs[1] == pytest.approx(84e6, abs=2e5)
    for _freq, delta in peaks:
        assert delta > 20.0


def test_prominent_components_mask_harmonics(config):
    baseline = _synthetic_spectrum(1e-6, config)
    # Active trace adds energy right at the carrier — must be masked.
    n = 8448
    t = np.arange(n) / config.fs
    active = amplitude_spectrum(
        2.0 * np.sin(2 * np.pi * 33e6 * t), config.fs
    )
    peaks = find_prominent_components(active, baseline, config)
    for freq, _delta in peaks:
        assert abs(freq - 33e6) > 2e6


def test_mismatched_axes_rejected(config):
    a = Spectrum(freqs=np.linspace(0, 1e8, 100), amps=np.ones(100))
    b = Spectrum(freqs=np.linspace(0, 2e8, 100), amps=np.ones(100))
    with pytest.raises(AnalysisError):
        find_prominent_components(a, b, config)


def test_real_traces_show_sidebands_only_when_active(
    psa, records, config
):
    """Integration: the feature separates T1-active from baseline."""
    from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

    analyzer = SpectrumAnalyzer()
    base = sideband_feature_db(
        analyzer.spectrum(psa.measure(records["baseline"][0], 10, 0)), config
    )
    active = sideband_feature_db(
        analyzer.spectrum(psa.measure(records["T1"][0], 10, 0)), config
    )
    assert active - base > 20.0
