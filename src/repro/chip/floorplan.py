"""Die floorplan, region grid and sensor geometry.

Geometry follows Section V-A and Figure 2:

* 1 mm x 1 mm die (QFN 6x6 package);
* 16 square sensing areas in a 4x4 arrangement sharing area with their
  neighbours — realized as 11-lattice-pitch squares (314 um) at an
  8-pitch stride (229 um), i.e. 27 % shared area per neighbour (the
  paper's quoted 33 % cannot be realized with integer wire indices;
  see repro.core.sensors);
* the AES core occupies the central/right area, the UART FIFO the west
  edge, the PSA control corner is Trojan-free (sensor 0's patch);
* all four Trojans sit inside sensor 10's exclusive zone (one per
  quadrant, which the adaptive localization refinement exploits), with
  their stripe return currents also inside that zone;
* vertical power stripes (one of them through sensor 10's core at
  x = 600 um) provide the return-current locations for the dipole-pair
  EM source model.

Sensor indexing is row-major, row 0 at the top of the die (the paper's
exact index layout is not recoverable from its Figure 2 text; the
published semantics — Trojans under sensor 10, sensor 0 Trojan-free —
are preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import FloorplanError
from ..units import UM

#: Die edge length [m].
DIE_SIZE = 1000.0 * UM

#: Sensors per side of the 4x4 arrangement.
SENSOR_GRID = 4

#: Sensor square side [m]: 11 lattice pitches (see repro.core.sensors).
SENSOR_SIDE = 11.0 * DIE_SIZE / 35.0

#: Sensor placement pitch [m]: 8 lattice pitches.
SENSOR_PITCH = 8.0 * DIE_SIZE / 35.0

#: Region grid resolution per side.  35 matches the lattice pitch, so
#: region centers sit mid-cell — maximally far from any coil wire,
#: which keeps the flux couplings smooth.
N_REGIONS_SIDE = 35

#: Vertical power-stripe x positions [m].
POWER_STRIPES = np.array([100.0, 260.0, 420.0, 600.0, 760.0, 920.0]) * UM

#: Effective supply-loop area of one region's switching current [m^2].
REGION_LOOP_AREA = 60.0 * UM * UM


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in die coordinates [m]."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise FloorplanError(f"degenerate rectangle {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside (closed) this rectangle."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection with another rectangle."""
        dx = min(self.x1, other.x1) - max(self.x0, other.x0)
        dy = min(self.y1, other.y1) - max(self.y0, other.y0)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def inset(self, margin: float) -> "Rect":
        """Shrink by ``margin`` on every side."""
        return Rect(
            self.x0 + margin, self.y0 + margin, self.x1 - margin, self.y1 - margin
        )

    def quadrant(self, which: str) -> "Rect":
        """One of the four quadrants: 'nw', 'ne', 'sw', 'se'."""
        cx, cy = self.center
        quadrants = {
            "nw": Rect(self.x0, cy, cx, self.y1),
            "ne": Rect(cx, cy, self.x1, self.y1),
            "sw": Rect(self.x0, self.y0, cx, cy),
            "se": Rect(cx, self.y0, self.x1, cy),
        }
        if which not in quadrants:
            raise FloorplanError(f"unknown quadrant {which!r}")
        return quadrants[which]


def sensor_rect(index: int) -> Rect:
    """Footprint of sensor ``index`` (0..15), row-major, row 0 on top."""
    if not 0 <= index < SENSOR_GRID * SENSOR_GRID:
        raise FloorplanError(f"sensor index {index} outside 0..15")
    row, col = divmod(index, SENSOR_GRID)
    x0 = col * SENSOR_PITCH
    y1 = DIE_SIZE - row * SENSOR_PITCH
    return Rect(x0, y1 - SENSOR_SIDE, x0 + SENSOR_SIDE, y1)


def _um_rect(x0: float, y0: float, x1: float, y1: float) -> Rect:
    return Rect(x0 * UM, y0 * UM, x1 * UM, y1 * UM)


class Floorplan:
    """Module placement over a uniform region grid.

    Parameters
    ----------
    placements:
        Mapping from module name to the rectangles it occupies.
    die_size:
        Die edge [m].
    n_regions_side:
        Region grid resolution.
    """

    def __init__(
        self,
        placements: Dict[str, List[Rect]],
        die_size: float = DIE_SIZE,
        n_regions_side: int = N_REGIONS_SIDE,
    ):
        if n_regions_side < 2:
            raise FloorplanError("region grid must be at least 2x2")
        self.die_size = die_size
        self.n_regions_side = n_regions_side
        self.placements = dict(placements)
        for module, rects in placements.items():
            for rect in rects:
                if rect.x0 < 0 or rect.y0 < 0 or rect.x1 > die_size or rect.y1 > die_size:
                    raise FloorplanError(
                        f"module {module!r} rectangle {rect} exceeds the die"
                    )
        self._region_size = die_size / n_regions_side
        self._weights_cache: Dict[str, np.ndarray] = {}

    # -- region grid ---------------------------------------------------------

    @property
    def n_regions(self) -> int:
        """Total region count."""
        return self.n_regions_side**2

    @property
    def region_size(self) -> float:
        """Region edge length [m]."""
        return self._region_size

    def region_rect(self, region: int) -> Rect:
        """Footprint of one region."""
        row, col = divmod(region, self.n_regions_side)
        x0 = col * self._region_size
        y0 = row * self._region_size
        return Rect(x0, y0, x0 + self._region_size, y0 + self._region_size)

    def region_centers(self) -> np.ndarray:
        """(n_regions, 2) array of region center coordinates [m]."""
        half = 0.5 * self._region_size
        coords = np.arange(self.n_regions_side) * self._region_size + half
        xs, ys = np.meshgrid(coords, coords)  # row-major: y varies by row
        return np.column_stack([xs.ravel(), ys.ravel()])

    def region_of(self, x: float, y: float) -> int:
        """Region index containing a point."""
        if not (0 <= x <= self.die_size and 0 <= y <= self.die_size):
            raise FloorplanError(f"point ({x}, {y}) outside the die")
        col = min(int(x / self._region_size), self.n_regions_side - 1)
        row = min(int(y / self._region_size), self.n_regions_side - 1)
        return row * self.n_regions_side + col

    # -- module weights --------------------------------------------------------

    def module_weights(self, module: str) -> np.ndarray:
        """Fraction of the module's area in each region (sums to 1)."""
        if module in self._weights_cache:
            return self._weights_cache[module]
        if module not in self.placements:
            raise FloorplanError(f"floorplan has no module {module!r}")
        weights = np.zeros(self.n_regions)
        total = 0.0
        for rect in self.placements[module]:
            total += rect.area
            # Only regions overlapping the rect's bounding box matter.
            for region in range(self.n_regions):
                overlap = self.region_rect(region).overlap_area(rect)
                if overlap > 0.0:
                    weights[region] += overlap
        if total <= 0.0:
            raise FloorplanError(f"module {module!r} has zero area")
        weights /= total
        weights.setflags(write=False)
        self._weights_cache[module] = weights
        return weights

    # -- power-return geometry -------------------------------------------------

    def return_point(self, x: float, y: float) -> Tuple[float, float]:
        """Return-current location for a switching event at (x, y).

        The nearest power stripe: current drawn by cells flows back
        along the stripe, so the supply loop's "negative" pole is
        displaced there.  Cells close to a stripe form a short dipole
        pair (a weak, tight supply loop) — physically correct, and it
        keeps the return pole on the source's side of any sensor
        boundary instead of jumping across the die.
        """
        index = int(np.argmin(np.abs(POWER_STRIPES - x)))
        return (float(POWER_STRIPES[index]), y)

    def dipole_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Source/return positions per region: two (n_regions, 2) arrays."""
        centers = self.region_centers()
        returns = np.array(
            [self.return_point(x, y) for x, y in centers]
        )
        return centers, returns


#: The sensor hosting the Trojan cluster on the paper's chip.
DEFAULT_TROJAN_SENSOR = 10


def _base_placements() -> Dict[str, List[Rect]]:
    """Every non-Trojan module of the paper's test chip."""
    return {
        # AES core (central/right band).
        "aes_sbox_bank": [_um_rect(250, 100, 950, 400)],
        "aes_mixcolumns": [_um_rect(250, 400, 650, 580)],
        "aes_addroundkey": [_um_rect(650, 400, 950, 580)],
        "aes_state_regs": [_um_rect(250, 580, 600, 740)],
        "aes_key_expand": [_um_rect(600, 580, 950, 740)],
        "aes_round_ctrl": [_um_rect(200, 100, 250, 300)],
        # Peripherals (west edge / top-left corner = sensor 0 patch).
        "uart_fifo": [_um_rect(30, 600, 200, 950)],
        "uart_core": [_um_rect(30, 440, 200, 600)],
        "psa_control": [_um_rect(30, 830, 170, 960)],
        # Distributed networks.
        "clock_tree": [_um_rect(50, 50, 950, 950)],
        "io_ring": [
            _um_rect(0, 0, 1000, 25),
            _um_rect(0, 975, 1000, 1000),
            _um_rect(0, 25, 25, 975),
            _um_rect(975, 25, 1000, 975),
        ],
    }


def trojan_cluster_rects(sensor_index: int) -> Dict[str, List[Rect]]:
    """The four-Trojan cluster implanted under one sensor.

    Places one Trojan per quadrant of the host sensor's *exclusive
    core* — the sub-area no overlapping neighbour covers, offset
    4.5/6.5 lattice pitches from the sensor origin, mid-cell and clear
    of every lattice wire — with T1 north-west, T2 north-east, T3
    south-west (smaller), T4 south-east.  For the paper's host
    (sensor 10) this reproduces the published layout exactly,
    including the x = 600 um power stripe running through the core as
    the return-current path.

    Parameters
    ----------
    sensor_index:
        Host sensor of the cluster (0..15, row-major, row 0 on top).

    Returns
    -------
    dict
        ``{"T1": [rect], ..., "T4": [rect]}`` placements [m].
    """
    host = sensor_rect(sensor_index)
    pitch = DIE_SIZE / 35.0
    x_west, x_east = host.x0 + 4.5 * pitch, host.x0 + 6.5 * pitch
    y_south, y_north = host.y0 + 4.5 * pitch, host.y0 + 6.5 * pitch

    def _trojan_rect(x: float, y: float, half: float) -> Rect:
        return Rect(x - half, y - half, x + half, y + half)

    return {
        "T1": [_trojan_rect(x_west, y_north, 14.0 * UM)],
        "T2": [_trojan_rect(x_east, y_north, 14.0 * UM)],
        "T3": [_trojan_rect(x_west, y_south, 10.0 * UM)],
        "T4": [_trojan_rect(x_east, y_south, 14.0 * UM)],
    }


def floorplan_with_trojans_at(sensor_index: int) -> Floorplan:
    """The test-chip floorplan with the Trojan cluster under any sensor.

    Everything except the Trojans stays at the paper's placement; the
    cluster (see :func:`trojan_cluster_rects`) moves to the chosen
    host.  This is the implant-position axis of the localization
    sweep: the coupling *geometry* is placement-independent (the
    content-keyed cache is shared across hosts), only the per-module
    activity weights change.

    Parameters
    ----------
    sensor_index:
        Host sensor of the implanted cluster (0..15).
    """
    placements = _base_placements()
    placements.update(trojan_cluster_rects(sensor_index))
    return Floorplan(placements)


def default_floorplan() -> Floorplan:
    """The paper's test-chip floorplan (see module docstring).

    Trojan quadrant assignment inside sensor 10: T1 north-west,
    T2 north-east, T3 south-west (small), T4 south-east.  The cluster
    sits in sensor 10's *exclusive core* — the part of its footprint
    not shared with the overlapping neighbours — matching the
    paper's amoeba view, where sensor 10 "offers the most coverage of
    both Trojan payloads and triggers".
    """
    return floorplan_with_trojans_at(DEFAULT_TROJAN_SENSOR)
