"""Comparison-method protocol and quick method checks."""

import numpy as np
import pytest

from repro.baselines.backscatter import BackscatterMethod
from repro.baselines.common import (
    ReceiverBench,
    euclidean_statistics,
    reference_spectrum,
)
from repro.baselines.protocol import (
    MethodReport,
    TrojanOutcome,
    outcome_from_populations,
)
from repro.baselines.psa_method import PsaMethod
from repro.dsp.transforms import amplitude_spectrum
from repro.em.probes import langer_lf1_probe
from repro.errors import AnalysisError


def test_outcome_from_populations():
    rng = np.random.default_rng(0)
    inactive = rng.normal(0.0, 1.0, 40)
    active = rng.normal(8.0, 1.0, 40)
    outcome = outcome_from_populations("T1", inactive, active)
    assert outcome.effect_size > 5
    assert outcome.n_required <= 2
    assert outcome.detection_rate == 1.0


def test_method_report_aggregates():
    report = MethodReport(name="x")
    report.outcomes["T1"] = TrojanOutcome("T1", 5.0, 2, 1.0)
    report.outcomes["T3"] = TrojanOutcome("T3", 0.01, 200_000, 0.0)
    assert report.worst_n_required == 200_000
    assert report.best_n_required == 2
    assert report.mean_detection_rate == pytest.approx(0.5)
    assert report.rate_label() == "Low"


def test_empty_report_rejected():
    with pytest.raises(AnalysisError):
        MethodReport(name="x").worst_n_required


def test_euclidean_statistics():
    fs = 528e6
    t = np.arange(2048) / fs
    ref_spec = amplitude_spectrum(np.sin(2 * np.pi * 33e6 * t), fs)
    same = euclidean_statistics([ref_spec], ref_spec)
    assert same[0] == pytest.approx(0.0, abs=1e-12)
    other = amplitude_spectrum(2 * np.sin(2 * np.pi * 33e6 * t), fs)
    far = euclidean_statistics([other], ref_spec)
    assert far[0] > 0.1


def test_reference_spectrum_is_power_mean():
    fs = 528e6
    t = np.arange(2048) / fs
    spec_a = amplitude_spectrum(np.sin(2 * np.pi * 33e6 * t), fs)
    spec_b = amplitude_spectrum(3 * np.sin(2 * np.pi * 33e6 * t), fs)
    ref = reference_spectrum([spec_a, spec_b])
    expected = np.sqrt((spec_a.at(33e6) ** 2 + spec_b.at(33e6) ** 2) / 2)
    assert ref.at(33e6) == pytest.approx(expected, rel=1e-9)


def test_receiver_bench_measures(chip, records):
    bench = ReceiverBench(chip, langer_lf1_probe())
    trace = bench.measure(records["baseline"][0])
    assert trace.label == "langer_lf1"
    assert trace.n_samples == chip.config.n_samples


def test_backscatter_features_react_to_t4(chip, campaign, records):
    method = BackscatterMethod(chip, campaign)
    base = method.reflection_features(records["baseline"][0], 0)
    active = method.reflection_features(records["T4"][0], 1)
    assert base.shape == active.shape
    assert np.linalg.norm(active - base) > 0.1 * np.linalg.norm(base)


def test_psa_method_strong_effect_sizes(chip, campaign, psa):
    """The PSA separates every Trojan with single-digit trace needs."""
    method = PsaMethod(chip, campaign, psa)
    report = method.evaluate(n_traces=4)
    assert report.localization and report.runtime
    for trojan, outcome in report.outcomes.items():
        assert outcome.n_required < 10, trojan
        assert outcome.detection_rate == 1.0, trojan
    assert report.snr_db == pytest.approx(41.0, abs=6.0)
