"""Frequency-domain filtering."""

import numpy as np
import pytest

from repro.dsp.filters import (
    analytic_bandpass,
    apply_transfer,
    butter_highpass_response,
    butter_lowpass_response,
    envelope_lowpass,
)
from repro.errors import AnalysisError

FS = 528e6


def _tone(freq, amp=1.0, n=8192):
    t = np.arange(n) / FS
    return amp * np.sin(2 * np.pi * freq * t)


def test_lowpass_halfpower_at_cutoff():
    lp = butter_lowpass_response(50e6, order=4)
    assert lp(np.array([50e6]))[0] == pytest.approx(1 / np.sqrt(2))
    assert lp(np.array([0.0]))[0] == pytest.approx(1.0)
    assert lp(np.array([200e6]))[0] < 0.01


def test_highpass_halfpower_at_cutoff():
    hp = butter_highpass_response(30e6, order=2)
    assert hp(np.array([30e6]))[0] == pytest.approx(1 / np.sqrt(2))
    assert hp(np.array([0.0]))[0] == 0.0
    assert hp(np.array([300e6]))[0] == pytest.approx(1.0, abs=0.01)


def test_apply_transfer_scales_tone():
    trace = _tone(40e6, amp=1.0)
    lp = butter_lowpass_response(40e6, order=4)
    filtered = apply_transfer(trace, FS, lp)
    out_rms = np.sqrt(np.mean(filtered**2))
    in_rms = np.sqrt(np.mean(trace**2))
    assert out_rms / in_rms == pytest.approx(1 / np.sqrt(2), rel=0.01)


def test_apply_transfer_preserves_length_and_realness():
    trace = np.random.default_rng(0).normal(size=1000)
    out = apply_transfer(trace, FS, butter_lowpass_response(80e6, 2))
    assert out.shape == trace.shape
    assert np.isrealobj(out)


def test_analytic_bandpass_recovers_am_envelope():
    """AM on a 48 MHz carrier: the envelope comes back at baseband."""
    n = 16384
    t = np.arange(n) / FS
    modulation = 1.0 + 0.5 * np.sin(2 * np.pi * 1e6 * t)
    trace = modulation * np.sin(2 * np.pi * 48e6 * t)
    baseband = analytic_bandpass(trace, FS, 48e6, 8e6)
    envelope = np.abs(baseband)
    # Skip edges (FFT wrap-around).
    core = slice(n // 8, -n // 8)
    assert np.corrcoef(envelope[core], modulation[core])[0, 1] > 0.99


def test_analytic_bandpass_rejects_out_of_band_tone():
    trace = _tone(48e6) + _tone(20e6, amp=5.0)
    baseband = analytic_bandpass(trace, FS, 48e6, 8e6)
    envelope = np.abs(baseband)
    assert np.median(envelope) == pytest.approx(1.0, rel=0.1)


def test_analytic_bandpass_validates_band():
    trace = _tone(48e6)
    with pytest.raises(AnalysisError):
        analytic_bandpass(trace, FS, 300e6, 8e6)
    with pytest.raises(AnalysisError):
        analytic_bandpass(trace, FS, 1e6, 8e6)


def test_envelope_lowpass_smooths():
    rng = np.random.default_rng(1)
    rough = np.abs(rng.normal(1.0, 0.5, 4096))
    smooth = envelope_lowpass(rough, FS, 5e6)
    assert np.std(np.diff(smooth)) < np.std(np.diff(rough))
