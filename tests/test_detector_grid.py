"""The comparative detector × Trojan-class grid and its committed matrix.

Two committed expectation files under ``tests/data/`` pin the
blind-spot structure of the builtin detection methods:

* ``detector_grid_expected.json`` — the full ``detectors`` grid
  (every catalog Trojan and every always-on variant under every
  method).  CI runs the smoke slice; the full grid is exercised by
  the gated benchmark (``DETECTOR_GRID_FULL=1``) and by
  ``repro sweep --grid detectors``.
* ``detector_grid_smoke_expected.json`` — the CI-sized
  ``detectors-smoke`` slice, rendered end-to-end here.

Every miss in those matrices is structural (a method's own blind
spot), so a flip in *either* direction is a regression — a newly
"detected" cell means the simulated physics or a detector's semantics
drifted just as surely as a newly missed one.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.analysis.welford import DetectorBank
from repro.sweep import (
    DETECTOR_NAMES,
    DETECTOR_TROJANS,
    DetectionSweep,
    SweepCell,
    SweepGrid,
    detectors_grid,
    detectors_smoke_grid,
)
from repro.core.analysis.detector import DetectorConfig

DATA = Path(__file__).parent / "data"


def _expected(name: str) -> dict:
    with open(DATA / name, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def smoke_report(campaign):
    return DetectionSweep(campaign).run(detectors_smoke_grid())


# -- the committed expectation files -------------------------------------------


class TestCommittedMatrices:
    def test_full_matrix_covers_the_grid(self):
        expected = _expected("detector_grid_expected.json")
        assert expected["grid"] == "detectors"
        matrix = expected["matrix"]
        assert set(matrix) == set(DETECTOR_NAMES)
        for row in matrix.values():
            assert tuple(row) == DETECTOR_TROJANS
        grid = detectors_grid()
        assert grid.n_cells == len(DETECTOR_NAMES) * len(DETECTOR_TROJANS)

    def test_smoke_matrix_is_a_slice_of_the_full_matrix(self):
        full = _expected("detector_grid_expected.json")["matrix"]
        smoke = _expected("detector_grid_smoke_expected.json")["matrix"]
        assert set(smoke) == set(DETECTOR_NAMES)
        for detector, row in smoke.items():
            for trojan, detected in row.items():
                assert full[detector][trojan] == detected

    def test_matrix_structure_is_complementary(self):
        """The blind spots are the grid's point: no method sees every
        class, and no class evades every method."""
        matrix = _expected("detector_grid_expected.json")["matrix"]
        always_on = ("T1A", "T2A", "TP")
        # The paper's self-baseline detects every catalog Trojan and
        # is structurally blind to the always-on family it absorbs.
        assert all(matrix["welford"][t] for t in ("T1", "T2", "T3", "T4"))
        assert not any(matrix["welford"][t] for t in always_on)
        for detector in DETECTOR_NAMES:
            assert not all(matrix[detector].values())
        for trojan in DETECTOR_TROJANS:
            assert any(matrix[d][trojan] for d in DETECTOR_NAMES)


# -- the rendered smoke grid (end-to-end) --------------------------------------


class TestSmokeGrid:
    def test_reproduces_the_committed_matrix(self, smoke_report):
        expected = _expected("detector_grid_smoke_expected.json")
        assert smoke_report.grid == expected["grid"]
        assert smoke_report.detection_matrix() == expected["matrix"]

    def test_always_on_cells_score_any_alarm_as_detection(self, smoke_report):
        for cell in smoke_report.cells:
            if cell.trojan != "T1A":
                continue
            # Always-on streams have no quiet reference span: the
            # implant is active from window 0, so any alarm is true.
            assert cell.reference == "T1A"
            if cell.alarm_index is not None:
                assert cell.success
                # trigger_index == 0: latency counts from window 0,
                # inclusive of the alarming window.
                assert cell.mttd.traces_to_detect == cell.alarm_index + 1
                assert not cell.mttd.false_alarm

    def test_cell_labels_carry_the_detector(self, smoke_report):
        labels = {cell.label for cell in smoke_report.cells}
        assert "T1|baseline@0" in labels  # welford keeps legacy labels
        assert "T1|baseline@0|spectral" in labels
        assert "T1A|T1A@0|persistence" in labels
        assert all(
            cell.detector in ("welford", "spectral", "persistence")
            for cell in smoke_report.cells
        )

    def test_drift_gate_passes_on_the_rendered_report(
        self, smoke_report, tmp_path
    ):
        """CI's gate (tools/check_detector_grid.py) accepts the real
        report — closing the loop between the sweep's JSON schema and
        the tool that diffs it."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_detector_grid",
            Path(__file__).parent.parent
            / "tools"
            / "check_detector_grid.py",
        )
        check = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check)
        report_path = tmp_path / "detector-grid.json"
        report_path.write_text(smoke_report.to_json() + "\n")
        code, lines = check.run(
            report_path, DATA / "detector_grid_smoke_expected.json"
        )
        assert code == 0, lines

    def test_report_renders_the_detector_column(self, smoke_report):
        text = smoke_report.format()
        assert "detector" in text
        assert "persistence" in text
        payload = json.loads(smoke_report.to_json())
        assert {c["detector"] for c in payload["cells"]} == set(
            DETECTOR_NAMES
        )


# -- registry-routed welford is bit-identical in the sweep flow ----------------


class TestWelfordSweepIdentity:
    def test_sweep_cell_matches_direct_detector_bank(self, campaign):
        tuning = DetectorConfig(warmup=4)
        grid = SweepGrid(
            name="pin",
            cells=(
                SweepCell(
                    trojan="T1",
                    detector=tuning,
                    n_baseline=6,
                    n_active=3,
                    quantize=True,
                ),
            ),
        )
        sweep = DetectionSweep(campaign)
        report = sweep.run(grid)
        cell = report.cells[0]
        assert cell.detector == "welford"
        # Fold the cell's own features through a directly-constructed
        # pre-registry DetectorBank: the registry route must be
        # bit-identical (same alarms at the same windows).
        direct = DetectorBank(1, tuning).process(cell.features_db)
        assert direct.first_alarm() == cell.alarm_index
        assert direct.first_alarms() == [
            outcome.first_alarm for outcome in cell.outcomes
        ]
        assert np.all(direct.armed[:, tuning.warmup :])
