"""AES-128 correctness (FIPS-197 vectors + properties)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import (
    decrypt_block,
    encrypt_block,
    encrypt_block_with_history,
)
from repro.crypto.key_schedule import expand_key
from repro.crypto.sbox import INV_SBOX, SBOX, gf_inverse, gf_mul

# FIPS-197 Appendix B.
FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS_CIPHERTEXT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

# FIPS-197 Appendix C.1.
C1_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
C1_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
C1_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


def test_sbox_known_entries():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_a_permutation():
    assert sorted(SBOX.tolist()) == list(range(256))
    assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


def test_gf_arithmetic():
    # Classic example: 0x57 * 0x83 = 0xC1 in GF(2^8).
    assert gf_mul(0x57, 0x83) == 0xC1
    assert gf_mul(0x57, 0x13) == 0xFE
    for value in (1, 2, 0x53, 0xCA, 0xFF):
        assert gf_mul(value, gf_inverse(value)) == 1
    assert gf_inverse(0) == 0


def test_key_schedule_fips_vector():
    round_keys = expand_key(FIPS_KEY)
    assert len(round_keys) == 11
    assert bytes(round_keys[0]) == FIPS_KEY
    assert bytes(round_keys[10]) == bytes.fromhex(
        "d014f9a8c9ee2589e13f0cc8b6630ca6"
    )


def test_encrypt_fips_appendix_b():
    assert encrypt_block(FIPS_PLAINTEXT, FIPS_KEY) == FIPS_CIPHERTEXT


def test_encrypt_fips_appendix_c1():
    assert encrypt_block(C1_PLAINTEXT, C1_KEY) == C1_CIPHERTEXT


def test_decrypt_fips_vectors():
    assert decrypt_block(FIPS_CIPHERTEXT, FIPS_KEY) == FIPS_PLAINTEXT
    assert decrypt_block(C1_CIPHERTEXT, C1_KEY) == C1_PLAINTEXT


@settings(max_examples=50, deadline=None)
@given(
    plaintext=st.binary(min_size=16, max_size=16),
    key=st.binary(min_size=16, max_size=16),
)
def test_encrypt_decrypt_roundtrip(plaintext, key):
    assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=16, max_size=16))
def test_history_is_consistent(key):
    history = encrypt_block_with_history(FIPS_PLAINTEXT, key)
    assert len(history.rounds) == 10
    states = history.cycle_states()
    assert len(states) == 11
    # Load cycle = plaintext ^ rk0.
    expected = np.frombuffer(FIPS_PLAINTEXT, dtype=np.uint8) ^ history.round_keys[0]
    assert np.array_equal(states[0], expected)
    # Final round output is the ciphertext.
    assert np.array_equal(states[-1], history.ciphertext)
    # Round 10 has no MixColumns.
    last = history.rounds[-1]
    assert np.array_equal(last.after_mixcolumns, last.after_shiftrows)


def test_avalanche_effect():
    """Flipping one plaintext bit flips ~half the ciphertext bits."""
    base = bytearray(FIPS_PLAINTEXT)
    reference = np.frombuffer(
        encrypt_block(bytes(base), FIPS_KEY), dtype=np.uint8
    )
    base[0] ^= 0x01
    flipped = np.frombuffer(
        encrypt_block(bytes(base), FIPS_KEY), dtype=np.uint8
    )
    distance = int(np.unpackbits(reference ^ flipped).sum())
    assert 40 <= distance <= 88
