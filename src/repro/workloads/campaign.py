"""Measurement campaigns: (chip, PSA, scenario) -> trace sets."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..core.array import ProgrammableSensorArray
from ..engine import TraceBatch
from ..errors import WorkloadError
from ..traces import Trace
from .scenarios import Scenario, scenario_by_name


@dataclass(frozen=True)
class StreamSegment:
    """One contiguous span of a monitoring stream.

    Attributes
    ----------
    scenario:
        Scenario name of every capture in the span.
    n_traces:
        Captures in the span.
    index_offset:
        First trace index (workload and RNG streams follow it).
    """

    scenario: str
    n_traces: int
    index_offset: int = 0

    def __post_init__(self) -> None:
        if self.n_traces < 1:
            raise WorkloadError("segment needs at least one trace")

    @property
    def indices(self) -> List[int]:
        """Trace indices of the span."""
        return [self.index_offset + i for i in range(self.n_traces)]


@dataclass
class TraceSet:
    """Traces collected for one scenario.

    Attributes
    ----------
    scenario:
        Scenario name.
    traces:
        ``traces[sensor_index][trace_index]`` — one list per sensor.
    records:
        The activity records behind each trace index.
    """

    scenario: str
    traces: Dict[int, List[Trace]] = field(default_factory=dict)
    records: List[ActivityRecord] = field(default_factory=list)

    @property
    def n_traces(self) -> int:
        """Traces captured per sensor."""
        return len(self.records)

    def sensor(self, index: int) -> List[Trace]:
        """All traces of one sensor."""
        if index not in self.traces:
            raise WorkloadError(f"trace set holds no sensor {index}")
        return self.traces[index]


class MeasurementCampaign:
    """Runs scenario workloads and collects PSA traces.

    Each trace uses a fresh plaintext stream (seeded deterministically
    from the config seed, the scenario name and the trace index), so
    trace-to-trace variation reflects real data-dependent activity, not
    just noise redraws.

    Parameters
    ----------
    chip:
        The device under test.
    psa:
        Its sensor array.
    """

    def __init__(self, chip: TestChip, psa: ProgrammableSensorArray):
        if psa.chip is not chip:
            raise WorkloadError("PSA is not attached to this chip")
        self.chip = chip
        self.psa = psa

    # -- record generation -----------------------------------------------------

    def record(self, scenario: Scenario, trace_index: int) -> ActivityRecord:
        """Simulate the activity record behind one trace."""
        config = self.chip.config
        # zlib.crc32 (not hash()) keeps seeds stable across processes —
        # Python string hashing is salted per interpreter run.
        name_hash = zlib.crc32(scenario.name.encode("utf-8"))
        seed = (
            (config.seed * 0x9E3779B1 + name_hash) ^ (trace_index * 7919)
        ) & 0x7FFF_FFFF
        seed = seed or 1
        plaintexts = scenario.plaintexts(config.n_blocks, seed)
        return self.chip.run_trace(
            plaintexts,
            active=scenario.active,
            idle=scenario.idle,
            scenario=scenario.name,
        )

    def records(self, scenario_name: str, n_traces: int) -> List[ActivityRecord]:
        """Activity records for ``n_traces`` captures of a scenario."""
        if n_traces < 1:
            raise WorkloadError("need at least one trace")
        scenario = scenario_by_name(scenario_name)
        return [self.record(scenario, index) for index in range(n_traces)]

    # -- trace collection ----------------------------------------------------------

    def collect_batch(
        self,
        scenario_name: str,
        n_traces: int,
        sensors: Optional[Sequence[int]] = None,
        index_offset: int = 0,
    ) -> TraceBatch:
        """Capture ``n_traces`` as one batched engine render.

        This is the throughput path: every capture of every selected
        sensor is rendered in a single vectorized pass.  The records
        behind the batch are regenerated deterministically from the
        scenario and the trace indices.

        Parameters
        ----------
        scenario_name:
            A key of :data:`repro.workloads.scenarios.SCENARIOS`.
        n_traces:
            Captures per sensor.
        sensors:
            Sensor indices (default: every sensor of the attached PSA).
        index_offset:
            First trace index (workload and RNG streams follow it).
        """
        segment = StreamSegment(scenario_name, n_traces, index_offset)
        return self._collect([segment], sensors, None)[1]

    def collect_stream(
        self,
        segments: Sequence[StreamSegment],
        sensors: Optional[Sequence[int]] = None,
        record_cache: Optional[
            MutableMapping[Tuple[str, int], ActivityRecord]
        ] = None,
    ) -> TraceBatch:
        """Capture a multi-segment stream as one batched engine render.

        The sweep orchestrator's entry point: a monitoring stream is a
        reference span followed by a Trojan-active span (arbitrarily
        many spans are allowed), and the whole stream renders in a
        single vectorized engine pass so cell evaluation runs at
        engine throughput.

        Parameters
        ----------
        segments:
            Stream spans in capture order.
        sensors:
            Sensor indices (default: every sensor of the attached PSA).
        record_cache:
            Optional ``(scenario, trace_index) -> ActivityRecord``
            memo.  Records are deterministic in that key, so a cache
            shared across calls (e.g. across sweep cells re-using the
            same baseline span) skips re-simulating chip activity.
        """
        if not segments:
            raise WorkloadError("need at least one stream segment")
        return self._collect(segments, sensors, record_cache)[1]

    def enqueue_stream(
        self,
        plan,
        segments: Sequence[StreamSegment],
        sensors: Optional[Sequence[int]] = None,
        record_cache: Optional[
            MutableMapping[Tuple[str, int], ActivityRecord]
        ] = None,
        tag: Optional[str] = None,
    ):
        """Enqueue a stream capture on a fused dispatch plan.

        The plan-joining twin of :meth:`collect_stream`: records are
        built (and memoized) at enqueue time, the render joins ``plan``
        (a :class:`~repro.engine.RenderPlan`), and the returned ticket
        resolves to the identical :class:`TraceBatch` after
        ``plan.execute()``.  Streams of many cells/chips enqueued on
        one plan render as a single fused engine pass.
        """
        if not segments:
            raise WorkloadError("need at least one stream segment")
        records: List[ActivityRecord] = []
        indices: List[int] = []
        for segment in segments:
            scenario = scenario_by_name(segment.scenario)
            for index in segment.indices:
                if record_cache is None:
                    record = self.record(scenario, index)
                else:
                    key = (scenario.name, index)
                    record = record_cache.get(key)
                    if record is None:
                        record = self.record(scenario, index)
                        record_cache[key] = record
                records.append(record)
                indices.append(index)
        return self.psa.enqueue(
            plan, records, trace_indices=indices, sensors=sensors, tag=tag
        )

    def close(self) -> None:
        """Release the PSA engine's backend resources."""
        self.psa.close()

    def _collect(
        self,
        segments: Sequence[StreamSegment],
        sensors: Optional[Sequence[int]],
        record_cache: Optional[
            MutableMapping[Tuple[str, int], ActivityRecord]
        ],
    ):
        records: List[ActivityRecord] = []
        indices: List[int] = []
        for segment in segments:
            scenario = scenario_by_name(segment.scenario)
            for index in segment.indices:
                if record_cache is None:
                    record = self.record(scenario, index)
                else:
                    key = (scenario.name, index)
                    record = record_cache.get(key)
                    if record is None:
                        record = self.record(scenario, index)
                        record_cache[key] = record
                records.append(record)
                indices.append(index)
        batch = self.psa.render(records, trace_indices=indices, sensors=sensors)
        return records, batch

    def collect(
        self,
        scenario_name: str,
        n_traces: int,
        sensors: Optional[Sequence[int]] = None,
    ) -> TraceSet:
        """Capture ``n_traces`` from the selected sensors.

        Compatibility view over :meth:`collect_batch`: same rendered
        samples, repackaged as a :class:`TraceSet` of per-sensor trace
        lists.

        Parameters
        ----------
        scenario_name:
            A key of :data:`repro.workloads.scenarios.SCENARIOS`.
        n_traces:
            Captures per sensor.
        sensors:
            Sensor indices (default: every sensor of the attached PSA,
            derived from the array — a non-16-sensor PSA yields exactly
            its own sensors, no phantoms).
        """
        if sensors is None:
            wanted = list(range(self.psa.n_sensors))
        else:
            wanted = list(sensors)
        segment = StreamSegment(scenario_name, n_traces, 0)
        records, batch = self._collect([segment], wanted, None)
        trace_set = TraceSet(scenario=scenario_name, records=records)
        for position, index in enumerate(wanted):
            trace_set.traces[index] = batch.traces(position)
        return trace_set
