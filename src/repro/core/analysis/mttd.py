"""Mean-time-to-detect accounting.

MTTD is the wall-clock latency between a Trojan's activation and the
detector's alarm (Section II-A).  In deployment the RASC-style board
captures a window, processes it (FFT + feature + z-score) and moves to
the next window; the per-trace period is therefore the capture duration
plus the processing budget.

With the paper's settings — fewer than ten traces to an alarm and a
~1 ms per-trace cadence — the MTTD lands below 10 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import SimConfig
from ...errors import AnalysisError


@dataclass(frozen=True)
class MttdModel:
    """Per-trace timing of the run-time monitor.

    Attributes
    ----------
    processing_latency_s:
        On-board FFT + feature + decision time per trace [s].
    """

    processing_latency_s: float = 0.9e-3

    def __post_init__(self) -> None:
        if self.processing_latency_s < 0:
            raise AnalysisError("processing latency must be >= 0")

    def trace_period(self, config: SimConfig) -> float:
        """Capture + processing period of one monitoring trace [s]."""
        return config.duration + self.processing_latency_s


@dataclass(frozen=True)
class MttdResult:
    """Trigger-to-alarm latency.

    Attributes
    ----------
    detected:
        Whether an alarm correctly fired after the activation.
    traces_to_detect:
        Traces consumed after the activation (inclusive of the
        alarming trace); None when not detected.
    mttd_s:
        Wall-clock latency [s]; None when not detected.
    false_alarm:
        The detector alarmed *before* the activation.  A false alarm
        is not a detection — it carries no latency — so ``detected``
        is False and both latency fields are None.
    """

    detected: bool
    traces_to_detect: int | None
    mttd_s: float | None
    false_alarm: bool = False

    def within(self, budget_s: float, budget_traces: int) -> bool:
        """Whether the paper's budget (<10 ms, <10 traces) is met."""
        return (
            self.detected
            and self.mttd_s is not None
            and self.traces_to_detect is not None
            and self.mttd_s < budget_s
            and self.traces_to_detect < budget_traces
        )


def mttd_from_alarm(
    alarm_index: int | None,
    trigger_index: int,
    config: SimConfig,
    model: MttdModel | None = None,
) -> MttdResult:
    """Convert stream indices into an :class:`MttdResult`.

    Parameters
    ----------
    alarm_index:
        Trace index of the alarm (None = never fired).
    trigger_index:
        Trace index of the first trace with the Trojan active.
    config:
        Simulation config (capture duration).
    model:
        Timing model.
    """
    if alarm_index is None:
        return MttdResult(detected=False, traces_to_detect=None, mttd_s=None)
    if alarm_index < trigger_index:
        # An alarm before the activation is a false positive: there is
        # no activation-to-alarm latency to report, so classify instead
        # of deriving a (negative) MTTD from it.
        return MttdResult(
            detected=False,
            traces_to_detect=None,
            mttd_s=None,
            false_alarm=True,
        )
    model = model or MttdModel()
    traces = alarm_index - trigger_index + 1
    return MttdResult(
        detected=True,
        traces_to_detect=traces,
        mttd_s=traces * model.trace_period(config),
    )
