"""RASC-style on-board run-time monitor.

Section II-A: the RASCv2 board replaces the oscilloscope for run-time
side-channel verification — ADCs sample the sensor output, an FPGA
processes the traces, and only processed verdicts leave the board
(which is also why the PSA does not enable remote side-channel attacks:
raw traces never cross a communication channel).

:class:`RascMonitor` is deliberately decoupled from the analysis
package: it takes a feature extractor and a streaming detector as
collaborators, adds the ADC front-end and the per-trace latency budget,
and reports a timeline suitable for MTTD evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Protocol, Sequence, Tuple

from ..errors import MeasurementError
from ..traces import Trace
from .adc import AdcSpec, quantize, quantize_batch

#: The monitor's converter: +-10 V at 12 bits swallows the 50 dB-
#: amplified sensor output without clipping while keeping quantization
#: ~5 mV, far below the sideband features of interest.  Canonical here;
#: batch consumers (repro.sweep) share the same spec.
RASC_ADC = AdcSpec(n_bits=12, full_scale=10.0)

#: Auto-range headroom above each trace's peak (the programmable-gain
#: attenuator's safety margin).
AUTO_RANGE_HEADROOM = 1.25


class StreamingDetector(Protocol):
    """Anything with a RuntimeDetector-compatible update method."""

    def update(self, feature_db: float) -> object: ...


@dataclass(frozen=True)
class RascReport:
    """Timeline of one monitoring session.

    Attributes
    ----------
    alarm_index:
        Trace index of the first alarm (None = silent).
    alarm_time_s:
        Wall-clock time of the alarm relative to session start [s].
    features_db:
        Feature per processed trace.
    trace_period_s:
        Capture + processing period per trace [s].
    window_indices:
        Stream index of every processed window, in order.
    window_times_s:
        Wall-clock verdict time of every processed window [s].
    alarms:
        Every alarming window index (a session monitored past its
        first alarm can fire more than once).
    """

    alarm_index: int | None
    alarm_time_s: float | None
    features_db: List[float]
    trace_period_s: float
    window_indices: Tuple[int, ...] = ()
    window_times_s: Tuple[float, ...] = ()
    alarms: Tuple[int, ...] = ()

    def traces_to_detect(self, trigger_index: int) -> int | None:
        """Windows from a scripted activation to the first alarm.

        The per-window bookkeeping replaces hand-rolled trigger
        arithmetic in callers: given the window the Trojan was enabled
        at, this is the (inclusive) count of monitored windows until
        the alarm — None when the session stayed silent or alarmed
        *before* the activation (a false alarm, not a detection).
        """
        if self.alarm_index is None or self.alarm_index < trigger_index:
            return None
        return self.alarm_index - trigger_index + 1

    def state_at(self, window: int, warmup: int, trigger_index: int) -> str:
        """Human-readable monitor state of one window of the timeline."""
        if window < warmup:
            return "warm-up"
        if self.alarm_index is not None and window in self.alarms:
            return "ALARM"
        if window < trigger_index:
            return "armed, quiet"
        return "TROJAN ACTIVE"


class RascMonitor:
    """ADC + feature + detector, with latency accounting.

    Parameters
    ----------
    feature_fn:
        Maps a quantized trace to the detection feature [dB].
    detector:
        Streaming detector; its update() result must expose ``alarm``.
    adc:
        Sampling front-end.
    processing_latency_s:
        On-board processing time per trace [s].
    auto_range:
        Rescale the converter range to each trace's peak (with the
        :data:`AUTO_RANGE_HEADROOM` margin) before sampling — the
        front-end's programmable-gain attenuator.  Without it, a
        strong Trojan like the T4 power virus clips the converter and
        its signature vanishes.
    """

    def __init__(
        self,
        feature_fn: Callable[[Trace], float],
        detector: StreamingDetector,
        adc: AdcSpec | None = None,
        processing_latency_s: float = 0.9e-3,
        auto_range: bool = True,
    ):
        if processing_latency_s < 0:
            raise MeasurementError("processing latency must be >= 0")
        self.feature_fn = feature_fn
        self.detector = detector
        self.adc = adc or RASC_ADC
        self.processing_latency_s = processing_latency_s
        self.auto_range = auto_range

    def process(self, trace: Trace) -> tuple[float, bool]:
        """Digitize and score one trace; returns (feature, alarm)."""
        if self.auto_range:
            samples = quantize_batch(
                trace.samples[None, :],
                self.adc,
                auto_range=True,
                headroom=AUTO_RANGE_HEADROOM,
            )[0]
        else:
            samples = quantize(trace.samples, self.adc)
        digitized = Trace(
            samples=samples,
            fs=trace.fs,
            label=trace.label,
            scenario=trace.scenario,
            meta=trace.meta,
        )
        feature = self.feature_fn(digitized)
        decision = self.detector.update(feature)
        return feature, bool(getattr(decision, "alarm", False))

    def monitor(
        self, traces: Sequence[Trace], stop_on_alarm: bool = True
    ) -> RascReport:
        """Stream a trace sequence until the first alarm (or the end).

        Timeline bookkeeping (window indices, verdict timestamps,
        alarm accounting) delegates to the run-time subsystem's
        :class:`~repro.runtime.timeline.WindowTimeline` — the same
        fold the streaming :class:`~repro.runtime.EscalationPipeline`
        uses — so the per-trace and batched monitoring paths share one
        notion of session time.  With ``stop_on_alarm`` (the legacy
        behavior) the session ends at the first alarm; without it the
        monitor keeps watching and records every alarm.
        """
        from ..runtime.timeline import WindowTimeline  # instruments sit below

        if not traces:
            raise MeasurementError("no traces to monitor")
        period = traces[0].duration + self.processing_latency_s
        timeline = WindowTimeline(period, n_streams=1)
        for trace in traces:
            feature, alarm = self.process(trace)
            timeline.push([feature], alarm)
            if alarm and stop_on_alarm:
                break
        alarm_index = timeline.first_alarm
        alarm_time = None if alarm_index is None else timeline.time_of(alarm_index)
        return RascReport(
            alarm_index=alarm_index,
            alarm_time_s=alarm_time,
            features_db=timeline.stream_features(0),
            trace_period_s=period,
            window_indices=timeline.window_indices,
            window_times_s=timeline.window_times_s,
            alarms=timeline.alarms,
        )
