"""From-scratch PCA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.pca import PCA
from repro.errors import AnalysisError


def _anisotropic_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 2)) * np.array([10.0, 1.0])
    mix = np.array([[0.8, 0.6], [-0.6, 0.8]])
    return latent @ mix + np.array([5.0, -2.0])


def test_first_component_captures_dominant_axis():
    data = _anisotropic_data()
    pca = PCA(n_components=2).fit(data)
    ratios = pca.explained_variance_ratio_
    assert ratios[0] > 0.95
    assert ratios.sum() == pytest.approx(1.0, abs=1e-9)


def test_components_are_orthonormal():
    pca = PCA(n_components=2).fit(_anisotropic_data())
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(2), atol=1e-9)


def test_transform_centers_data():
    data = _anisotropic_data()
    projected = PCA(n_components=2).fit_transform(data)
    assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)


def test_inverse_transform_roundtrip_full_rank():
    data = _anisotropic_data()
    pca = PCA(n_components=2).fit(data)
    recovered = pca.inverse_transform(pca.transform(data))
    assert np.allclose(recovered, data, atol=1e-8)


def test_reduced_rank_reconstruction_error_is_small():
    data = _anisotropic_data()
    pca = PCA(n_components=1).fit(data)
    recovered = pca.inverse_transform(pca.transform(data))
    residual = np.linalg.norm(data - recovered) / np.linalg.norm(data)
    assert residual < 0.2


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_variance_ordering(k):
    rng = np.random.default_rng(k)
    data = rng.normal(size=(50, k)) * np.arange(1, k + 1)
    pca = PCA(n_components=k).fit(data)
    variances = pca.explained_variance_
    assert all(variances[i] >= variances[i + 1] for i in range(k - 1))


def test_errors():
    with pytest.raises(AnalysisError):
        PCA(n_components=0)
    with pytest.raises(AnalysisError):
        PCA(n_components=5).fit(np.zeros((3, 2)))
    pca = PCA(n_components=1)
    with pytest.raises(AnalysisError):
        pca.transform(np.zeros((3, 2)))
