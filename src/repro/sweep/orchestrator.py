"""The detection-sweep orchestrator.

Evaluates every cell of a :class:`~repro.sweep.grid.SweepGrid` at
engine throughput:

1. **Render** — the cell's baseline+active monitoring stream goes
   through :meth:`MeasurementCampaign.collect_stream`, one vectorized
   engine pass per distinct stream span of the cell.  The engine's
   coupling-geometry cache and configured execution backend
   (serial/process/shared) are reused as-is, and two sweep-wide memos
   exploit the engine's determinism contract: a record cache re-uses
   chip activity across cells that share workload indices, and a
   span-level feature cache re-uses whole featurized spans (a baseline
   span shared by every Trojan of a grid renders exactly once).  With
   an :class:`~repro.store.ArtifactStore` attached, both memos persist
   on disk keyed by content, so repeated sweeps across processes
   warm-start bit-identically.
2. **Featurize** — (optional) auto-ranged RASC ADC quantization, then
   one batched display-spectrum + sideband-feature pass over every
   capture of the cell.
3. **Detect** — a :class:`~repro.core.analysis.welford.DetectorBank`
   folds the whole feature matrix, one rolling-Welford detector stream
   per sensor, bit-identical to the sequential ``RuntimeDetector``.
4. **Score** — ROC-AUC, detection rate at the cell's operating
   threshold, effect size / required measurements, and MTTD (with
   pre-trigger alarms classified as false alarms).
"""

from __future__ import annotations

from typing import MutableMapping, Optional, Tuple

import numpy as np

from ..core.analysis.mttd import MttdModel, mttd_from_alarm
from ..core.analysis.spectral import sideband_features_db
from ..core.analysis.welford import DetectorBank
from ..dsp.stats import detection_power, detection_rate, roc_auc
from ..instruments.adc import AdcSpec, quantize_batch
from ..instruments.rasc import AUTO_RANGE_HEADROOM, RASC_ADC
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..store import (
    ArrayCodec,
    ArtifactStore,
    RecordCodec,
    adc_fingerprint,
    analyzer_fingerprint,
    campaign_fingerprint,
    chip_fingerprint,
)
from ..workloads.campaign import MeasurementCampaign, StreamSegment
from .grid import SweepCell, SweepGrid
from .report import SensorOutcome, SweepCellResult, SweepReport


class DetectionSweep:
    """Grid evaluator bound to one campaign (chip + PSA + engine).

    Parameters
    ----------
    campaign:
        The measurement campaign to render streams through; its PSA's
        engine (and therefore the configured backend/worker pool) does
        all the rendering.
    analyzer:
        Spectrum analyzer model (paper display settings by default).
    mttd_model:
        Per-trace timing used for MTTD accounting.
    adc:
        Converter used by cells with ``quantize=True`` (the RASC
        monitor's converter by default, shared with
        :mod:`repro.instruments.rasc`).
    store:
        Optional :class:`~repro.store.ArtifactStore`.  When given, the
        sweep-wide record and span-feature memos become persistent
        store views keyed by the campaign's full content fingerprint:
        a repeated sweep over the same chip/workload/engine setup
        replays its artifacts from disk, bit-identical to a cold run.
        None keeps the plain in-memory memos (the cold path).
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        analyzer: Optional[SpectrumAnalyzer] = None,
        mttd_model: Optional[MttdModel] = None,
        adc: AdcSpec = RASC_ADC,
        store: Optional[ArtifactStore] = None,
    ):
        self.campaign = campaign
        self.config = campaign.chip.config
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.mttd_model = mttd_model or MttdModel()
        self.adc = adc
        self.store = store
        self._record_cache: MutableMapping[Tuple[str, int], object]
        self._feature_cache: MutableMapping[tuple, np.ndarray]
        if store is None:
            self._record_cache = {}
            self._feature_cache = {}
        else:
            # Records depend on the chip alone (key/config/floorplan),
            # so their context deliberately omits the PSA: every
            # consumer of the same chip shares one record namespace.
            self._record_cache = store.mapping(
                "record",
                {"chip": chip_fingerprint(campaign.chip)},
                RecordCodec(self.config),
            )
            self._feature_cache = store.mapping(
                "span-features",
                {
                    "campaign": campaign_fingerprint(campaign),
                    "analyzer": analyzer_fingerprint(self.analyzer),
                    "adc": adc_fingerprint(adc),
                    "headroom": AUTO_RANGE_HEADROOM,
                },
                ArrayCodec(readonly=True),
            )

    def run(self, grid: SweepGrid) -> SweepReport:
        """Evaluate every cell of a grid.

        All spans missing from the feature cache render first as one
        fused engine pass across cells (grouped per sensor subset), so
        a whole grid pays one dispatch instead of one per span; each
        span then featurizes exactly as it would standalone.
        """
        self._prefetch(grid.cells)
        cells = tuple(
            self._evaluate(cell, grid.keep_features) for cell in grid.cells
        )
        return SweepReport(
            grid=grid.name,
            trace_period_s=self.mttd_model.trace_period(self.config),
            cells=cells,
        )

    def close(self) -> None:
        """Release the campaign engine's backend resources."""
        self.campaign.close()

    def _prefetch(self, cells) -> None:
        """Render every uncached span of a grid in one fused pass."""
        from ..engine import RenderPlan

        plan = RenderPlan()
        pending = {}
        for cell in cells:
            for segment in cell.segments:
                key = (
                    segment.scenario,
                    segment.n_traces,
                    segment.index_offset,
                    cell.sensors,
                    cell.quantize,
                )
                if key in pending:
                    continue
                if self._feature_cache.get(key) is not None:
                    continue
                ticket = self.campaign.enqueue_stream(
                    plan,
                    [segment],
                    sensors=list(cell.sensors),
                    record_cache=self._record_cache,
                )
                pending[key] = (ticket, cell.quantize)
        if not pending:
            return
        plan.execute()
        for key, (ticket, quantize) in pending.items():
            features = self._featurize(ticket.result(), quantize)
            self._feature_cache[key] = features

    # -- per-cell evaluation ---------------------------------------------------

    def cell_features(self, cell: SweepCell) -> np.ndarray:
        """Render + featurize one cell; ``(n_sensors, n_traces)`` [dB].

        Span blocks come from the sweep-wide feature cache; the stream
        is their concatenation in capture order.  Every feature is
        bit-identical to rendering + featurizing the trace alone (the
        engine's determinism contract plus row-wise featurization).
        """
        blocks = [
            self._segment_features(segment, cell.sensors, cell.quantize)
            for segment in cell.segments
        ]
        return np.concatenate(blocks, axis=1)

    def _segment_features(
        self,
        segment: StreamSegment,
        sensors: Tuple[int, ...],
        quantize: bool,
    ) -> np.ndarray:
        """One span's feature block, rendered on first use only.

        Cache key = the exact span identity; spans that merely overlap
        (same scenario, different offset/length) render separately.
        """
        key = (
            segment.scenario,
            segment.n_traces,
            segment.index_offset,
            sensors,
            quantize,
        )
        features = self._feature_cache.get(key)
        if features is None:
            batch = self.campaign.collect_stream(
                [segment],
                sensors=list(sensors),
                record_cache=self._record_cache,
            )
            features = self._featurize(batch, quantize)
            self._feature_cache[key] = features
        return features

    def _featurize(self, batch, quantize: bool) -> np.ndarray:
        """One rendered span to its read-only feature block [dB]."""
        samples = batch.samples
        if quantize:
            samples = quantize_batch(
                samples, self.adc, headroom=AUTO_RANGE_HEADROOM
            )
        n_sensors, n_traces, n_samples = samples.shape
        grid_freqs, display = self.analyzer.display_matrix(
            samples.reshape(-1, n_samples), batch.fs
        )
        features = sideband_features_db(
            grid_freqs, display, self.config
        ).reshape(n_sensors, n_traces)
        features.flags.writeable = False  # shared across cells
        return features

    def _evaluate(self, cell: SweepCell, keep_features: bool) -> SweepCellResult:
        features = self.cell_features(cell)
        bank = DetectorBank(len(cell.sensors), cell.detector)
        timeline = bank.process(features)
        first_alarms = timeline.first_alarms()
        alarm_index = timeline.first_alarm()
        mttd = mttd_from_alarm(
            alarm_index, cell.trigger_index, self.config, self.mttd_model
        )
        outcomes = []
        for position, sensor in enumerate(cell.sensors):
            inactive = features[position, : cell.n_baseline]
            active = features[position, cell.n_baseline :]
            power = detection_power(active, inactive)
            outcomes.append(
                SensorOutcome(
                    sensor=sensor,
                    roc_auc=roc_auc(active, inactive),
                    detection_rate=detection_rate(
                        active, inactive, cell.z_threshold
                    ),
                    effect_size=power.effect_size,
                    n_required=power.n_required,
                    first_alarm=first_alarms[position],
                )
            )
        return SweepCellResult(
            label=cell.label,
            trojan=cell.trojan,
            reference=cell.reference,
            sensors=cell.sensors,
            n_baseline=cell.n_baseline,
            n_active=cell.n_active,
            outcomes=tuple(outcomes),
            alarm_index=alarm_index,
            mttd=mttd,
            features_db=features if keep_features else None,
        )
