"""ASCII visualization helpers."""

import numpy as np
import pytest

from repro.chip.floorplan import default_floorplan
from repro.errors import FloorplanError
from repro.visualize import floorplan_map, score_heatmap, sensor_overlay


def test_floorplan_map_contains_modules_and_legend():
    art = floorplan_map(default_floorplan())
    for glyph in ("s", "1", "2", "3", "4", "U"):
        assert glyph in art
    assert "aes_sbox_bank" in art  # legend


def test_floorplan_map_orientation():
    """psa_control sits top-left => its glyph appears in early rows."""
    art = floorplan_map(default_floorplan())
    rows = art.splitlines()[:-1]
    top_half = "\n".join(rows[: len(rows) // 2])
    assert "p" in top_half


def test_floorplan_map_size_validation():
    with pytest.raises(FloorplanError):
        floorplan_map(default_floorplan(), width=4)


def test_sensor_overlay_highlights():
    art = sensor_overlay(highlight=[10])
    assert "#" in art and "+" in art
    plain = sensor_overlay()
    assert "#" not in plain


def test_score_heatmap_extremes():
    scores = np.zeros(16)
    scores[10] = 1.0
    art = score_heatmap(scores)
    lines = art.splitlines()
    assert len(lines) == 4
    assert "@" in lines[2]  # sensor 10 = row 2, col 2
    with pytest.raises(FloorplanError):
        score_heatmap(np.zeros(4))
