"""The Programmable Sensor Array measurement facade.

Couples the lattice/coil model to the EM substrate: given an
:class:`~repro.chip.power.ActivityRecord` from the test chip, the PSA
renders amplified, noisy voltage traces for any programmed sensor —
the 16 standard sensors of Section V-A or ad-hoc refinement coils.

All rendering routes through one :class:`~repro.engine.MeasurementEngine`:
``measure``/``measure_all``/``measure_coil`` are thin single-capture
wrappers around the same batched path used by :meth:`render`, so
per-trace and batched output are identical bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..calibration import COUPLING_SCALE
from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, CouplingStack
from ..engine import MeasurementEngine, TraceBatch
from ..errors import MeasurementError
from ..traces import Trace
from .coil import Coil
from .decoder import PsaDecoder
from .grid import PsaGrid
from .sensors import N_SENSORS, standard_sensor_coil


class ProgrammableSensorArray:
    """The on-chip PSA, electrically attached to a test chip.

    Parameters
    ----------
    chip:
        The test chip the lattice is fabricated on.
    turns:
        Turns per standard sensor coil (5 = the deepest spiral the
        symmetric 11-pitch sensor supports; see repro.core.sensors).
    points_per_side:
        Line-integral resolution of the flux computation.
    amplifier:
        Measurement front-end (defaults to the THS4504 model).
    coupling_scale:
        Absolute coupling calibration (see :mod:`repro.calibration`).
    engine:
        Measurement engine override (defaults to a fresh engine using
        the chip config's backend selection).
    n_sensors:
        Standard sensors to program (default: all 16).  Smaller arrays
        take the first ``n_sensors`` standard coil positions — useful
        for partial deployments and cheap test fixtures; consumers must
        derive sensor counts from the array, never assume 16.
    """

    def __init__(
        self,
        chip: TestChip,
        turns: int = 5,
        points_per_side: int = 48,
        amplifier: Optional[MeasurementAmplifier] = None,
        coupling_scale: float = COUPLING_SCALE,
        engine: Optional[MeasurementEngine] = None,
        n_sensors: Optional[int] = None,
    ):
        if n_sensors is None:
            n_sensors = N_SENSORS
        if not 1 <= n_sensors <= N_SENSORS:
            raise MeasurementError(
                f"n_sensors must be in 1..{N_SENSORS}, got {n_sensors}"
            )
        self.chip = chip
        self.config = chip.config
        self.grid = PsaGrid()
        self.decoder = PsaDecoder()
        self.amplifier = amplifier or MeasurementAmplifier()
        self.coupling_scale = coupling_scale
        self.points_per_side = points_per_side
        self.engine = engine or MeasurementEngine(
            chip.config, amplifier=self.amplifier
        )
        self.sensor_coils: List[Coil] = [
            standard_sensor_coil(index, turns) for index in range(n_sensors)
        ]
        receivers = [
            coil.to_receiver(self.config.vdd, self.config.temperature_c)
            for coil in self.sensor_coils
        ]
        self._coupling = CouplingMatrix(
            chip.floorplan,
            receivers,
            points_per_side=points_per_side,
            scale=coupling_scale,
        )
        self._custom_couplings: Dict[str, CouplingMatrix] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def n_sensors(self) -> int:
        """Programmed standard sensors."""
        return len(self.sensor_coils)

    @property
    def coupling(self) -> CouplingMatrix:
        """Coupling matrix of the programmed standard sensors."""
        return self._coupling

    def sensor_coil(self, index: int) -> Coil:
        """Standard coil of one sensor."""
        if not 0 <= index < self.n_sensors:
            raise MeasurementError(
                f"sensor index {index} outside 0..{self.n_sensors - 1}"
            )
        return self.sensor_coils[index]

    # -- batched measurement ---------------------------------------------------

    def render(
        self,
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
        sensors: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures from the standard sensors.

        Parameters
        ----------
        records:
            One activity record per capture, or a single record reused
            for every capture (independent noise per trace index).
        trace_indices:
            RNG stream index per capture (defaults to ``0..n-1``).
        sensors:
            Sensor indices to render (default: every programmed sensor).
        """
        if sensors is not None:
            for index in sensors:
                if not 0 <= index < self.n_sensors:
                    raise MeasurementError(
                        f"sensor index {index} outside 0..{self.n_sensors - 1}"
                    )
        return self.engine.render(
            self._coupling,
            records,
            trace_indices=trace_indices,
            receiver_indices=sensors,
        )

    def enqueue(
        self,
        plan,
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
        sensors: Optional[Sequence[int]] = None,
        tag: Optional[str] = None,
    ):
        """Enqueue a standard-sensor render on a fused dispatch plan.

        Same arguments and validation as :meth:`render`, but the
        render joins ``plan`` (a :class:`~repro.engine.RenderPlan`)
        instead of executing immediately; the returned ticket resolves
        to the identical :class:`TraceBatch` after ``plan.execute()``.
        """
        if sensors is not None:
            for index in sensors:
                if not 0 <= index < self.n_sensors:
                    raise MeasurementError(
                        f"sensor index {index} outside 0..{self.n_sensors - 1}"
                    )
        return plan.add(
            self._coupling,
            records,
            trace_indices=trace_indices,
            receiver_indices=sensors,
            engine=self.engine,
            tag=tag,
        )

    def enqueue_coils(
        self,
        plan,
        coils: Sequence[Coil],
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
        tag: Optional[str] = None,
    ):
        """Enqueue an ad-hoc multi-coil render on a fused dispatch plan.

        The plan-joining twin of :meth:`measure_coils_batch`: coils are
        programmed/released (ownership-checked) and their coupling
        stack built at enqueue time; the render itself happens inside
        ``plan.execute()``, fused with everything else on the plan.
        """
        coils = list(coils)
        if not coils:
            raise MeasurementError("no coils to render")
        names = [coil.name for coil in coils]
        if len(set(names)) != len(names):
            duplicate = next(n for n in names if names.count(n) > 1)
            raise MeasurementError(
                f"duplicate coil name {duplicate!r} in batched render"
            )
        for coil in coils:
            coil.program(self.grid)
            coil.release(self.grid)
        stack = CouplingStack([self._coupling_for(coil) for coil in coils])
        return plan.add(
            stack,
            records,
            trace_indices=trace_indices,
            engine=self.engine,
            tag=tag,
        )

    def close(self) -> None:
        """Release the engine's backend resources (see engine.close)."""
        self.engine.close()

    def measure_coil_batch(
        self,
        coil: Coil,
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures from an ad-hoc programmed coil.

        The coil is programmed onto the lattice for the duration of the
        render (ownership-checked) and released afterwards.

        Parameters
        ----------
        coil:
            The synthesized coil to measure through.
        records:
            One activity record per capture, or a single record reused
            for every capture.
        trace_indices:
            RNG stream index per capture (defaults to ``0..n-1``).

        Returns
        -------
        TraceBatch
            ``(1, n_traces, n_samples)`` samples of the programmed coil.
        """
        coil.program(self.grid)
        try:
            return self.engine.render(
                self._coupling_for(coil), records, trace_indices=trace_indices
            )
        finally:
            coil.release(self.grid)

    def measure_coils_batch(
        self,
        coils: Sequence[Coil],
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures from several ad-hoc programmed coils.

        The physical array measures programmed windows sequentially
        (overlapping windows cannot even coexist on the lattice), so
        each coil is programmed and released in turn — the ownership
        check still guards against unsynthesizable windows — while the
        *simulation* renders every (coil, record) capture in a single
        engine pass over a :class:`~repro.em.coupling.CouplingStack`.

        Each coil's coupling geometry is built (and content-cached)
        independently, so windows revisited across calls — quadrant
        coils, repeated scan levels — never recompute their flux
        integrals, and every rendered row is bit-identical to
        :meth:`measure_coil` of that (coil, record, trace_index).

        Parameters
        ----------
        coils:
            The synthesized coils, one receiver row each, in order.
            Names must be unique (they key RNG streams and coupling
            cache entries).
        records:
            One activity record per capture, or a single record reused
            for every capture.
        trace_indices:
            RNG stream index per capture (defaults to ``0..n-1``).

        Returns
        -------
        TraceBatch
            ``(n_coils, n_traces, n_samples)`` samples, coil order
            preserved.
        """
        coils = list(coils)
        if not coils:
            raise MeasurementError("no coils to render")
        names = [coil.name for coil in coils]
        if len(set(names)) != len(names):
            duplicate = next(n for n in names if names.count(n) > 1)
            raise MeasurementError(
                f"duplicate coil name {duplicate!r} in batched render"
            )
        for coil in coils:
            coil.program(self.grid)
            coil.release(self.grid)
        stack = CouplingStack([self._coupling_for(coil) for coil in coils])
        return self.engine.render(stack, records, trace_indices=trace_indices)

    # -- single-capture wrappers -----------------------------------------------

    def measure_all(
        self, record: ActivityRecord, trace_index: int = 0
    ) -> List[Trace]:
        """Capture one trace from every standard sensor.

        Noise realizations are independent per sensor and per
        ``trace_index`` but fully reproducible for a given config seed.
        """
        batch = self.render([record], trace_indices=[trace_index])
        return [batch.trace(index, 0) for index in range(self.n_sensors)]

    def measure(
        self, record: ActivityRecord, sensor_index: int, trace_index: int = 0
    ) -> Trace:
        """Capture one trace from one standard sensor.

        The gate-level decoder performs the selection, so a tampered
        decoder would surface here.
        """
        if not 0 <= sensor_index < self.n_sensors:
            raise MeasurementError(
                f"sensor index {sensor_index} outside 0..{self.n_sensors - 1}"
            )
        self.decoder.select(sensor_index)
        if self.decoder.selected() != sensor_index:
            raise MeasurementError("decoder selection mismatch")
        batch = self.render(
            [record], trace_indices=[trace_index], sensors=[sensor_index]
        )
        return batch.trace(0, 0)

    def measure_coil(
        self, coil: Coil, record: ActivityRecord, trace_index: int = 0
    ) -> Trace:
        """Capture one trace from an ad-hoc programmed coil."""
        batch = self.measure_coil_batch(
            coil, [record], trace_indices=[trace_index]
        )
        return batch.trace(0, 0)

    # -- internals -------------------------------------------------------------

    def _coupling_for(self, coil: Coil) -> CouplingMatrix:
        key = coil.name
        cached = self._custom_couplings.get(key)
        if cached is None:
            cached = CouplingMatrix(
                self.chip.floorplan,
                [coil.to_receiver(self.config.vdd, self.config.temperature_c)],
                points_per_side=self.points_per_side,
                scale=self.coupling_scale,
            )
            self._custom_couplings[key] = cached
        return cached
