"""The rolling-Welford self-baseline detector, as a registry plugin.

A thin protocol adapter around the existing
:class:`~repro.core.analysis.welford.DetectorBank`: the spectral half
is the absolute sideband level in dBuV
(:func:`~repro.core.analysis.spectral.sideband_features_db`), the
temporal half delegates every decision to the bank unchanged.  The
registry route is therefore bit-identical to constructing a
``DetectorBank`` directly — the pin
``tests/test_detectors.py`` and the sweep/monitor identity tests
enforce.

This is the paper's detection method, and its structural blind spot is
the reason the registry exists: a self-baseline learns whatever the
chip does *first*, so an always-on Trojan (active from the very first
window) is absorbed into the baseline and never scores anomalous.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimConfig
from ..core.analysis.detector import DetectorConfig
from ..core.analysis.spectral import sideband_display_bins, sideband_features_db
from ..core.analysis.welford import BankStep, BankTimeline, DetectorBank
from .base import Detector


class WelfordDetector(Detector):
    """Self-baseline z-score detection over sideband levels.

    Parameters
    ----------
    n_streams:
        Parallel feature streams (one per monitored sensor).
    config:
        Rolling-Welford tuning (warm-up, z threshold, debounce).
    """

    name = "welford"
    feature_kind = "sideband-db"
    #: :func:`~repro.detectors.registry.make_detector` forwards the
    #: sweep/pipeline ``DetectorConfig`` to this class only.
    uses_bank_config = True

    def __init__(self, n_streams: int, config: Optional[DetectorConfig] = None):
        super().__init__(n_streams)
        self._bank = DetectorBank(n_streams, config)
        self.config = self._bank.config

    # -- spectral reduction ----------------------------------------------------

    def display_bins(self, grid: np.ndarray, config: SimConfig) -> np.ndarray:
        return sideband_display_bins(grid, config)

    def features(
        self, freqs: np.ndarray, amps: np.ndarray, config: SimConfig
    ) -> np.ndarray:
        return sideband_features_db(freqs, amps, config)

    # -- temporal decision -----------------------------------------------------

    def reset(self) -> None:
        self._bank.reset()

    @property
    def armed(self) -> np.ndarray:
        return self._bank.armed

    def fit(self, values: np.ndarray) -> None:
        self._bank.absorb(values)

    def score(self, values: np.ndarray) -> np.ndarray:
        """z-score against the current baseline, without absorbing."""
        values = self._check_values(values)
        config = self.config
        moments = self._bank._moments
        armed = self._bank.armed
        z = np.full(self.n_streams, np.nan)
        live = np.nonzero(armed)[0]
        if live.size:
            count = moments.count[live].astype(float)
            variance = np.maximum(moments.m2[live], 0.0) / (count - 1.0)
            std = np.maximum(np.sqrt(variance), config.min_std_db)
            z[live] = (values[live] - moments.mean[live]) / std
        return z

    def update(self, values: np.ndarray) -> BankStep:
        return self._bank.step(values)

    def process(self, features: np.ndarray) -> BankTimeline:
        # Delegate so the registry route runs the bank's own fold —
        # the same code object as the pre-registry direct path.
        return self._bank.process(features)
