"""UART framing, FIFO and cycle model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.errors import WorkloadError
from repro.uart.fifo import Fifo
from repro.uart.frames import FRAME_BITS, decode_frames, encode_frame
from repro.uart.uart import Uart, UartConfig


def test_frame_structure():
    bits = encode_frame(0x55)
    assert len(bits) == FRAME_BITS
    assert bits[0] == 0  # start
    assert bits[-1] == 1  # stop
    assert bits[1:9] == [1, 0, 1, 0, 1, 0, 1, 0]  # LSB first


def test_frame_rejects_out_of_range():
    with pytest.raises(WorkloadError):
        encode_frame(256)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), max_size=20))
def test_encode_decode_roundtrip(data):
    bits = []
    for byte in data:
        bits.extend(encode_frame(byte))
    decoded, consumed = decode_frames(bits)
    assert decoded == data
    assert consumed == len(bits)


def test_decode_skips_idle_line():
    bits = [1] * 7 + encode_frame(0xA3) + [1] * 3
    decoded, _ = decode_frames(bits)
    assert decoded == [0xA3]


def test_decode_detects_framing_error():
    bad = encode_frame(0x00)
    bad[-1] = 0  # corrupt stop bit
    with pytest.raises(WorkloadError):
        decode_frames(bad)


def test_fifo_order_and_limits():
    fifo = Fifo(depth=2)
    assert fifo.push(1) and fifo.push(2)
    assert fifo.full
    assert not fifo.push(3)
    assert fifo.overflows == 1
    assert fifo.pop() == 1 and fifo.pop() == 2
    assert fifo.pop() is None
    assert fifo.underflows == 1
    assert fifo.high_watermark == 2


def test_uart_loopback():
    uart = Uart(SimConfig())
    payload = bytes(range(32))
    assert uart.loopback_roundtrip(payload) == payload


def test_uart_activity_shape_and_magnitude():
    config = SimConfig()
    uart = Uart(config)
    activity = uart.activity(transmitting=True)
    assert activity.shape == (config.n_cycles,)
    assert activity.min() > 0.0
    # The UART is a small contributor: far below one toggle per cell.
    assert activity.max() < 500


def test_uart_idle_activity_lower():
    config = SimConfig()
    uart = Uart(config)
    idle = uart.activity(transmitting=False)
    busy = uart.activity(transmitting=True)
    assert idle.sum() < busy.sum()


def test_cycles_per_bit():
    config = SimConfig()
    uart_config = UartConfig(baud_rate=115200.0)
    cycles = uart_config.cycles_per_bit(config)
    assert cycles == round(33e6 / 115200)
    with pytest.raises(WorkloadError):
        UartConfig(baud_rate=1e9).cycles_per_bit(config)
