"""The common detector protocol behind the plugin registry.

A detector is two halves glued by one class:

* a **spectral reduction** — which display bins it needs
  (:meth:`Detector.display_bins`) and how a stack of display spectra
  becomes one scalar feature per capture (:meth:`Detector.features`).
  The reduction is stateless; its identity (:attr:`Detector.feature_kind`)
  keys the sweep's span-feature cache, so detectors sharing a
  reduction share cached features.
* a **temporal decision** — a stateful fold over the per-window
  features of ``n_streams`` parallel sensor streams:
  :meth:`Detector.fit` absorbs history without deciding,
  :meth:`Detector.score` scores without absorbing,
  :meth:`Detector.update` does one full step (score + absorb +
  debounce) and :meth:`Detector.process` folds a whole feature matrix.

Step/timeline types are shared with the rolling-Welford core
(:class:`~repro.core.analysis.welford.BankStep` /
:class:`~repro.core.analysis.welford.BankTimeline`), so every consumer
— sweep orchestrator, escalation pipeline, fleet — reads any
detector's output through one shape.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..config import SimConfig
from ..core.analysis.welford import BankStep, BankTimeline
from ..errors import AnalysisError

__all__ = ["BankStep", "BankTimeline", "Detector"]


class Detector(ABC):
    """One detection method over per-sensor spectra windows.

    Parameters
    ----------
    n_streams:
        Parallel feature streams (one per monitored sensor).
    """

    #: Registry name of the method (``"welford"``, ``"spectral"``, ...).
    name: str = ""

    #: Identity of the spectral reduction.  Part of the sweep's
    #: span-feature cache key: detectors with equal ``feature_kind``
    #: must compute bit-identical :meth:`features`.
    feature_kind: str = ""

    def __init__(self, n_streams: int):
        if n_streams < 1:
            raise AnalysisError("need at least one stream")
        self.n_streams = n_streams

    # -- spectral reduction (stateless) ----------------------------------------

    @abstractmethod
    def display_bins(
        self, grid: np.ndarray, config: SimConfig
    ) -> np.ndarray:
        """Display bins :meth:`features` reads (partial-evaluation set).

        Feeding exactly these columns of the display to
        :meth:`features` must be bit-identical to feeding the full
        display — the runtime monitor only resamples these bins.
        """

    @abstractmethod
    def features(
        self, freqs: np.ndarray, amps: np.ndarray, config: SimConfig
    ) -> np.ndarray:
        """Reduce an ``(n_spectra, n_points)`` display stack to features.

        One scalar per spectrum, in row order.
        """

    # -- temporal decision (stateful) ------------------------------------------

    @abstractmethod
    def reset(self) -> None:
        """Forget all learned state on every stream."""

    @property
    @abstractmethod
    def armed(self) -> np.ndarray:
        """Per-stream bool mask: ready to raise alarms."""

    @abstractmethod
    def fit(self, values: np.ndarray) -> None:
        """Absorb one window's features without deciding.

        Reference-free detectors that keep no cross-window model may
        make this a no-op.
        """

    @abstractmethod
    def score(self, values: np.ndarray) -> np.ndarray:
        """Score one window's features without mutating state.

        NaN for streams that are not armed yet.
        """

    @abstractmethod
    def update(self, values: np.ndarray) -> BankStep:
        """One full step: score, absorb, debounce; returns the step."""

    def step(self, values: np.ndarray) -> BankStep:
        """Alias of :meth:`update` (the DetectorBank-era spelling)."""
        return self.update(values)

    def process(self, features: np.ndarray) -> BankTimeline:
        """Fold a whole ``(n_streams, n_traces)`` feature matrix.

        Decisions are inherently sequential along the trace axis (each
        conditions the next state), so the fold iterates traces while
        each :meth:`update` vectorizes across streams — the same
        contract as :meth:`DetectorBank.process
        <repro.core.analysis.welford.DetectorBank.process>`.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.ndim != 2 or features.shape[0] != self.n_streams:
            raise AnalysisError(
                "expected a (n_streams, n_traces) feature matrix, got "
                f"shape {features.shape}"
            )
        n_traces = features.shape[1]
        z = np.full((self.n_streams, n_traces), np.nan)
        armed = np.zeros((self.n_streams, n_traces), dtype=bool)
        alarms = np.zeros((self.n_streams, n_traces), dtype=bool)
        for index in range(n_traces):
            step = self.update(features[:, index])
            z[:, index] = step.z
            armed[:, index] = step.armed
            alarms[:, index] = step.alarm
        return BankTimeline(z=z, armed=armed, alarms=alarms)

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        """Validate one window's feature vector (shared by subclasses)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_streams,):
            raise AnalysisError(
                f"expected {self.n_streams} features, got shape "
                f"{values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise AnalysisError("non-finite feature in detector input")
        return values

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"n_streams={self.n_streams})"
        )


def first_true(mask: np.ndarray) -> Optional[int]:
    """Index of the first True (None when all False) — tiny shared util."""
    hits = np.nonzero(mask)[0]
    return int(hits[0]) if hits.size else None
