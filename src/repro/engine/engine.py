"""The batched measurement engine — the EMF→trace hot path.

One render call turns activity records plus a coupling matrix into a
:class:`~repro.engine.batch.TraceBatch` for any subset of receivers
and any list of capture indices.  The whole signal chain is evaluated
in the frequency domain and inverse-transformed once per trace:

1. **EMF synthesis** — :func:`repro.em.coupling.emf_rfft` builds each
   record's per-receiver EMF spectrum from the closed-form impulse-
   train DFT and the cached kernel spectrum; the result is computed
   once per distinct record and *reused across every trace index* that
   renders it.
2. **Noise** — the white components of the chain (coil Johnson +
   broadband ambient, referred through the amplifier's input divider,
   plus the amplifier's own input noise) fold into a single Gaussian
   drawn directly in the frequency domain (the formulation of
   :func:`repro.em.noise.white_noise_spectrum`, with the gain curve
   folded into the per-bin scales); the narrowband ambient tones are
   single spectral lines with per-capture random phase.
3. **Band shaping** — the amplifier's cached gain curve multiplies the
   assembled spectra; one batched irFFT produces the final samples.

Per-receiver constants (the :class:`ReceiverPlan`, white-noise scales
and tone lines) are memoized across render calls in a content-keyed
**capture-plan cache**, so steady-state dispatches skip the planning
arithmetic entirely; :meth:`MeasurementEngine.plan_cache_stats`
exposes the hit counters.

Determinism contract
--------------------
Every random draw for capture ``(receiver, trace_index)`` comes from
the stream ``render/{scenario}/{receiver}/{trace_index}`` of the config
seed, with a fixed draw order (optional gain-jitter scalar, then the
white spectrum, then one phase per ambient tone).  Rendering is
therefore bit-for-bit independent of batch composition: a trace comes
out identical whether rendered alone, inside any batch, fused with
unrelated renders through a :class:`~repro.engine.plan.RenderPlan`,
through ``measure``/``measure_all`` compatibility wrappers, or on any
execution backend / worker count.  The opt-in ``float32`` precision
relaxes this to a pinned tolerance (draw *order* and stream identities
are unchanged — only the accumulation/output dtype narrows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as scipy_fft

from ..chip.power import ActivityRecord
from ..config import PRECISION_NAMES, SimConfig
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, CouplingStack, Receiver, emf_rfft
from ..em.noise import (
    NoiseModel,
    add_tone_spectrum,
    fill_white_noise_spectrum,
    tone_bin,
    tone_line,
    white_noise_scales,
)
from ..errors import MeasurementError
from ..rng import stream
from .backends import ExecutionBackend, SerialBackend, resolve_backend
from .batch import TraceBatch

#: Traces converted from spectrum to time per irFFT call; keeps the
#: complex scratch cache-resident while amortizing irFFT call overhead.
DEFAULT_CHUNK_TRACES = 16

#: Entries kept in the per-engine capture-plan cache before it resets.
#: Receiver populations are small (an array plus programmed scan
#: coils); the cap only guards against pathological name churn.
_PLAN_CACHE_LIMIT = 512


def render_stream_name(scenario: str, receiver: str, trace_index: int) -> str:
    """RNG stream identity of one rendered capture."""
    return f"render/{scenario}/{receiver}/{trace_index}"


@dataclass(frozen=True)
class ReceiverPlan:
    """Per-receiver constants precomputed once per render.

    Attributes
    ----------
    name:
        Receiver identity (trace label and RNG stream component).
    divider:
        Amplifier input divider for this receiver's source impedance.
    white_rms_eff:
        RMS of the folded white noise at the amplifier input: the
        receiver-side white noise through the divider combined with
        the amplifier's input-referred noise.
    tones:
        Ambient interferers as ``(freq, input_amplitude)`` pairs,
        already referred through the divider.
    gain_jitter:
        Per-capture relative gain drift (external probes only).
    r_series, n_turns:
        Metadata propagated onto constructed traces.
    """

    name: str
    divider: float
    white_rms_eff: float
    tones: Tuple[Tuple[float, float], ...]
    gain_jitter: float
    r_series: float
    n_turns: int


@dataclass
class _ShardRecord:
    """Slim stand-in for a factor-bearing record in backend shards.

    The render path reads only ``config``, ``scenario`` and
    ``factors`` when a record carries its low-rank decomposition, so
    process-backend payloads ship this proxy instead of the full
    record (whose dense toggle matrices would otherwise dominate the
    inter-process traffic).
    """

    config: SimConfig
    scenario: str
    factors: dict


def _render_shard(payload: tuple) -> np.ndarray:
    """Process-pool entry point: render one shard serially."""
    engine, coupling, records, trace_indices, receiver_indices = payload
    return engine._render_serial(
        coupling, records, trace_indices, receiver_indices
    )


class MeasurementEngine:
    """Vectorized renderer from activity records to trace batches.

    Parameters
    ----------
    config:
        Simulation configuration (seed, sampling grid, temperature).
    amplifier:
        Measurement front-end shared by every rendered channel.
    backend:
        Execution backend: an instance, a name (``"serial"`` /
        ``"process"`` / ``"shared"``), or None to follow
        ``config.engine_backend``.  Named specs resolve to process-wide
        sessions shared across engines (see
        :func:`repro.engine.backends.resolve_backend`).
    workers:
        Worker count for the pool backends (0 = follow
        ``config.engine_workers``, which defaults to the CPU count).
    chunk_traces:
        Traces per irFFT chunk (memory/throughput trade-off).
    precision:
        Render output precision: ``"float64"`` (bit-exact reference)
        or ``"float32"`` (opt-in fast path; identical RNG streams and
        draw order, narrowed accumulation/output dtype).  None follows
        ``config.engine_precision``.
    """

    def __init__(
        self,
        config: SimConfig,
        amplifier: Optional[MeasurementAmplifier] = None,
        backend: "str | ExecutionBackend | None" = None,
        workers: int = 0,
        chunk_traces: int = DEFAULT_CHUNK_TRACES,
        precision: Optional[str] = None,
    ):
        if chunk_traces < 1:
            raise MeasurementError("chunk_traces must be >= 1")
        self.config = config
        self.amplifier = amplifier or MeasurementAmplifier()
        if backend is None:
            backend = config.engine_backend
        if not workers:
            workers = config.engine_workers
        self.backend = resolve_backend(backend, workers)
        self.chunk_traces = chunk_traces
        if precision is None:
            precision = config.engine_precision
        if precision not in PRECISION_NAMES:
            raise MeasurementError(
                f"unknown engine precision {precision!r}; "
                f"choose from {PRECISION_NAMES}"
            )
        self.precision = precision
        self._plan_cache: Dict[tuple, tuple] = {}
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0

    @property
    def out_dtype(self) -> np.dtype:
        """Sample dtype of rendered batches."""
        return np.dtype(
            np.float32 if self.precision == "float32" else np.float64
        )

    @property
    def _complex_dtype(self) -> np.dtype:
        return np.dtype(
            np.complex64 if self.precision == "float32" else np.complex128
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (pool, shared arena) and memos.

        Safe to call repeatedly; the next render transparently
        restarts whatever it needs.  Note that named backends are
        process-wide sessions — closing one engine closes the shared
        session, and the next dispatch from *any* engine restarts it.
        """
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()
        self._plan_cache.clear()

    def __enter__(self) -> "MeasurementEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pickling (workers render their shards serially) ---------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["backend"] = SerialBackend()
        # Workers rebuild their own plan memo (cheap, content-keyed).
        state["_plan_cache"] = {}
        state["_plan_cache_hits"] = 0
        state["_plan_cache_misses"] = 0
        return state

    # -- planning ------------------------------------------------------------

    def _plan(self, receiver: Receiver) -> ReceiverPlan:
        config = self.config
        fs = config.fs
        noise = NoiseModel(
            resistance=receiver.r_series,
            temperature_c=config.temperature_c,
            ambient_area=receiver.ambient_gain,
        )
        divider = self.amplifier.source_divider(receiver.r_series)
        white_eff = math.sqrt(
            (noise.white_rms(fs) * divider) ** 2
            + self.amplifier.input_noise_rms(fs) ** 2
        )
        tones = tuple(
            (freq, amplitude * divider) for freq, amplitude in noise.tones(fs)
        )
        return ReceiverPlan(
            name=receiver.name,
            divider=divider,
            white_rms_eff=white_eff,
            tones=tones,
            gain_jitter=receiver.gain_jitter,
            r_series=receiver.r_series,
            n_turns=len(receiver.turns),
        )

    def _capture_plan(self, receiver: Receiver) -> tuple:
        """Per-receiver render constants, memoized across dispatches.

        Returns ``(plan, noise_scales, tone_plan)`` where the scales
        and tone lines already fold in the amplifier gain curve.  The
        cache key is the receiver *content* that feeds the planning
        arithmetic (everything else — config, amplifier, sampling grid
        — is fixed per engine), so programmed coils that share a name
        but differ in geometry still hit when their electrical
        parameters match: the plan depends on nothing else.
        """
        key = (
            receiver.name,
            receiver.r_series,
            receiver.ambient_gain,
            receiver.gain_jitter,
            len(receiver.turns),
        )
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache_hits += 1
            return cached
        self._plan_cache_misses += 1
        config = self.config
        n = config.n_samples
        fs = config.fs
        plan = self._plan(receiver)
        gain = self.amplifier.gain_curve(fs, n)
        scales = white_noise_scales(n, plan.white_rms_eff, bin_gain=gain)
        tone_plan = []
        for freq, amplitude in plan.tones:
            bin_index = tone_bin(n, fs, freq)
            if bin_index is not None:
                tone_plan.append((bin_index, amplitude * gain[bin_index]))
            else:
                tone_plan.append((None, (freq, amplitude)))
        entry = (plan, scales, tuple(tone_plan))
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = entry
        return entry

    def plan_cache_stats(self) -> Dict[str, int]:
        """Capture-plan cache counters: ``hits``, ``misses``, ``size``."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "size": len(self._plan_cache),
        }

    # -- rendering -----------------------------------------------------------

    def render(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
        receiver_indices: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures into a :class:`TraceBatch`.

        A convenience wrapper over a single-request
        :class:`~repro.engine.plan.RenderPlan`, so standalone renders
        and fused mega-batches go through the exact same dispatch
        layer (and are bit-identical by construction).

        Parameters
        ----------
        coupling:
            Coupling matrix of the candidate receivers, or a
            :class:`~repro.em.coupling.CouplingStack` of independently
            synthesized coils (arbitrary programmed windows render in
            one batch, each row bit-identical to its standalone
            render).
        records:
            Either one record per capture, or a single record reused
            for every capture (fresh noise per trace index).
        trace_indices:
            RNG stream index per capture (defaults to ``0..n-1``).
        receiver_indices:
            Subset of ``coupling.receivers`` to render (default: all).

        Returns
        -------
        TraceBatch
            ``(n_receivers, n_traces, n_samples)`` voltage samples plus
            per-receiver/per-capture metadata.
        """
        from .plan import RenderPlan

        plan = RenderPlan()
        ticket = plan.add(
            coupling,
            records,
            trace_indices=trace_indices,
            receiver_indices=receiver_indices,
            engine=self,
        )
        plan.execute()
        return ticket.result()

    def _normalize(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]],
        receiver_indices: Optional[Sequence[int]],
    ) -> Tuple[List[ActivityRecord], List[int], List[int]]:
        """Validate and expand one render request's arguments."""
        records = list(records)
        if not records:
            raise MeasurementError("no records to render")
        if trace_indices is None:
            trace_indices = list(range(len(records)))
        else:
            trace_indices = [int(index) for index in trace_indices]
        if len(records) == 1 and len(trace_indices) > 1:
            records = records * len(trace_indices)
        if len(records) != len(trace_indices):
            raise MeasurementError(
                f"{len(records)} records for {len(trace_indices)} trace "
                "indices (pass one record, or one per index)"
            )
        for record in records:
            if record.config.n_samples != self.config.n_samples:
                raise MeasurementError(
                    "record sampling grid does not match the engine config"
                )
        if receiver_indices is None:
            receiver_indices = list(range(coupling.n_receivers))
        else:
            receiver_indices = [int(index) for index in receiver_indices]
        for index in receiver_indices:
            if not 0 <= index < coupling.n_receivers:
                raise MeasurementError(
                    f"receiver index {index} outside the coupling matrix"
                )
        return records, trace_indices, receiver_indices

    def _finalize(
        self,
        samples: np.ndarray,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> TraceBatch:
        """Wrap rendered samples with their capture metadata."""
        plans = [
            self._capture_plan(coupling.receivers[i])[0]
            for i in receiver_indices
        ]
        return TraceBatch(
            samples=samples,
            fs=self.config.fs,
            labels=tuple(plan.name for plan in plans),
            scenarios=tuple(record.scenario for record in records),
            trace_indices=tuple(trace_indices),
            receiver_meta=tuple(
                {"r_series": plan.r_series, "turns": plan.n_turns}
                for plan in plans
            ),
        )

    def _shard_payloads(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> "Tuple[List[tuple], np.ndarray] | None":
        """Split one render into backend shard payloads.

        Returns ``(payloads, bounds)`` — shard ``i`` renders trace
        columns ``bounds[i]:bounds[i+1]`` — or None when the render
        should stay in-process (serial backend, or fewer traces than
        would fill two shards).
        """
        n_traces = len(trace_indices)
        n_shards = min(self.backend.parallelism, n_traces)
        if n_shards <= 1:
            return None
        # Factor-bearing records travel as slim proxies; proxies are
        # deduplicated by source identity so workers keep the
        # one-EMF-per-distinct-record reuse.
        proxies: Dict[int, _ShardRecord] = {}

        def _compact(record: ActivityRecord) -> "ActivityRecord | _ShardRecord":
            if record.factors is None:
                return record
            proxy = proxies.get(id(record))
            if proxy is None:
                proxy = _ShardRecord(
                    config=record.config,
                    scenario=record.scenario,
                    factors=record.factors,
                )
                proxies[id(record)] = proxy
            return proxy

        compact_records = [_compact(record) for record in records]
        bounds = np.linspace(0, n_traces, n_shards + 1).astype(int)
        payloads = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            payloads.append(
                (
                    self,
                    coupling,
                    compact_records[lo:hi],
                    trace_indices[lo:hi],
                    receiver_indices,
                )
            )
        return payloads, bounds

    def _dispatch(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> np.ndarray:
        """Shard the render over the backend and reassemble."""
        sharded = self._shard_payloads(
            coupling, records, trace_indices, receiver_indices
        )
        if sharded is None:
            return self._render_serial(
                coupling, records, trace_indices, receiver_indices
            )
        payloads, bounds = sharded
        # Backends with a zero-copy path (``shared``) assemble the
        # result themselves in shared memory; everything else returns
        # pickled shards that are concatenated here.  Both routes are
        # bit-identical — only the transport differs.
        map_concat = getattr(self.backend, "map_concat", None)
        if map_concat is not None:
            out_shape = (
                len(receiver_indices),
                len(trace_indices),
                self.config.n_samples,
            )
            return map_concat(
                _render_shard, payloads, out_shape, bounds,
                dtype=self.out_dtype,
            )
        shards = self.backend.map(_render_shard, payloads)
        return np.concatenate(shards, axis=1)

    def _render_serial(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> np.ndarray:
        """Reference implementation: one process, chunked irFFTs.

        The amplifier's gain curve is folded into every pre-computed
        scale (EMF rows, per-bin white-noise scales, tone lines), so
        each capture assembles its final filtered spectrum directly and
        the only remaining full-spectrum passes are the per-bin writes
        and one batched irFFT per chunk.
        """
        config = self.config
        n = config.n_samples
        fs = config.fs
        n_bins = n // 2 + 1
        n_traces = len(trace_indices)
        n_receivers = len(receiver_indices)
        captures = [
            self._capture_plan(coupling.receivers[i])
            for i in receiver_indices
        ]
        plans = [capture[0] for capture in captures]
        noise_scales = [capture[1] for capture in captures]
        tone_plans = [capture[2] for capture in captures]
        gain = self.amplifier.gain_curve(fs, n)

        # EMF spectra once per distinct record, reused across captures,
        # with divider and gain curve folded in per receiver.
        emf_scale = np.array([plan.divider for plan in plans])[:, None] * gain
        emf_cache: Dict[int, np.ndarray] = {}

        def emf_rows(record: ActivityRecord) -> np.ndarray:
            key = id(record)
            rows = emf_cache.get(key)
            if rows is None:
                rows = emf_rfft(coupling, record)[receiver_indices]
                rows *= emf_scale
                emf_cache[key] = rows
            return rows

        out = np.empty((n_receivers, n_traces, n), dtype=self.out_dtype)
        chunk = min(self.chunk_traces, n_traces)
        scratch = np.empty(
            (n_receivers, chunk, n_bins), dtype=self._complex_dtype
        )
        z_buffer = np.empty(n)
        jitter_buffer = np.empty(n_bins, dtype=complex)
        two_pi = 2.0 * math.pi
        seed = config.seed
        # One (name, jitter, scales, tones) row per receiver, zipped
        # once — the capture loop below runs per (trace, receiver).
        row_plans = [
            (plan.name, plan.gain_jitter, noise_scales[i], tone_plans[i])
            for i, plan in enumerate(plans)
        ]
        for lo in range(0, n_traces, chunk):
            hi = min(lo + chunk, n_traces)
            spec = scratch[:, : hi - lo]
            for offset in range(hi - lo):
                position = lo + offset
                record = records[position]
                scenario = record.scenario
                trace_index = trace_indices[position]
                emf = emf_rows(record)
                for row_index, (name, gain_jitter, scales, tones) in (
                    enumerate(row_plans)
                ):
                    row = spec[row_index, offset]
                    rng = stream(
                        seed,
                        render_stream_name(scenario, name, trace_index),
                    )
                    jitter = 1.0
                    if gain_jitter > 0.0:
                        jitter = (
                            1.0 + gain_jitter * rng.standard_normal()
                        )
                    z = rng.standard_normal(n, out=z_buffer)
                    fill_white_noise_spectrum(row, z, *scales)
                    for bin_index, payload in tones:
                        phase = rng.uniform(0.0, two_pi)
                        if bin_index is not None:
                            row[bin_index] += tone_line(payload, n, phase)
                        else:
                            freq, amplitude = payload
                            tone = np.zeros(n_bins, dtype=complex)
                            add_tone_spectrum(
                                tone, n, fs, freq, amplitude, phase
                            )
                            row += gain * tone
                    if jitter != 1.0:
                        # jitter * emf without the temporary (IEEE
                        # multiplication commutes, so the bits match).
                        np.multiply(
                            emf[row_index], jitter, out=jitter_buffer
                        )
                        row += jitter_buffer
                    else:
                        row += emf[row_index]
            out[:, lo:hi] = scipy_fft.irfft(
                spec.reshape(-1, n_bins), n=n, axis=-1, overwrite_x=True
            ).reshape(n_receivers, hi - lo, n)
        return out
