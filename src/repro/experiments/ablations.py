"""Ablation studies on the PSA design choices.

The paper motivates its design with three claims this module sweeps:

* **Sensor size** — "the size of a single sensor ... can be programmed
  to approximately match the size of a HT": coupling to a fixed Trojan
  region peaks for matched coil sizes and decays for whole-chip-scale
  loops (the self-cancellation of Section III).
* **Turn count** — more concentric turns add flux linkage until the
  innermost turns stop enclosing the source.
* **Current-kernel duty** — the ~50 % duty of the supply current is
  what suppresses even clock harmonics; sweeping the duty shows the
  even/odd harmonic ratio collapsing away from 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..calibration import COUPLING_SCALE
from ..config import SimConfig
from ..core.coil import synthesize_rect_coil
from ..em.coupling import CouplingMatrix
from .context import ExperimentContext, default_context
from .reporting import format_series


@dataclass(frozen=True)
class SizeSweepResult:
    """Coupling to the Trojan cluster vs programmed sensor size."""

    sizes_pitches: List[int]
    trojan_coupling: np.ndarray

    @property
    def best_size(self) -> int:
        """Size with the strongest Trojan coupling."""
        return self.sizes_pitches[int(np.argmax(self.trojan_coupling))]


@dataclass(frozen=True)
class TurnsSweepResult:
    """Coupling to the Trojan cluster vs turn count (11-pitch coil)."""

    turns: List[int]
    trojan_coupling: np.ndarray


@dataclass(frozen=True)
class DutySweepResult:
    """Even/odd clock-harmonic amplitude ratio vs kernel duty."""

    duties: np.ndarray
    even_odd_ratio_db: np.ndarray

    @property
    def min_ratio_duty(self) -> float:
        """Duty with maximal even-harmonic suppression (~0.5)."""
        return float(self.duties[int(np.argmin(self.even_odd_ratio_db))])


def _trojan_coupling(coil_matrix: CouplingMatrix, floorplan) -> float:
    """Summed |coupling| over the Trojan regions."""
    weights = np.zeros(floorplan.n_regions)
    for trojan in ("T1", "T2", "T3", "T4"):
        weights += floorplan.module_weights(trojan)
    return float(np.abs(coil_matrix.matrix[0] * weights).sum())


def run_size_sweep(
    ctx: Optional[ExperimentContext] = None,
    sizes: Optional[List[int]] = None,
) -> SizeSweepResult:
    """Sweep centered square coils from HT-scale to chip-scale."""
    ctx = ctx or default_context()
    floorplan = ctx.chip.floorplan
    sizes = sizes or [3, 5, 7, 9, 11, 15, 19, 25, 31, 35]
    couplings = []
    for size in sizes:
        origin = (35 - size) // 2
        # Keep the coil centered on the Trojan cluster (sensor 10's
        # center at lattice (22, 14)) as programmability allows.
        col0 = min(max(22 - size // 2, 0), 35 - size)
        row0 = min(max(14 - size // 2, 0), 35 - size)
        coil = synthesize_rect_coil(
            f"ablation_size_{size}", col0, row0, size, turns=1
        )
        matrix = CouplingMatrix(
            floorplan,
            [coil.to_receiver()],
            scale=COUPLING_SCALE,
            bond_scale=1e-12,
        )
        couplings.append(_trojan_coupling(matrix, floorplan))
    return SizeSweepResult(
        sizes_pitches=list(sizes), trojan_coupling=np.array(couplings)
    )


def run_turns_sweep(
    ctx: Optional[ExperimentContext] = None,
    turns_values: Optional[List[int]] = None,
) -> TurnsSweepResult:
    """Sweep the turn count of the sensor-10 coil."""
    ctx = ctx or default_context()
    floorplan = ctx.chip.floorplan
    turns_values = turns_values or [1, 2, 3, 4, 5]
    couplings = []
    for turns in turns_values:
        coil = synthesize_rect_coil(
            f"ablation_turns_{turns}", 16, 8, 11, turns=turns
        )
        matrix = CouplingMatrix(
            floorplan,
            [coil.to_receiver()],
            scale=COUPLING_SCALE,
            bond_scale=1e-12,
        )
        couplings.append(_trojan_coupling(matrix, floorplan))
    return TurnsSweepResult(
        turns=list(turns_values), trojan_coupling=np.array(couplings)
    )


def run_duty_sweep(
    duties: Optional[np.ndarray] = None,
) -> DutySweepResult:
    """Sweep the current-kernel duty; measure even/odd harmonic ratio."""
    from ..chip import power as power_module

    config = SimConfig()
    duties = (
        np.array([0.15, 0.25, 0.35, 0.45, 0.50, 0.55, 0.65, 0.80])
        if duties is None
        else duties
    )
    ratios = []
    original = power_module.KERNEL_DUTY
    try:
        for duty in duties:
            power_module.KERNEL_DUTY = float(duty)
            kernel = power_module.current_kernel(config)
            # Harmonic amplitudes of the kernel train = kernel spectrum
            # sampled at multiples of f_clock.
            reps = 16
            train = np.tile(kernel, reps)
            spectrum = np.abs(np.fft.rfft(train))
            # Bin of k-th harmonic: k * reps.
            odd = spectrum[1 * reps] + spectrum[3 * reps]
            even = spectrum[2 * reps] + spectrum[4 * reps]
            ratios.append(20.0 * np.log10(max(even, 1e-30) / max(odd, 1e-30)))
    finally:
        power_module.KERNEL_DUTY = original
    return DutySweepResult(duties=duties, even_odd_ratio_db=np.array(ratios))


def format_ablations(
    size: SizeSweepResult, turns: TurnsSweepResult, duty: DutySweepResult
) -> str:
    """Render the three ablation sweeps."""
    lines = [
        "Ablation — programmed sensor size vs Trojan coupling",
        format_series(
            [float(s) for s in size.sizes_pitches],
            size.trojan_coupling / size.trojan_coupling.max(),
            "size [pitches]",
            "relative coupling",
        ),
        f"best size: {size.best_size} pitches (Trojan cluster is ~4 "
        "pitches; whole-chip loops lose coupling to self-cancellation)",
        "",
        "Ablation — turn count vs Trojan coupling (11-pitch coil)",
        format_series(
            [float(t) for t in turns.turns],
            turns.trojan_coupling / turns.trojan_coupling.max(),
            "turns",
            "relative coupling",
        ),
        "",
        "Ablation — current-kernel duty vs even/odd harmonic ratio",
        format_series(
            duty.duties,
            duty.even_odd_ratio_db,
            "duty",
            "even/odd [dB]",
        ),
        "even harmonics are most suppressed at duty "
        f"{duty.min_ratio_duty:.2f} — the physical basis for sidebands "
        "appearing around the 1st/3rd harmonics only",
    ]
    return "\n".join(lines)
