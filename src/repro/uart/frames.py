"""RS232 8N1 framing: one start bit, eight data bits (LSB first), one
stop bit."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import WorkloadError

#: Bits per 8N1 frame.
FRAME_BITS = 10


def encode_frame(byte: int) -> List[int]:
    """Encode one byte as an 8N1 bit sequence (line idles high).

    Returns ``[start(0), d0..d7, stop(1)]``.
    """
    if not 0 <= byte <= 0xFF:
        raise WorkloadError(f"byte out of range: {byte!r}")
    bits = [0]
    bits.extend((byte >> i) & 1 for i in range(8))
    bits.append(1)
    return bits


def decode_frames(bits: Sequence[int]) -> Tuple[List[int], int]:
    """Decode a bit stream into bytes.

    Scans for start bits (0) from an idle-high line, checks each stop
    bit, and returns ``(bytes, n_consumed_bits)``.  Malformed frames
    raise.
    """
    decoded: List[int] = []
    position = 0
    n = len(bits)
    while position < n:
        if bits[position] == 1:
            position += 1  # idle
            continue
        if position + FRAME_BITS > n:
            break  # incomplete trailing frame
        frame = bits[position : position + FRAME_BITS]
        if frame[9] != 1:
            raise WorkloadError(
                f"framing error at bit {position}: missing stop bit"
            )
        byte = sum(bit << i for i, bit in enumerate(frame[1:9]))
        decoded.append(byte)
        position += FRAME_BITS
    return decoded, position
