"""Noise sources of the measurement chain.

Three contributors, matching the paper's setup:

* **Johnson noise** of the winding's series resistance (dominant for
  high-resistance programmed coils with many T-gates in the path);
* **amplifier input noise** (handled by
  :class:`repro.em.amplifier.MeasurementAmplifier`);
* **ambient pickup** — broadcast/lab interference linked by the loop
  area.  Negligible for on-chip coils under the package lid, dominant
  for external probes, which is a large part of their SNR deficit.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError
from ..units import KB, celsius_to_kelvin

#: Ambient field pickup at the PCB surface [V RMS per m^2 of loop area].
#: Calibrated so the Langer LF1 probe lands near its measured 14.3 dB
#: SNR (see repro.calibration).
AMBIENT_VRMS_PER_M2 = 0.34

#: Ambient narrowband interferers: (frequency [Hz], fraction of ambient RMS).
AMBIENT_TONES = ((30.0e6, 0.20), (88.0e6, 0.15), (100.0e6, 0.10))


def johnson_rms(resistance: float, temperature_c: float, bandwidth: float) -> float:
    """Thermal noise RMS voltage of a resistor over a bandwidth."""
    if resistance < 0 or bandwidth <= 0:
        raise ConfigError("resistance must be >= 0 and bandwidth > 0")
    temperature_k = celsius_to_kelvin(temperature_c)
    return math.sqrt(4.0 * KB * temperature_k * resistance * bandwidth)


def ambient_rms(loop_area: float) -> float:
    """Ambient pickup RMS voltage for a given effective loop area."""
    if loop_area < 0:
        raise ConfigError("loop area must be >= 0")
    return AMBIENT_VRMS_PER_M2 * loop_area


class NoiseModel:
    """Generates the additive noise at a receiver's terminals.

    Parameters
    ----------
    resistance:
        Winding series resistance [ohm].
    temperature_c:
        Ambient temperature [C].
    ambient_area:
        Effective ambient-pickup area [m^2].
    """

    def __init__(
        self,
        resistance: float,
        temperature_c: float,
        ambient_area: float = 0.0,
    ):
        self.resistance = resistance
        self.temperature_c = temperature_c
        self.ambient_area = ambient_area

    def sample(
        self, n_samples: int, fs: float, rng: np.random.Generator
    ) -> np.ndarray:
        """One noise realization of ``n_samples`` at rate ``fs``."""
        if n_samples < 1:
            raise ConfigError("n_samples must be >= 1")
        bandwidth = fs / 2.0
        thermal = johnson_rms(self.resistance, self.temperature_c, bandwidth)
        noise = rng.normal(0.0, thermal, n_samples) if thermal > 0 else np.zeros(
            n_samples
        )
        amb_rms = ambient_rms(self.ambient_area)
        if amb_rms > 0.0:
            t = np.arange(n_samples) / fs
            tone_fraction = sum(fraction for _f, fraction in AMBIENT_TONES)
            broadband = amb_rms * math.sqrt(max(1.0 - tone_fraction, 0.0))
            noise = noise + rng.normal(0.0, broadband, n_samples)
            for freq, fraction in AMBIENT_TONES:
                if freq < fs / 2:
                    phase = rng.uniform(0.0, 2.0 * math.pi)
                    amplitude = amb_rms * fraction * math.sqrt(2.0)
                    noise = noise + amplitude * np.sin(
                        2.0 * math.pi * freq * t + phase
                    )
        return noise

    def total_rms(self, fs: float) -> float:
        """Predicted RMS of one realization (thermal + ambient)."""
        thermal = johnson_rms(self.resistance, self.temperature_c, fs / 2.0)
        ambient = ambient_rms(self.ambient_area)
        return math.sqrt(thermal**2 + ambient**2)

    # -- engine-facing decomposition ------------------------------------------

    def white_rms(self, fs: float) -> float:
        """RMS of the *white* part only (thermal + broadband ambient).

        The sum of two independent white Gaussian processes is itself
        white Gaussian, so the engine draws this combined component in
        one pass; the narrowband tones are handled separately.
        """
        thermal = johnson_rms(self.resistance, self.temperature_c, fs / 2.0)
        amb_rms = ambient_rms(self.ambient_area)
        tone_fraction = sum(fraction for _f, fraction in AMBIENT_TONES)
        broadband = amb_rms * math.sqrt(max(1.0 - tone_fraction, 0.0))
        return math.sqrt(thermal**2 + broadband**2)

    def tones(self, fs: float) -> "tuple[tuple[float, float], ...]":
        """Narrowband ambient interferers as ``(freq, peak_amplitude)``.

        Only tones below Nyquist are returned; each is rendered as
        ``amplitude * sin(2*pi*f*t + phase)`` with a uniform random
        phase per capture.
        """
        amb_rms = ambient_rms(self.ambient_area)
        if amb_rms <= 0.0:
            return ()
        return tuple(
            (freq, amb_rms * fraction * math.sqrt(2.0))
            for freq, fraction in AMBIENT_TONES
            if freq < fs / 2
        )


# -- spectral synthesis (the engine's batched noise path) -------------------


def white_noise_scales(
    n_samples: int,
    rms: float,
    bin_gain: "np.ndarray | None" = None,
) -> "tuple[float, float, np.ndarray]":
    """Per-bin scales of a white-noise rFFT: ``(dc, nyquist, body)``.

    ``bin_gain`` optionally folds a transfer-function magnitude (on
    the full rFFT grid) into the scales, so filtered noise can be
    synthesized directly.  ``nyquist`` is meaningless for odd trace
    lengths.  Precomputable once per receiver; apply with
    :func:`fill_white_noise_spectrum`.
    """
    if n_samples < 2:
        raise ConfigError("n_samples must be >= 2")
    full_scale = rms * math.sqrt(n_samples)
    body_scale = rms * math.sqrt(n_samples / 2.0)
    if bin_gain is None:
        n_bins = n_samples // 2 + 1
        bin_gain = np.ones(n_bins)
    body_gain = bin_gain[1:-1] if n_samples % 2 == 0 else bin_gain[1:]
    return (
        full_scale * float(bin_gain[0]),
        full_scale * float(bin_gain[-1]),
        body_scale * body_gain,
    )


def fill_white_noise_spectrum(
    out: np.ndarray,
    z: np.ndarray,
    dc_scale: float,
    nyquist_scale: float,
    body_scale: np.ndarray,
) -> np.ndarray:
    """Lay ``n_samples`` standard normals out as a white-noise rFFT.

    This is the single definition of the bin layout: the DC (and, for
    even lengths, Nyquist) bins are real Gaussians at the full scale;
    every interior bin is a complex Gaussian at the body scale.  The
    rFFT being an orthogonal map, the inverse transform of the result
    is exactly i.i.d. Gaussian time noise.
    """
    n_samples = z.size
    n_bins = n_samples // 2 + 1
    if out.shape != (n_bins,):
        raise ConfigError(f"out must have shape ({n_bins},), got {out.shape}")
    out.real[0] = z[0] * dc_scale
    out.imag[0] = 0.0
    if n_samples % 2 == 0:
        body = n_bins - 2
        out.real[-1] = z[1] * nyquist_scale
        out.imag[-1] = 0.0
        np.multiply(z[2 : 2 + body], body_scale, out=out.real[1:-1])
        np.multiply(z[2 + body :], body_scale, out=out.imag[1:-1])
    else:
        body = n_bins - 1
        np.multiply(z[1 : 1 + body], body_scale, out=out.real[1:])
        np.multiply(z[1 + body :], body_scale, out=out.imag[1:])
    return out


def white_noise_spectrum(
    rng: np.random.Generator,
    n_samples: int,
    rms: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Draw the rFFT of an ``n_samples``-long white Gaussian trace.

    Synthesizing directly in the frequency domain is an exact
    reformulation — see :func:`fill_white_noise_spectrum` — and it
    saves one forward FFT per trace in the render pipeline.  Consumes
    exactly ``n_samples`` standard-normal draws from ``rng``.
    """
    if n_samples < 2:
        raise ConfigError("n_samples must be >= 2")
    if out is None:
        out = np.empty(n_samples // 2 + 1, dtype=complex)
    return fill_white_noise_spectrum(
        out, rng.standard_normal(n_samples), *white_noise_scales(n_samples, rms)
    )


def tone_bin(n_samples: int, fs: float, freq: float) -> "int | None":
    """Interior rFFT bin of a tone, or None when it sits off-grid."""
    bin_float = freq * n_samples / fs
    bin_index = int(round(bin_float))
    if (
        abs(bin_float - bin_index) < 1e-9
        and 0 < bin_index < n_samples // 2 + (n_samples % 2)
    ):
        return bin_index
    return None


def tone_line(amplitude: float, n_samples: int, phase: float) -> complex:
    """Spectral line of an on-bin sine: ``A*N/2 * (sin p - i cos p)``."""
    return (
        amplitude
        * (n_samples / 2.0)
        * complex(math.sin(phase), -math.cos(phase))
    )


def add_tone_spectrum(
    spectrum: np.ndarray,
    n_samples: int,
    fs: float,
    freq: float,
    amplitude: float,
    phase: float,
) -> None:
    """Add ``amplitude * sin(2*pi*freq*t + phase)`` to an rFFT in place.

    When the tone frequency sits exactly on an FFT bin (the default
    configuration puts every ambient tone on-bin) the sinusoid is a
    single spectral line; off-bin tones fall back to time-domain
    synthesis plus one forward FFT of the tone alone.
    """
    bin_index = tone_bin(n_samples, fs, freq)
    if bin_index is not None:
        spectrum[bin_index] += tone_line(amplitude, n_samples, phase)
        return
    t = np.arange(n_samples) / fs
    spectrum += np.fft.rfft(
        amplitude * np.sin(2.0 * math.pi * freq * t + phase)
    )
