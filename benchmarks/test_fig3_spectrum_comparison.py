"""Figure 3 — PSA vs external-probe spectrum difference.

Paper: "the spectrum from the PSA can be up to 55 dB higher than that
from an external EM probe".
"""

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_spectrum_comparison(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_fig3(ctx, n_traces=2), rounds=1, iterations=1
    )
    # The PSA spectrum sits tens of dB above the probe's across the
    # band; the maximum difference is the headline (paper: ~55 dB).
    assert 35.0 < result.max_difference_db < 90.0
    # The difference is positive through the mid-band.
    freqs = result.psa_spectrum.freqs
    mid_band = (freqs > 30e6) & (freqs < 100e6)
    assert (result.difference_db[mid_band] > 0).mean() > 0.9
    print()
    print(format_fig3(result))
