"""Reusable gate-level building blocks.

These are the structural circuits the paper mentions:

* the fully combinational 4-to-16 decoder that expands ``PSA_sel[3:0]``
  into T-gate control signals (Section V-A, "decoded into gate signals
  for T-gates with the fully combinational decoder"),
* the 21-bit counter + comparator that triggers T1 when it reaches
  ``21'h1FFFFF``,
* the plaintext equality comparator that triggers T2 on ``0xAAAA``.
"""

from __future__ import annotations

from typing import List

from ..errors import LogicSimulationError
from .signals import Wire
from .simulator import LogicSimulator


def build_decoder_4to16(
    sim: LogicSimulator, sel_prefix: str = "sel", out_prefix: str = "dec"
) -> tuple[List[Wire], List[Wire]]:
    """Build a fully combinational 4-to-16 one-hot decoder.

    Returns ``(select_bus, output_bus)``.  Output ``dec[i]`` goes high
    exactly when the select bus equals ``i``.
    """
    sel = sim.bus(sel_prefix, 4)
    sel_n = []
    for bit, wire in enumerate(sel):
        inverted = sim.wire(f"{sel_prefix}_n[{bit}]")
        sim.gate("NOT", [wire], inverted)
        sel_n.append(inverted)
    outputs = []
    for code in range(16):
        literals = [
            sel[bit] if (code >> bit) & 1 else sel_n[bit] for bit in range(4)
        ]
        out = sim.wire(f"{out_prefix}[{code}]")
        sim.gate("AND", literals, out)
        outputs.append(out)
    return sel, outputs


def build_equality_comparator(
    sim: LogicSimulator,
    a_prefix: str,
    width: int,
    constant: int,
    out_name: str,
) -> tuple[List[Wire], Wire]:
    """Build a comparator asserting when bus ``a == constant``.

    Per-bit XNOR against the constant's bits, AND-reduced.  This is the
    T2 trigger structure (plaintext prefix == 0xAAAA).
    """
    if constant < 0 or constant >= (1 << width):
        raise LogicSimulationError(
            f"constant {constant:#x} does not fit in {width} bits"
        )
    bus = sim.bus(a_prefix, width)
    bit_matches = []
    for bit, wire in enumerate(bus):
        match = sim.wire(f"{a_prefix}_match[{bit}]")
        if (constant >> bit) & 1:
            sim.gate("BUF", [wire], match)
        else:
            sim.gate("NOT", [wire], match)
        bit_matches.append(match)
    out = build_and_tree(sim, bit_matches, out_name)
    return bus, out


def build_and_tree(
    sim: LogicSimulator, inputs: List[Wire], out_name: str
) -> Wire:
    """AND-reduce ``inputs`` with a balanced tree of 2-input ANDs."""
    if not inputs:
        raise LogicSimulationError("cannot AND-reduce an empty wire list")
    level = list(inputs)
    stage = 0
    while len(level) > 1:
        next_level = []
        for pair_idx in range(0, len(level) - 1, 2):
            out = sim.wire(f"{out_name}_t{stage}_{pair_idx//2}")
            sim.gate("AND", [level[pair_idx], level[pair_idx + 1]], out)
            next_level.append(out)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    final = sim.wire(out_name)
    sim.gate("BUF", [level[0]], final)
    return final


class build_counter:
    """Cycle-stepped binary counter with a terminal-count comparator.

    The sequential element (the register) is modeled behaviorally —
    ``step()`` advances one clock cycle — while the terminal-count
    detection is a real gate-level comparator evaluated in ``sim``.
    This mirrors T1's trigger: a 21-bit counter that fires at
    ``21'h1FFFFF``.

    Parameters
    ----------
    sim:
        Logic simulator instance that hosts the comparator gates.
    width:
        Counter width in bits.
    terminal:
        Value at which ``tc`` (terminal count) asserts.
    name:
        Prefix for the comparator wires.
    """

    def __init__(
        self,
        sim: LogicSimulator,
        width: int,
        terminal: int,
        name: str = "ctr",
    ):
        if width < 1:
            raise LogicSimulationError("counter width must be >= 1")
        if terminal < 0 or terminal >= (1 << width):
            raise LogicSimulationError(
                f"terminal {terminal:#x} does not fit in {width} bits"
            )
        self._sim = sim
        self.width = width
        self.terminal = terminal
        self.value = 0
        self._bus, self.tc_wire = build_equality_comparator(
            sim, f"{name}_q", width, terminal, f"{name}_tc"
        )
        self._apply()

    def _apply(self) -> None:
        assignments = {
            wire.name: (self.value >> bit) & 1
            for bit, wire in enumerate(self._bus)
        }
        self._sim.set_inputs(assignments)
        self._sim.run()

    def step(self, cycles: int = 1) -> bool:
        """Advance ``cycles`` clock cycles; return final tc value."""
        if cycles < 0:
            raise LogicSimulationError("cannot step a negative cycle count")
        mask = (1 << self.width) - 1
        self.value = (self.value + cycles) & mask
        self._apply()
        return bool(self.tc_wire.value)

    @property
    def terminal_count(self) -> bool:
        """Whether the comparator currently asserts."""
        return bool(self.tc_wire.value)
