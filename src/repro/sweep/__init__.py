"""Detection-sweep orchestration over the batched measurement engine.

Evaluates grids of {Trojan × workload × sensor subset × detector
config} detection cells: each cell's monitoring stream renders as one
vectorized engine pass, features fold through the rolling-Welford
detector bank, and the per-cell scorecard (ROC-AUC, detection rate,
required measurements, MTTD) lands in a structured
:class:`~repro.sweep.report.SweepReport`.

The named presets make the paper's headline artifacts two grid
configurations::

    repro sweep --grid table1     # Table I PSA row via the engine
    repro sweep --grid mttd       # Section VI-D MTTD budget

and ``experiments.table1`` / ``experiments.mttd`` are thin adapters
over the same presets.
"""

from .grid import (
    ALL_TROJANS,
    GRIDS,
    MONITOR_SENSOR,
    SweepCell,
    SweepGrid,
    benchmark_grid,
    build_grid,
    mttd_grid,
    smoke_grid,
    table1_grid,
)
from .orchestrator import RASC_ADC, DetectionSweep
from .report import (
    BUDGET_SECONDS,
    BUDGET_TRACES,
    SensorOutcome,
    SweepCellResult,
    SweepReport,
)

__all__ = [
    "ALL_TROJANS",
    "GRIDS",
    "MONITOR_SENSOR",
    "SweepCell",
    "SweepGrid",
    "benchmark_grid",
    "build_grid",
    "mttd_grid",
    "smoke_grid",
    "table1_grid",
    "RASC_ADC",
    "DetectionSweep",
    "BUDGET_SECONDS",
    "BUDGET_TRACES",
    "SensorOutcome",
    "SweepCellResult",
    "SweepReport",
]
