"""Measurement campaigns: (chip, PSA, scenario) -> trace sets."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..core.array import ProgrammableSensorArray
from ..engine import TraceBatch
from ..errors import WorkloadError
from ..traces import Trace
from .scenarios import Scenario, scenario_by_name


@dataclass
class TraceSet:
    """Traces collected for one scenario.

    Attributes
    ----------
    scenario:
        Scenario name.
    traces:
        ``traces[sensor_index][trace_index]`` — one list per sensor.
    records:
        The activity records behind each trace index.
    """

    scenario: str
    traces: Dict[int, List[Trace]] = field(default_factory=dict)
    records: List[ActivityRecord] = field(default_factory=list)

    @property
    def n_traces(self) -> int:
        """Traces captured per sensor."""
        return len(self.records)

    def sensor(self, index: int) -> List[Trace]:
        """All traces of one sensor."""
        if index not in self.traces:
            raise WorkloadError(f"trace set holds no sensor {index}")
        return self.traces[index]


class MeasurementCampaign:
    """Runs scenario workloads and collects PSA traces.

    Each trace uses a fresh plaintext stream (seeded deterministically
    from the config seed, the scenario name and the trace index), so
    trace-to-trace variation reflects real data-dependent activity, not
    just noise redraws.

    Parameters
    ----------
    chip:
        The device under test.
    psa:
        Its sensor array.
    """

    def __init__(self, chip: TestChip, psa: ProgrammableSensorArray):
        if psa.chip is not chip:
            raise WorkloadError("PSA is not attached to this chip")
        self.chip = chip
        self.psa = psa

    # -- record generation -----------------------------------------------------

    def record(self, scenario: Scenario, trace_index: int) -> ActivityRecord:
        """Simulate the activity record behind one trace."""
        config = self.chip.config
        # zlib.crc32 (not hash()) keeps seeds stable across processes —
        # Python string hashing is salted per interpreter run.
        name_hash = zlib.crc32(scenario.name.encode("utf-8"))
        seed = (
            (config.seed * 0x9E3779B1 + name_hash) ^ (trace_index * 7919)
        ) & 0x7FFF_FFFF
        seed = seed or 1
        plaintexts = scenario.plaintexts(config.n_blocks, seed)
        return self.chip.run_trace(
            plaintexts,
            active=scenario.active,
            idle=scenario.idle,
            scenario=scenario.name,
        )

    def records(self, scenario_name: str, n_traces: int) -> List[ActivityRecord]:
        """Activity records for ``n_traces`` captures of a scenario."""
        if n_traces < 1:
            raise WorkloadError("need at least one trace")
        scenario = scenario_by_name(scenario_name)
        return [self.record(scenario, index) for index in range(n_traces)]

    # -- trace collection ----------------------------------------------------------

    def collect_batch(
        self,
        scenario_name: str,
        n_traces: int,
        sensors: Optional[Sequence[int]] = None,
        index_offset: int = 0,
    ) -> TraceBatch:
        """Capture ``n_traces`` as one batched engine render.

        This is the throughput path: every capture of every selected
        sensor is rendered in a single vectorized pass.  The records
        behind the batch are regenerated deterministically from the
        scenario and the trace indices.

        Parameters
        ----------
        scenario_name:
            A key of :data:`repro.workloads.scenarios.SCENARIOS`.
        n_traces:
            Captures per sensor.
        sensors:
            Sensor indices (default: all 16).
        index_offset:
            First trace index (workload and RNG streams follow it).
        """
        return self._collect(scenario_name, n_traces, sensors, index_offset)[1]

    def _collect(
        self,
        scenario_name: str,
        n_traces: int,
        sensors: Optional[Sequence[int]],
        index_offset: int,
    ):
        if n_traces < 1:
            raise WorkloadError("need at least one trace")
        scenario = scenario_by_name(scenario_name)
        indices = [index_offset + i for i in range(n_traces)]
        records = [self.record(scenario, index) for index in indices]
        batch = self.psa.render(records, trace_indices=indices, sensors=sensors)
        return records, batch

    def collect(
        self,
        scenario_name: str,
        n_traces: int,
        sensors: Optional[Sequence[int]] = None,
    ) -> TraceSet:
        """Capture ``n_traces`` from the selected sensors.

        Compatibility view over :meth:`collect_batch`: same rendered
        samples, repackaged as a :class:`TraceSet` of per-sensor trace
        lists.

        Parameters
        ----------
        scenario_name:
            A key of :data:`repro.workloads.scenarios.SCENARIOS`.
        n_traces:
            Captures per sensor.
        sensors:
            Sensor indices (default: all 16).
        """
        wanted = list(range(16)) if sensors is None else list(sensors)
        records, batch = self._collect(scenario_name, n_traces, wanted, 0)
        trace_set = TraceSet(scenario=scenario_name, records=records)
        for position, index in enumerate(wanted):
            trace_set.traces[index] = batch.traces(position)
        return trace_set
