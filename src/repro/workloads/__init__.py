"""Workload generation and measurement campaigns.

The paper's chip "receives plaintext from and sends ciphertext to a
laptop through serial communications" while traces are captured under
five scenarios (no active HT, T1..T4 individually active).  This
package provides the plaintext sources (LFSR-driven, as the chip's
``en_LFSR`` self-test pin suggests), named scenario definitions and the
campaign runner that turns (chip, PSA, scenario) into trace sets.
"""

from .lfsr import GaloisLfsr, PlaintextGenerator
from .scenarios import SCENARIOS, Scenario, scenario_by_name
from .campaign import MeasurementCampaign, StreamSegment, TraceSet

__all__ = [
    "GaloisLfsr",
    "PlaintextGenerator",
    "SCENARIOS",
    "Scenario",
    "scenario_by_name",
    "MeasurementCampaign",
    "StreamSegment",
    "TraceSet",
]
