"""Localization sweeps: {Trojan type × implant position × workload}.

The detection half of the paper scales through
:class:`~repro.sweep.orchestrator.DetectionSweep`; this module does
the same for the *localization* half (Section III-A / VI-D).  A
localization *cell* implants the four-Trojan cluster under a chosen
host sensor, activates one Trojan against its matched reference
workload, and runs the full localization flow — the 16-sensor score
map, the quadrant refinement, and optionally the adaptive quadtree
scan — all through the batched measurement engine (one engine pass
per score map, per refinement, and per scan level).

Every cell reports hit-rate over its repeats, localization error
[um], score-map margin [dB] and the programmed measurement windows it
took to converge, into the shared
:class:`~repro.sweep.report.SweepReport`.

Implant positions share everything the physics allows: coupling
geometry is placement-independent (the content-keyed cache is hit
across hosts), so a new position only re-simulates chip activity —
and a per-position record memo re-uses that across the position's
cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..chip.floorplan import (
    DEFAULT_TROJAN_SENSOR,
    floorplan_with_trojans_at,
    trojan_cluster_rects,
)
from ..chip.power import ActivityRecord
from ..chip.testchip import TROJAN_NAMES, TestChip
from ..config import SimConfig
from ..core.analysis.localizer import QUADRANTS, Localizer
from ..core.analysis.mttd import MttdModel
from ..core.analysis.scanner import AdaptiveScanner
from ..core.array import ProgrammableSensorArray
from ..errors import AnalysisError, unknown_name_error
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..store import ArtifactStore, RecordCodec, chip_fingerprint
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import Scenario, reference_for, scenario_by_name
from .report import LocalizeCellResult, LocalizeOutcome, SweepReport

#: Ground-truth quadrant of each Trojan inside its host sensor (the
#: cluster layout of :func:`repro.chip.floorplan.trojan_cluster_rects`).
EXPECTED_QUADRANTS: Dict[str, str] = {
    "T1": "nw",
    "T2": "ne",
    "T3": "sw",
    "T4": "se",
}

#: The AES key programmed into every sweep chip.
SWEEP_KEY = bytes(range(16))


@dataclass(frozen=True)
class LocalizeCell:
    """One localization scenario of a sweep grid.

    Attributes
    ----------
    trojan:
        Trojan-active scenario name (``"T1"``..``"T4"``).
    position:
        Host sensor the Trojan cluster is implanted under (0..15).
    reference:
        Trojan-inactive workload of the baseline population;
        ``"auto"`` resolves the matched reference (T2 pairs with
        ``T2_ref``).
    n_records:
        Activity records per population and repeat.
    n_repeats:
        Independent localization repeats (hit-rate denominator); each
        repeat uses a fresh span of workload/RNG trace indices.
    baseline_offset, active_offset:
        First workload/RNG trace index of each population — distinct
        offsets are distinct workload epochs.
    refine:
        Run the quadrant refinement after the score map.
    scan:
        Also run the adaptive quadtree scan (adds the
        windows-to-converge / coarse-error metrics).
    label:
        Display name (auto-derived when empty).
    """

    trojan: str
    position: int = DEFAULT_TROJAN_SENSOR
    reference: str = "auto"
    n_records: int = 3
    n_repeats: int = 1
    baseline_offset: int = 0
    active_offset: int = 500
    refine: bool = True
    scan: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.trojan not in TROJAN_NAMES:
            raise AnalysisError(
                f"unknown Trojan {self.trojan!r}; expected one of "
                f"{sorted(TROJAN_NAMES)}"
            )
        if not 0 <= self.position < 16:
            raise AnalysisError(
                f"implant position {self.position} outside 0..15"
            )
        if self.reference == "auto":
            object.__setattr__(
                self, "reference", reference_for(self.trojan).name
            )
        scenario_by_name(self.reference)
        if self.n_records < 1:
            raise AnalysisError("need at least one record per population")
        if self.n_repeats < 1:
            raise AnalysisError("need at least one repeat")
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"{self.trojan}@s{self.position}"
                f"|{self.reference}@{self.baseline_offset}",
            )

    @property
    def expected_quadrant(self) -> str:
        """Ground-truth quadrant of the cell's Trojan."""
        return EXPECTED_QUADRANTS[self.trojan]


@dataclass(frozen=True)
class LocalizeGrid:
    """An ordered set of localization cells plus evaluation options.

    Attributes
    ----------
    name:
        Grid identity (report/JSON tag).
    cells:
        Cells in evaluation order.
    keep_details:
        Retain each repeat's full
        :class:`~repro.core.analysis.localizer.LocalizationResult` on
        the cell result (experiment adapters want them; big grids
        drop them).
    """

    name: str
    cells: Tuple[LocalizeCell, ...]
    keep_details: bool = False

    def __post_init__(self) -> None:
        if not self.cells:
            raise AnalysisError("grid has no cells")
        labels = [cell.label for cell in self.cells]
        if len(set(labels)) != len(labels):
            duplicate = next(l for l in labels if labels.count(l) > 1)
            raise AnalysisError(
                f"duplicate cell label {duplicate!r}; give colliding cells "
                "explicit labels"
            )

    @property
    def n_cells(self) -> int:
        """Cells in the grid."""
        return len(self.cells)

    @property
    def positions(self) -> Tuple[int, ...]:
        """Distinct implant positions, in first-seen order."""
        seen: List[int] = []
        for cell in self.cells:
            if cell.position not in seen:
                seen.append(cell.position)
        return tuple(seen)

    @classmethod
    def product(
        cls,
        name: str,
        trojans: Sequence[str],
        positions: Sequence[int] = (DEFAULT_TROJAN_SENSOR,),
        references: Sequence[Tuple[str, int]] = (("auto", 0),),
        keep_details: bool = False,
        **cell_kwargs,
    ) -> "LocalizeGrid":
        """Cartesian grid over {trojan × implant position × workload}.

        ``references`` pairs a reference scenario name with a workload
        epoch offset (the workload axis), mirroring
        :meth:`repro.sweep.grid.SweepGrid.product`.

        Returns
        -------
        LocalizeGrid
            One cell per combination, labels disambiguated by
            construction (position and epoch are part of the label).
        """
        cells = []
        for trojan in trojans:
            for position in positions:
                for reference, offset in references:
                    cells.append(
                        LocalizeCell(
                            trojan=trojan,
                            position=position,
                            reference=reference,
                            baseline_offset=offset,
                            **cell_kwargs,
                        )
                    )
        return cls(name=name, cells=tuple(cells), keep_details=keep_details)


# -- named presets -------------------------------------------------------------


def localize_grid() -> LocalizeGrid:
    """The headline localization grid: 2 Trojans × 3 implant positions.

    T1 (falling-phase leaker) and T4 (rising-phase power virus) are
    implanted under the paper's host (sensor 10) and under two
    relocated hosts on the die diagonal (6 and 15), with the full flow
    enabled — score map, quadrant refinement and adaptive scan — and
    two repeats per cell for the hit-rate.
    """
    return LocalizeGrid.product(
        "localize",
        trojans=("T1", "T4"),
        positions=(6, DEFAULT_TROJAN_SENSOR, 15),
        scan=True,
        n_records=3,
        n_repeats=2,
    )


def localize_smoke_grid() -> LocalizeGrid:
    """A tiny two-cell grid for CI smoke runs and quick CLI checks."""
    cells = (
        LocalizeCell(trojan="T4", n_records=2),
        LocalizeCell(trojan="T1", position=15, n_records=2),
    )
    return LocalizeGrid(name="localize-smoke", cells=cells)


def localize_full_grid() -> LocalizeGrid:
    """The exhaustive family: 4 Trojans × 4 positions × 2 workloads."""
    return LocalizeGrid.product(
        "localize-full",
        trojans=TROJAN_NAMES,
        positions=(0, 6, DEFAULT_TROJAN_SENSOR, 15),
        references=(("auto", 0), ("auto", 5000)),
        scan=True,
        n_records=3,
        n_repeats=2,
    )


#: Named localization grid registry (CLI ``repro sweep --grid <name>``).
LOCALIZE_GRIDS: Dict[str, Callable[[], LocalizeGrid]] = {
    "localize": localize_grid,
    "localize-smoke": localize_smoke_grid,
    "localize-full": localize_full_grid,
}


def build_localize_grid(name: str) -> LocalizeGrid:
    """Instantiate a named localization grid preset."""
    if name not in LOCALIZE_GRIDS:
        raise unknown_name_error(
            "localization grid", name, sorted(LOCALIZE_GRIDS)
        )
    return LOCALIZE_GRIDS[name]()


# -- orchestration -------------------------------------------------------------


@dataclass
class _PositionBundle:
    """Everything one implant position shares across its cells."""

    chip: TestChip
    campaign: MeasurementCampaign
    localizer: Localizer
    scanner: AdaptiveScanner
    record_cache: MutableMapping[Tuple[str, int], ActivityRecord] = field(
        default_factory=dict
    )


class LocalizationSweep:
    """Grid evaluator for localization cells.

    One chip (+ PSA + campaign) is assembled per distinct implant
    position and shared across that position's cells; coupling
    geometry is shared across *all* positions through the content-
    keyed cache, and a per-position record memo re-uses chip activity
    across cells and repeats.  All rendering — score maps, quadrant
    refinements, scan levels — goes through the batched engine.

    Parameters
    ----------
    config:
        Simulation configuration shared by every position's chip.
    analyzer:
        Spectrum analyzer model (paper display settings by default).
    campaign:
        Optional prebuilt campaign reused for cells at the default
        implant position (sensor 10) — the experiment adapters pass
        theirs so nothing is rebuilt.  Its chip must carry the
        default Trojan cluster and match ``config``; relocated-
        position bundles inherit its key so every cell of a grid
        evaluates the same chip family.
    key:
        AES key programmed into assembled chips (default: the
        injected campaign's key, else the standard sweep key).
    mttd_model:
        Per-window timing used for the report's capture cadence.
    store:
        Optional :class:`~repro.store.ArtifactStore`.  Each position's
        record memo becomes a persistent store view keyed by that
        position's chip fingerprint, so repeated localization sweeps
        (and any other consumer of the same chips) warm-start
        bit-identically from disk.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        analyzer: Optional[SpectrumAnalyzer] = None,
        campaign: Optional[MeasurementCampaign] = None,
        key: Optional[bytes] = None,
        mttd_model: Optional[MttdModel] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.config = config or (
            campaign.chip.config if campaign is not None else SimConfig()
        )
        self.analyzer = analyzer or SpectrumAnalyzer()
        if key is None:
            key = campaign.chip.key if campaign is not None else SWEEP_KEY
        self.key = key
        self.mttd_model = mttd_model or MttdModel()
        self.store = store
        self._bundles: Dict[int, _PositionBundle] = {}
        if campaign is not None:
            if campaign.chip.config != self.config:
                raise AnalysisError(
                    "injected campaign's chip config does not match the "
                    "sweep config"
                )
            expected = trojan_cluster_rects(DEFAULT_TROJAN_SENSOR)
            for trojan, rects in expected.items():
                if campaign.chip.floorplan.placements.get(trojan) != rects:
                    raise AnalysisError(
                        "injected campaign's chip does not carry the "
                        f"default Trojan cluster ({trojan} is elsewhere); "
                        "build position-specific chips through the sweep "
                        "instead"
                    )
            self._bundles[DEFAULT_TROJAN_SENSOR] = self._wrap(campaign)

    def _wrap(self, campaign: MeasurementCampaign) -> _PositionBundle:
        if self.store is None:
            record_cache: MutableMapping = {}
        else:
            record_cache = self.store.mapping(
                "record",
                {"chip": chip_fingerprint(campaign.chip)},
                RecordCodec(self.config),
            )
        return _PositionBundle(
            chip=campaign.chip,
            campaign=campaign,
            localizer=Localizer(campaign.psa, analyzer=self.analyzer),
            scanner=AdaptiveScanner(campaign.psa, analyzer=self.analyzer),
            record_cache=record_cache,
        )

    def _bundle(self, position: int) -> _PositionBundle:
        """The shared chip/PSA/campaign of one implant position."""
        bundle = self._bundles.get(position)
        if bundle is None:
            chip = TestChip(
                self.key,
                self.config,
                floorplan=floorplan_with_trojans_at(position),
            )
            psa = ProgrammableSensorArray(chip)
            bundle = self._wrap(MeasurementCampaign(chip, psa))
            self._bundles[position] = bundle
        return bundle

    def run(self, grid: LocalizeGrid) -> SweepReport:
        """Evaluate every cell of a localization grid.

        The score-map renders of every (cell, repeat) prefetch as one
        fused engine pass across the whole grid (cells sharing an
        implant position fuse into one job; positions fuse at the
        backend wave); the data-dependent stages (quadrant refinement,
        adaptive scan) then run per cell exactly as standalone.
        Results are bit-identical to the unfused path.

        Returns
        -------
        SweepReport
            One :class:`~repro.sweep.report.LocalizeCellResult` per
            cell, in grid order.
        """
        prefetched = self._prefetch_scores(grid.cells)
        cells = tuple(
            self._evaluate(cell, grid.keep_details, prefetched.get(index))
            for index, cell in enumerate(grid.cells)
        )
        return SweepReport(
            grid=grid.name,
            trace_period_s=self.mttd_model.trace_period(self.config),
            cells=cells,
        )

    def close(self) -> None:
        """Release every position bundle's backend resources."""
        for bundle in self._bundles.values():
            bundle.campaign.close()

    def _prefetch_scores(self, cells) -> Dict[int, List[np.ndarray]]:
        """Fused score-map prefetch; ``{cell index: [scores per repeat]}``."""
        from ..engine import RenderPlan

        plan = RenderPlan()
        handles: Dict[int, List[tuple]] = {}
        for index, cell in enumerate(cells):
            bundle = self._bundle(cell.position)
            reference = scenario_by_name(cell.reference)
            scenario = scenario_by_name(cell.trojan)
            per_repeat = []
            for repeat in range(cell.n_repeats):
                shift = repeat * cell.n_records
                base = self._records(
                    bundle,
                    reference,
                    cell.baseline_offset + shift,
                    cell.n_records,
                )
                active = self._records(
                    bundle, scenario, cell.active_offset + shift, cell.n_records
                )
                tickets = bundle.localizer.enqueue_score_map(
                    plan, base, active
                )
                per_repeat.append((bundle.localizer, tickets))
            handles[index] = per_repeat
        if not len(plan):
            return {}
        plan.execute()
        return {
            index: [
                localizer.finish_score_map(tickets)
                for localizer, tickets in per_repeat
            ]
            for index, per_repeat in handles.items()
        }

    # -- per-cell evaluation ---------------------------------------------------

    def _records(
        self,
        bundle: _PositionBundle,
        scenario: Scenario,
        offset: int,
        count: int,
    ) -> List[ActivityRecord]:
        """Activity records via the position's record memo."""
        records = []
        for index in range(offset, offset + count):
            key = (scenario.name, index)
            record = bundle.record_cache.get(key)
            if record is None:
                record = bundle.campaign.record(scenario, index)
                bundle.record_cache[key] = record
            records.append(record)
        return records

    def _evaluate(
        self,
        cell: LocalizeCell,
        keep_details: bool,
        prefetched: "Optional[List[np.ndarray]]" = None,
    ) -> LocalizeCellResult:
        bundle = self._bundle(cell.position)
        reference = scenario_by_name(cell.reference)
        scenario = scenario_by_name(cell.trojan)
        truth = bundle.chip.floorplan.placements[cell.trojan][0].center
        expected_quadrant = cell.expected_quadrant if cell.refine else None
        outcomes: List[LocalizeOutcome] = []
        details: List[object] = []
        for repeat in range(cell.n_repeats):
            shift = repeat * cell.n_records
            base = self._records(
                bundle, reference, cell.baseline_offset + shift, cell.n_records
            )
            active = self._records(
                bundle, scenario, cell.active_offset + shift, cell.n_records
            )
            result = bundle.localizer.localize(
                base,
                active,
                refine=cell.refine,
                scores=None if prefetched is None else prefetched[repeat],
            )
            windows = bundle.campaign.psa.n_sensors
            if cell.refine:
                windows += len(QUADRANTS)
            scan_windows: Optional[int] = None
            scan_error_um: Optional[float] = None
            if cell.scan:
                scan_result = bundle.scanner.scan(base, active)
                scan_windows = scan_result.n_measurement_windows
                scan_error_um = 1e6 * float(
                    np.hypot(
                        scan_result.position[0] - truth[0],
                        scan_result.position[1] - truth[1],
                    )
                )
                windows += scan_windows
            hit = result.sensor_index == cell.position and (
                not cell.refine or result.quadrant == expected_quadrant
            )
            error_um = 1e6 * float(
                np.hypot(
                    result.position[0] - truth[0],
                    result.position[1] - truth[1],
                )
            )
            outcomes.append(
                LocalizeOutcome(
                    hit=hit,
                    sensor_index=result.sensor_index,
                    quadrant=result.quadrant,
                    margin_db=result.margin_db,
                    error_um=error_um,
                    windows=windows,
                    scan_windows=scan_windows,
                    scan_error_um=scan_error_um,
                )
            )
            if keep_details:
                details.append(result)
        return LocalizeCellResult(
            label=cell.label,
            trojan=cell.trojan,
            reference=cell.reference,
            host_sensor=cell.position,
            expected_quadrant=expected_quadrant,
            outcomes=tuple(outcomes),
            details=tuple(details) if keep_details else None,
        )
