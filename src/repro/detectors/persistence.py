"""Cross-scale persistence detection (after arXiv:2603.16058).

Tahghigh & Salmani's persistence criterion separates *implanted*
spectral structure from transient workload bursts: a fabricated
always-on Trojan emits on every single window, while workload
excursions (and the catalog Trojans' short triggered spans) come and
go.  The detector keeps the trailing sideband-excess history of each
stream and alarms only when the *minimum* excess over every configured
trailing scale clears the threshold — i.e. the emission has persisted
without a single sub-threshold gap at the coarsest scale.

The complementary blind spot is deliberate and pins the comparative
grid's structure: a triggered Trojan active for fewer consecutive
windows than ``max(scales)`` can never satisfy the coarsest-scale
minimum, so this detector *misses* T1..T4's short activation spans
while catching the always-on family the self-baseline absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import SimConfig
from ..core.analysis.spectral import excess_display_bins, sideband_excess_db
from ..errors import AnalysisError
from .base import BankStep, Detector
from .spectral import DEFAULT_EXCESS_THRESHOLD_DB


@dataclass(frozen=True)
class PersistenceConfig:
    """Tuning of the cross-scale persistence detector.

    Attributes
    ----------
    excess_threshold_db:
        Per-window sideband-excess threshold [dB] every scale's
        minimum must clear.
    scales:
        Trailing window lengths (in captures).  The coarsest scale
        sets the persistence requirement — and the warm-up depth.
    """

    excess_threshold_db: float = DEFAULT_EXCESS_THRESHOLD_DB
    scales: Tuple[int, ...] = (1, 4, 8)

    def __post_init__(self):
        if not np.isfinite(self.excess_threshold_db):
            raise AnalysisError("excess_threshold_db must be finite")
        if not self.scales:
            raise AnalysisError("need at least one persistence scale")
        if any(int(s) != s or s < 1 for s in self.scales):
            raise AnalysisError("persistence scales must be positive integers")

    @property
    def depth(self) -> int:
        """History depth: the coarsest trailing scale."""
        return int(max(self.scales))


class PersistenceDetector(Detector):
    """Alarm when the sideband excess persists at every scale.

    Parameters
    ----------
    n_streams:
        Parallel feature streams (one per monitored sensor).
    config:
        Threshold and scale tuning.
    """

    name = "persistence"
    feature_kind = "sideband-excess-db"

    def __init__(
        self, n_streams: int, config: Optional[PersistenceConfig] = None
    ):
        super().__init__(n_streams)
        self.config = config or PersistenceConfig()
        self._history = np.zeros((n_streams, self.config.depth))
        self._count = 0
        self._latched = np.zeros(n_streams, dtype=bool)

    # -- spectral reduction ----------------------------------------------------

    def display_bins(self, grid: np.ndarray, config: SimConfig) -> np.ndarray:
        return excess_display_bins(grid, config)

    def features(
        self, freqs: np.ndarray, amps: np.ndarray, config: SimConfig
    ) -> np.ndarray:
        return sideband_excess_db(freqs, amps, config)

    # -- temporal decision -----------------------------------------------------

    def reset(self) -> None:
        self._history.fill(0.0)
        self._count = 0
        self._latched.fill(False)

    @property
    def armed(self) -> np.ndarray:
        """Armed once the coarsest trailing scale is fully populated."""
        return np.full(
            self.n_streams, self._count >= self.config.depth, dtype=bool
        )

    def _push(self, values: np.ndarray) -> None:
        self._history = np.roll(self._history, -1, axis=1)
        self._history[:, -1] = values
        self._count = min(self._count + 1, self.config.depth)

    def _scale_minima(self) -> np.ndarray:
        """Per-stream minima over each trailing scale, ``(n, n_scales)``."""
        return np.stack(
            [
                self._history[:, self.config.depth - scale :].min(axis=1)
                for scale in self.config.scales
            ],
            axis=1,
        )

    def fit(self, values: np.ndarray) -> None:
        """Absorb one window into the trailing history, no decision."""
        self._push(self._check_values(values))

    def score(self, values: np.ndarray) -> np.ndarray:
        """Coarsest-scale minimum as if ``values`` were appended [dB].

        NaN while the history (including the hypothetical sample)
        would still be shorter than the coarsest scale.
        """
        values = self._check_values(values)
        depth = self.config.depth
        if self._count + 1 < depth:
            return np.full(self.n_streams, np.nan)
        if depth == 1:
            return values.copy()
        trailing = np.concatenate(
            [self._history[:, -(depth - 1) :], values[:, None]], axis=1
        )
        return trailing.min(axis=1)

    def update(self, values: np.ndarray) -> BankStep:
        values = self._check_values(values)
        self._push(values)
        armed = self.armed
        z = np.full(self.n_streams, np.nan)
        alarm = np.zeros(self.n_streams, dtype=bool)
        if self._count >= self.config.depth:
            minima = self._scale_minima()
            # The persistence score is the worst (lowest) scale minimum.
            z = minima.min(axis=1)
            persistent = np.all(
                minima > self.config.excess_threshold_db, axis=1
            )
            # Rising-edge alarm: fire once when persistence is first
            # established; re-arm only after a sub-threshold gap.
            alarm = persistent & ~self._latched
            self._latched = persistent
        return BankStep(z=z, armed=armed, alarm=alarm)
