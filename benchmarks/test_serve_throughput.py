"""Serve service throughput: concurrent replayed chip streams.

Boots one :class:`~repro.serve.MonitorService` and replays the same
recorded **soak** session (24 quiet + 12 active windows, the run-time
monitor sensor stream — the paper's RASC deployment shape) under many
concurrent chip identities through the HTTP replay-upload path, each
from its own client thread.  This measures the service, not the
simulator: the archive is rendered once up front, so windows/sec is
ingest + analysis + reporting across the whole fleet.

Checks:

* every stream finishes with a 200 report, a detection verdict and a
  per-chip MTTD gauge in ``/metrics``;
* nothing is shed on the flow-controlled path and the overload guard
  never trips (a healthy soak degrades nothing);
* the service-side aggregate windows/sec meets the in-process
  ``BENCH_runtime.json`` fleet row — fronting the pipeline with a
  network service must not cost the fleet its throughput;
* memory stays bounded while serving: peak RSS growth across the
  whole soak stays under ``MAX_RSS_GROWTH_MB`` (bounded queues, not
  fleet-sized buffering).

Results land in ``BENCH_serve.json`` at the repo root.  Set
``SERVE_SMOKE=1`` for the CI variant (fewer chips, no absolute
throughput floor — the committed baseline in
``benchmarks/baselines/BENCH_serve.json`` gates regressions instead).
"""

from __future__ import annotations

import json
import os
import resource
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.runtime.presets import build_preset
from repro.runtime.sources import (
    DEFAULT_MONITOR_SENSOR,
    ReplaySource,
    record_stream,
)
from repro.runtime.fleet import build_chip_monitor
from repro.serve import MonitorService, ServeConfig, ServiceRunner

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
RUNTIME_BENCH = BENCH_PATH.parent / "BENCH_runtime.json"

SMOKE = os.environ.get("SERVE_SMOKE", "") not in ("", "0")
#: Concurrent replayed chip streams (the acceptance floor is 64).
N_CHIPS = 8 if SMOKE else 64
ANALYSIS_WORKERS = 4
#: Peak-RSS growth bound across the whole soak [MB].
MAX_RSS_GROWTH_MB = 512


def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process [MB] (Linux: ru_maxrss in KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_serve_throughput(tmp_path):
    preset = build_preset("soak")
    spec = replace(
        preset.specs(1)[0], sensors=(DEFAULT_MONITOR_SENSOR,)
    )
    monitor = build_chip_monitor(
        spec, pipeline_config=preset.pipeline_config()
    )
    archive = tmp_path / "soak.npz"
    record_stream(monitor.source, archive)
    payload = archive.read_bytes()
    n_windows = ReplaySource(archive).n_windows

    config = ServeConfig(
        preset="soak",
        queue_depth=4,
        # Sized so a healthy soak never trips overload: sustained
        # backlog stays below ~one queue's worth per chip.
        high_water_windows=max(4096, N_CHIPS * preset.chunk * 8),
        analysis_workers=ANALYSIS_WORKERS,
    )
    rss_before = _peak_rss_mb()
    statuses = [None] * N_CHIPS
    reports = [None] * N_CHIPS
    with ServiceRunner(MonitorService(config)) as runner:

        def upload(index: int) -> None:
            client = runner.client(timeout=600.0)
            status, report = client.post(
                f"/chips/soak{index:03d}/replay?batch={preset.chunk}",
                payload,
            )
            statuses[index] = status
            reports[index] = report

        threads = [
            threading.Thread(target=upload, args=(index,), daemon=True)
            for index in range(N_CHIPS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - start
        _, metrics = runner.client().get("/metrics")
    rss_after = _peak_rss_mb()
    rss_growth = rss_after - rss_before

    assert statuses == [200] * N_CHIPS
    for report in reports:
        assert report["n_windows"] == n_windows
        assert report["detected"] is True
    assert metrics["n_chips"] == N_CHIPS
    assert metrics["windows_total"] == N_CHIPS * n_windows
    assert metrics["alarms_total"] >= N_CHIPS
    assert metrics["sheds_total"] == 0
    assert metrics["overload_active"] is False
    assert metrics["event_counts"].get("Overload", 0) == 0
    for gauge in metrics["chips"]:
        assert gauge["done"] is True
        assert gauge["mttd_ms"] is not None

    service_wps = metrics["windows_per_sec"]
    wall_wps = (N_CHIPS * n_windows) / wall_seconds
    result = {
        "soak": {
            "preset": "soak",
            "n_chips": N_CHIPS,
            "n_windows_per_chip": n_windows,
            "total_windows": N_CHIPS * n_windows,
            "chunk": preset.chunk,
            "queue_depth": config.queue_depth,
            "analysis_workers": ANALYSIS_WORKERS,
            "archive_bytes": len(payload),
        },
        "smoke": SMOKE,
        "service": {
            "seconds": round(wall_seconds, 3),
            "windows_per_sec": round(service_wps, 2),
            "wall_windows_per_sec": round(wall_wps, 2),
            "alarms": metrics["alarms_total"],
            "sheds": metrics["sheds_total"],
        },
        "memory": {
            "peak_rss_before_mb": round(rss_before, 1),
            "peak_rss_after_mb": round(rss_after, 1),
            "growth_mb": round(rss_growth, 1),
            "bound_mb": MAX_RSS_GROWTH_MB,
        },
    }
    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result, indent=2))

    assert rss_growth < MAX_RSS_GROWTH_MB, (
        f"peak RSS grew {rss_growth:.0f} MB serving {N_CHIPS} streams "
        f"(bound {MAX_RSS_GROWTH_MB} MB) — buffering is not bounded"
    )
    if not SMOKE:
        fleet_row = json.loads(RUNTIME_BENCH.read_text())
        floor = fleet_row["fleet"]["windows_per_sec"]
        assert service_wps >= floor, (
            f"serve fleet rate {service_wps:.1f} win/s below the "
            f"in-process fleet row {floor:.1f} win/s"
        )
