"""Analog-to-digital conversion."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError


@dataclass(frozen=True)
class AdcSpec:
    """Converter parameters.

    Attributes
    ----------
    n_bits:
        Resolution.
    full_scale:
        Peak input voltage [V]; the input range is +-full_scale.
    """

    n_bits: int = 10
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 4 <= self.n_bits <= 24:
            raise MeasurementError(f"implausible ADC resolution {self.n_bits}")
        if self.full_scale <= 0:
            raise MeasurementError("full scale must be positive")

    @property
    def lsb(self) -> float:
        """Quantization step [V]."""
        return 2.0 * self.full_scale / (1 << self.n_bits)


def quantize(samples: np.ndarray, spec: AdcSpec) -> np.ndarray:
    """Quantize (and clip) a voltage trace through the converter."""
    samples = np.asarray(samples, dtype=float)
    clipped = np.clip(samples, -spec.full_scale, spec.full_scale - spec.lsb)
    codes = np.round(clipped / spec.lsb)
    return codes * spec.lsb
