"""Shared measurement bench for receiver-based methods.

The external-probe and single-coil baselines differ from the PSA only
in their receiver geometry and noise environment; this bench renders an
:class:`~repro.chip.power.ActivityRecord` into an amplified trace for
any single receiver, routing through the same
:class:`~repro.engine.MeasurementEngine` as the PSA so the comparison
is apples to apples (and batched the same way).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..calibration import COUPLING_SCALE
from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..dsp.transforms import Spectrum
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, Receiver
from ..engine import MeasurementEngine, TraceBatch
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..traces import Trace
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import scenario_by_name


class ReceiverBench:
    """Measurement bench around one receiver.

    Parameters
    ----------
    chip:
        Device under test.
    receiver:
        The sensing structure.
    amplifier:
        Front-end (the external probes use the same bench amplifier as
        the PSA's channels, per the shared PCB of Section VI-A).
    engine:
        Measurement engine override (defaults to a fresh engine with
        the chip config's backend selection).
    """

    def __init__(
        self,
        chip: TestChip,
        receiver: Receiver,
        amplifier: MeasurementAmplifier | None = None,
        engine: Optional[MeasurementEngine] = None,
    ):
        self.chip = chip
        self.receiver = receiver
        self.amplifier = amplifier or MeasurementAmplifier()
        self.analyzer = SpectrumAnalyzer()
        self.engine = engine or MeasurementEngine(
            chip.config, amplifier=self.amplifier
        )
        self.coupling = CouplingMatrix(
            chip.floorplan,
            [receiver],
            points_per_side=48,
            scale=COUPLING_SCALE,
        )

    def measure(self, record: ActivityRecord, trace_index: int = 0) -> Trace:
        """Capture one amplified trace from the receiver.

        Probe repositioning drift between captures (``gain_jitter``)
        is applied by the engine from the capture's render stream.
        """
        return self.measure_batch([record], [trace_index]).trace(0, 0)

    def measure_batch(
        self,
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures in one engine pass."""
        return self.engine.render(
            self.coupling, records, trace_indices=trace_indices
        )

    # -- scenario-level collection ------------------------------------------------

    def collect_batch(
        self,
        campaign: MeasurementCampaign,
        scenario_name: str,
        n_traces: int,
        index_offset: int = 0,
    ) -> TraceBatch:
        """Capture ``n_traces`` of one scenario as one batched render."""
        scenario = scenario_by_name(scenario_name)
        indices = [index_offset + i for i in range(n_traces)]
        records = [campaign.record(scenario, index) for index in indices]
        return self.measure_batch(records, indices)

    def collect(
        self, campaign: MeasurementCampaign, scenario_name: str, n_traces: int,
        index_offset: int = 0,
    ) -> List[Trace]:
        """Capture ``n_traces`` of one scenario with fresh workloads."""
        batch = self.collect_batch(
            campaign, scenario_name, n_traces, index_offset
        )
        return batch.traces(0)

    def spectra(self, traces: Sequence[Trace]) -> List[Spectrum]:
        """Display spectra of a trace collection (one batched pass)."""
        if not traces:
            return []
        stack = np.stack([trace.samples for trace in traces])
        return self.analyzer.display_spectra(stack, traces[0].fs)

    def snr_db(self, campaign: MeasurementCampaign, n_traces: int = 3) -> float:
        """He-style SNR (Equation (1)) of this receiver."""
        from ..dsp.metrics import snr_rms_db

        signal = self.collect_batch(campaign, "baseline", n_traces)
        noise = self.collect_batch(campaign, "idle", n_traces)
        return snr_rms_db(
            signal.samples[0].ravel(), noise.samples[0].ravel()
        )


def euclidean_statistics(
    spectra: Sequence[Spectrum], reference: Spectrum
) -> np.ndarray:
    """Per-trace Euclidean distance to a reference spectrum.

    The statistic of He et al. (TVLSI'17): compare each captured
    spectrum against the reference by L2 distance.
    """
    ref = reference.amps
    return np.array(
        [float(np.linalg.norm(spec.amps - ref)) for spec in spectra]
    )


def reference_spectrum(spectra: Sequence[Spectrum]) -> Spectrum:
    """Mean (power-domain) spectrum of a reference collection."""
    from ..dsp.transforms import average_spectra

    return average_spectra(list(spectra))
