"""Cycle model of the RS232 UART on the test chip.

The UART clocks at the 33 MHz system clock and shifts bits at the baud
rate (115200 by default), so it contributes only a small, slow
switching-activity component — which is why the AES activity dominates
the EM spectra.  The model transports real bytes (plaintext in,
ciphertext out) and reports per-cycle toggle estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import SimConfig
from ..errors import WorkloadError
from ..netlist.builder import MAIN_MODULE_TOTALS
from .fifo import Fifo
from .frames import FRAME_BITS, encode_frame


@dataclass(frozen=True)
class UartConfig:
    """UART operating parameters.

    Attributes
    ----------
    baud_rate:
        Line rate [bits/s].
    fifo_depth:
        RX and TX FIFO depth in bytes.
    """

    baud_rate: float = 115200.0
    fifo_depth: int = 64

    def cycles_per_bit(self, config: SimConfig) -> int:
        """System-clock cycles per UART bit."""
        cycles = int(round(config.f_clock / self.baud_rate))
        if cycles < 1:
            raise WorkloadError(
                f"baud rate {self.baud_rate} exceeds the system clock"
            )
        return cycles


class Uart:
    """Byte-transport + activity model.

    Parameters
    ----------
    config:
        Simulation configuration.
    uart_config:
        UART parameters.
    """

    def __init__(self, config: SimConfig, uart_config: UartConfig | None = None):
        self.config = config
        self.uart_config = uart_config or UartConfig()
        self.rx_fifo = Fifo(self.uart_config.fifo_depth)
        self.tx_fifo = Fifo(self.uart_config.fifo_depth)
        self._tx_bits: List[int] = []

    def queue_tx_bytes(self, data: bytes) -> int:
        """Queue bytes for transmission; returns bytes accepted."""
        accepted = 0
        for byte in data:
            if not self.tx_fifo.push(byte):
                break
            accepted += 1
        return accepted

    def line_bits(self, n_bytes: int | None = None) -> List[int]:
        """Drain the TX FIFO into a framed bit stream."""
        bits: List[int] = []
        count = 0
        while not self.tx_fifo.empty:
            if n_bytes is not None and count >= n_bytes:
                break
            byte = self.tx_fifo.pop()
            assert byte is not None
            bits.extend(encode_frame(byte))
            count += 1
        return bits

    def activity(self, transmitting: bool = True) -> np.ndarray:
        """Per-cycle toggle estimate over one trace window.

        The shift registers toggle once per baud interval; the FIFO and
        framing logic add a small constant floor.  Returns an array of
        shape ``(config.n_cycles,)``.
        """
        n_cycles = self.config.n_cycles
        toggles = np.zeros(n_cycles)
        core_cells = MAIN_MODULE_TOTALS["uart_core"]
        fifo_cells = MAIN_MODULE_TOTALS["uart_fifo"]
        # Constant floor: baud counter ticks every cycle.
        toggles += core_cells * 0.015
        if transmitting:
            cycles_per_bit = self.uart_config.cycles_per_bit(self.config)
            bit_edges = np.arange(0, n_cycles, cycles_per_bit)
            # A bit boundary reshuffles the shifter (~10% of core cells)
            # and occasionally pops a FIFO entry.
            toggles[bit_edges] += core_cells * 0.10
            byte_edges = bit_edges[::FRAME_BITS]
            toggles[byte_edges] += fifo_cells * 0.05
        return toggles

    def loopback_roundtrip(self, data: bytes) -> Optional[bytes]:
        """Transport bytes through TX framing and RX decoding (test aid)."""
        from .frames import decode_frames

        self.queue_tx_bytes(data)
        bits = self.line_bits()
        decoded, _consumed = decode_frames(bits)
        for byte in decoded:
            if not self.rx_fifo.push(byte):
                return None
        received = bytearray()
        while not self.rx_fifo.empty:
            byte = self.rx_fifo.pop()
            assert byte is not None
            received.append(byte)
        return bytes(received)
