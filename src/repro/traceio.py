"""Trace archive I/O: save/load trace collections as ``.npz`` files.

The archive layout is flat and self-describing: each trace stores its
sample array plus a JSON metadata blob, so archives survive library
version changes and can be inspected with plain numpy.

Reading is streamed: :func:`iter_traces` walks the archive in bounded
batches (``np.load`` decompresses members lazily, one array access at
a time), so a replay consumer never materializes more than one batch
of samples.  :func:`load_traces` is the convenience eager view over
the same iterator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Sequence

import numpy as np

from .errors import TraceIOError
from .traces import Trace

_FORMAT_VERSION = 1

#: Default traces per :func:`iter_traces` batch.
DEFAULT_READ_BATCH = 64


def save_traces(path: "str | Path", traces: Sequence[Trace]) -> Path:
    """Write traces to an ``.npz`` archive; returns the path written."""
    if not traces:
        raise TraceIOError("refusing to write an empty trace archive")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: Dict[str, np.ndarray] = {}
    index: List[Dict[str, object]] = []
    for number, trace in enumerate(traces):
        key = f"trace_{number:05d}"
        arrays[key] = trace.samples
        meta = dict(trace.meta)
        try:
            json.dumps(meta)
        except TypeError as exc:
            raise TraceIOError(
                f"trace {number} metadata is not JSON-serializable: {exc}"
            ) from exc
        index.append(
            {
                "key": key,
                "fs": trace.fs,
                "label": trace.label,
                "scenario": trace.scenario,
                "meta": meta,
            }
        )
    header = {"version": _FORMAT_VERSION, "traces": index}
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def _parse_header(archive, path: Path) -> Dict[str, object]:
    """Validate and decode the header of an open archive."""
    if "__header__" not in archive:
        raise TraceIOError(f"{path} is not a repro trace archive")
    header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
    if header.get("version") != _FORMAT_VERSION:
        raise TraceIOError(
            f"unsupported archive version {header.get('version')!r}"
        )
    return header


def read_header(path: "str | Path") -> Dict[str, object]:
    """Read and validate an archive's header without loading samples."""
    path = Path(path)
    if not path.exists():
        raise TraceIOError(f"no trace archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        return _parse_header(archive, path)


def trace_count(path: "str | Path") -> int:
    """Traces stored in an archive (header only, no sample reads)."""
    return len(read_header(path)["traces"])


def iter_traces(
    path: "str | Path", batch: int = DEFAULT_READ_BATCH
) -> Iterator[List[Trace]]:
    """Yield an archive's traces in bounded batches, in stored order.

    The streaming read behind :class:`repro.runtime.ReplaySource`:
    each yielded list holds at most ``batch`` traces, and only those
    traces' sample arrays are decompressed while the batch is being
    built — a multi-gigabyte archive replays with bounded memory.

    Parameters
    ----------
    path:
        Archive written by :func:`save_traces`.
    batch:
        Maximum traces per yielded list.

    Raises
    ------
    TraceIOError
        At call time (not first iteration) for a bad batch size or a
        missing archive; header corruption surfaces on the first
        ``next()`` (the archive is opened exactly once).
    """
    if batch < 1:
        raise TraceIOError(f"batch must be >= 1, got {batch}")
    path = Path(path)
    if not path.exists():
        raise TraceIOError(f"no trace archive at {path}")
    return _iter_traces(path, batch)


def _iter_traces(path: Path, batch: int) -> Iterator[List[Trace]]:
    with np.load(path, allow_pickle=False) as archive:
        entries = _parse_header(archive, path)["traces"]
        for start in range(0, len(entries), batch):
            chunk: List[Trace] = []
            for entry in entries[start : start + batch]:
                key = entry["key"]
                if key not in archive:
                    raise TraceIOError(f"archive missing array {key!r}")
                chunk.append(
                    Trace(
                        samples=archive[key],
                        fs=float(entry["fs"]),
                        label=str(entry["label"]),
                        scenario=str(entry["scenario"]),
                        meta=dict(entry["meta"]),
                    )
                )
            yield chunk


def load_traces(path: "str | Path") -> List[Trace]:
    """Read back an archive written by :func:`save_traces`.

    Eager view over :func:`iter_traces` — same traces, same order,
    one flat list.
    """
    return [trace for chunk in iter_traces(path) for trace in chunk]
