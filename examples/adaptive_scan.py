#!/usr/bin/env python
"""Adaptive scanning: localize a Trojan by reshaping the array.

Demonstrates the PSA's headline flexibility beyond the fixed 16-sensor
layout: a quadtree descent that programs progressively smaller coils
around the strongest sideband response, narrowing the T4 power virus
to a ~170 um window — then renders the floorplan and the score map.

Every scan level renders as ONE batched engine pass over a coupling
stack of its candidate windows (the sequential per-coil path is
retained behind ``AdaptiveScanner(batched=False)`` and is
bit-identical).

Run:
    python examples/adaptive_scan.py
"""

import numpy as np

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.core.analysis.localizer import Localizer
from repro.core.analysis.scanner import AdaptiveScanner
from repro.visualize import floorplan_map, score_heatmap
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import reference_for, scenario_by_name


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)

    print("die floorplan (1 = T1 .. 4 = T4):")
    print(floorplan_map(chip.floorplan, width=56, height=24))
    print()

    trojan = "T4"
    reference = reference_for(trojan)
    baseline = [campaign.record(reference, i) for i in range(2)]
    active = [
        campaign.record(scenario_by_name(trojan), 500 + i) for i in range(2)
    ]

    print(f"adaptive scan for {trojan} (coarse stage, one batched "
          "render per level):")
    scanner = AdaptiveScanner(psa)
    scan = scanner.scan(baseline, active)
    for level, winner in enumerate(scan.path):
        print(
            f"  level {level}: window ({winner.col0},{winner.row0}) "
            f"size {winner.size} pitches — score {winner.score*1e3:.2f} mV"
        )
    true = chip.floorplan.placements[trojan][0].center
    error = np.hypot(scan.position[0] - true[0], scan.position[1] - true[1])
    print(
        f"  scan estimate ({scan.position[0]*1e6:.0f}, "
        f"{scan.position[1]*1e6:.0f}) um — {error*1e6:.0f} um from truth, "
        f"{scan.n_measurement_windows} programmed windows"
    )
    print()

    print("precision stage (fixed 16-sensor map + quadrant refinement):")
    localizer = Localizer(psa)
    result = localizer.localize(baseline, active, refine=True)
    print("  score heatmap (4x4 sensors):")
    for line in score_heatmap(result.scores).splitlines():
        print("   ", line)
    error = np.hypot(
        result.position[0] - true[0], result.position[1] - true[1]
    )
    print(
        f"  sensor {result.sensor_index}, quadrant {result.quadrant}, "
        f"position ({result.position[0]*1e6:.0f}, "
        f"{result.position[1]*1e6:.0f}) um — {error*1e6:.0f} um from truth"
    )


if __name__ == "__main__":
    main()
