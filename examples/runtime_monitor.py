#!/usr/bin/env python
"""Run-time monitoring with the RASC-style on-board processor.

Simulates deployment: the monitor watches sensor 10 while the chip
encrypts normally; the T4 DoS Trojan is externally enabled mid-stream;
the golden-model-free detector alarms within a couple of traces.

Run:
    python examples/runtime_monitor.py
"""

from repro import ProgrammableSensorArray, SimConfig, SpectrumAnalyzer, TestChip
from repro.core.analysis.detector import DetectorConfig, RuntimeDetector
from repro.core.analysis.mttd import MttdModel, mttd_from_alarm
from repro.core.analysis.spectral import sideband_feature_db
from repro.instruments.rasc import RascMonitor
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import scenario_by_name

TRIGGER_AT = 8  # trace index of the Trojan activation


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)
    analyzer = SpectrumAnalyzer()

    def feature(trace):
        return sideband_feature_db(analyzer.spectrum(trace), config)

    # Build the monitoring stream: normal operation, then T4 enabled.
    stream = []
    for index in range(TRIGGER_AT):
        record = campaign.record(scenario_by_name("baseline"), index)
        stream.append(psa.measure(record, 10, index))
    for index in range(4):
        record = campaign.record(scenario_by_name("T4"), 500 + index)
        stream.append(psa.measure(record, 10, 500 + index))

    detector = RuntimeDetector(DetectorConfig(warmup=6))
    monitor = RascMonitor(feature, detector)
    report = monitor.monitor(stream)

    print("trace | sideband feature [dBuV] | state")
    for index, value in enumerate(report.features_db):
        if index < 6:
            state = "warm-up"
        elif index < TRIGGER_AT:
            state = "armed, quiet"
        elif report.alarm_index is not None and index == report.alarm_index:
            state = "ALARM"
        else:
            state = "TROJAN ACTIVE"
        print(f"  {index:3d} | {value:7.2f}              | {state}")

    mttd = mttd_from_alarm(report.alarm_index, TRIGGER_AT, config, MttdModel())
    print()
    print(f"trace period : {report.trace_period_s * 1e3:.2f} ms "
          "(capture + on-board processing)")
    print(f"traces to detect: {mttd.traces_to_detect} (paper: <10)")
    print(f"MTTD         : {mttd.mttd_s * 1e3:.2f} ms (paper: <10 ms)")


if __name__ == "__main__":
    main()
