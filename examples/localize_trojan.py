#!/usr/bin/env python
"""Localization deep-dive: sensor score maps and quadrant refinement.

Prints the 4x4 per-sensor score map for each Trojan (the added sideband
amplitude when the Trojan activates) and shows the adaptive refinement:
the lattice reprogrammed into four quadrant coils inside the hot
sensor.

Run:
    python examples/localize_trojan.py
"""

import numpy as np

from repro import ProgrammableSensorArray, SimConfig, TestChip
from repro.core.analysis.localizer import Localizer
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import reference_for, scenario_by_name


def print_score_map(scores: np.ndarray) -> None:
    """Render the 16-sensor map in its physical 4x4 arrangement."""
    peak = max(float(scores.max()), 1e-30)
    for row in range(4):
        cells = []
        for col in range(4):
            value = scores[row * 4 + col]
            bar = "#" * max(0, int(8 * value / peak))
            cells.append(f"s{row * 4 + col:<2} {value * 1e3:7.2f} {bar:<8}")
        print("   " + " | ".join(cells))


def main() -> None:
    config = SimConfig()
    chip = TestChip(key=bytes(range(16)), config=config)
    psa = ProgrammableSensorArray(chip)
    campaign = MeasurementCampaign(chip, psa)
    localizer = Localizer(psa)

    for trojan in ("T1", "T2", "T3", "T4"):
        reference = reference_for(trojan)
        scenario = scenario_by_name(trojan)
        baseline = [campaign.record(reference, i) for i in range(3)]
        active = [campaign.record(scenario, 500 + i) for i in range(3)]

        result = localizer.localize(baseline, active, refine=True)
        true_center = chip.floorplan.placements[trojan][0].center

        print(f"=== {trojan}: added sideband amplitude per sensor [mV] ===")
        print_score_map(result.scores)
        quadrants = {
            name: f"{value * 1e3:.2f}"
            for name, value in (result.quadrant_scores or {}).items()
        }
        print(f"   hot sensor : {result.sensor_index} "
              f"(margin {result.margin_db:.1f} dB)")
        print(f"   quadrants  : {quadrants} -> {result.quadrant}")
        error = np.hypot(
            result.position[0] - true_center[0],
            result.position[1] - true_center[1],
        )
        print(
            f"   position   : ({result.position[0] * 1e6:.0f}, "
            f"{result.position[1] * 1e6:.0f}) um — "
            f"{error * 1e6:.0f} um from the true Trojan center"
        )
        print()


if __name__ == "__main__":
    main()
