"""Netlist inventory and Table II reproduction."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import (
    MAIN_MODULE_TOTALS,
    TABLE2_OVERALL,
    TABLE2_TROJANS,
    _scale_mix,
    build_main_circuit,
    build_trojan,
)
from repro.netlist.cells import CELL_LIBRARY, get_cell
from repro.netlist.netlist import Netlist
from repro.netlist.stats import expected_table, trojan_gate_table


def test_library_has_plausible_cells():
    assert "INV_X1" in CELL_LIBRARY
    assert "DFF_X1" in CELL_LIBRARY
    assert CELL_LIBRARY["DFF_X1"].is_sequential
    assert not CELL_LIBRARY["NAND2_X1"].is_sequential
    assert CELL_LIBRARY["TGATE_PSA"].area_um2 == pytest.approx(3.2 * 4.0)


def test_get_cell_unknown_raises():
    with pytest.raises(NetlistError):
        get_cell("FOO_X1")


def test_scale_mix_exact_total():
    mix = _scale_mix({"a": 0.3333, "b": 0.3333, "c": 0.3334}, 100)
    assert sum(mix.values()) == 100
    mix = _scale_mix({"a": 1.0, "b": 2.0}, 7)
    assert sum(mix.values()) == 7
    assert mix["b"] > mix["a"]


def test_main_circuit_cell_count():
    netlist = build_main_circuit()
    assert len(netlist) == TABLE2_OVERALL - sum(TABLE2_TROJANS.values())
    for module, total in MAIN_MODULE_TOTALS.items():
        assert netlist.cell_count(module) == total


@pytest.mark.parametrize("trojan,count", sorted(TABLE2_TROJANS.items()))
def test_trojan_cell_counts(trojan, count):
    assert len(build_trojan(trojan)) == count


def test_full_chip_reproduces_table2():
    rows = trojan_gate_table()
    paper = expected_table()
    assert [r.n_cells for r in rows] == [r.n_cells for r in paper]
    # Percentages match the paper to the printed precision.
    assert rows[1].percentage == pytest.approx(6.52, abs=0.01)
    assert rows[2].percentage == pytest.approx(7.40, abs=0.01)
    assert rows[3].percentage == pytest.approx(1.14, abs=0.01)
    assert rows[4].percentage == pytest.approx(7.57, abs=0.01)


def test_t2_is_inverter_dominated():
    """T2 is 'a chain of inverters' — the mix must reflect that."""
    histogram = build_trojan("T2").cell_histogram()
    inverters = histogram.get("INV_X4", 0) + histogram.get("INV_X1", 0)
    assert inverters / sum(histogram.values()) > 0.8


def test_netlist_rejects_duplicates():
    netlist = Netlist("x")
    netlist.add_instance("u1", "INV_X1", "m")
    with pytest.raises(NetlistError):
        netlist.add_instance("u1", "INV_X1", "m")


def test_module_stats_aggregate():
    netlist = Netlist("x")
    netlist.add_bulk("m", {"INV_X1": 10, "DFF_X1": 5})
    stats = netlist.module_stats("m")
    assert stats.n_cells == 15
    assert stats.n_sequential == 5
    inv, dff = get_cell("INV_X1"), get_cell("DFF_X1")
    assert stats.area_um2 == pytest.approx(10 * inv.area_um2 + 5 * dff.area_um2)
    assert stats.switch_cap_ff == pytest.approx(
        10 * inv.switch_cap_ff + 5 * dff.switch_cap_ff
    )


def test_mean_switch_cap():
    netlist = Netlist("x")
    netlist.add_bulk("m", {"INV_X1": 1, "XOR2_X1": 1})
    inv, xor = get_cell("INV_X1"), get_cell("XOR2_X1")
    expected = (inv.switch_cap_ff + xor.switch_cap_ff) / 2
    assert netlist.mean_switch_cap_ff("m") == pytest.approx(expected)


def test_merge_keeps_names_unique():
    a = Netlist("a")
    a.add_bulk("m1", {"INV_X1": 2})
    b = Netlist("b")
    b.add_bulk("m2", {"INV_X1": 2})
    a.merge(b)
    assert len(a) == 4
    assert set(a.modules) == {"m1", "m2"}
