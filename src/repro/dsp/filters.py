"""Frequency-domain filtering helpers.

The measurement chain is modeled with analytic magnitude responses
applied in the frequency domain.  This keeps the filters exactly
linear-phase (zero-phase), which is appropriate for a simulation whose
purpose is spectral/envelope analysis, and avoids transient artifacts
from IIR warm-up.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import fft as scipy_fft

from ..errors import AnalysisError

#: A transfer function: maps an array of frequencies [Hz] to a complex
#: (or real) gain array of the same shape.
TransferFn = Callable[[np.ndarray], np.ndarray]


def apply_transfer(samples: np.ndarray, fs: float, transfer: TransferFn) -> np.ndarray:
    """Filter a real trace through an analytic transfer function.

    Parameters
    ----------
    samples:
        Real time-domain trace.
    fs:
        Sampling rate [Hz].
    transfer:
        Callable evaluated on the one-sided rFFT frequency grid.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise AnalysisError("apply_transfer expects a 1-D trace")
    return apply_transfer_batch(samples[None, :], fs, transfer)[0]


def apply_transfer_batch(
    samples: np.ndarray, fs: float, transfer: TransferFn
) -> np.ndarray:
    """Filter a stack of real traces, shape ``(n_traces, n_samples)``.

    The transfer function is evaluated once and every trace is
    filtered in a single batched rFFT/irFFT pair — per-row results are
    identical whether traces are filtered one at a time or together
    (pocketfft processes rows independently).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise AnalysisError("apply_transfer_batch expects a 2-D trace stack")
    n = samples.shape[1]
    spec = scipy_fft.rfft(samples, axis=-1)
    freqs = scipy_fft.rfftfreq(n, d=1.0 / fs)
    gain = np.asarray(transfer(freqs))
    if gain.shape != freqs.shape:
        raise AnalysisError(
            "transfer function returned wrong shape "
            f"{gain.shape}, expected {freqs.shape}"
        )
    spec *= gain
    return scipy_fft.irfft(spec, n=n, axis=-1)


def butter_lowpass_response(f_cut: float, order: int) -> TransferFn:
    """Butterworth-magnitude low-pass |H(f)| = 1/sqrt(1+(f/fc)^(2n))."""
    if f_cut <= 0:
        raise AnalysisError(f"cutoff must be positive, got {f_cut}")
    if order < 1:
        raise AnalysisError(f"order must be >= 1, got {order}")

    def transfer(freqs: np.ndarray) -> np.ndarray:
        ratio = np.asarray(freqs, dtype=float) / f_cut
        return 1.0 / np.sqrt(1.0 + ratio ** (2 * order))

    return transfer


def butter_highpass_response(f_cut: float, order: int) -> TransferFn:
    """Butterworth-magnitude high-pass |H(f)| = (f/fc)^n/sqrt(1+(f/fc)^(2n))."""
    if f_cut <= 0:
        raise AnalysisError(f"cutoff must be positive, got {f_cut}")
    if order < 1:
        raise AnalysisError(f"order must be >= 1, got {order}")

    def transfer(freqs: np.ndarray) -> np.ndarray:
        ratio = np.asarray(freqs, dtype=float) / f_cut
        power = ratio ** (2 * order)
        return np.sqrt(power / (1.0 + power))

    return transfer


def analytic_bandpass(
    samples: np.ndarray, fs: float, f_center: float, bandwidth: float
) -> np.ndarray:
    """Complex (analytic) band-pass extraction around ``f_center``.

    Returns the complex baseband signal whose magnitude is the envelope
    of the band — this is exactly what a spectrum analyzer's zero-span
    mode displays at its detector.

    Parameters
    ----------
    samples:
        Real trace.
    fs:
        Sampling rate [Hz].
    f_center:
        Band center [Hz] (the zero-span tuned frequency).
    bandwidth:
        Full passband width [Hz] (the resolution bandwidth, RBW).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise AnalysisError("analytic_bandpass expects a 1-D trace")
    if not 0.0 < f_center < fs / 2:
        raise AnalysisError(
            f"center {f_center/1e6:.2f} MHz outside (0, Nyquist)"
        )
    if bandwidth <= 0 or f_center - bandwidth / 2 <= 0:
        raise AnalysisError("bandwidth must be positive and fit above DC")
    n = samples.size
    spec = np.fft.fft(samples)
    freqs = np.fft.fftfreq(n, d=1.0 / fs)
    # Analytic signal: keep only the positive-frequency band, doubled.
    keep = (freqs >= f_center - bandwidth / 2) & (freqs <= f_center + bandwidth / 2)
    band = np.zeros_like(spec)
    band[keep] = 2.0 * spec[keep]
    analytic = np.fft.ifft(band)
    # Shift to baseband so the phase is meaningful.
    t = np.arange(n) / fs
    return analytic * np.exp(-2j * np.pi * f_center * t)


def envelope_lowpass(envelope: np.ndarray, fs: float, f_cut: float) -> np.ndarray:
    """Smooth a real envelope with a 2nd-order Butterworth-magnitude LP."""
    return apply_transfer(envelope, fs, butter_lowpass_response(f_cut, order=2))
