"""Event-driven logic simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicSimulationError
from repro.logic.components import (
    build_and_tree,
    build_counter,
    build_decoder_4to16,
    build_equality_comparator,
)
from repro.logic.signals import HIGH, UNKNOWN, Wire, bus_value, drive_bus
from repro.logic.simulator import LogicSimulator


def test_wire_starts_unknown():
    wire = Wire("w")
    assert wire.value == UNKNOWN
    assert wire.drive(HIGH) is True
    assert wire.drive(HIGH) is False  # no change


def test_wire_rejects_bad_values():
    with pytest.raises(LogicSimulationError):
        Wire("w").drive(2)


def test_basic_gates_settle():
    sim = LogicSimulator()
    a, b = sim.wire("a"), sim.wire("b")
    for kind, expected in [
        ("AND", [0, 0, 0, 1]),
        ("OR", [0, 1, 1, 1]),
        ("XOR", [0, 1, 1, 0]),
        ("NAND", [1, 1, 1, 0]),
        ("NOR", [1, 0, 0, 0]),
        ("XNOR", [1, 0, 0, 1]),
    ]:
        out = sim.wire(f"out_{kind}")
        sim.gate(kind, [a, b], out)
        values = []
        for bits in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            sim.settle({"a": bits[0], "b": bits[1]})
            values.append(out.value)
        assert values == expected, kind


def test_not_and_buf():
    sim = LogicSimulator()
    a = sim.wire("a")
    inv, buf = sim.wire("inv"), sim.wire("buf")
    sim.gate("NOT", [a], inv)
    sim.gate("BUF", [a], buf)
    sim.settle({"a": 1})
    assert (inv.value, buf.value) == (0, 1)


def test_chain_propagation_delay():
    """N chained inverters settle after N delay units."""
    sim = LogicSimulator()
    previous = sim.wire("in")
    for index in range(5):
        nxt = sim.wire(f"n{index}")
        sim.gate("NOT", [previous], nxt, delay=1)
        previous = nxt
    settle_time = sim.settle({"in": 0})
    # The first gate evaluates at t=0, so N inverters settle at t=N-1.
    assert settle_time == 4
    assert previous.value == 1


def test_unknown_inputs_do_not_propagate():
    sim = LogicSimulator()
    a, b = sim.wire("a"), sim.wire("b")
    out = sim.wire("out")
    sim.gate("AND", [a, b], out)
    sim.settle({"a": 1})  # b still unknown
    assert out.value == UNKNOWN


def test_oscillation_detected():
    sim = LogicSimulator(max_events=1000)
    a = sim.wire("a")
    sim.gate("NOT", [a], a)  # combinational loop
    with pytest.raises(LogicSimulationError):
        sim.settle({"a": 0})


def test_bus_helpers():
    sim = LogicSimulator()
    bus = sim.bus("d", 4)
    drive_bus(bus, 0b1010)
    assert bus_value(bus) == 0b1010
    with pytest.raises(LogicSimulationError):
        drive_bus(bus, 16)


@settings(max_examples=16, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_decoder_is_one_hot(code):
    sim = LogicSimulator()
    sel, outputs = build_decoder_4to16(sim)
    drive = {wire.name: (code >> bit) & 1 for bit, wire in enumerate(sel)}
    sim.settle(drive)
    values = [wire.value for wire in outputs]
    assert values[code] == 1
    assert sum(values) == 1


@settings(max_examples=16, deadline=None)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_equality_comparator(value, constant):
    sim = LogicSimulator()
    bus, out = build_equality_comparator(sim, "a", 8, constant, "eq")
    sim.settle({w.name: (value >> i) & 1 for i, w in enumerate(bus)})
    assert out.value == (1 if value == constant else 0)


def test_and_tree_reduces():
    sim = LogicSimulator()
    wires = sim.bus("x", 5)
    out = build_and_tree(sim, wires, "all")
    drive = {w.name: 1 for w in wires}
    sim.settle(drive)
    assert out.value == 1
    drive[wires[3].name] = 0
    sim.settle(drive)
    assert out.value == 0


def test_counter_terminal_count():
    sim = LogicSimulator()
    counter = build_counter(sim, width=4, terminal=0b1111)
    assert counter.terminal_count is False
    counter.step(14)
    assert counter.terminal_count is False
    counter.step(1)
    assert counter.terminal_count is True
    counter.step(1)  # wraps
    assert counter.value == 0
    assert counter.terminal_count is False


def test_counter_t1_style_21bit():
    """The T1 trigger comparator fires exactly at 21'h1FFFFF."""
    sim = LogicSimulator()
    counter = build_counter(sim, width=21, terminal=0x1FFFFF)
    counter.value = 0x1FFFFE
    counter._apply()
    assert counter.terminal_count is False
    counter.step(1)
    assert counter.terminal_count is True
