"""Section VI-D — unsupervised Trojan identification.

Paper: "we can successfully classify all 4 HTs without full
supervision".  This bench exercises the K-means route end to end:
unlabeled traces from all four Trojans cluster cleanly and the clusters
map to the right archetypes.
"""

from repro.core.analysis.identifier import TrojanIdentifier
from repro.workloads.scenarios import scenario_by_name


def _collect(ctx):
    identifier = TrojanIdentifier()
    traces, truth = [], []
    for trojan in ("T1", "T2", "T3", "T4"):
        scenario = scenario_by_name(trojan)
        for index in range(2):
            record = ctx.campaign.record(scenario, 850 + index)
            traces.append(ctx.psa.measure(record, 10, 850 + index))
            truth.append(trojan)
    return identifier, traces, truth


def test_identification(benchmark, ctx):
    identifier, traces, truth = _collect(ctx)

    def run():
        result = identifier.cluster(traces, n_clusters=4)
        labels = identifier.label_clusters(traces, result)
        return [labels[int(c)] for c in result.labels]

    predicted = benchmark.pedantic(run, rounds=1, iterations=1)
    assert predicted == truth
    # The direct rule-template route agrees trace by trace.
    for trace, expected in zip(traces, truth):
        assert identifier.classify(trace).label == expected
