"""Table II statistics: Trojan gate counts and area percentages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .builder import TABLE2_OVERALL, TABLE2_TROJANS, build_test_chip_netlist
from .netlist import Netlist

#: Trojan module names in paper order.
TROJAN_ORDER = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class TrojanGateRow:
    """One column of Table II.

    Attributes
    ----------
    circuit:
        ``"Overall"`` or a Trojan name.
    n_cells:
        Standard-cell count.
    percentage:
        Percentage of the overall cell count (100.0 for "Overall").
    """

    circuit: str
    n_cells: int
    percentage: float


def trojan_gate_table(netlist: Netlist | None = None) -> List[TrojanGateRow]:
    """Compute Table II from a netlist (builds the test chip by default).

    Returns rows in paper order: Overall, T1, T2, T3, T4.
    """
    if netlist is None:
        netlist = build_test_chip_netlist()
    overall = netlist.cell_count()
    rows = [TrojanGateRow("Overall", overall, 100.0)]
    for trojan in TROJAN_ORDER:
        count = netlist.cell_count(trojan)
        rows.append(
            TrojanGateRow(trojan, count, 100.0 * count / overall)
        )
    return rows


def expected_table() -> List[TrojanGateRow]:
    """Table II exactly as printed in the paper."""
    rows = [TrojanGateRow("Overall", TABLE2_OVERALL, 100.0)]
    for trojan in TROJAN_ORDER:
        count = TABLE2_TROJANS[trojan]
        rows.append(
            TrojanGateRow(trojan, count, 100.0 * count / TABLE2_OVERALL)
        )
    return rows
