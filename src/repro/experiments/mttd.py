"""Section VI-D: run-time detection with <10 traces and MTTD < 10 ms.

A monitoring stream is synthesized per Trojan: the RASC-style monitor
watches sensor 10 while the chip runs its normal workload, the Trojan
activates mid-stream, and the golden-model-free detector raises an
alarm.  The MTTD is the activation-to-alarm wall-clock latency with the
per-trace capture + processing cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.analysis.detector import DetectorConfig, RuntimeDetector
from ..core.analysis.mttd import MttdModel, MttdResult, mttd_from_alarm
from ..core.analysis.spectral import sideband_feature_db
from ..instruments.rasc import RascMonitor
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..traces import Trace
from ..workloads.scenarios import reference_for, scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import format_table

#: The paper's budget: fewer than ten traces, under ten milliseconds.
BUDGET_TRACES = 10
BUDGET_SECONDS = 10e-3


@dataclass(frozen=True)
class MttdScenarioResult:
    """Detection latency for one Trojan."""

    trojan: str
    result: MttdResult
    alarm_index: Optional[int]
    trigger_index: int
    features_db: List[float]

    @property
    def within_budget(self) -> bool:
        """Whether the paper's <10 ms / <10 traces budget is met."""
        return self.result.within(BUDGET_SECONDS, BUDGET_TRACES)


@dataclass(frozen=True)
class MttdExperimentResult:
    """MTTD per Trojan."""

    scenarios: Dict[str, MttdScenarioResult]
    trace_period_s: float

    @property
    def all_within_budget(self) -> bool:
        """Whether every Trojan met the paper's budget."""
        return all(s.within_budget for s in self.scenarios.values())


def run_mttd(
    ctx: Optional[ExperimentContext] = None,
    n_baseline: int = 8,
    n_active: int = 6,
    model: Optional[MttdModel] = None,
) -> MttdExperimentResult:
    """Run the runtime monitoring stream for all four Trojans."""
    ctx = ctx or default_context()
    analyzer = SpectrumAnalyzer()
    model = model or MttdModel()

    def feature(trace: Trace) -> float:
        return sideband_feature_db(analyzer.spectrum(trace), ctx.config)

    scenarios = {}
    for trojan in ("T1", "T2", "T3", "T4"):
        reference = reference_for(trojan)
        scenario = scenario_by_name(trojan)
        stream: List[Trace] = []
        for index in range(n_baseline):
            record = ctx.campaign.record(reference, index)
            stream.append(ctx.psa.measure(record, 10, index))
        for index in range(n_active):
            record = ctx.campaign.record(scenario, 500 + index)
            stream.append(ctx.psa.measure(record, 10, 500 + index))

        detector = RuntimeDetector(DetectorConfig(warmup=max(2, n_baseline - 2)))
        monitor = RascMonitor(
            feature,
            detector,
            processing_latency_s=model.processing_latency_s,
        )
        report = monitor.monitor(stream)
        result = mttd_from_alarm(
            report.alarm_index, n_baseline, ctx.config, model
        )
        scenarios[trojan] = MttdScenarioResult(
            trojan=trojan,
            result=result,
            alarm_index=report.alarm_index,
            trigger_index=n_baseline,
            features_db=report.features_db,
        )
    return MttdExperimentResult(
        scenarios=scenarios, trace_period_s=model.trace_period(ctx.config)
    )


def format_mttd(result: MttdExperimentResult) -> str:
    """Render the MTTD rows."""
    rows = []
    for trojan, scenario in result.scenarios.items():
        mttd = scenario.result
        rows.append(
            (
                trojan,
                "yes" if mttd.detected else "NO",
                mttd.traces_to_detect if mttd.detected else "-",
                f"{mttd.mttd_s*1e3:.2f} ms" if mttd.detected else "-",
                "yes" if scenario.within_budget else "NO",
            )
        )
    header = (
        "Section VI-D — MTTD (trace period "
        f"{result.trace_period_s*1e3:.2f} ms; paper budget: <10 traces, "
        "<10 ms)\n"
    )
    return header + format_table(
        ["trojan", "detected", "traces", "MTTD", "within budget"], rows
    )
