"""IO pin assignment of the QFN-packaged test chip (Figure 2).

The chip uses a QFN 6 mm x 6 mm package with 8 IO pins per side.  The
PSA occupies the right-side pins (four differential output channels,
sensor1+/- .. sensor4+/-); four bottom-side pins carry ``PSA_sel[3:0]``,
decoded on-chip into T-gate controls.  Sensors within one row of the
4x4 arrangement share the row's output channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import FloorplanError
from .floorplan import SENSOR_GRID


@dataclass(frozen=True)
class PinAssignment:
    """One package pin.

    Attributes
    ----------
    name:
        Pin name as printed in Figure 2.
    side:
        'left', 'right', 'top' or 'bottom'.
    position:
        Index along the side (0..7).
    role:
        Functional group: 'power', 'psa_out', 'psa_ctrl', 'uart',
        'clock', 'trojan_en', 'misc'.
    """

    name: str
    side: str
    position: int
    role: str


def _side(side: str, names_roles: List[tuple]) -> List[PinAssignment]:
    return [
        PinAssignment(name=name, side=side, position=index, role=role)
        for index, (name, role) in enumerate(names_roles)
    ]


#: The full pin list (32 pins, 8 per side).
IO_PINS: List[PinAssignment] = (
    _side(
        "right",
        [
            ("Sensor1+", "psa_out"),
            ("Sensor1-", "psa_out"),
            ("Sensor2+", "psa_out"),
            ("Sensor2-", "psa_out"),
            ("Sensor3+", "psa_out"),
            ("Sensor3-", "psa_out"),
            ("Sensor4+", "psa_out"),
            ("Sensor4-", "psa_out"),
        ],
    )
    + _side(
        "bottom",
        [
            ("PSA_sel[0]", "psa_ctrl"),
            ("PSA_sel[1]", "psa_ctrl"),
            ("PSA_sel[2]", "psa_ctrl"),
            ("PSA_sel[3]", "psa_ctrl"),
            ("VDD", "power"),
            ("VSS", "power"),
            ("CLK", "clock"),
            ("rst_n", "misc"),
        ],
    )
    + _side(
        "left",
        [
            ("UART_in", "uart"),
            ("UART_out", "uart"),
            ("en_UART", "uart"),
            ("en_LFSR", "misc"),
            ("VDD", "power"),
            ("VSS", "power"),
            ("Drdy1", "misc"),
            ("am_out", "misc"),
        ],
    )
    + _side(
        "top",
        [
            ("en_T1", "trojan_en"),
            ("en_T2", "trojan_en"),
            ("en_T3", "trojan_en"),
            ("en_T4", "trojan_en"),
            ("inv_out", "misc"),
            ("load_out", "misc"),
            ("dy_out", "misc"),
            ("VDD", "power"),
        ],
    )
)


def channel_for_sensor(sensor_index: int) -> int:
    """Differential output channel (1..4) used by a sensor.

    "The 4 sensors on each row use the channel on the same row."
    """
    if not 0 <= sensor_index < SENSOR_GRID * SENSOR_GRID:
        raise FloorplanError(f"sensor index {sensor_index} outside 0..15")
    return sensor_index // SENSOR_GRID + 1


def pins_by_role(role: str) -> List[PinAssignment]:
    """All pins with a given role."""
    pins = [pin for pin in IO_PINS if pin.role == role]
    if not pins:
        raise FloorplanError(f"no pins with role {role!r}")
    return pins


def pin_map() -> Dict[str, List[PinAssignment]]:
    """Pins grouped by side."""
    grouped: Dict[str, List[PinAssignment]] = {}
    for pin in IO_PINS:
        grouped.setdefault(pin.side, []).append(pin)
    return grouped
