"""Always-on Trojan variant family (no trigger, active from power-on).

The paper's four Trojans all expose a baseline→active transition the
run-time monitor can catch: T1/T2 carry trigger logic, T3/T4 carry
external enables the experimentalist asserts mid-stream.  A foundry
adversary does not have to be so polite.  This module models the
scenario class the rolling-Welford self-baseline is structurally blind
to — Trojans that are *already leaking when the chip powers up*, so
the monitored stream never transitions:

* :class:`T1AContinuousCarrier` — T1's AM radio payload with the
  trigger counter deleted; the 750 kHz carrier runs continuously.
* :class:`T2AContinuousLeaker` — T2's key-wire inverter chain wired
  straight to the key-schedule nets; leaks every block, no plaintext
  match.
* :class:`TPParametricDrift` — a parametric modification (skewed
  implants on a buffer bank) whose leakage component ramps with
  junction temperature over each measurement window; there is no
  digital trigger at all.

Detecting this class needs a *reference-free* statistic — anomalous
sideband energy against the same spectrum's own noise floor (the
spectral and persistence detectors of :mod:`repro.detectors`) rather
than against the stream's own history.

All three variants are registered in
:data:`~repro.trojans.base.EXTENDED_TROJAN_CELLS` (not Table II: the
fabricated test chip carries exactly T1..T4, and the netlist/gate-count
artifacts must keep saying so) and are only instantiated by
:meth:`~repro.chip.testchip.TestChip.make_trojans` when a scenario
names them — existing records are bit-identical with the family
present in the codebase.
"""

from __future__ import annotations

import math

from ..errors import WorkloadError
from .base import (
    EXTENDED_TROJAN_CELLS,
    CycleContext,
    Trojan,
    block_pattern,
)
from .t1_am_carrier import T1_CARRIER_HZ

#: Standard-cell counts of the variant family (plausible synthesis
#: results: the trigger/enable logic of the parent designs is gone,
#: the payload networks remain).
ALWAYS_ON_CELLS = {
    "T1A": 1530,
    "T2A": 1760,
    "TP": 640,
}
EXTENDED_TROJAN_CELLS.update(ALWAYS_ON_CELLS)

#: The variant scenario/Trojan names, in catalog order.
ALWAYS_ON_NAMES = ("T1A", "T2A", "TP")


class AlwaysOnTrojan(Trojan):
    """Base of the variant family: no trigger, no enable, no off state.

    Unlike :class:`~repro.trojans.base.ExternallyEnabledTrojan` (T3/T4,
    whose enables the experimentalist toggles), these Trojans have no
    control input of any kind — power-on *is* activation — and no
    trigger circuit ticking beside the payload, so there is nothing to
    transition and nothing for a self-baseline to learn against.
    """

    def __init__(self) -> None:
        super().__init__(enabled=True)

    @property
    def always_on(self) -> bool:
        return True

    def is_active(self, ctx: CycleContext) -> bool:
        return True

    def trigger_toggles(self, ctx: CycleContext) -> float:
        # No trigger/enable logic exists in this family.
        return 0.0


class T1AContinuousCarrier(AlwaysOnTrojan):
    """T1A: the AM radio payload of T1 with the counter deleted.

    The 750 kHz carrier amplitude-modulates the round-synchronous
    burst pattern continuously, so the 48/84 MHz sidebands are present
    from the first captured window.

    Parameters
    ----------
    payload_fraction:
        Fraction of payload cells switching at the carrier peak.
    """

    name = "T1A"
    site = "T1"

    def __init__(self, payload_fraction: float = 0.55):
        super().__init__()
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        self.payload_fraction = payload_fraction

    def payload_toggles(self, ctx: CycleContext) -> float:
        envelope = 0.5 * (
            1.0 + math.sin(2.0 * math.pi * T1_CARRIER_HZ * ctx.time_s)
        )
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * envelope * burst


class T2AContinuousLeaker(AlwaysOnTrojan):
    """T2A: the key-wire inverter chain without the plaintext trigger.

    The chain follows the key-schedule wires on *every* block, so its
    switching tracks the fixed round-to-round Hamming distance of the
    round keys — a stationary block-synchronous signature with no
    workload dependence at all.

    Parameters
    ----------
    payload_fraction:
        Fraction of the chain toggling at full key-schedule swing.
    """

    name = "T2A"
    site = "T2"

    def __init__(self, payload_fraction: float = 0.80):
        super().__init__()
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        self.payload_fraction = payload_fraction

    def payload_toggles(self, ctx: CycleContext) -> float:
        key_swing = ctx.key_hd / 128.0
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * key_swing * burst


class TPParametricDrift(AlwaysOnTrojan):
    """TP: a parametric drift Trojan (skewed implants, no logic).

    Models a dopant-level modification of a buffer bank: the parasitic
    leakage path conducts from power-on and its strength ramps as the
    junctions heat over a measurement window, saturating after
    ``drift_cycles`` cycles.  The drift is a deterministic function of
    the cycle index, so records are bit-identical under a fixed
    :class:`~repro.config.SimConfig` seed, and every window of a
    monitoring stream sees the same saturated profile — stationary
    across windows (always-on class), drifting within each one.

    Parameters
    ----------
    payload_fraction:
        Fraction of the bank conducting at full drift.
    drift_floor:
        Leakage fraction already present at the window start (cold
        junctions).
    drift_cycles:
        Cycles to thermal saturation.
    """

    name = "TP"
    site = "T4"

    def __init__(
        self,
        payload_fraction: float = 0.70,
        drift_floor: float = 0.35,
        drift_cycles: int = 256,
    ):
        super().__init__()
        if not 0.0 < payload_fraction <= 1.0:
            raise WorkloadError("payload_fraction must be in (0, 1]")
        if not 0.0 <= drift_floor <= 1.0:
            raise WorkloadError("drift_floor must be in [0, 1]")
        if drift_cycles < 1:
            raise WorkloadError("drift_cycles must be >= 1")
        self.payload_fraction = payload_fraction
        self.drift_floor = drift_floor
        self.drift_cycles = drift_cycles

    def payload_toggles(self, ctx: CycleContext) -> float:
        drift = self.drift_floor + (1.0 - self.drift_floor) * min(
            1.0, ctx.cycle / self.drift_cycles
        )
        burst = block_pattern(ctx.phase, ctx.block_cycles)
        return self.n_cells * self.payload_fraction * drift * burst
