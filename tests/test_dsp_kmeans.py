"""From-scratch K-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.kmeans import KMeans
from repro.errors import AnalysisError


def _blobs(centers, n_per=40, spread=0.2, seed=0):
    rng = np.random.default_rng(seed)
    points = [
        rng.normal(center, spread, size=(n_per, len(center)))
        for center in centers
    ]
    return np.vstack(points)


def test_separates_two_blobs():
    data = _blobs([(0.0, 0.0), (10.0, 10.0)])
    result = KMeans(n_clusters=2).fit(data)
    labels = result.labels
    # Each blob must be internally uniform.
    assert len(set(labels[:40])) == 1
    assert len(set(labels[40:])) == 1
    assert labels[0] != labels[40]


def test_centers_near_truth():
    truth = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)]
    data = _blobs(truth, spread=0.1)
    result = KMeans(n_clusters=3).fit(data)
    for center in truth:
        distances = np.linalg.norm(result.centers - np.array(center), axis=1)
        assert distances.min() < 0.5


def test_inertia_decreases_with_more_clusters():
    data = _blobs([(0, 0), (4, 4), (8, 0)], spread=0.5)
    inertia = [
        KMeans(n_clusters=k).fit(data).inertia for k in (1, 2, 3)
    ]
    assert inertia[0] > inertia[1] > inertia[2]


def test_labels_match_nearest_center():
    data = _blobs([(0, 0), (6, 6)])
    result = KMeans(n_clusters=2).fit(data)
    distances = np.linalg.norm(
        data[:, None, :] - result.centers[None, :, :], axis=2
    )
    assert np.array_equal(result.labels, distances.argmin(axis=1))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=4))
def test_k_clusters_always_assigned(k):
    rng = np.random.default_rng(k)
    data = rng.normal(size=(30, 3))
    result = KMeans(n_clusters=k).fit(data)
    assert set(result.labels) <= set(range(k))
    assert result.centers.shape == (k, 3)


def test_deterministic_with_fixed_rng():
    data = _blobs([(0, 0), (3, 3)], seed=5)
    a = KMeans(n_clusters=2, rng=np.random.default_rng(1)).fit(data)
    b = KMeans(n_clusters=2, rng=np.random.default_rng(1)).fit(data)
    assert np.allclose(a.centers, b.centers)
    assert a.inertia == pytest.approx(b.inertia)


def test_identical_points_no_crash():
    data = np.ones((10, 2))
    result = KMeans(n_clusters=2).fit(data)
    assert result.inertia == pytest.approx(0.0)


def test_errors():
    with pytest.raises(AnalysisError):
        KMeans(n_clusters=0)
    with pytest.raises(AnalysisError):
        KMeans(n_clusters=5).fit(np.zeros((3, 2)))
