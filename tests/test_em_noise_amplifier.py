"""Noise sources and the measurement amplifier."""

import numpy as np
import pytest

from repro.em.amplifier import MeasurementAmplifier
from repro.em.noise import NoiseModel, ambient_rms, johnson_rms
from repro.errors import ConfigError
from repro.rng import stream


def test_johnson_noise_formula():
    """sqrt(4kTRB): 1 kohm over 1 MHz at ~17 C is about 4 uV."""
    value = johnson_rms(1e3, 16.85, 1e6)
    assert value == pytest.approx(4.0e-6, rel=0.02)


def test_johnson_scales_with_sqrt_r():
    r1 = johnson_rms(100.0, 25.0, 1e6)
    r4 = johnson_rms(400.0, 25.0, 1e6)
    assert r4 == pytest.approx(2 * r1, rel=1e-9)


def test_noise_model_rms_matches_prediction():
    model = NoiseModel(resistance=1e3, temperature_c=25.0, ambient_area=0.0)
    fs = 528e6
    samples = model.sample(200_000, fs, stream(1, "test"))
    assert np.sqrt(np.mean(samples**2)) == pytest.approx(
        model.total_rms(fs), rel=0.02
    )


def test_ambient_adds_power():
    fs = 528e6
    quiet = NoiseModel(10.0, 25.0, ambient_area=0.0)
    loud = NoiseModel(10.0, 25.0, ambient_area=1e-3)
    assert loud.total_rms(fs) > 10 * quiet.total_rms(fs)
    assert ambient_rms(0.0) == 0.0


def test_noise_validation():
    with pytest.raises(ConfigError):
        johnson_rms(-1.0, 25.0, 1e6)
    with pytest.raises(ConfigError):
        ambient_rms(-1.0)


def test_amplifier_midband_gain():
    amp = MeasurementAmplifier()
    gain = amp.transfer(np.array([60e6]))[0]
    assert 20 * np.log10(gain) == pytest.approx(50.0, abs=1.5)


def test_amplifier_band_shaping():
    """18 MHz and 114 MHz (the image sidebands) are attenuated
    relative to 48 MHz and 84 MHz."""
    amp = MeasurementAmplifier()
    gains = amp.transfer(np.array([18e6, 48e6, 84e6, 114e6]))
    assert gains[1] > 1.5 * gains[0]
    assert gains[2] > 1.5 * gains[3]


def test_amplifier_divider():
    amp = MeasurementAmplifier(input_impedance=10e3)
    assert amp.source_divider(0.0) == 1.0
    assert amp.source_divider(10e3) == pytest.approx(0.5)


def test_amplify_applies_gain_and_noise():
    amp = MeasurementAmplifier()
    fs = 528e6
    t = np.arange(8192) / fs
    tone = 1e-3 * np.sin(2 * np.pi * 60e6 * t)
    clean = amp.amplify(tone, fs, rng=None)
    noisy = amp.amplify(tone, fs, rng=stream(1, "amp"))
    assert np.sqrt(np.mean(clean**2)) == pytest.approx(
        1e-3 / np.sqrt(2) * 316.2, rel=0.05
    )
    assert not np.allclose(clean, noisy)


def test_amplifier_validation():
    with pytest.raises(ConfigError):
        MeasurementAmplifier(f_highpass=200e6, f_lowpass=100e6)
    with pytest.raises(ConfigError):
        MeasurementAmplifier(input_impedance=0.0)
