"""The streaming run-time subsystem: sources, pipeline, events.

The load-bearing property is the determinism contract: a streamed
session — at *any* chunk size, live or replayed — produces bit-identical
windows, features, alarms and escalation output to the equivalent
one-shot offline render.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.analysis.detector import DetectorConfig
from repro.core.analysis.localizer import Localizer
from repro.core.analysis.pipeline import CrossDomainAnalyzer
from repro.errors import AnalysisError, WorkloadError
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.runtime import (
    ActivationSchedule,
    EscalationPipeline,
    EventBus,
    JsonlSink,
    LiveSource,
    MonitorState,
    PipelineConfig,
    ReplaySource,
    StateChanged,
    TrojanIdentified,
    TrojanLocalized,
    WindowProcessed,
    WindowTimeline,
    record_stream,
    read_events,
)
from repro.runtime.events import Alarm, event_from_dict
from repro.workloads.campaign import StreamSegment

#: The scripted session every equivalence test uses.
N_BASELINE = 6
N_ACTIVE = 4
DETECTOR = DetectorConfig(warmup=4)


def _schedule(trojan="T1"):
    return ActivationSchedule.step(
        trojan, n_baseline=N_BASELINE, n_active=N_ACTIVE
    )


def _pipeline(config, localizer=None, bus=None, localize=True):
    return EscalationPipeline(
        config,
        n_streams=1,
        pipeline=PipelineConfig(
            detector=DETECTOR, localize=localize, localize_records=2
        ),
        localizer=localizer,
        bus=bus,
    )


# -- schedule -----------------------------------------------------------------


def test_schedule_shape_and_trigger():
    schedule = _schedule()
    assert schedule.n_windows == N_BASELINE + N_ACTIVE
    assert schedule.trigger_index == N_BASELINE
    assert schedule.trojan == "T1"
    assert schedule.reference == "baseline"
    assert schedule.scenario_at(0) == "baseline"
    assert schedule.scenario_at(N_BASELINE) == "T1"
    with pytest.raises(WorkloadError):
        schedule.scenario_at(schedule.n_windows)


def test_schedule_matched_reference_and_quiet():
    assert ActivationSchedule.step("T2").reference == "T2_ref"
    quiet = ActivationSchedule(
        segments=(StreamSegment("baseline", 4, 0),)
    )
    assert quiet.trigger_index is None
    assert quiet.trojan is None
    with pytest.raises(WorkloadError):
        ActivationSchedule(segments=())


# -- live source --------------------------------------------------------------


def test_live_source_matches_offline_render(campaign):
    """Chunked streaming == the one-shot batched engine render."""
    schedule = _schedule()
    offline = campaign.collect_stream(
        list(schedule.segments), sensors=[10]
    )
    source = LiveSource(campaign, schedule, sensors=(10,), chunk=7)
    streamed = np.concatenate(
        [chunk.samples for chunk in source.chunks()], axis=1
    )
    assert np.array_equal(streamed, offline.samples)


def test_live_source_chunk_metadata(campaign):
    source = LiveSource(campaign, _schedule(), sensors=(10,), chunk=4)
    chunks = list(source.chunks())
    # Chunks never span a segment boundary: 6 -> 4+2, then 4.
    assert [c.n_windows for c in chunks] == [4, 2, 4]
    assert [c.start for c in chunks] == [0, 4, 6]
    assert chunks[0].scenarios == ("baseline",) * 4
    assert chunks[2].scenarios == ("T1",) * 4
    assert chunks[2].trace_indices == (500, 501, 502, 503)
    trace = chunks[2].trace(0, 1)
    assert trace.scenario == "T1"
    assert trace.meta["trace_index"] == 501


@pytest.mark.parametrize("chunk", [1, 7, 64])
def test_streamed_run_bit_identical_across_chunk_sizes(
    campaign, psa, chunk
):
    """Windows, alarms and localization match the one-shot fold."""
    config = campaign.chip.config
    analyzer = SpectrumAnalyzer()
    reference = _pipeline(
        config, localizer=Localizer(psa, analyzer)
    ).run(LiveSource(campaign, _schedule("T4"), chunk=64))

    result = _pipeline(config, localizer=Localizer(psa, analyzer)).run(
        LiveSource(campaign, _schedule("T4"), chunk=chunk)
    )
    assert np.array_equal(result.features_db, reference.features_db)
    assert result.alarms == reference.alarms
    assert result.first_alarm == reference.first_alarm
    assert result.mttd == reference.mttd
    assert result.identification.label == reference.identification.label
    assert (
        result.identification.features == reference.identification.features
    )
    assert (
        result.localization.sensor_index
        == reference.localization.sensor_index
    )
    assert result.localization.quadrant == reference.localization.quadrant
    assert result.localization.position == reference.localization.position
    assert np.array_equal(
        result.localization.scores, reference.localization.scores
    )


def test_escalation_outcome(campaign, psa):
    """The state machine walks detect -> identify -> localize."""
    config = campaign.chip.config
    report = _pipeline(config, localizer=Localizer(psa)).run(
        LiveSource(campaign, _schedule("T4"), chunk=4)
    )
    assert report.trigger_index == N_BASELINE
    assert report.detected
    assert report.mttd.traces_to_detect < 10
    assert report.mttd.mttd_s < 10e-3
    assert report.identification.label == "T4"
    assert report.localization.sensor_index == 10
    assert report.localization.quadrant == "se"
    assert report.escalations == 1
    assert report.final_state == MonitorState.MONITOR.value


def test_monitor_stream_delegation_bit_identical(campaign, psa):
    """CrossDomainAnalyzer.monitor_stream == its legacy render."""
    analyzer = CrossDomainAnalyzer(campaign.chip, psa)
    new_f, new_t, new_trigger = analyzer.monitor_stream("T4", 6, 4)
    old_f, old_t, old_trigger = analyzer.monitor_stream_legacy("T4", 6, 4)
    assert new_f == old_f
    assert new_trigger == old_trigger
    assert len(new_t) == len(old_t)
    for fresh, legacy in zip(new_t, old_t):
        assert np.array_equal(fresh.samples, legacy.samples)
        assert fresh.label == legacy.label
        assert fresh.scenario == legacy.scenario


# -- replay source ------------------------------------------------------------


def test_replay_round_trip_bit_identical(campaign, tmp_path):
    """record_stream -> ReplaySource reproduces the live session."""
    config = campaign.chip.config
    schedule = _schedule("T1")
    live = LiveSource(campaign, schedule, chunk=4)
    path = record_stream(live, tmp_path / "session.npz")

    offline = campaign.collect_stream(list(schedule.segments), sensors=[10])
    replay = ReplaySource(path, batch=3)
    assert replay.n_streams == 1
    assert replay.n_windows == schedule.n_windows
    assert replay.trigger_index == schedule.trigger_index
    streamed = np.concatenate(
        [chunk.samples for chunk in replay.chunks()], axis=1
    )
    assert np.array_equal(streamed, offline.samples)

    live_report = _pipeline(config).run(
        LiveSource(campaign, schedule, chunk=4)
    )
    replay_report = _pipeline(config).run(ReplaySource(path, batch=3))
    assert np.array_equal(
        replay_report.features_db, live_report.features_db
    )
    assert replay_report.alarms == live_report.alarms
    assert replay_report.mttd == live_report.mttd
    # A replay cannot re-measure: escalation stops at IDENTIFY.
    assert replay_report.identification is not None
    assert replay_report.localization is None


def test_replay_validates_stream_count(campaign, tmp_path):
    path = record_stream(
        LiveSource(campaign, _schedule(), chunk=4), tmp_path / "s.npz"
    )
    with pytest.raises(AnalysisError):
        ReplaySource(path, n_streams=3)  # 10 traces % 3 != 0
    with pytest.raises(AnalysisError):
        ReplaySource(path, batch=0)


def test_replay_infers_stream_count(campaign, tmp_path):
    """A multi-stream archive replays correctly with no n_streams hint."""
    schedule = _schedule()
    live = LiveSource(campaign, schedule, sensors=(9, 10), chunk=4)
    path = record_stream(live, tmp_path / "two.npz")
    replay = ReplaySource(path, batch=3)
    assert replay.n_streams == 2
    assert replay.n_windows == schedule.n_windows
    assert replay.trigger_index == schedule.trigger_index
    offline = campaign.collect_stream(
        list(schedule.segments), sensors=[9, 10]
    )
    streamed = np.concatenate(
        [chunk.samples for chunk in replay.chunks()], axis=1
    )
    assert np.array_equal(streamed, offline.samples)
    # Forcing a wrong stream count against the recorded label pattern
    # fails loudly instead of interleaving sensors into one stream.
    with pytest.raises(AnalysisError):
        ReplaySource(path, n_streams=1)


# -- events -------------------------------------------------------------------


def test_event_stream_and_jsonl_sink(campaign, psa, tmp_path):
    config = campaign.chip.config
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    log = tmp_path / "events.jsonl"
    with JsonlSink(log) as sink:
        bus.subscribe(sink)
        report = _pipeline(
            config, localizer=Localizer(psa), bus=bus
        ).run(LiveSource(campaign, _schedule("T4"), chunk=4))

    windows = [e for e in seen if isinstance(e, WindowProcessed)]
    assert [e.window for e in windows] == list(range(report.n_windows))
    alarms = [e for e in seen if isinstance(e, Alarm)]
    assert alarms[0].window == report.first_alarm
    assert alarms[0].escalating and not any(
        a.escalating for a in alarms[1:]
    )
    transitions = [
        (e.previous, e.current)
        for e in seen
        if isinstance(e, StateChanged)
    ]
    assert transitions == [
        ("monitor", "identify"),
        ("identify", "localize"),
        ("localize", "monitor"),
    ]
    identified = [e for e in seen if isinstance(e, TrojanIdentified)]
    localized = [e for e in seen if isinstance(e, TrojanLocalized)]
    assert identified[0].label == "T4"
    assert localized[0].sensor == 10

    # The JSONL log is a faithful, parseable transcript.
    replayed = read_events(log)
    assert len(replayed) == len(seen) == sum(report.event_counts.values())
    for line, event in zip(
        log.read_text().splitlines(), seen, strict=True
    ):
        assert event_from_dict(json.loads(line)) == event


def test_event_dict_round_trip():
    event = WindowProcessed(
        chip="chipX",
        window=3,
        time_s=0.004,
        scenario="T1",
        features_db=(91.0,),
        z=(None,),
        alarm=False,
    )
    assert event_from_dict(event.to_dict()) == event
    with pytest.raises(AnalysisError):
        event_from_dict({"type": "Bogus"})


# -- timeline -----------------------------------------------------------------


def test_window_timeline_bookkeeping():
    timeline = WindowTimeline(1e-3, n_streams=2)
    assert timeline.first_alarm is None
    timeline.push([1.0, 2.0], False)
    timeline.push([3.0, 4.0], True)
    timeline.push([5.0, 6.0], True)
    assert timeline.n_windows == 3
    assert timeline.alarms == (1, 2)
    assert timeline.first_alarm == 1
    assert timeline.window_indices == (0, 1, 2)
    assert timeline.window_times_s == pytest.approx((1e-3, 2e-3, 3e-3))
    assert np.array_equal(
        timeline.features_matrix(), [[1.0, 3.0, 5.0], [2.0, 4.0, 6.0]]
    )
    assert timeline.stream_features(1) == [2.0, 4.0, 6.0]
    with pytest.raises(AnalysisError):
        timeline.push([1.0], False)
    with pytest.raises(AnalysisError):
        WindowTimeline(0.0)


# -- guards -------------------------------------------------------------------


def test_stream_shape_guards(campaign):
    config = campaign.chip.config
    source = LiveSource(campaign, _schedule(), sensors=(10, 11), chunk=4)
    with pytest.raises(AnalysisError):
        _pipeline(config).run(source)  # 1-stream pipeline, 2-stream source
    with pytest.raises(AnalysisError):
        LiveSource(campaign, _schedule(), sensors=())
    with pytest.raises(AnalysisError):
        LiveSource(campaign, _schedule(), chunk=0)


# -- detector plugins in the MONITOR stage ------------------------------------


def test_chunk_features_welford_route_matches_legacy_path(campaign):
    """``detector=welford`` reproduces the historical direct path."""
    from repro.detectors import make_detector
    from repro.instruments.rasc import RASC_ADC
    from repro.runtime.pipeline import chunk_features

    config = campaign.chip.config
    analyzer = SpectrumAnalyzer()
    chunk = next(
        iter(LiveSource(campaign, _schedule("T1"), chunk=6).chunks())
    )
    legacy = chunk_features(chunk, analyzer, config, adc=RASC_ADC)
    routed = chunk_features(
        chunk,
        analyzer,
        config,
        adc=RASC_ADC,
        detector=make_detector("welford", 1),
    )
    np.testing.assert_array_equal(legacy, routed)


def test_monitor_welford_route_bit_identical_to_direct_bank(campaign):
    """Registry-routed MONITOR stage == pre-registry featurize + fold."""
    from repro.core.analysis.welford import DetectorBank
    from repro.instruments.rasc import RASC_ADC
    from repro.runtime.pipeline import chunk_features

    config = campaign.chip.config
    report = _pipeline(config, localize=False).run(
        LiveSource(campaign, _schedule("T1"), chunk=4)
    )
    assert report.detector == "welford"
    analyzer = SpectrumAnalyzer()
    blocks = [
        chunk_features(chunk, analyzer, config, adc=RASC_ADC)
        for chunk in LiveSource(campaign, _schedule("T1"), chunk=4).chunks()
    ]
    features = np.concatenate(blocks, axis=1)
    timeline = DetectorBank(1, DETECTOR).process(features)
    np.testing.assert_array_equal(report.features_db, features)
    assert report.alarms == tuple(
        np.nonzero(timeline.alarms.any(axis=0))[0].tolist()
    )
    assert report.first_alarm == timeline.first_alarm()


def test_pipeline_config_rejects_unknown_detector():
    with pytest.raises(AnalysisError, match="unknown detector"):
        PipelineConfig(detector_name="bogus")


def test_always_on_schedule_has_no_quiet_span():
    schedule = ActivationSchedule.step("T1A", n_baseline=4, n_active=4)
    # An always-on chip references itself: every scripted window is
    # Trojan-active and the trigger is window 0.
    assert schedule.reference == "T1A"
    assert schedule.trigger_index == 0
    assert schedule.trojan == "T1A"
    for window in range(schedule.n_windows):
        assert schedule.scenario_at(window) == "T1A"


def test_monitor_always_on_blind_spot_and_coverage(campaign):
    """The self-baseline absorbs an always-on implant; the
    reference-free plugins see it — the comparative grid's structure,
    reproduced in the streaming MONITOR stage."""
    config = campaign.chip.config
    schedule = ActivationSchedule.step("T1A", n_baseline=6, n_active=4)
    reports = {}
    for name in ("welford", "spectral", "persistence"):
        pipeline = EscalationPipeline(
            config,
            n_streams=1,
            pipeline=PipelineConfig(
                detector=DETECTOR, detector_name=name, localize=False
            ),
        )
        reports[name] = pipeline.run(
            LiveSource(campaign, schedule, chunk=4)
        )
        assert reports[name].detector == name
    assert reports["welford"].first_alarm is None
    assert reports["spectral"].first_alarm is not None
    assert reports["spectral"].mttd.detected
    # Persistence needs its coarsest trailing scale (8 windows) filled.
    assert reports["persistence"].first_alarm == 7
