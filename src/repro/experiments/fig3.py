"""Figure 3: spectrum magnitude, PSA vs external EM probe.

"the spectrum from the PSA can be up to 55 dB higher than that from an
external EM probe" — the harness regenerates the three displayed
series: the PSA spectrum, the probe spectrum, and their difference in
dB across DC-120 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..baselines.common import ReceiverBench
from ..dsp.transforms import Spectrum, average_spectra
from ..em.probes import langer_lf1_probe
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..workloads.scenarios import scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import sparkline


@dataclass(frozen=True)
class Fig3Result:
    """The three series of Figure 3.

    Attributes
    ----------
    psa_spectrum, probe_spectrum:
        Averaged display spectra of the two receivers.
    difference_db:
        PSA minus probe, in dB, per display bin.
    max_difference_db:
        The headline number (paper: up to ~55 dB).
    """

    psa_spectrum: Spectrum
    probe_spectrum: Spectrum
    difference_db: np.ndarray
    max_difference_db: float


def run_fig3(
    ctx: Optional[ExperimentContext] = None, n_traces: int = 3
) -> Fig3Result:
    """Collect both receivers' spectra under the same AES workload."""
    ctx = ctx or default_context()
    analyzer = SpectrumAnalyzer()
    bench = ReceiverBench(ctx.chip, langer_lf1_probe())
    scenario = scenario_by_name("baseline")
    records = [ctx.campaign.record(scenario, i) for i in range(n_traces)]

    psa_spectra = [
        analyzer.spectrum(ctx.psa.measure(record, 10, index))
        for index, record in enumerate(records)
    ]
    probe_spectra = [
        analyzer.spectrum(bench.measure(record, index))
        for index, record in enumerate(records)
    ]
    psa_avg = average_spectra(psa_spectra)
    probe_avg = average_spectra(probe_spectra)
    floor = np.finfo(float).tiny
    difference = 20.0 * np.log10(
        np.maximum(psa_avg.amps, floor) / np.maximum(probe_avg.amps, floor)
    )
    # Headline: the in-band maximum above 10 MHz (below that, both
    # receivers sit on their high-passed noise shelves).
    mask = psa_avg.freqs >= 10e6
    return Fig3Result(
        psa_spectrum=psa_avg,
        probe_spectrum=probe_avg,
        difference_db=difference,
        max_difference_db=float(difference[mask].max()),
    )


def format_fig3(result: Fig3Result) -> str:
    """Render the Figure 3 summary."""
    lines = [
        "Figure 3 — spectrum magnitude comparison (DC-120 MHz)",
        f"PSA    : {sparkline(result.psa_spectrum.db())}",
        f"probe  : {sparkline(result.probe_spectrum.db())}",
        f"diff dB: {sparkline(result.difference_db)}",
        f"max difference: {result.max_difference_db:.1f} dB "
        "(paper: up to ~55 dB)",
    ]
    return "\n".join(lines)
