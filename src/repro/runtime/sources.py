"""Trace streams: where the monitoring pipeline's windows come from.

Two production sources sit behind one :class:`TraceStream` protocol:

* :class:`LiveSource` renders measurement windows *on demand* through
  the batched :class:`~repro.engine.MeasurementEngine` — a scripted
  :class:`ActivationSchedule` says which workload runs when (including
  the mid-stream Trojan activation), and each pulled chunk is one
  vectorized engine render.  Because every capture draws from the RNG
  stream ``render/{scenario}/{receiver}/{trace_index}``, a streamed
  run is **bit-identical** to the equivalent one-shot offline render
  at any chunk size.
* :class:`ReplaySource` iterates a ``.npz`` trace archive through the
  chunked :func:`repro.traceio.iter_traces` reader, never holding more
  than one chunk of samples — recorded sessions re-run through the
  same pipeline.

Both yield :class:`StreamChunk` blocks: a ``(n_streams, k,
n_samples)`` sample stack plus per-window bookkeeping, the unit of
work the escalation pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..chip.power import ActivityRecord
from ..errors import AnalysisError, WorkloadError
from ..store import ArtifactStore, RecordCodec, chip_fingerprint
from ..traceio import iter_traces, read_header, save_traces
from ..traces import Trace
from ..workloads.campaign import MeasurementCampaign, StreamSegment
from ..workloads.scenarios import SCENARIOS, reference_for, scenario_by_name

#: The sensor the run-time monitor watches by default (covers the
#: Trojan cluster on the paper's chip).
DEFAULT_MONITOR_SENSOR = 10

#: Default windows per pulled chunk (matches the engine's irFFT
#: chunking sweet spot).
DEFAULT_CHUNK_WINDOWS = 16


@dataclass(frozen=True)
class StreamChunk:
    """One contiguous block of monitoring windows.

    Attributes
    ----------
    samples:
        Voltage samples [V], shape ``(n_streams, k, n_samples)`` —
        one row of ``k`` consecutive windows per monitored stream.
    fs:
        Sampling rate [Hz].
    start:
        Global stream index of the first window in the block.
    scenarios:
        Workload scenario per window.
    trace_indices:
        Capture (RNG/workload) index per window.
    labels:
        Receiver label per stream row.
    """

    samples: np.ndarray
    fs: float
    start: int
    scenarios: Tuple[str, ...]
    trace_indices: Tuple[int, ...]
    labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.samples.ndim != 3:
            raise AnalysisError(
                "StreamChunk samples must be (n_streams, k, n_samples), "
                f"got shape {self.samples.shape}"
            )
        n_streams, k, _ = self.samples.shape
        if len(self.scenarios) != k or len(self.trace_indices) != k:
            raise AnalysisError("one scenario/index per window required")
        if len(self.labels) != n_streams:
            raise AnalysisError("one label per stream required")

    @property
    def n_streams(self) -> int:
        """Monitored streams in the block."""
        return int(self.samples.shape[0])

    @property
    def n_windows(self) -> int:
        """Windows in the block."""
        return int(self.samples.shape[1])

    def trace(self, stream: int, offset: int) -> Trace:
        """One window of one stream as a :class:`~repro.traces.Trace`."""
        if not 0 <= stream < self.n_streams:
            raise AnalysisError(
                f"stream {stream} outside 0..{self.n_streams - 1}"
            )
        if not 0 <= offset < self.n_windows:
            raise AnalysisError(
                f"window offset {offset} outside 0..{self.n_windows - 1}"
            )
        return Trace(
            samples=self.samples[stream, offset],
            fs=self.fs,
            label=self.labels[stream],
            scenario=self.scenarios[offset],
            meta={"trace_index": self.trace_indices[offset]},
        )


def _scenario_is_active(name: str) -> bool:
    """Whether a scenario name carries an armed Trojan payload."""
    scenario = SCENARIOS.get(name)
    return scenario is not None and bool(scenario.active)


@dataclass(frozen=True)
class ActivationSchedule:
    """Scripted workload timeline of a monitoring session.

    An ordered tuple of :class:`~repro.workloads.campaign.StreamSegment`
    spans; the Trojan "activates" at the first span whose scenario has
    an armed payload.  The schedule is what makes a streamed session
    reproducible: window ``w`` maps to exactly one (scenario,
    trace_index) capture, independent of chunking.

    Attributes
    ----------
    segments:
        Stream spans in capture order.
    """

    segments: Tuple[StreamSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise WorkloadError("schedule needs at least one segment")
        for segment in self.segments:
            scenario_by_name(segment.scenario)

    @classmethod
    def step(
        cls,
        trojan: str,
        n_baseline: int = 8,
        n_active: int = 6,
        reference: str = "auto",
        baseline_offset: int = 0,
        active_offset: int = 500,
    ) -> "ActivationSchedule":
        """The canonical run-time script: quiet span, then activation.

        ``reference="auto"`` resolves the matched Trojan-inactive
        workload (T2 pairs with ``T2_ref``); distinct index offsets
        keep the two spans in distinct workload epochs.
        """
        if reference == "auto":
            reference = reference_for(trojan).name
        return cls(
            segments=(
                StreamSegment(reference, n_baseline, baseline_offset),
                StreamSegment(trojan, n_active, active_offset),
            )
        )

    @property
    def n_windows(self) -> int:
        """Total windows scripted by the schedule."""
        return sum(segment.n_traces for segment in self.segments)

    @property
    def trigger_index(self) -> Optional[int]:
        """First window with an armed Trojan (None = never activates)."""
        position = 0
        for segment in self.segments:
            if _scenario_is_active(segment.scenario):
                return position
            position += segment.n_traces
        return None

    @property
    def trojan(self) -> Optional[str]:
        """Scenario name of the first armed span (None = all quiet)."""
        for segment in self.segments:
            if _scenario_is_active(segment.scenario):
                return segment.scenario
        return None

    @property
    def reference(self) -> str:
        """Scenario name of the first span (the self-baseline workload)."""
        return self.segments[0].scenario

    def scenario_at(self, window: int) -> str:
        """Scenario of one global window index."""
        position = 0
        for segment in self.segments:
            if window < position + segment.n_traces:
                return segment.scenario
            position += segment.n_traces
        raise WorkloadError(
            f"window {window} outside the {self.n_windows}-window schedule"
        )


@runtime_checkable
class TraceStream(Protocol):
    """Anything the escalation pipeline can monitor.

    A stream produces :class:`StreamChunk` blocks in window order and
    knows its own shape; ``trigger_index`` is the scripted activation
    window when known (live schedules, annotated replays) so MTTD can
    be computed, and ``localization_records`` supplies matched
    Trojan-inactive/active activity records for the LOCALIZE stage
    (None when the stream cannot re-measure, e.g. archive replay).
    """

    @property
    def n_streams(self) -> int: ...

    @property
    def n_windows(self) -> int: ...

    @property
    def trigger_index(self) -> Optional[int]: ...

    def chunks(self) -> Iterator[StreamChunk]: ...

    def localization_records(
        self, n_records: int
    ) -> Optional[Tuple[List[ActivityRecord], List[ActivityRecord]]]: ...


class LiveSource:
    """On-demand rendering of a scripted monitoring session.

    Each pulled chunk is one batched engine render of up to ``chunk``
    consecutive windows (never spanning a schedule segment boundary,
    so every window keeps its scripted (scenario, trace_index)
    identity).  The engine's determinism contract makes the stream
    bit-identical to the one-shot offline render of the same schedule
    — at chunk size 1, 7, 64 or anything else.

    Parameters
    ----------
    campaign:
        The measurement campaign (chip + PSA + engine) to render with.
    schedule:
        Scripted workload timeline.
    sensors:
        Sensor indices to monitor (one detector stream each).
    chunk:
        Maximum windows per pulled chunk.
    record_cache:
        Optional ``(scenario, trace_index) -> ActivityRecord`` memo
        shared with other consumers of the same chip (records are
        deterministic in that key).  The monitored chip's activity
        exists independently of the monitor — in deployment the
        workload simply runs — so pre-populating the cache (see
        :meth:`warm_records`) isolates the monitor's own
        capture-plus-processing cost.
    store:
        Optional :class:`~repro.store.ArtifactStore`.  When given (and
        no explicit ``record_cache`` was passed), the record memo
        becomes a persistent store view keyed by the monitored chip's
        content fingerprint: a repeated monitor session — including
        :meth:`warm_records` — replays the chip's activity from disk,
        bit-identical to simulating it fresh.
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        schedule: ActivationSchedule,
        sensors: Sequence[int] = (DEFAULT_MONITOR_SENSOR,),
        chunk: int = DEFAULT_CHUNK_WINDOWS,
        record_cache: Optional[dict] = None,
        store: Optional[ArtifactStore] = None,
    ):
        if chunk < 1:
            raise AnalysisError(f"chunk must be >= 1, got {chunk}")
        if not sensors:
            raise AnalysisError("need at least one monitored sensor")
        self.campaign = campaign
        self.schedule = schedule
        self.sensors = tuple(int(s) for s in sensors)
        self.chunk = chunk
        if record_cache is not None:
            self._record_cache = record_cache
        elif store is not None:
            self._record_cache = store.mapping(
                "record",
                {"chip": chip_fingerprint(campaign.chip)},
                RecordCodec(campaign.chip.config),
            )
        else:
            self._record_cache = {}

    def _record(self, scenario, index: int) -> ActivityRecord:
        """One activity record through the memo (disk-backed or not)."""
        key = (scenario.name, index)
        record = self._record_cache.get(key)
        if record is None:
            record = self.campaign.record(scenario, index)
            self._record_cache[key] = record
        return record

    def warm_records(self) -> int:
        """Pre-simulate every scheduled activity record into the cache.

        Returns the number of records now cached.  Benchmarks (and
        latency-sensitive deployments) call this so the streamed
        session measures monitoring throughput — capture, feature
        extraction, detection — rather than workload simulation.
        With a store-backed cache the warm-up itself warm-starts:
        records already persisted load from disk instead of
        re-simulating.
        """
        for segment in self.schedule.segments:
            scenario = scenario_by_name(segment.scenario)
            for index in segment.indices:
                self._record(scenario, index)
        return len(self._record_cache)

    @property
    def n_streams(self) -> int:
        """One stream per monitored sensor."""
        return len(self.sensors)

    @property
    def n_windows(self) -> int:
        """Windows the schedule will produce."""
        return self.schedule.n_windows

    @property
    def trigger_index(self) -> Optional[int]:
        """Scripted activation window."""
        return self.schedule.trigger_index

    @property
    def config(self):
        """The simulation config behind the rendered windows."""
        return self.campaign.chip.config

    def chunk_specs(self) -> Iterator[Tuple[int, StreamSegment]]:
        """The schedule's chunk plan: ``(start window, sub-segment)``.

        Chunks never span a schedule segment boundary, so every window
        keeps its scripted (scenario, trace_index) identity regardless
        of who renders the chunk or how many fuse into one pass.
        """
        position = 0
        for segment in self.schedule.segments:
            for lo in range(0, segment.n_traces, self.chunk):
                k = min(self.chunk, segment.n_traces - lo)
                yield position, StreamSegment(
                    segment.scenario, k, segment.index_offset + lo
                )
                position += k

    def enqueue_chunk(self, plan, spec: Tuple[int, StreamSegment]):
        """Enqueue one chunk spec's render on a fused dispatch plan.

        Returns the plan ticket; after ``plan.execute()``, turn it
        into the chunk with :meth:`chunk_from`.  The fleet scheduler
        uses this to render every pending chip's chunk of a tick as
        one engine pass.
        """
        _, sub = spec
        return self.campaign.enqueue_stream(
            plan,
            [sub],
            sensors=list(self.sensors),
            record_cache=self._record_cache,
        )

    @staticmethod
    def chunk_from(batch, position: int) -> StreamChunk:
        """Wrap one rendered chunk batch as its stream chunk."""
        return StreamChunk(
            samples=batch.samples,
            fs=batch.fs,
            start=position,
            scenarios=batch.scenarios,
            trace_indices=batch.trace_indices,
            labels=batch.labels,
        )

    def chunks(self) -> Iterator[StreamChunk]:
        """Render the schedule chunk by chunk, in window order."""
        for position, sub in self.chunk_specs():
            batch = self.campaign.collect_stream(
                [sub],
                sensors=list(self.sensors),
                record_cache=self._record_cache,
            )
            yield self.chunk_from(batch, position)

    def localization_records(
        self,
        n_records: int,
        baseline_epoch: int = 3000,
        active_epoch: int = 3500,
    ) -> Optional[Tuple[List[ActivityRecord], List[ActivityRecord]]]:
        """Matched populations for the LOCALIZE stage.

        Fresh workload epochs (far from the monitoring stream's own
        indices) of the schedule's reference and Trojan scenarios —
        the live system can always take more measurements, which is
        exactly what the paper's reprogram-and-refine step does.
        """
        trojan = self.schedule.trojan
        if trojan is None:
            return None
        reference = scenario_by_name(self.schedule.reference)
        active = scenario_by_name(trojan)
        base_records = [
            self._record(reference, baseline_epoch + i)
            for i in range(n_records)
        ]
        active_records = [
            self._record(active, active_epoch + i) for i in range(n_records)
        ]
        return base_records, active_records


class ReplaySource:
    """Streamed replay of a recorded ``.npz`` trace archive.

    The archive is read through the chunked
    :func:`repro.traceio.iter_traces` reader — at most one chunk of
    samples is in memory at a time, so arbitrarily long recordings
    replay with bounded footprint.  Traces are stored window-major:
    with ``n_streams`` monitored streams, window ``w`` occupies traces
    ``w*n_streams .. (w+1)*n_streams - 1``.

    The activation window is recovered from the recorded scenario
    labels (first window whose scenario carries an armed payload), so
    MTTD accounting survives the round-trip; localization cannot (a
    replay cannot take new measurements), so
    :meth:`localization_records` returns None and the pipeline stops
    its escalation at IDENTIFY.

    Parameters
    ----------
    path:
        Archive written by :func:`repro.traceio.save_traces` (e.g. via
        :func:`record_stream`).
    batch:
        Maximum windows per pulled chunk.
    n_streams:
        Monitored streams interleaved in the archive; None (the
        default) recovers the count from the recorded receiver labels
        (the per-window label pattern of the window-major layout).
        An explicit count is validated against that pattern, so a
        mismatched replay fails loudly instead of interleaving
        different sensors into one detector stream.
    """

    def __init__(
        self,
        path: "str | Path",
        batch: int = DEFAULT_CHUNK_WINDOWS,
        n_streams: Optional[int] = None,
    ):
        if batch < 1:
            raise AnalysisError(f"batch must be >= 1, got {batch}")
        self.path = Path(path)
        self.batch = batch
        header = read_header(self.path)
        entries = header["traces"]
        labels = [str(entry["label"]) for entry in entries]
        if n_streams is None:
            # Window-major layout: the first window's labels run until
            # the leading label repeats (or the archive ends).
            try:
                n_streams = labels.index(labels[0], 1)
            except ValueError:
                n_streams = len(labels)
        if n_streams < 1:
            raise AnalysisError(f"n_streams must be >= 1, got {n_streams}")
        if len(entries) % n_streams:
            raise AnalysisError(
                f"archive holds {len(entries)} traces, not a multiple of "
                f"{n_streams} streams"
            )
        for position, label in enumerate(labels):
            if label != labels[position % n_streams]:
                raise AnalysisError(
                    f"archive trace {position} is labeled {label!r} where "
                    f"the {n_streams}-stream window-major layout expects "
                    f"{labels[position % n_streams]!r}"
                )
        self._n_streams = n_streams
        self._n_windows = len(entries) // n_streams
        self._scenarios = tuple(
            str(entries[w * n_streams]["scenario"])
            for w in range(self._n_windows)
        )

    @property
    def n_streams(self) -> int:
        """Streams interleaved in the archive."""
        return self._n_streams

    @property
    def n_windows(self) -> int:
        """Whole windows stored in the archive."""
        return self._n_windows

    @property
    def trigger_index(self) -> Optional[int]:
        """Activation window recovered from recorded scenario labels."""
        for window, name in enumerate(self._scenarios):
            if _scenario_is_active(name):
                return window
        return None

    def chunks(self) -> Iterator[StreamChunk]:
        """Stream the archive back as whole-window chunks."""
        position = 0
        for group in iter_traces(self.path, batch=self.batch * self._n_streams):
            k = len(group) // self._n_streams
            first = group[0]
            stack = np.stack([trace.samples for trace in group])
            samples = (
                stack.reshape(k, self._n_streams, -1).transpose(1, 0, 2)
            )
            windows = [group[w * self._n_streams] for w in range(k)]
            yield StreamChunk(
                samples=samples,
                fs=first.fs,
                start=position,
                scenarios=tuple(trace.scenario for trace in windows),
                trace_indices=tuple(
                    int(trace.meta.get("trace_index", position + w))
                    for w, trace in enumerate(windows)
                ),
                labels=tuple(trace.label for trace in group[: self._n_streams]),
            )
            position += k

    def localization_records(self, n_records: int) -> None:
        """A replay cannot re-measure; localization is unavailable."""
        return None


def record_stream(source: TraceStream, path: "str | Path") -> Path:
    """Render a stream to a replayable archive (window-major layout).

    Every window of every stream is materialized in chunk order and
    saved through :func:`repro.traceio.save_traces`, producing exactly
    the layout :class:`ReplaySource` expects — the round-trip
    ``record_stream`` → ``ReplaySource`` reproduces the live session's
    windows bit-for-bit.
    """
    traces: List[Trace] = []
    for chunk in source.chunks():
        for offset in range(chunk.n_windows):
            for stream in range(chunk.n_streams):
                traces.append(chunk.trace(stream, offset))
    return save_traces(path, traces)
