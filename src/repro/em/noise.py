"""Noise sources of the measurement chain.

Three contributors, matching the paper's setup:

* **Johnson noise** of the winding's series resistance (dominant for
  high-resistance programmed coils with many T-gates in the path);
* **amplifier input noise** (handled by
  :class:`repro.em.amplifier.MeasurementAmplifier`);
* **ambient pickup** — broadcast/lab interference linked by the loop
  area.  Negligible for on-chip coils under the package lid, dominant
  for external probes, which is a large part of their SNR deficit.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError
from ..units import KB, celsius_to_kelvin

#: Ambient field pickup at the PCB surface [V RMS per m^2 of loop area].
#: Calibrated so the Langer LF1 probe lands near its measured 14.3 dB
#: SNR (see repro.calibration).
AMBIENT_VRMS_PER_M2 = 0.34

#: Ambient narrowband interferers: (frequency [Hz], fraction of ambient RMS).
AMBIENT_TONES = ((30.0e6, 0.20), (88.0e6, 0.15), (100.0e6, 0.10))


def johnson_rms(resistance: float, temperature_c: float, bandwidth: float) -> float:
    """Thermal noise RMS voltage of a resistor over a bandwidth."""
    if resistance < 0 or bandwidth <= 0:
        raise ConfigError("resistance must be >= 0 and bandwidth > 0")
    temperature_k = celsius_to_kelvin(temperature_c)
    return math.sqrt(4.0 * KB * temperature_k * resistance * bandwidth)


def ambient_rms(loop_area: float) -> float:
    """Ambient pickup RMS voltage for a given effective loop area."""
    if loop_area < 0:
        raise ConfigError("loop area must be >= 0")
    return AMBIENT_VRMS_PER_M2 * loop_area


class NoiseModel:
    """Generates the additive noise at a receiver's terminals.

    Parameters
    ----------
    resistance:
        Winding series resistance [ohm].
    temperature_c:
        Ambient temperature [C].
    ambient_area:
        Effective ambient-pickup area [m^2].
    """

    def __init__(
        self,
        resistance: float,
        temperature_c: float,
        ambient_area: float = 0.0,
    ):
        self.resistance = resistance
        self.temperature_c = temperature_c
        self.ambient_area = ambient_area

    def sample(
        self, n_samples: int, fs: float, rng: np.random.Generator
    ) -> np.ndarray:
        """One noise realization of ``n_samples`` at rate ``fs``."""
        if n_samples < 1:
            raise ConfigError("n_samples must be >= 1")
        bandwidth = fs / 2.0
        thermal = johnson_rms(self.resistance, self.temperature_c, bandwidth)
        noise = rng.normal(0.0, thermal, n_samples) if thermal > 0 else np.zeros(
            n_samples
        )
        amb_rms = ambient_rms(self.ambient_area)
        if amb_rms > 0.0:
            t = np.arange(n_samples) / fs
            tone_fraction = sum(fraction for _f, fraction in AMBIENT_TONES)
            broadband = amb_rms * math.sqrt(max(1.0 - tone_fraction, 0.0))
            noise = noise + rng.normal(0.0, broadband, n_samples)
            for freq, fraction in AMBIENT_TONES:
                if freq < fs / 2:
                    phase = rng.uniform(0.0, 2.0 * math.pi)
                    amplitude = amb_rms * fraction * math.sqrt(2.0)
                    noise = noise + amplitude * np.sin(
                        2.0 * math.pi * freq * t + phase
                    )
        return noise

    def total_rms(self, fs: float) -> float:
        """Predicted RMS of one realization (thermal + ambient)."""
        thermal = johnson_rms(self.resistance, self.temperature_c, fs / 2.0)
        ambient = ambient_rms(self.ambient_area)
        return math.sqrt(thermal**2 + ambient**2)
