"""The detector-matrix drift gate (tools/check_detector_grid.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

MODULE_PATH = (
    Path(__file__).parent.parent / "tools" / "check_detector_grid.py"
)
spec = importlib.util.spec_from_file_location(
    "check_detector_grid", MODULE_PATH
)
check = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check)


def _cell(detector, trojan, detected, false_alarm=False):
    return {
        "kind": "detection",
        "detector": detector,
        "trojan": trojan,
        "mttd": {"detected": detected, "false_alarm": false_alarm},
    }


def _report(cells, grid="detectors-smoke"):
    return {"grid": grid, "cells": cells}


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


EXPECTED = {
    "grid": "detectors-smoke",
    "matrix": {
        "welford": {"T1": True, "T1A": False},
        "spectral": {"T1": True, "T1A": True},
    },
}

MATCHING_CELLS = [
    _cell("welford", "T1", True),
    _cell("welford", "T1A", False),
    _cell("spectral", "T1", True),
    _cell("spectral", "T1A", True),
]


def test_matrix_from_report_ignores_localization_cells():
    report = _report(MATCHING_CELLS + [{"kind": "localization"}])
    assert check.matrix_from_report(report) == EXPECTED["matrix"]


def test_exact_match_passes(tmp_path):
    report = _write(tmp_path / "r.json", _report(MATCHING_CELLS))
    expected = _write(tmp_path / "e.json", EXPECTED)
    code, lines = check.run(report, expected)
    assert code == 0
    assert "matches" in lines[0]


def test_flip_in_either_direction_fails(tmp_path):
    expected = _write(tmp_path / "e.json", EXPECTED)
    # A committed miss now detecting is drift too.
    flipped = [dict(c) for c in MATCHING_CELLS]
    flipped[1] = _cell("welford", "T1A", True)
    report = _write(tmp_path / "up.json", _report(flipped))
    code, lines = check.run(report, expected)
    assert code == 1
    assert any("welford x T1A: detected, expected missed" in l for l in lines)

    flipped[1] = _cell("welford", "T1A", False)
    flipped[2] = _cell("spectral", "T1", False)
    report = _write(tmp_path / "down.json", _report(flipped))
    code, lines = check.run(report, expected)
    assert code == 1
    assert any("spectral x T1: missed, expected detected" in l for l in lines)


def test_missing_and_extra_cells_fail(tmp_path):
    expected = _write(tmp_path / "e.json", EXPECTED)
    report = _write(
        tmp_path / "missing.json", _report(MATCHING_CELLS[:-1])
    )
    code, lines = check.run(report, expected)
    assert code == 1
    assert any("spectral x T1A: cell missing" in l for l in lines)

    report = _write(
        tmp_path / "extra.json",
        _report(MATCHING_CELLS + [_cell("persistence", "T1", False)]),
    )
    code, lines = check.run(report, expected)
    assert code == 1
    assert any("unexpected detector 'persistence'" in l for l in lines)


def test_wrong_grid_and_unreadable_files_fail(tmp_path):
    expected = _write(tmp_path / "e.json", EXPECTED)
    report = _write(
        tmp_path / "wrong.json", _report(MATCHING_CELLS, grid="table1")
    )
    code, lines = check.run(report, expected)
    assert code == 1
    assert "pins" in lines[0]

    code, lines = check.run(tmp_path / "nope.json", expected)
    assert code == 1
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    code, lines = check.run(bad, expected)
    assert code == 1


def test_duplicate_cell_is_malformed(tmp_path):
    expected = _write(tmp_path / "e.json", EXPECTED)
    report = _write(
        tmp_path / "dup.json",
        _report(MATCHING_CELLS + [_cell("welford", "T1", True)]),
    )
    code, lines = check.run(report, expected)
    assert code == 1
    assert "malformed" in lines[0]


def test_cli_entry(tmp_path, capsys):
    report = _write(tmp_path / "r.json", _report(MATCHING_CELLS))
    expected = _write(tmp_path / "e.json", EXPECTED)
    assert (
        check.main(["--report", str(report), "--expected", str(expected)])
        == 0
    )
    assert "matches" in capsys.readouterr().out
